GO      ?= go
PKGS    ?= ./...
# Concurrency-critical packages: the fast race gate stays under ~1 minute
# so it can run on every local iteration.
RACE_FAST_PKGS = ./internal/engine ./internal/biclique ./internal/transport

# Chaos sweep size: seeds per profile in `make chaos`. 50 seeds across the
# four fault profiles plus the differential matrix gives 200+ seeded runs.
CHAOS_RUNS ?= 50
FUZZTIME   ?= 20s

.PHONY: build test lint vet race race-fast bench bench-smoke obs-smoke chaos chaos-split fuzz-short cover escape-gate ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

vet:
	$(GO) vet $(PKGS)

## lint: fastjoin-lint (unboundedchan, lockguard, goroutinestop, panicpath,
## spanstate, chaosclass, atomicfield) plus the stock go vet passes, with
## per-analyzer finding counts and wall time. See LINTING.md.
lint:
	$(GO) run ./cmd/fastjoin-lint -stats $(PKGS)

## race: the full race-enabled test run the CI gate enforces.
race:
	$(GO) test -race -count=1 $(PKGS)

## race-fast: race smoke test scoped to the engine/biclique/transport
## concurrency core, for local iteration.
race-fast:
	$(GO) test -race -count=1 $(RACE_FAST_PKGS)

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x $(PKGS)

## bench-smoke: short fixed-seed batching A/B (the BENCH_3 experiment at
## -quick scale), the store A/B (the BENCH_4 experiment at -quick scale),
## the data-plane allocation benchmarks, and the allocation ceiling gate
## (scripts/alloc_gate.sh, ceiling in ci/alloc_ceiling.txt). Writes
## bench-smoke.json, which CI archives as an artifact; a regression in
## the batched path shows up as the speedup column sliding toward 1.0.
bench-smoke:
	$(GO) run ./cmd/fastjoin-bench -figure batch -quick -json bench-smoke.json
	$(GO) run ./cmd/fastjoin-bench -figure store -quick -json bench-smoke-store.json
	$(GO) test -run='^$$' -bench 'BenchmarkDataPlane' -benchtime=3x ./internal/biclique
	./scripts/alloc_gate.sh

## obs-smoke: boot a real join server with the observability endpoint,
## stream a workload at it, and scrape /metrics and /stats.json mid-run,
## asserting the per-instance load gauges, engine queue gauges, and
## migration counters are all exposed (scripts/obs_smoke.sh).
obs-smoke:
	./scripts/obs_smoke.sh

## chaos: the seeded fault-injection sweep under the race detector. Every
## run must produce the exact brute-force join result or a cleanly
## reported abort; replay a failure with
##   go test -race ./internal/biclique -run TestChaosReplay \
##     -args -chaos.profile=<p> -chaos.seed=<n>
chaos:
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -count=1 -timeout=30m ./internal/biclique \
		-run 'Chaos' -args -chaos.runs=$(CHAOS_RUNS)

## chaos-split: the hot-key-splitting slice of the chaos matrix under the
## race detector — every fault profile with splitting enabled (the
## differential and store matrices' split=on rows), the
## split→migrate→unsplit interleaving lifecycle, and the churn/retire
## scenario (splits must cool, drain, and retire under every profile,
## with the split table returning to empty — the bounded-memory check).
chaos-split:
	$(GO) test -race -count=1 -timeout=15m ./internal/biclique \
		-run 'TestChaosDifferential/[a-z]+/split=on|TestChaosStoreDifferential/[a-z]+/[a-z]+/split=on|TestSplitMigrateUnsplitInterleaving|TestSplit|TestChaosChurnRetire|TestChurnRetireTraceSpans'

## fuzz-short: bounded fuzzing of the wire-frame decoder and the routing
## update path (corpora are checked in under testdata/fuzz).
fuzz-short:
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/routing -run='^$$' -fuzz=FuzzRoutingUpdate -fuzztime=$(FUZZTIME)

## cover: per-package coverage plus the biclique+core+chaos floor gate
## (scripts/coverage_gate.sh, baseline in ci/coverage_baseline.txt).
cover:
	./scripts/coverage_gate.sh

## escape-gate: diff heap escapes in //lint:hotpath functions against
## ci/escape_baseline.txt (scripts/escape_gate.sh). A new escape on a hot
## path fails; admit intentional ones with
##   go run ./cmd/fastjoin-escape -update
escape-gate:
	./scripts/escape_gate.sh

## ci: everything the CI workflow gates on. `lint` includes go vet.
ci: build lint escape-gate test race obs-smoke
