GO      ?= go
PKGS    ?= ./...
# Concurrency-critical packages: the fast race gate stays under ~1 minute
# so it can run on every local iteration.
RACE_FAST_PKGS = ./internal/engine ./internal/biclique ./internal/transport

.PHONY: build test lint vet race race-fast bench ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

vet:
	$(GO) vet $(PKGS)

## lint: fastjoin-lint (unboundedchan, lockguard, goroutinestop, panicpath)
## plus the stock go vet passes. See LINTING.md.
lint:
	$(GO) run ./cmd/fastjoin-lint $(PKGS)

## race: the full race-enabled test run the CI gate enforces.
race:
	$(GO) test -race -count=1 $(PKGS)

## race-fast: race smoke test scoped to the engine/biclique/transport
## concurrency core, for local iteration.
race-fast:
	$(GO) test -race -count=1 $(RACE_FAST_PKGS)

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x $(PKGS)

## ci: everything the CI workflow gates on. `lint` includes go vet.
ci: build lint test race
