// Benchmarks that regenerate the paper's evaluation artifacts, one per
// figure family (see DESIGN.md's per-experiment index), plus micro-benches
// of the core algorithms and substrates. Each figure benchmark executes the
// corresponding internal/bench experiment at Quick scale; run
// cmd/fastjoin-bench for full-scale tables.
package fastjoin_test

import (
	"math/rand"
	"testing"
	"time"

	"fastjoin"
	"fastjoin/internal/bench"
	"fastjoin/internal/core"
	"fastjoin/internal/stream"
	"fastjoin/internal/window"
	"fastjoin/internal/workload"
	"fastjoin/internal/xhash"
)

// benchFigure runs one experiment at Quick scale b.N times.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	e := bench.Find(id)
	if e == nil {
		b.Fatalf("experiment %s not found", id)
	}
	p := bench.Params{Quick: true, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(p); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1Workload(b *testing.B)   { benchFigure(b, "fig1ab") }
func BenchmarkFig1Imbalance(b *testing.B)  { benchFigure(b, "fig1cd") }
func BenchmarkFig3Throughput(b *testing.B) { benchFigure(b, "fig3") }
func BenchmarkFig5Instances(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig7Scale(b *testing.B)      { benchFigure(b, "fig7") }
func BenchmarkFig9Theta(b *testing.B)      { benchFigure(b, "fig9") }
func BenchmarkFig12Skew(b *testing.B)      { benchFigure(b, "fig12") }
func BenchmarkFig14Selector(b *testing.B)  { benchFigure(b, "fig14") }

// Aliases for the figures produced by shared runs, so every figure has a
// named bench target (kept cheap: fig4/6/8/10/11/13 reuse their sibling's
// runner).
func BenchmarkFig4Latency(b *testing.B)   { benchFigure(b, "fig4") }
func BenchmarkFig6Instances(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFig8Scale(b *testing.B)     { benchFigure(b, "fig8") }
func BenchmarkFig10Theta(b *testing.B)    { benchFigure(b, "fig10") }
func BenchmarkFig11LI(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig13Skew(b *testing.B)     { benchFigure(b, "fig13") }

// ----------------------------------------------------------------- micro

// BenchmarkGreedyFit measures the key selection algorithm at the paper's
// analyzed complexity point (K = 10k keys in an instance).
func BenchmarkGreedyFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]core.KeyStat, 10000)
	var stored, probe int64
	for i := range keys {
		keys[i] = core.KeyStat{
			Key:    stream.Key(i),
			Stored: int64(rng.Intn(100) + 1),
			Probe:  int64(rng.Intn(50)),
		}
		stored += keys[i].Stored
		probe += keys[i].Probe
	}
	in := core.SelectInput{
		Source: core.InstanceLoad{Instance: 0, Stored: stored, Probe: probe},
		Target: core.InstanceLoad{Instance: 1, Stored: stored / 10, Probe: probe / 10},
		Keys:   keys,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyFit(in)
	}
}

// BenchmarkSAFit measures the simulated-annealing selector on the same
// input shape.
func BenchmarkSAFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]core.KeyStat, 1000)
	var stored, probe int64
	for i := range keys {
		keys[i] = core.KeyStat{
			Key:    stream.Key(i),
			Stored: int64(rng.Intn(100) + 1),
			Probe:  int64(rng.Intn(50)),
		}
		stored += keys[i].Stored
		probe += keys[i].Probe
	}
	in := core.SelectInput{
		Source: core.InstanceLoad{Instance: 0, Stored: stored, Probe: probe},
		Target: core.InstanceLoad{Instance: 1, Stored: stored / 10, Probe: probe / 10},
		Keys:   keys,
	}
	cfg := core.DefaultSAConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SAFit(in, cfg)
	}
}

// BenchmarkZipfSample measures workload generation (inverse-CDF sampling).
func BenchmarkZipfSample(b *testing.B) {
	z := workload.NewZipf(1_000_000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample()
	}
}

// BenchmarkWindowStore measures the store/probe path of a join instance.
func BenchmarkWindowStore(b *testing.B) {
	s := window.New()
	for i := 0; i < 10000; i++ {
		s.Add(stream.Tuple{Key: stream.Key(i % 100), Seq: uint64(i)})
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		s.ForEachMatch(stream.Key(i%100), func(stream.Tuple) { count++ })
	}
	_ = count
}

// BenchmarkHashPartition measures the dispatcher's key-to-instance mapping.
func BenchmarkHashPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xhash.SeededPartition(uint64(i), 7, 48)
	}
}

// BenchmarkEndToEndJoin measures whole-system throughput on a small finite
// workload (count-only mode, no capacity emulation): tuples processed per
// benchmark op.
func BenchmarkEndToEndJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
			Keys:   1000,
			ThetaR: 1,
			ThetaS: 1,
			Tuples: 20000,
			Seed:   int64(i + 1),
		})
		sys, err := fastjoin.New(fastjoin.Options{
			Kind:    fastjoin.KindBiStream,
			Joiners: 4,
			Sources: w.Sources,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitComplete(time.Minute); err != nil {
			sys.Stop()
			b.Fatal(err)
		}
		sys.Stop()
	}
}

// BenchmarkMigrationRoundTrip measures a full migrate-out/migrate-back key
// cycle at the store level (extract + bulk insert).
func BenchmarkMigrationRoundTrip(b *testing.B) {
	src := window.New()
	for i := 0; i < 5000; i++ {
		src.Add(stream.Tuple{Key: 7, Seq: uint64(i)})
	}
	dst := window.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.AddBulk(src.RemoveKey(7))
		src.AddBulk(dst.RemoveKey(7))
	}
}
