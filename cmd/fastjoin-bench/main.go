// fastjoin-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	fastjoin-bench -figure all                 # every experiment
//	fastjoin-bench -figure fig3                # one figure (aliases work)
//	fastjoin-bench -figure fig5 -joiners 16    # scale a knob up
//	fastjoin-bench -list                       # show the experiment index
//
// Each experiment prints one or more plain-text tables; -csv <dir> also
// writes each table as a CSV file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fastjoin"
	"fastjoin/internal/bench"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure id (fig1ab, fig1cd, fig3..fig14) or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "shrink sweeps and durations (smoke test)")
		joiners  = flag.Int("joiners", 0, "join instances per side (default 8; paper 48)")
		duration = flag.Duration("duration", 0, "timed-run duration (default 4s)")
		budget   = flag.Int("budget", 0, "tuple budget per batch run (default 200000)")
		keys     = flag.Int("keys", 0, "key universe size (default 10000)")
		theta    = flag.Float64("theta", 0, "load imbalance threshold Θ (default 2.2)")
		seed     = flag.Int64("seed", 0, "workload/placement seed (default 7)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut  = flag.String("json", "", "write all reports plus resolved params as one JSON document")

		batchSize   = flag.Int("batch", 0, "dispatcher batch size for every run (0 = default 32, 1 = unbatched)")
		batchLinger = flag.Duration("batch.linger", 0, "partial-batch flush deadline (0 = default 2ms)")
		storeImpl   = flag.String("store", "", "window-store implementation for every run (\"\" = default \"chunked\", or \"map\")")

		chaosProfile = flag.String("chaos", "", "fault drill: chaos profile (none, droponly, delayonly, duponly, mixed, abortstorm)")
		chaosSeed    = flag.Int64("chaos.seed", 1, "chaos injector seed (a drill replays exactly per seed)")

		observe = flag.String("observe", "", "observability endpoint address for every run (e.g. 127.0.0.1:9144; serves /metrics, /stats.json, /trace.json, /debug/pprof)")
	)
	flag.Parse()

	store, err := fastjoin.ParseStoreKind(*storeImpl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaos, err := fastjoin.ParseChaosProfile(*chaosProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			ids := e.ID
			if len(e.Aliases) > 0 {
				ids += " (" + strings.Join(e.Aliases, ", ") + ")"
			}
			fmt.Printf("  %-28s %s\n", ids, e.Title)
		}
		return
	}

	p := bench.Params{
		Joiners:     *joiners,
		Duration:    *duration,
		TupleBudget: *budget,
		Keys:        *keys,
		Theta:       *theta,
		Seed:        *seed,
		BatchSize:   *batchSize,
		BatchLinger: *batchLinger,
		Store:       store,
		Quick:       *quick,

		ChaosProfile: chaos,
		ChaosSeed:    *chaosSeed,
		Observe:      *observe,
	}
	if p.ChaosProfile != fastjoin.ChaosNone {
		fmt.Printf("fault drill: chaos profile %q seed %d\n", p.ChaosProfile, p.ChaosSeed)
	}

	var experiments []*bench.Experiment
	if *figure == "all" {
		experiments = bench.All()
	} else {
		e := bench.Find(*figure)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown figure %q; try -list\n", *figure)
			os.Exit(2)
		}
		experiments = []*bench.Experiment{e}
	}

	start := time.Now()
	var allReports []*bench.Report
	for _, e := range experiments {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		expStart := time.Now()
		reports, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		allReports = append(allReports, reports...)
		for i, rep := range reports {
			if err := rep.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "render: %v\n", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, i, rep); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s finished in %s)\n\n", e.ID, time.Since(expStart).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		doc := bench.Doc{Figure: *figure, Params: p.Resolved(), Reports: allReports}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := doc.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	fmt.Printf("all done in %s\n", time.Since(start).Round(time.Millisecond))
}

func writeCSV(dir, id string, idx int, rep *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", id, idx))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.CSV(f)
}
