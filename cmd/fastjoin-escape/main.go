// Command fastjoin-escape is the compiler-backed escape gate: it rebuilds
// the hot-path packages with -gcflags=-m, attributes the heap-escape
// diagnostics to functions annotated //lint:hotpath, and diffs them
// against the checked-in baseline. A new escape in a hot function fails
// the gate (exit 1); escapes elsewhere are the compiler's business.
//
// Usage:
//
//	go run ./cmd/fastjoin-escape [-baseline ci/escape_baseline.txt] [-update] [packages...]
//
// With no package arguments it gates the default hot set (internal/window,
// internal/biclique, internal/engine). -update rewrites the baseline from
// the current build instead of diffing, which is how an intentional,
// reviewed escape is admitted.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"fastjoin/internal/lint/escape"
)

var defaultPackages = []string{"./internal/window", "./internal/biclique", "./internal/engine"}

func main() {
	baselinePath := flag.String("baseline", "ci/escape_baseline.txt", "baseline file to diff against")
	update := flag.Bool("update", false, "rewrite the baseline from the current build")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = defaultPackages
	}

	current, err := currentEscapes(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-escape: %v\n", err)
		os.Exit(2)
	}

	if *update {
		if err := os.WriteFile(*baselinePath, []byte(baselineHeader+escape.Format(current)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fastjoin-escape: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("fastjoin-escape: baseline %s rewritten with %d entries\n", *baselinePath, len(current))
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-escape: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	baseline, err := escape.ParseBaseline(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-escape: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	fresh, stale := escape.Diff(current, baseline)
	for _, f := range stale {
		fmt.Printf("fastjoin-escape: note: baseline entry no longer produced: %s %s: %s\n", f.File, f.Func, f.Msg)
	}
	if len(stale) > 0 {
		fmt.Printf("fastjoin-escape: note: refresh with `go run ./cmd/fastjoin-escape -update`\n")
	}
	if len(fresh) > 0 {
		for _, f := range fresh {
			fmt.Printf("fastjoin-escape: NEW heap escape in hotpath %s (%s): %s\n", f.Func, f.File, f.Msg)
		}
		fmt.Printf("fastjoin-escape: %d new escape(s); eliminate the allocation or admit it with -update in a reviewed change\n", len(fresh))
		os.Exit(1)
	}
	fmt.Printf("fastjoin-escape: ok (%d baselined escape(s) across %d package(s))\n", total(baseline), len(patterns))
}

const baselineHeader = `# Heap escapes in //lint:hotpath functions, as reported by go build -gcflags=-m.
# Maintained by cmd/fastjoin-escape; refresh with: go run ./cmd/fastjoin-escape -update
# Fields: file<TAB>function<TAB>count<TAB>compiler message
`

func total(counts map[escape.Finding]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// currentEscapes rebuilds patterns with -gcflags=-m and attributes the
// escape diagnostics to hotpath regions.
func currentEscapes(patterns []string) (map[escape.Finding]int, error) {
	regions, err := hotpathRegions(patterns)
	if err != nil {
		return nil, err
	}
	// -m prints to stderr; the build cache replays diagnostics, so warm
	// runs are cheap and repeatable.
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, patterns...)...)
	var out bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	diags, err := escape.ParseDiagnostics(&out)
	if err != nil {
		return nil, err
	}
	return escape.Counts(escape.Attribute(diags, regions)), nil
}

// hotpathRegions resolves patterns to directories via go list and scans
// them for //lint:hotpath functions, recording files the way the
// compiler will print them (relative to the working directory).
func hotpathRegions(patterns []string) ([]escape.Region, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir"}, patterns...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var regions []escape.Region
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var e struct{ ImportPath, Dir string }
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(wd, e.Dir)
		if err != nil {
			rel = e.Dir
		}
		rs, err := escape.HotpathsDir(e.Dir, rel)
		if err != nil {
			return nil, err
		}
		regions = append(regions, rs...)
	}
	return regions, nil
}
