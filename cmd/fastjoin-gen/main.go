// fastjoin-gen generates evaluation workloads and prints their skew
// statistics — the tool behind Fig. 1(a)/(b)'s key-distribution analysis.
//
// Usage:
//
//	fastjoin-gen -workload ridehailing -tuples 500000
//	fastjoin-gen -workload zipf -theta 2.0 -keys 100000
//	fastjoin-gen -workload adclicks -cdf
package main

import (
	"flag"
	"fmt"
	"os"

	"fastjoin/internal/stream"
	"fastjoin/internal/workload"
)

func main() {
	var (
		kind   = flag.String("workload", "ridehailing", "ridehailing | adclicks | zipf")
		tuples = flag.Int("tuples", 200000, "tuples to sample per stream")
		keys   = flag.Int("keys", 10000, "key universe size")
		theta  = flag.Float64("theta", 1.0, "zipf exponent (zipf workload)")
		seed   = flag.Int64("seed", 1, "generator seed")
		cdf    = flag.Bool("cdf", false, "print the key-frequency CDF at deciles")
		out    = flag.String("trace", "", "also write the sampled tuples as a CSV trace to this file")
	)
	flag.Parse()

	var sources []namedSource
	switch *kind {
	case "ridehailing":
		cfg := workload.DefaultRideHailingConfig()
		side := 1
		for side*side < *keys {
			side++
		}
		cfg.GridWidth, cfg.GridHeight = side, side
		cfg.Seed = *seed
		rh := workload.NewRideHailing(cfg)
		fmt.Printf("ride-hailing: %d cells, order θ=%.3f, track θ=%.3f\n",
			rh.Cells, rh.OrderTheta, rh.TrackTheta)
		sources = []namedSource{
			{"orders(R)", rh.R.Next},
			{"tracks(S)", rh.S.Next},
		}
	case "adclicks":
		cfg := workload.DefaultAdClicksConfig()
		cfg.Ads = *keys
		cfg.Seed = *seed
		ac := workload.NewAdClicks(cfg)
		fmt.Printf("ad analytics: %d ads, query θ=%.2f, click θ=%.2f\n",
			cfg.Ads, cfg.QueryTheta, cfg.ClickTheta)
		sources = []namedSource{
			{"queries(R)", ac.Queries.Next},
			{"clicks(S)", ac.Clicks.Next},
		}
	case "zipf":
		z := workload.NewSource(stream.R, workload.NewZipfShuffled(*keys, *theta, *seed), nil)
		fmt.Printf("zipf: %d keys, θ=%.2f\n", *keys, *theta)
		sources = []namedSource{{"stream", z.Next}}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kind)
		os.Exit(2)
	}

	var traced []stream.Tuple
	for _, src := range sources {
		d := workload.NewDistribution()
		for i := 0; i < *tuples; i++ {
			t := src.next()
			d.Observe(t.Key)
			if *out != "" {
				t.Payload = nil // traces persist join-relevant fields only
				traced = append(traced, t)
			}
		}
		fmt.Printf("\n%s: %s\n", src.name, d)
		if *cdf {
			fmt.Println("  hottest-key-fraction -> mass-fraction:")
			for _, pt := range d.CDF(11) {
				fmt.Printf("    %5.1f%% -> %5.1f%%\n", pt.KeyFrac*100, pt.MassFrac*100)
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, traced); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d tuples to %s\n", len(traced), *out)
	}
}

type namedSource struct {
	name string
	next func() stream.Tuple
}
