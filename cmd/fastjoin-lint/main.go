// Command fastjoin-lint is the project's concurrency multichecker: it runs
// the codebase-aware analyzers of internal/lint (unboundedchan, lockguard,
// goroutinestop, panicpath, spanstate, chaosclass, atomicfield) and, by
// default, the stock `go vet` passes over the same packages.
//
// Usage:
//
//	go run ./cmd/fastjoin-lint [-list] [-stats] [-vet=false] [packages...]
//
// With no package arguments it analyzes ./.... Packages are analyzed in
// dependency order with a shared fact store, so the cross-package
// analyzers (spanstate's span-rule table, chaosclass registries,
// atomicfield object facts) see facts exported by the packages they
// import. The exit status is non-zero if any analyzer reports a finding
// or go vet fails, which is what `make lint` and the CI gate key on.
// -stats prints a per-analyzer finding count and the analysis wall time
// to stderr. Findings are suppressed line-by-line with
//
//	//lint:allow <analyzer> <justification>
//
// as documented in LINTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"fastjoin/internal/lint"
	"fastjoin/internal/lint/analysis"
	"fastjoin/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	vet := flag.Bool("vet", true, "also run the stock go vet passes")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time to stderr")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-lint: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(start)

	units := make([]*analysis.Unit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.Unit{
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
	}

	type finding struct {
		file      string
		line, col int
		category  string
		message   string
	}
	var findings []finding
	counts := make(map[string]int)
	analyzeStart := time.Now()
	err = analysis.Run(units, analyzers, analysis.NewFactStore(),
		func(u *analysis.Unit, d analysis.Diagnostic) {
			pos := u.Fset.Position(d.Pos)
			counts[d.Category]++
			findings = append(findings, finding{
				file: relPath(pos.Filename), line: pos.Line, col: pos.Column,
				category: d.Category, message: d.Message,
			})
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-lint: %v\n", err)
		os.Exit(2)
	}
	analyzeTime := time.Since(analyzeStart)

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].file != findings[j].file {
			return findings[i].file < findings[j].file
		}
		if findings[i].line != findings[j].line {
			return findings[i].line < findings[j].line
		}
		return findings[i].col < findings[j].col
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.message, f.category)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "fastjoin-lint: %d packages, load %s, analyze %s\n",
			len(pkgs), loadTime.Round(time.Millisecond), analyzeTime.Round(time.Millisecond))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %d finding(s)\n", a.Name, counts[a.Name])
		}
	}

	failed := len(findings) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// relPath shortens a filename to be relative to the working directory when
// possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil {
		return path
	}
	return rel
}
