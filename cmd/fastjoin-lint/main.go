// Command fastjoin-lint is the project's concurrency multichecker: it runs
// the codebase-aware analyzers of internal/lint (unboundedchan, lockguard,
// goroutinestop, panicpath) and, by default, the stock `go vet` passes over
// the same packages.
//
// Usage:
//
//	go run ./cmd/fastjoin-lint [-list] [-vet=false] [packages...]
//
// With no package arguments it analyzes ./.... The exit status is non-zero
// if any analyzer reports a finding or go vet fails, which is what `make
// lint` and the CI gate key on. Findings are suppressed line-by-line with
//
//	//lint:allow <analyzer> <justification>
//
// as documented in LINTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"fastjoin/internal/lint"
	"fastjoin/internal/lint/analysis"
	"fastjoin/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	vet := flag.Bool("vet", true, "also run the stock go vet passes")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastjoin-lint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		file      string
		line, col int
		category  string
		message   string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					findings = append(findings, finding{
						file: relPath(pos.Filename), line: pos.Line, col: pos.Column,
						category: d.Category, message: d.Message,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "fastjoin-lint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].file != findings[j].file {
			return findings[i].file < findings[j].file
		}
		if findings[i].line != findings[j].line {
			return findings[i].line < findings[j].line
		}
		return findings[i].col < findings[j].col
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.message, f.category)
	}

	failed := len(findings) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// relPath shortens a filename to be relative to the working directory when
// possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil {
		return path
	}
	return rel
}
