// fastjoin-node runs a stream join system as a network service, or feeds
// one — splitting tuple production and join processing across processes or
// hosts (the paper's Kafka-producers / Storm-cluster split).
//
// Join server (waits for -ingest client connections, joins their tuples,
// prints live stats, exits when every client closes):
//
//	fastjoin-node -listen 127.0.0.1:7100 -ingest 2 -joiners 8
//
// Workload client (streams a generated workload to a server):
//
//	fastjoin-node -connect 127.0.0.1:7100 -workload ridehailing -tuples 200000
//	fastjoin-node -connect 127.0.0.1:7100 -workload zipf -zipfR 1 -zipfS 1 -tuples 100000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastjoin"
	"fastjoin/internal/remote"
	"fastjoin/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "", "server mode: address to accept ingestion on")
		ingest  = flag.Int("ingest", 1, "server mode: ingestion connections to wait for")
		joiners = flag.Int("joiners", 8, "server mode: join instances per side")
		kind    = flag.String("system", "fastjoin", "server mode: fastjoin | bistream | contrand")
		theta   = flag.Float64("theta", 2.2, "server mode: load imbalance threshold Θ")
		observe = flag.String("observe", "", "server mode: observability endpoint address (e.g. :9144; serves /metrics, /stats.json, /trace.json, /debug/pprof)")

		connect = flag.String("connect", "", "client mode: server address to stream to")
		wl      = flag.String("workload", "ridehailing", "client mode: ridehailing | zipf")
		tuples  = flag.Int("tuples", 200000, "client mode: tuples to stream")
		rate    = flag.Float64("rate", 0, "client mode: tuples/second (0 = unlimited)")
		zipfR   = flag.Float64("zipfR", 1.0, "client mode: zipf workload R exponent")
		zipfS   = flag.Float64("zipfS", 1.0, "client mode: zipf workload S exponent")
		seed    = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()

	switch {
	case *listen != "" && *connect != "":
		fatal(fmt.Errorf("choose one of -listen or -connect"))
	case *listen != "":
		serve(*listen, *ingest, *joiners, *kind, *theta, *observe)
	case *connect != "":
		feed(*connect, *wl, *tuples, *rate, *zipfR, *zipfS, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func serve(addr string, ingest, joiners int, kindName string, theta float64, observe string) {
	var kind fastjoin.Kind
	switch kindName {
	case "fastjoin":
		kind = fastjoin.KindFastJoin
	case "bistream":
		kind = fastjoin.KindBiStream
	case "contrand":
		kind = fastjoin.KindBiStreamContRand
	default:
		fatal(fmt.Errorf("unknown system %q", kindName))
	}

	srv, err := transport.Listen(addr)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("join server (%s) on %s; waiting for %d ingestion connection(s)\n",
		kind, srv.Addr(), ingest)

	sources, closeConns, err := remote.AcceptSources(srv, ingest)
	if err != nil {
		fatal(err)
	}
	defer closeConns()

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:      kind,
		Joiners:   joiners,
		Migration: fastjoin.MigrationOptions{Theta: theta},
		Observe:   fastjoin.ObserveOptions{Addr: observe},
		Sources:   sources,
	})
	if err != nil {
		fatal(err)
	}
	if oa := sys.ObserveAddr(); oa != "" {
		fmt.Printf("observability endpoint on http://%s/metrics\n", oa)
	}
	fmt.Println("ingesting...")

	// SIGINT/SIGTERM cancels the wait; the system then drains what is in
	// flight and reports the partial run instead of dying mid-migration.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	done := make(chan error, 1)
	go func() { done <- sys.WaitCompleteCtx(ctx) }()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := sys.Stats()
			fmt.Printf("  ingested=%d results=%d (%.0f/s) latency=%.0fµs migrations=%d\n",
				sys.Ingested(), st.Results, sys.ThroughputTick(), st.LatencyMeanUs, st.Migrations)
		case err := <-done:
			switch {
			case err == nil:
				fmt.Println("all clients finished.")
			case errors.Is(err, context.Canceled):
				fmt.Println("interrupted; draining...")
				drainCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
				if derr := sys.DrainCtx(drainCtx); derr != nil {
					fmt.Fprintln(os.Stderr, "fastjoin-node: drain:", derr)
				}
				stop()
			default:
				fatal(err)
			}
			sys.Stop()
			fmt.Println(sys.Stats())
			return
		}
	}
}

func feed(addr, wl string, tuples int, rate, zipfR, zipfS float64, seed int64) {
	var w fastjoin.Workload
	switch wl {
	case "ridehailing":
		w = fastjoin.NewRideHailingWorkload(fastjoin.RideHailingOptions{
			Tuples: tuples, Rate: rate, Seed: seed,
		})
	case "zipf":
		w = fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
			ThetaR: zipfR, ThetaS: zipfS, Tuples: tuples, Rate: rate, Seed: seed,
		})
	default:
		fatal(fmt.Errorf("unknown workload %q", wl))
	}
	start := time.Now()
	sent, err := remote.StreamTuples(addr, w.Sources[0])
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("streamed %d tuples of %s in %v (%.0f tuples/s)\n",
		sent, w.Description, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastjoin-node:", err)
	os.Exit(1)
}
