// fastjoin-sim runs the discrete-event simulator at cluster scale: the
// paper's 48-instance deployment on any host, in deterministic virtual
// time. It complements fastjoin-bench (which measures the live runtime)
// with paper-scale sweeps.
//
// Usage:
//
//	fastjoin-sim -sweep systems                  # FastJoin vs baselines
//	fastjoin-sim -sweep instances                # Fig. 5/6 analog at scale
//	fastjoin-sim -sweep theta                    # Fig. 9/10 analog
//	fastjoin-sim -sweep skew                     # Fig. 12/13 analog
//	fastjoin-sim -sweep selector                 # Fig. 14 analog
//	fastjoin-sim -instances 48 -rate 250000 -duration 30
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"fastjoin/internal/core"
	"fastjoin/internal/sim"
	"fastjoin/internal/workload"
)

func main() {
	var (
		sweep     = flag.String("sweep", "systems", "systems | instances | theta | skew | selector")
		instances = flag.Int("instances", 48, "join instances per side (paper default 48)")
		rate      = flag.Float64("rate", 700000, "offered load, tuples/second")
		duration  = flag.Float64("duration", 30, "virtual seconds per run")
		service   = flag.Float64("service", 20000, "per-instance capacity, ops/second")
		keys      = flag.Int("keys", 1000000, "key universe size")
		thetaR    = flag.Float64("zipfR", 0.95, "stream R zipf exponent")
		thetaS    = flag.Float64("zipfS", 0.90, "stream S zipf exponent")
		theta     = flag.Float64("theta", 2.2, "load imbalance threshold Θ")
		window    = flag.Float64("window", 2, "join window, virtual seconds (0 = full history)")
		seed      = flag.Int64("seed", 7, "workload/placement seed")

		chaosName = flag.String("chaos", "", "fault drill preset (none, droponly, delayonly, duponly, mixed, abortstorm)")
	)
	flag.Parse()

	chaosCfg, err := sim.ChaosPreset(*chaosName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	base := func() sim.Config {
		return sim.Config{
			Instances:   *instances,
			ServiceRate: *service,
			ArrivalRate: *rate,
			Duration:    *duration,
			WindowSpan:  *window,
			Theta:       *theta,
			CooldownSec: 1,
			MatchCost:   0.0002,
			SPerR:       4,
			SampleEvery: 1,
			Seed:        uint64(*seed),
			Chaos:       chaosCfg,
		}
	}
	samplers := func(tR, tS float64) (workload.Sampler, workload.Sampler) {
		permSeed := *seed ^ 0x5a5a
		return workload.NewZipfPerm(*keys, tR, *seed+1, permSeed),
			workload.NewZipfPerm(*keys, tS, *seed+2, permSeed)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	header := func(cols ...any) {
		fmt.Fprintln(w, join(cols))
	}
	row := func(label string, r *sim.Result) {
		migs := fmt.Sprint(r.Migrations)
		if r.MigrationAborts > 0 {
			migs += fmt.Sprintf("(+%da)", r.MigrationAborts)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1f\t%.2f\t%s\n",
			label, r.MeanThroughput, r.MeanLatencySec*1e3, r.P99LatencySec*1e3,
			r.SteadyLI, migs)
	}

	runOne := func(cfg sim.Config, tR, tS float64) *sim.Result {
		cfg.SamplerR, cfg.SamplerS = samplers(tR, tS)
		res, err := sim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}

	fmt.Printf("simulated cluster: %d instances/side x %.0f ops/s, offered %.0f tuples/s, %gs virtual\n",
		*instances, *service, *rate, *duration)
	if *chaosName != "" && *chaosName != "none" {
		fmt.Printf("fault drill: chaos preset %q (migration fail p=%.2f, stall p=%.2f/%.0fms)\n",
			*chaosName, chaosCfg.MigFailProb, chaosCfg.StallProb, chaosCfg.StallSec*1e3)
	}
	fmt.Println()

	switch *sweep {
	case "systems":
		header("system", "results/s", "lat(ms)", "p99(ms)", "LI", "migrations")
		for _, v := range []struct {
			name      string
			strategy  sim.Strategy
			migration bool
		}{
			{"FastJoin", sim.StrategyHash, true},
			{"BiStream-ContRand", sim.StrategyContRand, false},
			{"BiStream", sim.StrategyHash, false},
		} {
			cfg := base()
			cfg.Strategy = v.strategy
			cfg.Migration = v.migration
			row(v.name, runOne(cfg, *thetaR, *thetaS))
		}
	case "instances":
		header("instances", "results/s", "lat(ms)", "p99(ms)", "LI", "migrations")
		for _, n := range []int{16, 32, 48, 64} {
			cfg := base()
			cfg.Instances = n
			cfg.Migration = true
			row(fmt.Sprintf("FastJoin/%d", n), runOne(cfg, *thetaR, *thetaS))
			cfg2 := base()
			cfg2.Instances = n
			row(fmt.Sprintf("BiStream/%d", n), runOne(cfg2, *thetaR, *thetaS))
		}
	case "theta":
		header("theta", "results/s", "lat(ms)", "p99(ms)", "LI", "migrations")
		for _, th := range []float64{1.2, 1.6, 2.2, 3.2, 5.0, 10, 1e9} {
			cfg := base()
			// Moderate load, so the steady LI sits inside the swept Θ
			// range; at heavy overload every threshold triggers alike.
			cfg.ArrivalRate = *rate * 0.45
			cfg.Migration = true
			cfg.Theta = th
			label := fmt.Sprintf("Θ=%.1f", th)
			if th >= 1e9 {
				label = "Θ=∞ (off)"
			}
			row(label, runOne(cfg, *thetaR, *thetaS))
		}
	case "skew":
		header("group", "results/s", "lat(ms)", "p99(ms)", "LI", "migrations")
		for _, g := range []struct{ r, s float64 }{
			{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2},
		} {
			cfg := base()
			cfg.Migration = true
			row(fmt.Sprintf("FastJoin/G%d%d", int(g.r), int(g.s)), runOne(cfg, g.r, g.s))
			cfg2 := base()
			row(fmt.Sprintf("BiStream/G%d%d", int(g.r), int(g.s)), runOne(cfg2, g.r, g.s))
		}
	case "selector":
		header("selector", "results/s", "lat(ms)", "p99(ms)", "LI", "migrations")
		cfg := base()
		cfg.Migration = true
		row("GreedyFit", runOne(cfg, *thetaR, *thetaS))
		cfg2 := base()
		cfg2.Migration = true
		cfg2.Selector = core.SAFitSelector(core.DefaultSAConfig())
		row("SAFit", runOne(cfg2, *thetaR, *thetaS))
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

func join(cols []any) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += "\t"
		}
		out += fmt.Sprint(c)
	}
	return out
}
