package fastjoin_test

import (
	"fmt"
	"time"

	"fastjoin"
)

// ExampleNew joins two tiny in-memory streams and prints the number of
// matched pairs.
func ExampleNew() {
	// 60 tuples alternating R/S over 3 shared keys.
	i := 0
	var rSeq, sSeq uint64
	source := func() (fastjoin.Tuple, bool) {
		if i >= 60 {
			return fastjoin.Tuple{}, false
		}
		t := fastjoin.Tuple{Key: fastjoin.Key((i / 2) % 3)}
		if i%2 == 0 {
			t.Side, t.Seq = fastjoin.R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = fastjoin.S, sSeq
			sSeq++
		}
		i++
		return t, true
	}

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:    fastjoin.KindFastJoin,
		Joiners: 2,
		Sources: []fastjoin.TupleSource{source},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		fmt.Println(err)
		return
	}
	sys.Stop()
	// 30 R tuples and 30 S tuples over 3 keys: 3 * 10 * 10 pairs.
	fmt.Println("pairs:", sys.Stats().Results)
	// Output: pairs: 300
}

// ExampleNew_predicate refines the key-equality join with a user predicate.
func ExampleNew_predicate() {
	i := 0
	var rSeq, sSeq uint64
	source := func() (fastjoin.Tuple, bool) {
		if i >= 40 {
			return fastjoin.Tuple{}, false
		}
		t := fastjoin.Tuple{Key: 7} // one shared key
		if i%2 == 0 {
			t.Side, t.Seq = fastjoin.R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = fastjoin.S, sSeq
			sSeq++
		}
		i++
		return t, true
	}

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:    fastjoin.KindBiStream,
		Joiners: 2,
		Sources: []fastjoin.TupleSource{source},
		// Keep only pairs whose sequence numbers match exactly.
		Predicate: func(r, s fastjoin.Tuple) bool { return r.Seq == s.Seq },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		fmt.Println(err)
		return
	}
	sys.Stop()
	fmt.Println("pairs:", sys.Stats().Results)
	// Output: pairs: 20
}

// ExampleNewZipfWorkload builds one of the paper's synthetic skew groups
// and inspects its sources.
func ExampleNewZipfWorkload() {
	w := fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
		Keys:   100,
		ThetaR: 2.0, // heavily skewed R stream (the paper's "G2y" groups)
		ThetaS: 0,   // uniform S stream
		Tuples: 1000,
		Seed:   1,
	})
	n := 0
	for _, src := range w.Sources {
		for {
			if _, ok := src(); !ok {
				break
			}
			n++
		}
	}
	fmt.Println("generated:", n)
	// Output: generated: 1000
}

// ExampleOptions_Validate shows the nested configuration groups and how
// Validate normalizes defaults: callers may invoke it directly to inspect
// the effective configuration New would run with.
func ExampleOptions_Validate() {
	opts := fastjoin.Options{
		Kind: fastjoin.KindFastJoin,
		Migration: fastjoin.MigrationOptions{
			Theta:        2.5,
			AbortTimeout: 2 * time.Second,
		},
		Windowing: fastjoin.WindowOptions{Span: 10 * time.Second},
		Observe:   fastjoin.ObserveOptions{Addr: ":9144"},
	}
	if err := opts.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("theta:", opts.Migration.Theta)
	fmt.Println("cooldown:", opts.Migration.Cooldown)
	fmt.Println("sub-windows:", opts.Windowing.SubWindows)
	fmt.Println("batch size:", opts.Batching.Size)
	fmt.Println("store:", opts.StoreKind)
	fmt.Println("trace capacity:", opts.Observe.TraceCapacity)
	// Output:
	// theta: 2.5
	// cooldown: 1s
	// sub-windows: 8
	// batch size: 32
	// store: chunked
	// trace capacity: 4096
}

// ExampleKind_String shows the system names used across the evaluation.
func ExampleKind_String() {
	for _, k := range fastjoin.AllKinds() {
		fmt.Println(k)
	}
	// Output:
	// FastJoin
	// FastJoin-SAFit
	// BiStream
	// BiStream-ContRand
	// Broadcast
}
