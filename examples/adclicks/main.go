// Ad analytics: a Photon-style join of a search-query stream with an
// ad-click stream on advertisement id, with a user predicate (sessionized
// matching) — the Google use case the paper's introduction cites.
//
// Run with:
//
//	go run ./examples/adclicks [-tuples 200000] [-joiners 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"fastjoin"
)

func main() {
	tuples := flag.Int("tuples", 200000, "total input tuples")
	joiners := flag.Int("joiners", 6, "join instances per side")
	flag.Parse()

	w := fastjoin.NewAdClicksWorkload(fastjoin.AdClicksOptions{
		Ads:    5000,
		Tuples: *tuples,
		Seed:   11,
	})

	// Only attribute a click to a query from the same user-session shard:
	// a predicate refining the key-equality join.
	sameSession := func(r, s fastjoin.Tuple) bool {
		return r.Seq%16 == s.Seq%16
	}

	var attributed atomic.Int64
	sys, err := fastjoin.New(fastjoin.Options{
		Kind:      fastjoin.KindFastJoin,
		Joiners:   *joiners,
		Sources:   w.Sources,
		Predicate: sameSession,
		Migration: fastjoin.MigrationOptions{
			Theta:    1.8,
			Cooldown: 150 * time.Millisecond,
		},
		OnResult: func(p fastjoin.JoinedPair) {
			attributed.Add(1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joining %s (%d tuples)...\n", w.Description, *tuples)
	start := time.Now()
	if err := sys.WaitComplete(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	sys.Stop()

	st := sys.Stats()
	fmt.Printf("attributed %d query/click pairs in %v (%.0f results/s)\n",
		attributed.Load(), elapsed.Round(time.Millisecond),
		float64(attributed.Load())/elapsed.Seconds())
	fmt.Println(st)
}
