// Quickstart: join two small in-memory streams with FastJoin and print
// every result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"fastjoin"
)

func main() {
	// Build a toy workload: orders (stream R) and payments (stream S)
	// joined on customer id. Customer 42 is disproportionately busy — the
	// kind of skew FastJoin exists for.
	type event struct {
		side fastjoin.Side
		key  fastjoin.Key
	}
	var events []event
	for i := 0; i < 300; i++ {
		key := fastjoin.Key(i % 10)
		if i%3 != 0 {
			key = 42 // the hot customer
		}
		events = append(events, event{fastjoin.R, key})
		events = append(events, event{fastjoin.S, key})
	}

	var rSeq, sSeq uint64
	i := 0
	source := func() (fastjoin.Tuple, bool) {
		if i >= len(events) {
			return fastjoin.Tuple{}, false
		}
		e := events[i]
		i++
		t := fastjoin.Tuple{Side: e.side, Key: e.key}
		if e.side == fastjoin.R {
			t.Seq = rSeq
			rSeq++
			t.Payload = fmt.Sprintf("order-%d", t.Seq)
		} else {
			t.Seq = sSeq
			sSeq++
			t.Payload = fmt.Sprintf("payment-%d", t.Seq)
		}
		return t, true
	}

	// Collect results through the public callback.
	var mu sync.Mutex
	perKey := make(map[fastjoin.Key]int)

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:    fastjoin.KindFastJoin,
		Joiners: 4,
		Sources: []fastjoin.TupleSource{source},
		OnResult: func(p fastjoin.JoinedPair) {
			mu.Lock()
			perKey[p.Key()]++
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	sys.Stop()

	mu.Lock()
	defer mu.Unlock()
	keys := make([]fastjoin.Key, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	fmt.Println("joined pairs per customer:")
	for _, k := range keys {
		fmt.Printf("  customer %2d: %6d pairs\n", k, perKey[k])
	}
	fmt.Println()
	fmt.Println(sys.Stats())
}
