// Ride-hailing: the paper's motivating application. Joins a skewed
// passenger-order stream with a taxi-track stream on grid location (the
// synthetic stand-in for the DiDi GAIA dataset) and compares FastJoin
// against the BiStream baseline live: throughput, latency, load imbalance
// and the migrations that fixed it.
//
// Run with:
//
//	go run ./examples/ridehailing [-duration 5s] [-joiners 8] [-cells 4096]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fastjoin"
)

func main() {
	duration := flag.Duration("duration", 5*time.Second, "how long to run each system")
	joiners := flag.Int("joiners", 8, "join instances per biclique side")
	cells := flag.Int("cells", 4096, "grid locations (join keys)")
	theta := flag.Float64("theta", 2.2, "load imbalance threshold Θ")
	flag.Parse()

	for _, kind := range []fastjoin.Kind{fastjoin.KindBiStream, fastjoin.KindFastJoin} {
		run(kind, *duration, *joiners, *cells, *theta)
	}
}

func run(kind fastjoin.Kind, duration time.Duration, joiners, cells int, theta float64) {
	w := fastjoin.NewRideHailingWorkload(fastjoin.RideHailingOptions{
		Cells: cells,
		Seed:  7,
	})
	sys, err := fastjoin.New(fastjoin.Options{
		Kind:          kind,
		Joiners:       joiners,
		Sources:       w.Sources,
		StatsInterval: 50 * time.Millisecond,
		Migration: fastjoin.MigrationOptions{
			Theta:    theta,
			Cooldown: 200 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s on %s ===\n", kind, w.Description)
	ticker := time.NewTicker(time.Second)
	done := time.After(duration)
	sys.ThroughputTick() // reset the rate window
loop:
	for {
		select {
		case <-ticker.C:
			st := sys.Stats()
			fmt.Printf("  %8.0f results/s   latency(mean) %7.0fµs   migrations %d\n",
				sys.ThroughputTick(), st.LatencyMeanUs, st.Migrations)
		case <-done:
			break loop
		}
	}
	ticker.Stop()
	if err := sys.Drain(0); err != nil {
		log.Printf("drain: %v", err)
	}
	sys.Stop()

	st := sys.Stats()
	liR := sys.LISeries(fastjoin.R)
	var lastLI float64
	if len(liR) > 0 {
		lastLI = liR[len(liR)-1].Value
	}
	fmt.Printf("final: %v\n", st)
	fmt.Printf("final degree of load imbalance (R side): %.2f over %d samples\n\n",
		lastLI, len(liR))
}
