// Windowed join: demonstrates the window-based join semantics of §III-E.
// Stores only the last -window of each stream; stored counts rise, then
// plateau as sub-window expiry kicks in, instead of growing without bound
// as in the full-history examples.
//
// Run with:
//
//	go run ./examples/windowed [-window 500ms] [-duration 4s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fastjoin"
)

func main() {
	win := flag.Duration("window", 500*time.Millisecond, "join window span")
	duration := flag.Duration("duration", 4*time.Second, "run duration")
	flag.Parse()

	w := fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
		Keys:   2000,
		ThetaR: 1.0,
		ThetaS: 1.0,
		Rate:   50000, // steady 50k tuples/s so residency is predictable
		Seed:   3,
	})

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:          fastjoin.KindFastJoin,
		Joiners:       4,
		Sources:       w.Sources,
		StatsInterval: 50 * time.Millisecond,
		Windowing: fastjoin.WindowOptions{
			Span:       *win,
			SubWindows: 8,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("window = %v; expect stored tuples to plateau near rate*window = %.0f per side\n",
		*win, 50000*win.Seconds()/2)
	ticker := time.NewTicker(500 * time.Millisecond)
	done := time.After(*duration)
loop:
	for {
		select {
		case <-ticker.C:
			st := sys.Stats()
			fmt.Printf("  stored R=%7d  S=%7d   results so far: %d\n",
				st.StoredR, st.StoredS, st.Results)
		case <-done:
			break loop
		}
	}
	ticker.Stop()
	if err := sys.Drain(0); err != nil {
		log.Printf("drain: %v", err)
	}
	sys.Stop()
	fmt.Println(sys.Stats())
}
