package fastjoin

import (
	"os"
	"sync"
	"testing"
	"time"

	"fastjoin/internal/workload"
)

// hotSource builds a finite skewed source: share of traffic on one key.
func hotSource(n int, hot Key, share int) TupleSource {
	i := 0
	var rSeq, sSeq uint64
	return func() (Tuple, bool) {
		if i >= n {
			return Tuple{}, false
		}
		key := Key(i % 100)
		if i%share != 0 {
			key = hot
		}
		t := Tuple{Key: key}
		if i%2 == 0 {
			t.Side, t.Seq = R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = S, sSeq
			sSeq++
		}
		i++
		return t, true
	}
}

func TestMigrationLogPopulated(t *testing.T) {
	sys, err := New(Options{
		Kind:          KindFastJoin,
		Joiners:       4,
		Sources:       []TupleSource{hotSource(12000, 7, 3)},
		Theta:         1.2,
		Cooldown:      25 * time.Millisecond,
		SustainTicks:  1,
		StatsInterval: 15 * time.Millisecond,
		Predicate:     func(r, s Tuple) bool { return (r.Seq+s.Seq)%128 == 0 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	log := sys.MigrationLog()
	if len(log) == 0 {
		t.Fatal("no migration events recorded")
	}
	for _, ev := range log {
		if ev.Keys <= 0 {
			t.Errorf("event with zero keys: %+v", ev)
		}
		if ev.Source == ev.Target {
			t.Errorf("self migration: %+v", ev)
		}
		if ev.LI <= 1 {
			t.Errorf("trigger LI %.2f <= 1: %+v", ev.LI, ev)
		}
		if ev.At == 0 {
			t.Errorf("missing timestamp: %+v", ev)
		}
	}
	st := sys.Stats()
	if int64(len(log)) != st.Migrations {
		t.Errorf("log has %d events, stats count %d", len(log), st.Migrations)
	}
}

func TestServiceRateSlowsSystem(t *testing.T) {
	run := func(rate float64) time.Duration {
		start := time.Now()
		sys, err := New(Options{
			Kind:        KindBiStream,
			Joiners:     2,
			Sources:     []TupleSource{finiteSource(4000, 20)},
			ServiceRate: rate,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sys.WaitComplete(time.Minute); err != nil {
			sys.Stop()
			t.Fatalf("WaitComplete: %v", err)
		}
		sys.Stop()
		return time.Since(start)
	}
	unlimited := run(0)
	// 4000 tuples = 4000 store ops + probe ops over 4 instances at 2000
	// ops/s each: at least ~0.5s of virtual time.
	limited := run(2000)
	if limited < unlimited {
		t.Errorf("capacity emulation did not slow the run: %v vs %v", limited, unlimited)
	}
	if limited < 300*time.Millisecond {
		t.Errorf("limited run finished too fast: %v", limited)
	}
}

func TestStatsLatencySamplesExposed(t *testing.T) {
	sys, err := New(Options{
		Kind:    KindBiStream,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(1000, 10)},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	st := sys.Stats()
	// Every tuple probes the opposite side once: 1000 latency samples.
	if st.LatencySamples != 1000 {
		t.Errorf("latency samples = %d, want 1000", st.LatencySamples)
	}
}

func TestIngestedCountsTuples(t *testing.T) {
	sys, err := New(Options{
		Kind:    KindBiStream,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(500, 10)},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	if got := sys.Ingested(); got != 500 {
		t.Errorf("Ingested = %d, want 500", got)
	}
}

func TestPreProcessHook(t *testing.T) {
	// The hook rewrites every key to a constant: all pairs then share it.
	var count int64
	var mu sync.Mutex
	sys, err := New(Options{
		Kind:       KindBiStream,
		Joiners:    2,
		Sources:    []TupleSource{finiteSource(200, 10)},
		PreProcess: func(tp Tuple) Tuple { tp.Key = 42; return tp },
		OnResult: func(p JoinedPair) {
			mu.Lock()
			defer mu.Unlock()
			if p.Key() == 42 {
				count++
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	mu.Lock()
	defer mu.Unlock()
	// All 100 R tuples x 100 S tuples now share key 42.
	if count != 100*100 {
		t.Errorf("pre-processed pairs = %d, want 10000", count)
	}
}

func TestTraceWorkloadRoundTrip(t *testing.T) {
	// Generate a workload, persist it, replay it, and join it: the replay
	// must produce the same pair count as the original.
	tuples := make([]Tuple, 0, 400)
	src := finiteSource(400, 10)
	for {
		tp, ok := src()
		if !ok {
			break
		}
		tuples = append(tuples, tp)
	}
	path := t.TempDir() + "/trace.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(f, tuples); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	f.Close()

	w, err := NewTraceWorkload(path)
	if err != nil {
		t.Fatalf("NewTraceWorkload: %v", err)
	}
	sys, err := New(Options{Kind: KindBiStream, Joiners: 2, Sources: w.Sources})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	// 200 R x 200 S over 10 keys => 10 * 20 * 20 pairs.
	if got := sys.Stats().Results; got != 4000 {
		t.Errorf("replayed join results = %d, want 4000", got)
	}
}

func TestTraceWorkloadMissingFile(t *testing.T) {
	if _, err := NewTraceWorkload("/nonexistent/trace.csv"); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestDriftingWorkload(t *testing.T) {
	w := NewDriftingWorkload(DriftOptions{
		Keys: 200, Theta: 2.0, ShiftEvery: 300, Step: 50, Tuples: 2000, Seed: 5,
	})
	src := w.Sources[0]
	early := make(map[Key]int)
	late := make(map[Key]int)
	n := 0
	for {
		tp, ok := src()
		if !ok {
			break
		}
		if tp.Key >= 200 {
			t.Fatalf("key %d out of range", tp.Key)
		}
		if n < 500 {
			early[tp.Key]++
		} else if n >= 1500 {
			late[tp.Key]++
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("produced %d, want 2000", n)
	}
	hot := func(m map[Key]int) Key {
		var best Key
		bestC := -1
		for k, c := range m {
			if c > bestC {
				best, bestC = k, c
			}
		}
		return best
	}
	if hot(early) == hot(late) {
		t.Errorf("hot key did not drift: %d", hot(early))
	}
}
