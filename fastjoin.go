// Package fastjoin is a skewness-aware distributed stream join system — a
// from-scratch Go reproduction of "FastJoin: A Skewness-Aware Distributed
// Stream Join System" (IPDPS 2019).
//
// FastJoin executes hash equi-joins over two unbounded tuple streams on a
// group-parallel join-biclique topology (the BiStream model): one group of
// join instances stores stream R and probes it with S tuples, the other
// stores S and probes it with R tuples. Under key skew, hash partitioning
// concentrates load on few instances; FastJoin detects the imbalance with a
// per-instance load model (L_i = |R_i|·φ_si), selects the keys worth moving
// with the GreedyFit algorithm, and migrates them between instances at
// runtime without missing or duplicating a single join result.
//
// The package also provides the two BiStream baselines the paper compares
// against (plain hash partitioning and the ContRand hybrid), a broadcast
// baseline, window-based join semantics, and live metrics (throughput,
// processing latency, degree of load imbalance).
//
// Quick start:
//
//	sys, err := fastjoin.New(fastjoin.Options{
//		Kind:    fastjoin.KindFastJoin,
//		Joiners: 8,
//		Sources: []fastjoin.TupleSource{mySource},
//	})
//	...
//	sys.RunFor(10 * time.Second)
//	fmt.Println(sys.Stats())
package fastjoin

import (
	"context"
	"fmt"
	"time"

	"fastjoin/internal/biclique"
	"fastjoin/internal/chaos"
	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/metrics"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// Re-exported data-model types: these are the currency of the public API.
type (
	// Tuple is one element of an input stream.
	Tuple = stream.Tuple
	// Key is the join attribute.
	Key = stream.Key
	// Side identifies the stream a tuple belongs to (R or S).
	Side = stream.Side
	// JoinedPair is one join result.
	JoinedPair = stream.JoinedPair
	// Predicate optionally refines key-equality matches.
	Predicate = stream.Predicate
	// TupleSource produces the tuples of one ingestion task.
	TupleSource = biclique.TupleSource
	// Point is a timestamped metric sample.
	Point = metrics.Point
)

// The two stream sides.
const (
	R = stream.R
	S = stream.S
)

// DefaultBatchSize is the dispatcher batch capacity used when
// Options.Batching.Size is left 0 (see BatchOptions.Size).
const DefaultBatchSize = biclique.DefaultBatchSize

// Kind selects which of the paper's systems to run.
type Kind uint8

const (
	// KindFastJoin is the paper's system: hash partitioning plus dynamic
	// load balancing with the GreedyFit key selection algorithm.
	KindFastJoin Kind = iota
	// KindFastJoinSAFit is FastJoin with the simulated-annealing selector
	// (the Fig. 14 ablation).
	KindFastJoinSAFit
	// KindBiStream is the BiStream baseline: static hash partitioning, no
	// migration.
	KindBiStream
	// KindBiStreamContRand is BiStream with the ContRand hybrid routing.
	KindBiStreamContRand
	// KindBroadcast is the random-partitioning baseline: tuples stored
	// anywhere, probes broadcast everywhere.
	KindBroadcast
)

// String names the system as the paper's figures do.
func (k Kind) String() string {
	switch k {
	case KindFastJoin:
		return "FastJoin"
	case KindFastJoinSAFit:
		return "FastJoin-SAFit"
	case KindBiStream:
		return "BiStream"
	case KindBiStreamContRand:
		return "BiStream-ContRand"
	case KindBroadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// AllKinds lists every runnable system, in the paper's comparison order.
func AllKinds() []Kind {
	return []Kind{KindFastJoin, KindFastJoinSAFit, KindBiStream, KindBiStreamContRand, KindBroadcast}
}

// System is a running stream join system.
type System struct {
	kind  Kind
	sys   *biclique.System
	chaos *chaos.Injector
	trace *obs.Tracer
	obsrv *obs.Server
}

// New validates the options (Options.Validate normalizes every default),
// builds the topology for the requested system kind and starts it. When
// Options.Observe.Addr is set, the observability endpoint is bound before
// the system starts and closed by Stop.
func New(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	tracer := obs.NewTracer(opts.Observe.TraceCapacity)
	cfg := biclique.Config{
		JoinersPerSide: opts.Joiners,
		Dispatchers:    opts.Dispatchers,
		Shufflers:      opts.Shufflers,
		SubgroupSize:   opts.SubgroupSize,
		StatsInterval:  opts.StatsInterval,
		Window:         opts.Windowing.Span,
		SubWindows:     opts.Windowing.SubWindows,
		Predicate:      opts.Predicate,
		PreProcess:     opts.PreProcess,
		Sources:        opts.Sources,
		Seed:           opts.Seed,
		Engine:         engine.Config{QueueSize: opts.QueueSize},
		ServiceRate:    opts.ServiceRate,
		MatchCost:      opts.MatchCost,
		BatchSize:      opts.Batching.Size,
		BatchLinger:    opts.Batching.Linger,
		Tracer:         tracer,
	}
	switch opts.StoreKind {
	case StoreMap:
		cfg.StoreImpl = biclique.StoreMap
	default:
		cfg.StoreImpl = biclique.StoreChunked
	}
	if opts.OnResult != nil {
		cfg.EmitResults = true
		cfg.OnResult = opts.OnResult
	}

	policy := core.MonitorPolicy{
		Theta:        opts.Migration.Theta,
		Cooldown:     opts.Migration.Cooldown,
		SustainTicks: opts.Migration.SustainTicks,
	}
	split := biclique.SplitConfig{
		Threshold: opts.Migration.SplitThreshold,
		Ways:      opts.Migration.SplitWays,
	}
	switch opts.Kind {
	case KindFastJoin:
		cfg.Strategy = biclique.StrategyHash
		cfg.Split = split
		cfg.Migration = biclique.MigrationConfig{
			Enabled:      true,
			Policy:       policy,
			Selector:     core.GreedyFit,
			MinBenefit:   opts.Migration.MinBenefit,
			AbortTimeout: opts.Migration.AbortTimeout,
		}
	case KindFastJoinSAFit:
		cfg.Strategy = biclique.StrategyHash
		cfg.Split = split
		sa := core.DefaultSAConfig()
		sa.Seed = int64(opts.Seed) + 1
		cfg.Migration = biclique.MigrationConfig{
			Enabled:      true,
			Policy:       policy,
			Selector:     core.SAFitSelector(sa),
			MinBenefit:   opts.Migration.MinBenefit,
			AbortTimeout: opts.Migration.AbortTimeout,
		}
	case KindBiStream:
		cfg.Strategy = biclique.StrategyHash
	case KindBiStreamContRand:
		cfg.Strategy = biclique.StrategyContRand
	case KindBroadcast:
		cfg.Strategy = biclique.StrategyRandom
	default:
		return nil, fmt.Errorf("fastjoin: unknown system kind %v", opts.Kind)
	}

	var inj *chaos.Injector
	if opts.Chaos.Profile != ChaosNone {
		profile, err := chaos.Lookup(opts.Chaos.Profile.String())
		if err != nil {
			return nil, fmt.Errorf("fastjoin: %w", err)
		}
		inj = chaos.NewInjector(profile, opts.Chaos.Seed)
		cfg.Chaos = inj
	}

	sys, err := biclique.Start(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{kind: opts.Kind, sys: sys, chaos: inj, trace: tracer}
	if opts.Observe.Addr != "" {
		srv, err := obs.Serve(opts.Observe.Addr, (*obsSource)(s))
		if err != nil {
			sys.Stop()
			return nil, fmt.Errorf("fastjoin: observability endpoint: %w", err)
		}
		s.obsrv = srv
	}
	return s, nil
}

// Kind returns which system this is.
func (s *System) Kind() Kind { return s.kind }

// WaitComplete blocks until the (finite) sources are exhausted and all
// in-flight work has settled.
func (s *System) WaitComplete(timeout time.Duration) error {
	return s.sys.WaitComplete(timeout)
}

// Drain stops ingestion and settles in-flight work.
func (s *System) Drain(timeout time.Duration) error { return s.sys.Drain(timeout) }

// ctxPollSlice is how long the context-aware waiters block between
// context checks. Short enough that cancellation feels immediate, long
// enough that polling costs nothing.
const ctxPollSlice = 200 * time.Millisecond

// WaitCompleteCtx is WaitComplete driven by a context: it waits in short
// slices, returning ctx.Err() as soon as the context is done and nil once
// the system has settled. With neither, it waits forever — pass a context
// with a deadline to bound it.
func (s *System) WaitCompleteCtx(ctx context.Context) error {
	return pollCtx(ctx, s.sys.WaitComplete)
}

// DrainCtx is Drain driven by a context: ingestion stops immediately, and
// the settling wait is bounded by the context instead of a timeout.
func (s *System) DrainCtx(ctx context.Context) error {
	return pollCtx(ctx, s.sys.Drain)
}

func pollCtx(ctx context.Context, wait func(time.Duration) error) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A slice that ends without quiescence reports a timeout error;
		// loop and re-check the context. Any slice may return nil — done.
		if err := wait(ctxPollSlice); err == nil {
			return nil
		}
	}
}

// Stop terminates the system immediately and closes the observability
// endpoint, if one was configured.
func (s *System) Stop() {
	s.sys.Stop()
	if s.obsrv != nil {
		_ = s.obsrv.Close()
	}
}

// RunFor lets the system process for d, then drains and stops it.
func (s *System) RunFor(d time.Duration) error {
	time.Sleep(d)
	err := s.Drain(0)
	s.Stop()
	return err
}

// ThroughputTick returns results/second since the previous call.
func (s *System) ThroughputTick() float64 { return s.sys.Metrics().Results.TickRate() }

// Ingested returns the number of input tuples admitted so far.
func (s *System) Ingested() int64 { return s.sys.Ingested() }

// LISeries returns the recorded degree-of-load-imbalance samples of one
// biclique side.
func (s *System) LISeries(side Side) []Point { return s.sys.Metrics().LISeries(side) }

// LoadSeries returns one instance's recorded load history.
func (s *System) LoadSeries(side Side, instance int) []Point {
	return s.sys.Metrics().LoadSeries(side, instance)
}

// MigrationEvent describes one completed key migration.
type MigrationEvent = biclique.MigrationEvent

// MigrationLog returns the completed migrations, oldest first.
func (s *System) MigrationLog() []MigrationEvent {
	return s.sys.Metrics().MigrationLog()
}

// ChaosCounts snapshots how many faults a chaos profile has injected.
type ChaosCounts = chaos.Counts

// ChaosCounts returns the injected-fault totals when the system was
// built with a ChaosProfile, and the zero value otherwise.
func (s *System) ChaosCounts() ChaosCounts {
	if s.chaos == nil {
		return ChaosCounts{}
	}
	return s.chaos.Counts()
}

// MigrationsInFlight returns the number of migration handshakes (or
// rollbacks) that have not yet finished. Fault drills poll it to decide
// whether an apparently quiescent system still holds tuples parked in
// migration buffers.
func (s *System) MigrationsInFlight() int64 { return s.sys.MigrationsInFlight() }

// Stats is a point-in-time summary of a system's activity.
type Stats struct {
	System         string  `json:"system"`
	Results        int64   `json:"results"`
	LatencySamples int64   `json:"latency_samples"`
	LatencyMeanUs  float64 `json:"latency_mean_us"`
	LatencyP95Us   float64 `json:"latency_p95_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	StoredR        int64   `json:"stored_r"`
	StoredS        int64   `json:"stored_s"`
	Migrations     int64   `json:"migrations"`
	MigratedKeys   int64   `json:"migrated_keys"`
	MigratedTuples int64   `json:"migrated_tuples"`
	// MigrationAborts counts migrations that timed out their marker
	// handshake and rolled back (non-zero only under faults).
	MigrationAborts int64 `json:"migration_aborts,omitempty"`
	// ReplayedTuples counts tuples re-processed from migration buffers;
	// they are excluded from the latency percentiles above (their send
	// stamps are stale by the migration handshake's wall-time).
	ReplayedTuples int64 `json:"replayed_tuples,omitempty"`
	// SplitKeys is the number of currently split keys (hot keys whose
	// stores salt across several instances); KeysSplit / KeysUnsplit
	// count activations and cooldowns over the run. ResidualKeys gauges
	// cooled keys whose drain round is still open (salted shares not yet
	// expired everywhere); KeysRetired counts keys whose drain completed —
	// routing unfroze and the key left the split table entirely. All zero
	// unless Migration.SplitThreshold is set.
	SplitKeys    int64 `json:"split_keys,omitempty"`
	KeysSplit    int64 `json:"keys_split,omitempty"`
	KeysUnsplit  int64 `json:"keys_unsplit,omitempty"`
	ResidualKeys int64 `json:"residual_keys,omitempty"`
	KeysRetired  int64 `json:"keys_retired,omitempty"`
	// Heap/GC gauges (biclique.SystemMetrics.RuntimeSample): live heap at
	// the snapshot, cumulative allocation, and GC work since the system's
	// metrics were created. The arena store exists to push AllocBytes and
	// GCPauseTotalUs down; these make that visible per run.
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseTotalUs float64 `json:"gc_pause_total_us"`
}

// String renders a one-line summary.
func (st Stats) String() string {
	s := fmt.Sprintf("%s: results=%d lat(mean)=%.0fµs lat(p99)=%.0fµs stored=%d/%d migrations=%d (keys=%d tuples=%d)",
		st.System, st.Results, st.LatencyMeanUs, st.LatencyP99Us,
		st.StoredR, st.StoredS, st.Migrations, st.MigratedKeys, st.MigratedTuples)
	if st.MigrationAborts > 0 {
		s += fmt.Sprintf(" aborts=%d", st.MigrationAborts)
	}
	if st.KeysSplit > 0 {
		s += fmt.Sprintf(" splits=%d (active=%d residual=%d retired=%d)", st.KeysSplit, st.SplitKeys, st.ResidualKeys, st.KeysRetired)
	}
	return s
}

// Stats snapshots the system's counters.
func (s *System) Stats() Stats {
	m := s.sys.Metrics()
	lat := m.Latency.Snapshot()
	rt := m.RuntimeSample()
	return Stats{
		System:          s.kind.String(),
		Results:         m.Results.Count(),
		LatencySamples:  lat.Count,
		LatencyMeanUs:   lat.Mean / 1e3,
		LatencyP95Us:    float64(lat.P95) / 1e3,
		LatencyP99Us:    float64(lat.P99) / 1e3,
		StoredR:         m.StoredR.Value(),
		StoredS:         m.StoredS.Value(),
		Migrations:      m.Migrations.Value(),
		MigratedKeys:    m.MigratedKeys.Value(),
		MigratedTuples:  m.MigratedTuples.Value(),
		MigrationAborts: m.MigrationAborts.Value(),
		ReplayedTuples:  m.ReplayedTuples.Count(),
		SplitKeys:       m.SplitKeys.Value(),
		KeysSplit:       m.KeysSplit.Value(),
		KeysUnsplit:     m.KeysUnsplit.Value(),
		ResidualKeys:    m.ResidualKeys.Value(),
		KeysRetired:     m.KeysRetired.Value(),
		HeapAllocBytes:  rt.HeapAllocBytes,
		AllocBytes:      rt.AllocBytes,
		GCCycles:        rt.GCCycles,
		GCPauseTotalUs:  float64(rt.GCPauseTotal) / 1e3,
	}
}
