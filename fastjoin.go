// Package fastjoin is a skewness-aware distributed stream join system — a
// from-scratch Go reproduction of "FastJoin: A Skewness-Aware Distributed
// Stream Join System" (IPDPS 2019).
//
// FastJoin executes hash equi-joins over two unbounded tuple streams on a
// group-parallel join-biclique topology (the BiStream model): one group of
// join instances stores stream R and probes it with S tuples, the other
// stores S and probes it with R tuples. Under key skew, hash partitioning
// concentrates load on few instances; FastJoin detects the imbalance with a
// per-instance load model (L_i = |R_i|·φ_si), selects the keys worth moving
// with the GreedyFit algorithm, and migrates them between instances at
// runtime without missing or duplicating a single join result.
//
// The package also provides the two BiStream baselines the paper compares
// against (plain hash partitioning and the ContRand hybrid), a broadcast
// baseline, window-based join semantics, and live metrics (throughput,
// processing latency, degree of load imbalance).
//
// Quick start:
//
//	sys, err := fastjoin.New(fastjoin.Options{
//		Kind:    fastjoin.KindFastJoin,
//		Joiners: 8,
//		Sources: []fastjoin.TupleSource{mySource},
//	})
//	...
//	sys.RunFor(10 * time.Second)
//	fmt.Println(sys.Stats())
package fastjoin

import (
	"fmt"
	"time"

	"fastjoin/internal/biclique"
	"fastjoin/internal/chaos"
	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/metrics"
	"fastjoin/internal/stream"
)

// Re-exported data-model types: these are the currency of the public API.
type (
	// Tuple is one element of an input stream.
	Tuple = stream.Tuple
	// Key is the join attribute.
	Key = stream.Key
	// Side identifies the stream a tuple belongs to (R or S).
	Side = stream.Side
	// JoinedPair is one join result.
	JoinedPair = stream.JoinedPair
	// Predicate optionally refines key-equality matches.
	Predicate = stream.Predicate
	// TupleSource produces the tuples of one ingestion task.
	TupleSource = biclique.TupleSource
	// Point is a timestamped metric sample.
	Point = metrics.Point
)

// The two stream sides.
const (
	R = stream.R
	S = stream.S
)

// DefaultBatchSize is the dispatcher batch capacity used when
// Options.BatchSize is left 0 (see Options.BatchSize).
const DefaultBatchSize = biclique.DefaultBatchSize

// Kind selects which of the paper's systems to run.
type Kind uint8

const (
	// KindFastJoin is the paper's system: hash partitioning plus dynamic
	// load balancing with the GreedyFit key selection algorithm.
	KindFastJoin Kind = iota
	// KindFastJoinSAFit is FastJoin with the simulated-annealing selector
	// (the Fig. 14 ablation).
	KindFastJoinSAFit
	// KindBiStream is the BiStream baseline: static hash partitioning, no
	// migration.
	KindBiStream
	// KindBiStreamContRand is BiStream with the ContRand hybrid routing.
	KindBiStreamContRand
	// KindBroadcast is the random-partitioning baseline: tuples stored
	// anywhere, probes broadcast everywhere.
	KindBroadcast
)

// String names the system as the paper's figures do.
func (k Kind) String() string {
	switch k {
	case KindFastJoin:
		return "FastJoin"
	case KindFastJoinSAFit:
		return "FastJoin-SAFit"
	case KindBiStream:
		return "BiStream"
	case KindBiStreamContRand:
		return "BiStream-ContRand"
	case KindBroadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// AllKinds lists every runnable system, in the paper's comparison order.
func AllKinds() []Kind {
	return []Kind{KindFastJoin, KindFastJoinSAFit, KindBiStream, KindBiStreamContRand, KindBroadcast}
}

// Options configures a join system. Zero values get sensible defaults.
type Options struct {
	// Kind selects the system (default KindFastJoin).
	Kind Kind
	// Joiners is the number of join instances per biclique side
	// (default 4; the paper's cluster default is 48).
	Joiners int
	// Dispatchers and Shufflers size the dispatching component.
	Dispatchers int
	Shufflers   int
	// Theta is the load imbalance threshold Θ (default 2.2, the paper's).
	Theta float64
	// Cooldown is the minimum time between migrations (default 1s).
	Cooldown time.Duration
	// SustainTicks is how many consecutive monitor evaluations must see
	// LI > Theta before a migration triggers (default 3); 1 disables the
	// hysteresis.
	SustainTicks int
	// StatsInterval is the load-report/monitor period (default 100ms).
	StatsInterval time.Duration
	// MinBenefit is GreedyFit's θ_gap.
	MinBenefit int64
	// SubgroupSize is ContRand's subgroup size (default 2).
	SubgroupSize int
	// Window enables window-based join with the given span (0 = full
	// history); SubWindows is the sub-window count (default 8).
	Window     time.Duration
	SubWindows int
	// Predicate optionally refines key-equality matches.
	Predicate Predicate
	// PreProcess, when set, rewrites every tuple before dispatching (the
	// pre-processing unit's user-defined function). Must be safe for
	// concurrent use.
	PreProcess func(Tuple) Tuple
	// OnResult, when set, receives every joined pair (result emission
	// mode). When nil the system only counts pairs — the high-throughput
	// mode benchmarks use.
	OnResult func(JoinedPair)
	// Sources feed the system; one ingestion task per source. Required.
	Sources []TupleSource
	// QueueSize bounds each task's input queue (backpressure; default 1024).
	QueueSize int
	// BatchSize is the dispatcher's per-(stream, target) batch capacity:
	// up to BatchSize routed tuples travel as one message through the data
	// plane. 0 means the default (biclique.DefaultBatchSize, currently 32);
	// 1 disables batching (one message per tuple copy, the A/B baseline).
	BatchSize int
	// BatchLinger bounds how long a partially filled batch may wait in a
	// busy dispatcher before a tick flushes it (default 2ms; only
	// meaningful when batching is enabled).
	BatchLinger time.Duration
	// ServiceRate, when positive, emulates per-node compute capacity:
	// each join instance is limited to ServiceRate virtual ops/second
	// (1 op per store, 1 + MatchCost per scanned tuple per probe). The
	// benchmark harness uses it so cluster-scale behaviour reproduces on
	// small hosts; 0 disables the emulation.
	ServiceRate float64
	// MatchCost is the virtual op cost per scanned stored tuple
	// (default 0.01 when ServiceRate is set).
	MatchCost float64
	// Seed derandomizes placement.
	Seed uint64
	// AbortTimeout bounds a migration's marker handshake: if the forward
	// markers have not all arrived after this long (measured in
	// StatsInterval ticks), the migration aborts and rolls back to the
	// pre-migration routing without losing or duplicating results.
	// 0 disables aborts (a stuck handshake then relies on re-broadcast
	// alone). Only meaningful for migration-enabled kinds.
	AbortTimeout time.Duration
	// ChaosProfile, when non-empty, names a chaos fault-injection profile
	// (see chaos.Names: "none", "droponly", "delayonly", "duponly",
	// "mixed", "abortstorm") applied to the engine's delivery edges.
	// All fault decisions are drawn deterministically from ChaosSeed, so
	// a run replays exactly. For testing and fault drills only.
	ChaosProfile string
	// ChaosSeed seeds the chaos injector's per-lane random streams.
	ChaosSeed int64
	// Store selects the join instances' window-store implementation:
	// "" or "chunked" is the arena store (the default), "map" the
	// reference map[Key][]Tuple layout kept for A/B benchmarking and
	// differential testing.
	Store string
}

// System is a running stream join system.
type System struct {
	kind  Kind
	sys   *biclique.System
	chaos *chaos.Injector
}

// New validates the options, builds the topology for the requested system
// kind and starts it.
func New(opts Options) (*System, error) {
	cfg := biclique.Config{
		JoinersPerSide: opts.Joiners,
		Dispatchers:    opts.Dispatchers,
		Shufflers:      opts.Shufflers,
		SubgroupSize:   opts.SubgroupSize,
		StatsInterval:  opts.StatsInterval,
		Window:         opts.Window,
		SubWindows:     opts.SubWindows,
		Predicate:      opts.Predicate,
		PreProcess:     opts.PreProcess,
		Sources:        opts.Sources,
		Seed:           opts.Seed,
		Engine:         engine.Config{QueueSize: opts.QueueSize},
		ServiceRate:    opts.ServiceRate,
		MatchCost:      opts.MatchCost,
		BatchSize:      opts.BatchSize,
		BatchLinger:    opts.BatchLinger,
	}
	if cfg.JoinersPerSide == 0 {
		cfg.JoinersPerSide = 4
	}
	switch opts.Store {
	case "", "chunked":
		cfg.StoreImpl = biclique.StoreChunked
	case "map":
		cfg.StoreImpl = biclique.StoreMap
	default:
		return nil, fmt.Errorf("fastjoin: unknown store implementation %q (want \"chunked\" or \"map\")", opts.Store)
	}
	if opts.OnResult != nil {
		cfg.EmitResults = true
		cfg.OnResult = opts.OnResult
	}

	policy := core.MonitorPolicy{
		Theta:        opts.Theta,
		Cooldown:     opts.Cooldown,
		SustainTicks: opts.SustainTicks,
	}
	switch opts.Kind {
	case KindFastJoin:
		cfg.Strategy = biclique.StrategyHash
		cfg.Migration = biclique.MigrationConfig{
			Enabled:      true,
			Policy:       policy,
			Selector:     core.GreedyFit,
			MinBenefit:   opts.MinBenefit,
			AbortTimeout: opts.AbortTimeout,
		}
	case KindFastJoinSAFit:
		cfg.Strategy = biclique.StrategyHash
		sa := core.DefaultSAConfig()
		sa.Seed = int64(opts.Seed) + 1
		cfg.Migration = biclique.MigrationConfig{
			Enabled:      true,
			Policy:       policy,
			Selector:     core.SAFitSelector(sa),
			MinBenefit:   opts.MinBenefit,
			AbortTimeout: opts.AbortTimeout,
		}
	case KindBiStream:
		cfg.Strategy = biclique.StrategyHash
	case KindBiStreamContRand:
		cfg.Strategy = biclique.StrategyContRand
	case KindBroadcast:
		cfg.Strategy = biclique.StrategyRandom
	default:
		return nil, fmt.Errorf("fastjoin: unknown system kind %v", opts.Kind)
	}

	var inj *chaos.Injector
	if opts.ChaosProfile != "" {
		profile, err := chaos.Lookup(opts.ChaosProfile)
		if err != nil {
			return nil, fmt.Errorf("fastjoin: %w", err)
		}
		inj = chaos.NewInjector(profile, opts.ChaosSeed)
		cfg.Chaos = inj
	}

	sys, err := biclique.Start(cfg)
	if err != nil {
		return nil, err
	}
	return &System{kind: opts.Kind, sys: sys, chaos: inj}, nil
}

// Kind returns which system this is.
func (s *System) Kind() Kind { return s.kind }

// WaitComplete blocks until the (finite) sources are exhausted and all
// in-flight work has settled.
func (s *System) WaitComplete(timeout time.Duration) error {
	return s.sys.WaitComplete(timeout)
}

// Drain stops ingestion and settles in-flight work.
func (s *System) Drain(timeout time.Duration) error { return s.sys.Drain(timeout) }

// Stop terminates the system immediately.
func (s *System) Stop() { s.sys.Stop() }

// RunFor lets the system process for d, then drains and stops it.
func (s *System) RunFor(d time.Duration) error { return s.sys.RunFor(d) }

// ThroughputTick returns results/second since the previous call.
func (s *System) ThroughputTick() float64 { return s.sys.Metrics().Results.TickRate() }

// Ingested returns the number of input tuples admitted so far.
func (s *System) Ingested() int64 { return s.sys.Ingested() }

// LISeries returns the recorded degree-of-load-imbalance samples of one
// biclique side.
func (s *System) LISeries(side Side) []Point { return s.sys.Metrics().LISeries(side) }

// LoadSeries returns one instance's recorded load history.
func (s *System) LoadSeries(side Side, instance int) []Point {
	return s.sys.Metrics().LoadSeries(side, instance)
}

// MigrationEvent describes one completed key migration.
type MigrationEvent = biclique.MigrationEvent

// MigrationLog returns the completed migrations, oldest first.
func (s *System) MigrationLog() []MigrationEvent {
	return s.sys.Metrics().MigrationLog()
}

// ChaosCounts snapshots how many faults a chaos profile has injected.
type ChaosCounts = chaos.Counts

// ChaosCounts returns the injected-fault totals when the system was
// built with a ChaosProfile, and the zero value otherwise.
func (s *System) ChaosCounts() ChaosCounts {
	if s.chaos == nil {
		return ChaosCounts{}
	}
	return s.chaos.Counts()
}

// MigrationsInFlight returns the number of migration handshakes (or
// rollbacks) that have not yet finished. Fault drills poll it to decide
// whether an apparently quiescent system still holds tuples parked in
// migration buffers.
func (s *System) MigrationsInFlight() int64 { return s.sys.MigrationsInFlight() }

// Stats is a point-in-time summary of a system's activity.
type Stats struct {
	System         string  `json:"system"`
	Results        int64   `json:"results"`
	LatencySamples int64   `json:"latency_samples"`
	LatencyMeanUs  float64 `json:"latency_mean_us"`
	LatencyP95Us   float64 `json:"latency_p95_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	StoredR        int64   `json:"stored_r"`
	StoredS        int64   `json:"stored_s"`
	Migrations     int64   `json:"migrations"`
	MigratedKeys   int64   `json:"migrated_keys"`
	MigratedTuples int64   `json:"migrated_tuples"`
	// MigrationAborts counts migrations that timed out their marker
	// handshake and rolled back (non-zero only under faults).
	MigrationAborts int64 `json:"migration_aborts,omitempty"`
	// ReplayedTuples counts tuples re-processed from migration buffers;
	// they are excluded from the latency percentiles above (their send
	// stamps are stale by the migration handshake's wall-time).
	ReplayedTuples int64 `json:"replayed_tuples,omitempty"`
	// Heap/GC gauges (biclique.SystemMetrics.RuntimeSample): live heap at
	// the snapshot, cumulative allocation, and GC work since the system's
	// metrics were created. The arena store exists to push AllocBytes and
	// GCPauseTotalUs down; these make that visible per run.
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseTotalUs float64 `json:"gc_pause_total_us"`
}

// String renders a one-line summary.
func (st Stats) String() string {
	s := fmt.Sprintf("%s: results=%d lat(mean)=%.0fµs lat(p99)=%.0fµs stored=%d/%d migrations=%d (keys=%d tuples=%d)",
		st.System, st.Results, st.LatencyMeanUs, st.LatencyP99Us,
		st.StoredR, st.StoredS, st.Migrations, st.MigratedKeys, st.MigratedTuples)
	if st.MigrationAborts > 0 {
		s += fmt.Sprintf(" aborts=%d", st.MigrationAborts)
	}
	return s
}

// Stats snapshots the system's counters.
func (s *System) Stats() Stats {
	m := s.sys.Metrics()
	lat := m.Latency.Snapshot()
	rt := m.RuntimeSample()
	return Stats{
		System:          s.kind.String(),
		Results:         m.Results.Count(),
		LatencySamples:  lat.Count,
		LatencyMeanUs:   lat.Mean / 1e3,
		LatencyP95Us:    float64(lat.P95) / 1e3,
		LatencyP99Us:    float64(lat.P99) / 1e3,
		StoredR:         m.StoredR.Value(),
		StoredS:         m.StoredS.Value(),
		Migrations:      m.Migrations.Value(),
		MigratedKeys:    m.MigratedKeys.Value(),
		MigratedTuples:  m.MigratedTuples.Value(),
		MigrationAborts: m.MigrationAborts.Value(),
		ReplayedTuples:  m.ReplayedTuples.Count(),
		HeapAllocBytes:  rt.HeapAllocBytes,
		AllocBytes:      rt.AllocBytes,
		GCCycles:        rt.GCCycles,
		GCPauseTotalUs:  float64(rt.GCPauseTotal) / 1e3,
	}
}
