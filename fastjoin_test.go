package fastjoin

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fastjoin/internal/stream"
)

// finiteSource emits n tuples alternating sides over k keys.
func finiteSource(n, k int) TupleSource {
	i := 0
	var rSeq, sSeq uint64
	return func() (Tuple, bool) {
		if i >= n {
			return Tuple{}, false
		}
		// Key derives from the pair index so both sides share the key set.
		t := Tuple{Key: Key((i / 2) % k)}
		if i%2 == 0 {
			t.Side, t.Seq = R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = S, sSeq
			sSeq++
		}
		i++
		return t, true
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindFastJoin:         "FastJoin",
		KindFastJoinSAFit:    "FastJoin-SAFit",
		KindBiStream:         "BiStream",
		KindBiStreamContRand: "BiStream-ContRand",
		KindBroadcast:        "Broadcast",
		Kind(42):             "Kind(42)",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, name)
		}
	}
	if len(AllKinds()) != 5 {
		t.Errorf("AllKinds = %v", AllKinds())
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	_, err := New(Options{Kind: Kind(99), Sources: []TupleSource{finiteSource(1, 1)}})
	if err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestNewRejectsMissingSources(t *testing.T) {
	if _, err := New(Options{Kind: KindFastJoin}); err == nil {
		t.Fatal("expected error without sources")
	}
}

// runKind pushes a small finite workload through one system kind and
// returns the final stats.
func runKind(t *testing.T, kind Kind) Stats {
	t.Helper()
	sys, err := New(Options{
		Kind:          kind,
		Joiners:       3,
		Sources:       []TupleSource{finiteSource(2000, 40)},
		StatsInterval: 20 * time.Millisecond,
		Theta:         1.5,
		Cooldown:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	if err := sys.WaitComplete(20 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	if sys.Kind() != kind {
		t.Errorf("Kind = %v, want %v", sys.Kind(), kind)
	}
	return sys.Stats()
}

func TestAllKindsProduceIdenticalResultCounts(t *testing.T) {
	// Every system must compute the same join; with 1000 R and 1000 S
	// tuples over 40 keys (25 each), the pair count is 40 * 25 * 25.
	const want = 40 * 25 * 25
	for _, kind := range AllKinds() {
		st := runKind(t, kind)
		if st.Results != want {
			t.Errorf("%v produced %d results, want %d", kind, st.Results, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	st := runKind(t, KindBiStream)
	s := st.String()
	if !strings.Contains(s, "BiStream") || !strings.Contains(s, "results=") {
		t.Errorf("Stats.String() = %q", s)
	}
	if st.LatencyMeanUs <= 0 {
		t.Errorf("latency mean = %f, want > 0", st.LatencyMeanUs)
	}
	if st.StoredR != 1000 || st.StoredS != 1000 {
		t.Errorf("stored = %d/%d, want 1000/1000", st.StoredR, st.StoredS)
	}
}

func TestOnResultDelivery(t *testing.T) {
	var mu sync.Mutex
	count := 0
	sys, err := New(Options{
		Kind:    KindBiStream,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(200, 10)},
		OnResult: func(JoinedPair) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(20 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	mu.Lock()
	defer mu.Unlock()
	if want := 10 * 10 * 10; count != want {
		t.Errorf("OnResult called %d times, want %d", count, want)
	}
}

func TestLISeriesExposed(t *testing.T) {
	sys, err := New(Options{
		Kind:          KindBiStream,
		Joiners:       3,
		Sources:       []TupleSource{finiteSource(5000, 6)},
		StatsInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(20 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	sys.Stop()
	if len(sys.LISeries(R))+len(sys.LISeries(S)) == 0 {
		t.Error("no LI samples exposed")
	}
	if sys.LoadSeries(R, 0) == nil && sys.LoadSeries(S, 0) == nil {
		t.Error("no load series exposed")
	}
}

func TestThroughputTick(t *testing.T) {
	sys, err := New(Options{
		Kind:    KindBiStream,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(2000, 10)},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(20 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	if rate := sys.ThroughputTick(); rate <= 0 {
		t.Errorf("throughput = %f, want > 0", rate)
	}
}

func TestFastJoinMigratesUnderSkew(t *testing.T) {
	// One scorching key out of 200: FastJoin should fire migrations.
	i := 0
	var rSeq, sSeq uint64
	src := func() (Tuple, bool) {
		if i >= 30000 {
			return Tuple{}, false
		}
		key := Key(i % 200)
		if i%3 != 0 {
			key = 7 // hot key
		}
		t := Tuple{Key: key}
		if i%2 == 0 {
			t.Side, t.Seq = R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = S, sSeq
			sSeq++
		}
		i++
		return t, true
	}
	sys, err := New(Options{
		Kind:          KindFastJoin,
		Joiners:       4,
		Sources:       []TupleSource{src},
		StatsInterval: 15 * time.Millisecond,
		Theta:         1.2,
		Cooldown:      25 * time.Millisecond,
		Predicate:     func(r, s Tuple) bool { return (r.Seq+s.Seq)%64 == 0 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	st := sys.Stats()
	if st.Migrations == 0 {
		t.Errorf("FastJoin never migrated under skew: %+v", st)
	}
}

func TestFastJoinSplitsMegaKey(t *testing.T) {
	// One mega-key takes two thirds of all traffic: migrating it whole
	// cannot help, so with SplitThreshold set the facade must split it
	// and report that through Stats.
	i := 0
	var rSeq, sSeq uint64
	src := func() (Tuple, bool) {
		if i >= 20000 {
			return Tuple{}, false
		}
		key := Key(i % 200)
		if i%3 != 0 {
			key = 7
		}
		t := Tuple{Key: key}
		if i%2 == 0 {
			t.Side, t.Seq = R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = S, sSeq
			sSeq++
		}
		i++
		return t, true
	}
	sys, err := New(Options{
		Kind:          KindFastJoin,
		Joiners:       4,
		Sources:       []TupleSource{src},
		StatsInterval: 15 * time.Millisecond,
		Migration:     MigrationOptions{SplitThreshold: 0.3, SplitWays: 2},
		Predicate:     func(r, s Tuple) bool { return (r.Seq+s.Seq)%64 == 0 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	st := sys.Stats()
	if st.KeysSplit == 0 {
		t.Errorf("mega-key never split: %+v", st)
	}
	if st.SplitKeys == 0 {
		t.Errorf("split gauge zero while the mega-key stayed hot: %+v", st)
	}
}

func TestWindowedOption(t *testing.T) {
	sys, err := New(Options{
		Kind:          KindBiStream,
		Joiners:       2,
		Window:        50 * time.Millisecond,
		SubWindows:    4,
		StatsInterval: 10 * time.Millisecond,
		Sources:       []TupleSource{finiteSource(500, 5)},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(20 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	// Wait beyond the window so expiry ticks run.
	time.Sleep(150 * time.Millisecond)
	sys.Stop()
	st := sys.Stats()
	if st.StoredR == 250 && st.StoredS == 250 {
		t.Errorf("windowed run never expired state: %+v", st)
	}
}

func TestRideHailingWorkloadSources(t *testing.T) {
	w := NewRideHailingWorkload(RideHailingOptions{Cells: 400, Tuples: 100, Seed: 3})
	if len(w.Sources) != 1 || w.Description == "" {
		t.Fatalf("workload = %+v", w)
	}
	var rc, sc int
	src := w.Sources[0]
	for {
		tup, ok := src()
		if !ok {
			break
		}
		if tup.Side == R {
			rc++
		} else {
			sc++
		}
		if tup.Key >= 400+20 { // grid may round up one row
			t.Fatalf("key %d out of range", tup.Key)
		}
	}
	if rc+sc != 100 {
		t.Errorf("produced %d tuples, want 100", rc+sc)
	}
	if sc <= rc {
		t.Errorf("tracks (%d) should outnumber orders (%d)", sc, rc)
	}
}

func TestAdClicksWorkloadSources(t *testing.T) {
	w := NewAdClicksWorkload(AdClicksOptions{Ads: 100, Tuples: 210, Seed: 5})
	var q, c int
	src := w.Sources[0]
	for {
		tup, ok := src()
		if !ok {
			break
		}
		if tup.Side == R {
			q++
		} else {
			c++
		}
	}
	if q+c != 210 {
		t.Fatalf("produced %d, want 210", q+c)
	}
	if q <= c {
		t.Errorf("queries (%d) should outnumber clicks (%d)", q, c)
	}
}

func TestZipfWorkloadGroups(t *testing.T) {
	w := NewZipfWorkload(ZipfOptions{Keys: 50, ThetaR: 2.0, ThetaS: 0, Tuples: 2000, Seed: 9})
	counts := make(map[Key]int)
	src := w.Sources[0]
	n := 0
	for {
		tup, ok := src()
		if !ok {
			break
		}
		n++
		if tup.Side == R {
			counts[tup.Key]++
		}
	}
	if n != 2000 {
		t.Fatalf("produced %d, want 2000", n)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// theta=2 over 50 keys: the hottest key dominates.
	if max < 300 {
		t.Errorf("hottest R key has %d/1000, want heavy skew", max)
	}
}

func TestZipfWorkloadRateLimit(t *testing.T) {
	w := NewZipfWorkload(ZipfOptions{Keys: 10, Tuples: 50, Rate: 1000, Seed: 1})
	src := w.Sources[0]
	start := time.Now()
	for {
		if _, ok := src(); !ok {
			break
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("50 tuples at 1000/s took %v, want >= ~50ms", elapsed)
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 4: 2, 10: 3, 100: 10, 10000: 100}
	for n, want := range cases {
		if got := isqrt(n); got != want {
			t.Errorf("isqrt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSideReExports(t *testing.T) {
	if R != stream.R || S != stream.S {
		t.Error("side re-exports wrong")
	}
}

func TestChaosProfileOption(t *testing.T) {
	if _, err := New(Options{ChaosProfile: "bogus", Sources: []TupleSource{finiteSource(1, 1)}}); err == nil {
		t.Fatal("unknown chaos profile did not error")
	}

	// Under the mixed fault profile the join must still be exact. The
	// workload must outlast several stats intervals: the profile can only
	// attack control traffic (reports, commands, markers), which exists
	// only while the system is still running — the batched data plane
	// finishes small workloads before the first report otherwise.
	const want = 40 * 250 * 250
	sys, err := New(Options{
		Kind:          KindFastJoin,
		Joiners:       3,
		Sources:       []TupleSource{finiteSource(20000, 40)},
		StatsInterval: 10 * time.Millisecond,
		Theta:         1.2,
		Cooldown:      30 * time.Millisecond,
		AbortTimeout:  150 * time.Millisecond,
		ChaosProfile:  "mixed",
		ChaosSeed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The engine can settle while tuples sit parked in migration buffers
	// awaiting a tick-driven retransmit; re-wait until no migration is in
	// flight at a settled instant.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if err := sys.WaitComplete(time.Until(deadline)); err != nil {
			sys.Stop()
			t.Fatalf("WaitComplete: %v", err)
		}
		if sys.MigrationsInFlight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			sys.Stop()
			t.Fatal("migrations never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sys.Stop()

	if st := sys.Stats(); st.Results != want {
		t.Errorf("results under chaos = %d, want %d", st.Results, want)
	}
	if c := sys.ChaosCounts(); c.Dropped+c.Duplicated+c.Delayed == 0 {
		t.Errorf("mixed profile injected nothing: %+v", c)
	}
}
