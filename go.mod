module fastjoin

go 1.22
