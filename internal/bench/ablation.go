package bench

import (
	"fmt"
	"time"

	"fastjoin"
)

// Ablation is an extra (non-paper) experiment exercising FastJoin's design
// choices one at a time on the default skewed workload: the monitor
// hysteresis, the migration cooldown, and GreedyFit's θ_gap. It quantifies
// how much each guard contributes beyond the paper's base algorithm.
func Ablation() *Experiment {
	return &Experiment{
		ID:    "ablation",
		Title: "FastJoin design-choice ablations (hysteresis, cooldown, θ_gap)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			variants := []struct {
				name   string
				mutate func(*fastjoin.Options)
			}{
				{"default", func(*fastjoin.Options) {}},
				{"no-hysteresis", func(o *fastjoin.Options) { o.Migration.SustainTicks = 1 }},
				{"cooldown-100ms", func(o *fastjoin.Options) { o.Migration.Cooldown = 100 * time.Millisecond }},
				{"cooldown-2s", func(o *fastjoin.Options) { o.Migration.Cooldown = 2 * time.Second }},
				{"theta-gap-10k", func(o *fastjoin.Options) { o.Migration.MinBenefit = 10_000 }},
				{"no-migration", func(o *fastjoin.Options) { o.Kind = fastjoin.KindBiStream }},
			}
			rep := &Report{
				ID:      "ablation",
				Title:   "FastJoin variants on the skewed ride-hailing workload (timed, saturated)",
				XLabel:  "variant",
				Columns: []string{"throughput", "latency_mean_us", "migrations", "steady_LI"},
			}
			for _, v := range variants {
				opts := sysOptions(fastjoin.KindFastJoin, p, p.Joiners, rideHailingSources(p, 0))
				opts.Windowing.Span = timedWindow
				v.mutate(&opts)
				res, err := runTimed(opts.Kind, opts, p.Duration, p.SampleEvery)
				if err != nil {
					return nil, fmt.Errorf("ablation %s: %w", v.name, err)
				}
				rep.AddRow(v.name,
					res.MeanThroughput(),
					res.MeanLatencyUs(),
					float64(res.Migrations),
					meanTail(res.LI, 0.5),
				)
			}
			rep.AddNote("hysteresis and cooldown trade migration responsiveness against churn; θ_gap filters keys whose benefit does not pay for the move")
			return []*Report{rep}, nil
		},
	}
}
