package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fastjoin"
	"fastjoin/internal/workload"
)

// Experiment regenerates one (or several closely related) paper figures.
type Experiment struct {
	// ID is the canonical identifier ("fig3").
	ID string
	// Aliases are other figure ids this experiment also produces (an
	// experiment that compares throughput and latency in one run covers
	// two figures).
	Aliases []string
	// Title describes the experiment.
	Title string
	// Run executes the experiment and returns its reports.
	Run func(p Params) ([]*Report, error)
}

// Covers reports whether the experiment produces the given figure id.
func (e *Experiment) Covers(id string) bool {
	if e.ID == id {
		return true
	}
	for _, a := range e.Aliases {
		if a == id {
			return true
		}
	}
	return false
}

// All returns every experiment in figure order.
func All() []*Experiment {
	return []*Experiment{
		expFig1ab(),
		expFig1cd(),
		expFig3_4_11(),
		expFig5_6(),
		expFig7_8(),
		expFig9_10(),
		expFig12_13(),
		expFig14(),
		expBatch(),
		expStore(),
		expSplit(),
		Ablation(),
	}
}

// Find returns the experiment covering the figure id, or nil.
func Find(id string) *Experiment {
	for _, e := range All() {
		if e.Covers(id) {
			return e
		}
	}
	return nil
}

// calibrationTime is the warm-up the offered-rate calibration skips before
// its 2-second steady measurement: at least one full window plus slack.
func calibrationTime(p Params) time.Duration {
	d := timedWindow + 500*time.Millisecond
	if p.Quick {
		d = timedWindow
	}
	return d
}

// timedWindow is the join window used by the timed experiments
// (Figs. 1cd/3/4/11): it keeps the per-probe work stationary so the
// measured series compare steady states rather than the unbounded growth
// of a full-history store. The batch sweeps run full-history.
const timedWindow = 2 * time.Second

// rideHailingSources builds the default (DiDi-style) workload with an
// optional tuple budget (0 = unbounded).
func rideHailingSources(p Params, budget int) []fastjoin.TupleSource {
	return rideHailingSourcesRate(p, budget, 0)
}

// rideHailingSourcesRate is rideHailingSources with a paced ingest rate.
func rideHailingSourcesRate(p Params, budget int, rate float64) []fastjoin.TupleSource {
	w := fastjoin.NewRideHailingWorkload(fastjoin.RideHailingOptions{
		Cells:    p.Keys,
		Tuples:   budget,
		Rate:     rate,
		Parallel: 3,
		Seed:     p.Seed,
	})
	return w.Sources
}

// ---------------------------------------------------------------- fig 1ab

func expFig1ab() *Experiment {
	return &Experiment{
		ID:      "fig1ab",
		Aliases: []string{"fig1a", "fig1b"},
		Title:   "Key-frequency skew of the ride-hailing streams (paper Fig. 1a/1b)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			cfg := workload.DefaultRideHailingConfig()
			side := isqrtInt(p.Keys)
			cfg.GridWidth, cfg.GridHeight = side, (p.Keys+side-1)/side
			cfg.Seed = p.Seed
			rh := workload.NewRideHailing(cfg)

			samples := p.TupleBudget
			rep := &Report{
				ID:      "fig1ab",
				Title:   "Skew of orders (R) and taxi tracks (S); paper: 20%/24% of locations hold 80%",
				XLabel:  "stream",
				Columns: []string{"keys_for_80%_mass(%)", "top_20%_keys_share(%)", "tuples_per_key(c)"},
			}
			for _, sc := range []struct {
				name string
				src  *workload.Source
			}{{"orders(R)", rh.R}, {"tracks(S)", rh.S}} {
				d := workload.NewDistribution()
				for i := 0; i < samples; i++ {
					d.Observe(sc.src.Next().Key)
				}
				rep.AddRow(sc.name,
					d.KeysForMass(0.8)*100,
					d.TopShare(0.2)*100,
					d.MeanTuplesPerKey(),
				)
			}
			rep.AddNote("calibrated zipf exponents: orders θ=%.3f, tracks θ=%.3f", rh.OrderTheta, rh.TrackTheta)
			rep.AddNote("paper reports ~20%% of locations holding 80%% of orders and ~24%% for tracks")
			return []*Report{rep}, nil
		},
	}
}

// ---------------------------------------------------------------- fig 1cd

func expFig1cd() *Experiment {
	return &Experiment{
		ID:      "fig1cd",
		Aliases: []string{"fig1c", "fig1d"},
		Title:   "Load divergence and throughput decay under plain hash partitioning (paper Fig. 1c/1d)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			calOpts := sysOptions(fastjoin.KindBiStream, p, p.Joiners, rideHailingSources(p, 0))
			calOpts.Windowing.Span = timedWindow
			rate, err := calibrateOfferedRate(calOpts, calibrationTime(p))
			if err != nil {
				return nil, err
			}
			opts := sysOptions(fastjoin.KindBiStream, p, p.Joiners, rideHailingSourcesRate(p, 0, rate))
			opts.Windowing.Span = timedWindow
			res, err := runTimed(fastjoin.KindBiStream, opts, p.Duration, p.SampleEvery)
			if err != nil {
				return nil, err
			}

			// Fig 1c: per-instance load over time (first 8 instances).
			n := len(res.Loads)
			if n > 8 {
				n = 8
			}
			loadRep := &Report{
				ID:     "fig1cd",
				Title:  "Fig 1c: per-instance load L_i = |R_i|*φ_si over time (BiStream, R side)",
				XLabel: "sample#",
			}
			maxLen := 0
			for i := 0; i < n; i++ {
				loadRep.Columns = append(loadRep.Columns, fmt.Sprintf("I%d", i))
				if len(res.Loads[i]) > maxLen {
					maxLen = len(res.Loads[i])
				}
			}
			for s := 0; s < maxLen; s++ {
				cells := make([]float64, n)
				for i := 0; i < n; i++ {
					if s < len(res.Loads[i]) {
						cells[i] = res.Loads[i][s].Value
					}
				}
				loadRep.AddRow(fmt.Sprintf("%d", s), cells...)
			}
			loadRep.AddNote("loads diverge over time: hash partitioning concentrates hot keys")

			thrRep := &Report{
				ID:      "fig1cd",
				Title:   "Fig 1d: BiStream throughput over time under the skewed workload",
				XLabel:  "t",
				Columns: []string{"results/s"},
			}
			for _, s := range res.Samples {
				thrRep.AddRow(s.At.String(), s.Throughput)
			}
			return []*Report{loadRep, thrRep}, nil
		},
	}
}

// ------------------------------------------------------------ fig 3/4/11

func expFig3_4_11() *Experiment {
	return &Experiment{
		ID:      "fig3",
		Aliases: []string{"fig4", "fig11"},
		Title:   "Real-time throughput, latency and load imbalance (paper Figs. 3, 4, 11)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			calOpts := sysOptions(fastjoin.KindBiStream, p, p.Joiners, rideHailingSources(p, 0))
			calOpts.Windowing.Span = timedWindow
			rate, err := calibrateOfferedRate(calOpts, calibrationTime(p))
			if err != nil {
				return nil, err
			}
			results := make([]TimedResult, 0, len(comparedSystems))
			for _, kind := range comparedSystems {
				opts := sysOptions(kind, p, p.Joiners, rideHailingSourcesRate(p, 0, rate))
				opts.Windowing.Span = timedWindow
				res, err := runTimed(kind, opts, p.Duration, p.SampleEvery)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
			}

			cols := make([]string, len(results))
			for i, r := range results {
				cols[i] = r.Kind.String()
			}
			minSamples := len(results[0].Samples)
			for _, r := range results {
				if len(r.Samples) < minSamples {
					minSamples = len(r.Samples)
				}
			}

			thr := &Report{ID: "fig3", Title: "Fig 3: real-time throughput (results/s)", XLabel: "t", Columns: cols}
			lat := &Report{ID: "fig4", Title: "Fig 4: real-time processing latency (µs)", XLabel: "t", Columns: cols}
			li := &Report{ID: "fig11", Title: "Fig 11: real-time degree of load imbalance LI (R side)", XLabel: "t", Columns: cols}
			for s := 0; s < minSamples; s++ {
				x := results[0].Samples[s].At.String()
				thrCells := make([]float64, len(results))
				latCells := make([]float64, len(results))
				liCells := make([]float64, len(results))
				for i, r := range results {
					thrCells[i] = r.Samples[s].Throughput
					latCells[i] = r.Samples[s].LatencyUs
					if s < len(r.LI) {
						liCells[i] = r.LI[s]
					}
				}
				thr.AddRow(x, thrCells...)
				lat.AddRow(x, latCells...)
				li.AddRow(x, liCells...)
			}
			thr.AddNote("offered load: %.0f tuples/s (1.2x the BiStream baseline's calibrated skew-limited capacity)", rate)
			for i, r := range results {
				thr.AddNote("%s: mean %s = %.0f results/s, migrations = %d",
					cols[i], "throughput", r.MeanThroughput(), r.Migrations)
				lat.AddNote("%s: mean latency = %.0f µs", cols[i], r.MeanLatencyUs())
				li.AddNote("%s: steady LI (tail mean) = %.2f (Θ = %.1f)", cols[i], meanTail(r.LI, 0.5), p.Theta)
			}
			return []*Report{thr, lat, li}, nil
		},
	}
}

// -------------------------------------------------------------- fig 5/6

func expFig5_6() *Experiment {
	return &Experiment{
		ID:      "fig5",
		Aliases: []string{"fig6"},
		Title:   "Throughput and latency vs number of join instances (paper Figs. 5, 6)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			sweep := []int{2, 4, 8, 12}
			if p.Quick {
				sweep = []int{2, 4}
			}
			return timedSweepReports(p, "fig5", "fig6",
				"Fig 5: avg throughput vs #join instances per side",
				"Fig 6: avg latency vs #join instances per side",
				"instances", intLabels(sweep),
				func(i int, kind fastjoin.Kind) fastjoin.Options {
					return sysOptions(kind, p, sweep[i], rideHailingSources(p, 0))
				})
		},
	}
}

// -------------------------------------------------------------- fig 7/8

func expFig7_8() *Experiment {
	return &Experiment{
		ID:      "fig7",
		Aliases: []string{"fig8"},
		Title:   "Throughput and latency vs dataset scale (paper Figs. 7, 8)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			fractions := []float64{0.25, 0.5, 1, 1.5, 2}
			if p.Quick {
				fractions = []float64{0.5, 1}
			}
			labels := make([]string, len(fractions))
			budgets := make([]int, len(fractions))
			for i, f := range fractions {
				budgets[i] = int(f * float64(p.TupleBudget))
				labels[i] = fmt.Sprintf("%dk", budgets[i]/1000)
			}
			return sweepReports(p, "fig7", "fig8",
				"Fig 7: avg throughput vs dataset scale (tuple budget; paper: 10-70 GB)",
				"Fig 8: avg latency vs dataset scale",
				"tuples", labels,
				func(i int, kind fastjoin.Kind) (BatchResult, error) {
					opts := sysOptions(kind, p, p.Joiners, rideHailingSources(p, budgets[i]))
					return runBatch(kind, opts)
				})
		},
	}
}

// ------------------------------------------------------------- fig 9/10

func expFig9_10() *Experiment {
	return &Experiment{
		ID:      "fig9",
		Aliases: []string{"fig10"},
		Title:   "Throughput and latency vs load imbalance threshold Θ (paper Figs. 9, 10)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			thetas := []float64{1.2, 1.6, 2.2, 3.2, 5.0}
			if p.Quick {
				thetas = []float64{1.2, 2.2}
			}
			labels := make([]string, len(thetas))
			for i, th := range thetas {
				labels[i] = fmt.Sprintf("%.1f", th)
			}
			return timedSweepReports(p, "fig9", "fig10",
				"Fig 9: avg throughput vs threshold Θ (baselines are Θ-independent)",
				"Fig 10: avg latency vs threshold Θ",
				"theta", labels,
				func(i int, kind fastjoin.Kind) fastjoin.Options {
					pp := p
					pp.Theta = thetas[i]
					return sysOptions(kind, pp, p.Joiners, rideHailingSources(p, 0))
				})
		},
	}
}

// ------------------------------------------------------------ fig 12/13

func expFig12_13() *Experiment {
	return &Experiment{
		ID:      "fig12",
		Aliases: []string{"fig13"},
		Title:   "Throughput and latency across synthetic skew groups Gxy (paper Figs. 12, 13)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			thetas := []float64{0, 1, 2}
			var labels []string
			var groups [][2]float64
			for _, tr := range thetas {
				for _, ts := range thetas {
					labels = append(labels, fmt.Sprintf("G%d%d", int(tr), int(ts)))
					groups = append(groups, [2]float64{tr, ts})
				}
			}
			if p.Quick {
				labels = []string{"G00", "G22"}
				groups = [][2]float64{{0, 0}, {2, 2}}
			}
			cols := make([]string, len(comparedSystems))
			for i, k := range comparedSystems {
				cols[i] = k.String()
			}
			thr := &Report{ID: "fig12", Title: "Fig 12: avg throughput across skew groups (Gxy: R zipf x, S zipf y)", XLabel: "group", Columns: cols}
			lat := &Report{ID: "fig13", Title: "Fig 13: avg latency across skew groups", XLabel: "group", Columns: cols}
			// Timed saturated runs: each system processes each group at its
			// own capacity for a fixed wall-clock window.
			for i, label := range labels {
				thrCells := make([]float64, len(comparedSystems))
				latCells := make([]float64, len(comparedSystems))
				for k, kind := range comparedSystems {
					w := fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
						Keys:     p.Keys,
						ThetaR:   groups[i][0],
						ThetaS:   groups[i][1],
						Parallel: 3,
						Seed:     p.Seed,
					})
					opts := sysOptions(kind, p, p.Joiners, w.Sources)
					opts.Windowing.Span = timedWindow
					res, err := runTimed(kind, opts, p.Duration, p.SampleEvery)
					if err != nil {
						return nil, fmt.Errorf("fig12 %s@%s: %w", kind, label, err)
					}
					thrCells[k] = res.MeanThroughput()
					latCells[k] = res.MeanLatencyUs()
				}
				thr.AddRow(label, thrCells...)
				lat.AddRow(label, latCells...)
			}
			thr.AddNote("offered load: unbounded; each system runs each group at its own capacity")
			return []*Report{thr, lat}, nil
		},
	}
}

// --------------------------------------------------------------- fig 14

func expFig14() *Experiment {
	return &Experiment{
		ID:    "fig14",
		Title: "GreedyFit vs SAFit key selection (paper Fig. 14)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			rep := &Report{
				ID:      "fig14",
				Title:   "Fig 14: processing latency of FastJoin with the two key selectors",
				XLabel:  "selector",
				Columns: []string{"latency_mean_us", "latency_p99_us", "throughput", "migrations"},
			}
			for _, kind := range []fastjoin.Kind{fastjoin.KindFastJoin, fastjoin.KindFastJoinSAFit} {
				opts := sysOptions(kind, p, p.Joiners, rideHailingSources(p, p.TupleBudget))
				res, err := runBatch(kind, opts)
				if err != nil {
					return nil, err
				}
				rep.AddRow(kind.String(), res.LatencyMeanUs, res.LatencyP99Us, res.Throughput, float64(res.Migrations))
			}
			rep.AddNote("paper finding: the two selectors perform nearly the same")
			return []*Report{rep}, nil
		},
	}
}

// ---------------------------------------------------------------- batch

// zipfG10ThetaR is the skew of the shared A/B workload: zipf θ=1 on R (hot
// routing lanes, hot stores), uniform S.
const zipfG10ThetaR = 1.0

// pregenZipfG10 materializes the deterministic skew-group-G10 workload the
// data-plane A/B experiments (batch, store) share, returning a factory that
// replays the identical tuple slices at memory speed for every run. With a
// full-history store the join cardinality is Σ_k |R_k|·|S_k| — a function of
// the tuple multiset only, so every run produces the IDENTICAL result count
// no matter how arrival interleaves, and throughput ratios compare equal
// work. (A time window would make match volume depend on source
// interleaving and drown the A/B in run-to-run noise; uniform S keeps the
// hot key's scan cost linear instead of quadratic. Live zipf sampling is
// slower than the paths under test and would bound ingestion.)
func pregenZipfG10(p Params) func() []fastjoin.TupleSource {
	gen := fastjoin.NewZipfWorkload(fastjoin.ZipfOptions{
		Keys:     p.Keys,
		ThetaR:   zipfG10ThetaR,
		ThetaS:   0,
		Tuples:   p.TupleBudget,
		Parallel: 3,
		Seed:     p.Seed,
	})
	pre := make([][]fastjoin.Tuple, len(gen.Sources))
	for i, src := range gen.Sources {
		for {
			t, ok := src()
			if !ok {
				break
			}
			pre[i] = append(pre[i], t)
		}
	}
	return func() []fastjoin.TupleSource {
		out := make([]fastjoin.TupleSource, len(pre))
		for i := range pre {
			ts := pre[i]
			idx := 0
			out[i] = func() (fastjoin.Tuple, bool) {
				if idx >= len(ts) {
					return fastjoin.Tuple{}, false
				}
				t := ts[idx]
				idx++
				return t, true
			}
		}
		return out
	}
}

// expBatch is the batched-data-plane A/B (archived as BENCH_3.json): the
// identical skewed zipf workload at fixed seed runs with batching off
// (BatchSize 1, the legacy one-message-per-tuple path) and on (the
// default batch size), and the report compares sustained throughput.
//
// Methodology notes:
//   - ServiceRate is forced to 0. The emulated per-node capacity works by
//     sleeping, which caps every configuration at the same virtual rate
//     and would mask exactly the per-message overhead this experiment
//     measures. The A/B must be CPU/channel bound.
//   - A short join window bounds per-probe scan work so the data plane
//     (boxing + channel send per emit) stays the dominant term, as it is
//     at cluster scale where windows are always bounded.
func expBatch() *Experiment {
	return &Experiment{
		ID:      "batch",
		Aliases: []string{"bench3"},
		Title:   "Batched data plane A/B: throughput with batching off vs on (BENCH_3)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			// Skew group G10: zipf θ=1 on R (hot routing lanes, hot
			// stores), uniform S. With a full-history store the join
			// cardinality is Σ_k |R_k|·|S_k| — a function of the tuple
			// multiset only, so every run produces the IDENTICAL result
			// count no matter how arrival interleaves, and the throughput
			// ratio compares equal work. (A time window would make match
			// volume depend on source interleaving and drown the A/B in
			// run-to-run noise; uniform S keeps the hot key's scan cost
			// linear instead of quadratic.)
			mkSources := pregenZipfG10(p)
			// Best-of-reps: the runs are sub-second, so scheduler noise
			// swings a single measurement by ±20%; the fastest of a few
			// repetitions is the standard throughput estimate.
			reps := 3
			if p.Quick {
				reps = 1
			}
			run := func(kind fastjoin.Kind, batchSize int) (BatchResult, error) {
				var best BatchResult
				for r := 0; r < reps; r++ {
					opts := sysOptions(kind, p, p.Joiners, mkSources())
					opts.ServiceRate = 0 // full-history, CPU/channel bound
					opts.Batching.Size = batchSize
					res, err := runBatch(kind, opts)
					if err != nil {
						return BatchResult{}, err
					}
					if r == 0 || res.Elapsed < best.Elapsed {
						best = res
					}
					if res.Results != best.Results {
						return BatchResult{}, fmt.Errorf("batch %s rep %d: result count %d != %d; workload not deterministic",
							kind, r, res.Results, best.Results)
					}
				}
				return best, nil
			}
			rep := &Report{
				ID:     "batch",
				Title:  fmt.Sprintf("Batching off (BatchSize=1) vs on (BatchSize=%d): zipf G10 (θR=%.1f, uniform S), %d joiners/side, seed %d", fastjoin.DefaultBatchSize, zipfG10ThetaR, p.Joiners, p.Seed),
				XLabel: "system",
				Columns: []string{
					"unbatched(results/s)", "batched(results/s)", "speedup",
					"unbatched_lat_us", "batched_lat_us",
				},
			}
			for _, kind := range []fastjoin.Kind{fastjoin.KindBiStream, fastjoin.KindFastJoin} {
				off, err := run(kind, 1)
				if err != nil {
					return nil, fmt.Errorf("batch %s off: %w", kind, err)
				}
				on, err := run(kind, 0) // 0 = default batch size
				if err != nil {
					return nil, fmt.Errorf("batch %s on: %w", kind, err)
				}
				speedup := 0.0
				if off.Throughput > 0 {
					speedup = on.Throughput / off.Throughput
				}
				rep.AddRow(kind.String(),
					off.Throughput, on.Throughput, speedup,
					off.LatencyMeanUs, on.LatencyMeanUs)
				rep.AddNote("%s: %d results, unbatched %s vs batched %s elapsed (speedup %.2fx)",
					kind, on.Results, off.Elapsed.Round(time.Millisecond),
					on.Elapsed.Round(time.Millisecond), speedup)
				if off.Results != on.Results {
					return nil, fmt.Errorf("batch %s: result counts diverge (off %d, on %d); exactly-once broken or workload not deterministic",
						kind, off.Results, on.Results)
				}
			}
			rep.AddNote("ServiceRate forced to 0 (capacity emulation sleeps would mask the per-message overhead under test)")
			return []*Report{rep}, nil
		},
	}
}

// ---------------------------------------------------------------- store

// expStore is the window-store A/B (archived as BENCH_4.json): the same
// deterministic zipf G10 workload as the batch experiment runs against the
// map-based reference store and the chunked arena store, both on the default
// batched data plane. The methodology mirrors expBatch (ServiceRate 0,
// full-history, pre-generated sources, best-of-reps); the equal-result-count
// check doubles as a system-level differential test of the chunked store,
// and the report carries the GC accounting the arena exists to improve.
func expStore() *Experiment {
	return &Experiment{
		ID:      "store",
		Aliases: []string{"bench4"},
		Title:   "Window-store A/B: map reference vs chunked arena store (BENCH_4)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			mkSources := pregenZipfG10(p)
			reps := 3
			if p.Quick {
				reps = 1
			}
			run := func(kind fastjoin.Kind, store fastjoin.StoreKind) (BatchResult, error) {
				var best BatchResult
				for r := 0; r < reps; r++ {
					opts := sysOptions(kind, p, p.Joiners, mkSources())
					opts.ServiceRate = 0 // full-history, CPU/channel bound
					opts.StoreKind = store
					res, err := runBatch(kind, opts)
					if err != nil {
						return BatchResult{}, err
					}
					if r == 0 || res.Elapsed < best.Elapsed {
						best = res
					}
					if res.Results != best.Results {
						return BatchResult{}, fmt.Errorf("store %s rep %d: result count %d != %d; workload not deterministic",
							kind, r, res.Results, best.Results)
					}
				}
				return best, nil
			}
			rep := &Report{
				ID:     "store",
				Title:  fmt.Sprintf("Store map vs chunked: zipf G10 (θR=%.1f, uniform S), %d joiners/side, seed %d, BatchSize=%d", zipfG10ThetaR, p.Joiners, p.Seed, fastjoin.DefaultBatchSize),
				XLabel: "system",
				Columns: []string{
					"map(results/s)", "chunked(results/s)", "speedup",
					"map_lat_us", "chunked_lat_us",
					"map_alloc_mb", "chunked_alloc_mb",
				},
			}
			for _, kind := range []fastjoin.Kind{fastjoin.KindBiStream, fastjoin.KindFastJoin} {
				ref, err := run(kind, fastjoin.StoreMap)
				if err != nil {
					return nil, fmt.Errorf("store %s map: %w", kind, err)
				}
				chk, err := run(kind, fastjoin.StoreChunked)
				if err != nil {
					return nil, fmt.Errorf("store %s chunked: %w", kind, err)
				}
				speedup := 0.0
				if ref.Throughput > 0 {
					speedup = chk.Throughput / ref.Throughput
				}
				rep.AddRow(kind.String(),
					ref.Throughput, chk.Throughput, speedup,
					ref.LatencyMeanUs, chk.LatencyMeanUs,
					float64(ref.AllocBytes)/1e6, float64(chk.AllocBytes)/1e6)
				rep.AddNote("%s: %d results, map %s vs chunked %s elapsed (speedup %.2fx); GC map %d cycles/%.0fµs pause, chunked %d cycles/%.0fµs pause",
					kind, chk.Results, ref.Elapsed.Round(time.Millisecond),
					chk.Elapsed.Round(time.Millisecond), speedup,
					ref.GCCycles, ref.GCPauseUs, chk.GCCycles, chk.GCPauseUs)
				if ref.Results != chk.Results {
					return nil, fmt.Errorf("store %s: result counts diverge (map %d, chunked %d); the chunked store broke exact-match semantics",
						kind, ref.Results, chk.Results)
				}
			}
			rep.AddNote("equal result counts are the system-level differential check: both stores joined the identical multiset")
			rep.AddNote("ServiceRate forced to 0 (capacity emulation sleeps would mask the store cost under test)")
			return []*Report{rep}, nil
		},
	}
}

// ---------------------------------------------------------------- split

// megaKeyShare is the single scorching key's share of both streams in the
// split experiment: far more than one instance's fair share, so no
// whole-key migration can balance it — the workload whole-key migration
// provably cannot help with, and the one hot-key splitting exists for.
const megaKeyShare = 0.4

// splitPredMod thins the mega-key's quadratic result set so the runs are
// dominated by probe/scan work (what splitting parallelizes), not result
// materialization. The expected count stays exactly computable from the
// per-key Seq residue histograms.
const splitPredMod = 64

// pregenMegaKey builds the deterministic mega-key workload (one key at
// megaKeyShare of both streams, the rest uniform) pre-generated so every
// run replays the identical multiset, and returns the source factory plus
// the exact expected result count under the splitPredMod predicate.
func pregenMegaKey(p Params, n int) (func() []fastjoin.TupleSource, int64) {
	rng := rand.New(rand.NewSource(p.Seed))
	tuples := make([]fastjoin.Tuple, 0, n)
	// hist[key][side][residue] counts Seq%splitPredMod per key and side:
	// pairs match iff (rSeq+sSeq)%splitPredMod == 0, so the exact join
	// cardinality is Σ_k Σ_a histR[a]·histS[(mod-a)%mod].
	hist := make(map[fastjoin.Key]*[2][splitPredMod]int64)
	var rSeq, sSeq uint64
	for i := 0; i < n; i++ {
		key := fastjoin.Key(0)
		if rng.Float64() >= megaKeyShare {
			key = fastjoin.Key(1 + rng.Intn(p.Keys-1))
		}
		t := fastjoin.Tuple{Key: key}
		if i%2 == 0 {
			t.Side, t.Seq = fastjoin.R, rSeq
			rSeq++
		} else {
			t.Side, t.Seq = fastjoin.S, sSeq
			sSeq++
		}
		tuples = append(tuples, t)
		h := hist[key]
		if h == nil {
			h = new([2][splitPredMod]int64)
			hist[key] = h
		}
		h[t.Side][t.Seq%splitPredMod]++
	}
	var expected int64
	for _, h := range hist {
		for a := 0; a < splitPredMod; a++ {
			expected += h[fastjoin.R][a] * h[fastjoin.S][(splitPredMod-a)%splitPredMod]
		}
	}
	// Round-robin across 3 parallel sources, like the zipf pregen.
	const parallel = 3
	pre := make([][]fastjoin.Tuple, parallel)
	for i, t := range tuples {
		pre[i%parallel] = append(pre[i%parallel], t)
	}
	return func() []fastjoin.TupleSource {
		out := make([]fastjoin.TupleSource, len(pre))
		for i := range pre {
			ts := pre[i]
			idx := 0
			out[i] = func() (fastjoin.Tuple, bool) {
				if idx >= len(ts) {
					return fastjoin.Tuple{}, false
				}
				t := ts[idx]
				idx++
				return t, true
			}
		}
		return out
	}, expected
}

// splitArrivalFactor sets the split experiment's offered arrival rate as
// a fraction of the per-instance ServiceRate. Pacing the sources is what
// makes the A/B honest: with an unbounded finite replay the dispatcher
// routes the entire stream in milliseconds — long before the detector's
// intent/ack handshake lands — so every tuple is already enqueued at the
// old owner and activation redirects nothing. A paced stream keeps the
// dispatcher in (emulated) real time, so tuples arriving after
// activation actually take the salted route, exactly as they would in a
// long-running deployment. 0.5 keeps the hot instance unsaturated until
// the split activates (so the handshake isn't stuck behind a backlog)
// while the no-split run still drowns in the mega-key's quadratic scan.
const splitArrivalFactor = 0.5

// pacedSources throttles a source set to an aggregate arrival rate of
// perSecTotal tuples/second, split evenly across the sources. Each
// source's clock starts on its first pull so system startup time is not
// counted as banked arrival credit.
func pacedSources(srcs []fastjoin.TupleSource, perSecTotal float64) []fastjoin.TupleSource {
	per := perSecTotal / float64(len(srcs))
	out := make([]fastjoin.TupleSource, len(srcs))
	for i, src := range srcs {
		src := src
		var start time.Time
		emitted := 0
		out[i] = func() (fastjoin.Tuple, bool) {
			t, ok := src()
			if !ok {
				return t, ok
			}
			if emitted == 0 {
				start = time.Now()
			}
			emitted++
			due := time.Duration(float64(emitted) / per * float64(time.Second))
			if ahead := due - time.Since(start); ahead > 2*time.Millisecond {
				time.Sleep(ahead)
			}
			return t, ok
		}
	}
	return out
}

// expSplit is the hot-key splitting A/B (archived as BENCH_5.json): the
// identical single-mega-key workload runs on FastJoin with splitting off
// and on. Without splitting the mega-key's entire probe/scan load
// serializes on one join instance per side; with splitting the stores
// salt across SplitWays instances and probes fan out to them, dividing
// the per-instance scan volume by SplitWays. Unlike expBatch/expStore
// this experiment keeps the ServiceRate capacity emulation ON and paces
// the offered load (see splitArrivalFactor): the win under test is
// parallelism across instances, which the emulated per-instance op
// budget exposes faithfully on any host (the emulation sleeps
// concurrently), whereas raw CPU-bound wall clock would only show it on
// a machine with enough free cores. Both sides of the A/B must produce
// the exactly computed expected result count — the bench doubles as a
// correctness check of salted routing.
func expSplit() *Experiment {
	return &Experiment{
		ID:      "split",
		Aliases: []string{"bench5", "megakey"},
		Title:   "Hot-key splitting A/B: one mega-key with splitting off vs on (BENCH_5)",
		Run: func(p Params) ([]*Report, error) {
			p = p.withDefaults()
			// The mega-key's virtual scan load is quadratic in the budget;
			// cap it so the serial (no-split) side finishes in seconds.
			n := min(p.TupleBudget, 20_000)
			if p.Quick {
				n = min(n, 8_000)
			}
			mkSources, expected := pregenMegaKey(p, n)
			ways := min(4, p.Joiners)
			pred := func(r, s fastjoin.Tuple) bool { return (r.Seq+s.Seq)%splitPredMod == 0 }
			reps := 3
			if p.Quick {
				reps = 1
			}
			run := func(threshold float64) (BatchResult, int64, error) {
				var best BatchResult
				var splits int64
				for r := 0; r < reps; r++ {
					srcs := pacedSources(mkSources(), splitArrivalFactor*p.ServiceRate)
					opts := sysOptions(fastjoin.KindFastJoin, p, p.Joiners, srcs)
					opts.Predicate = pred
					opts.Migration.SplitThreshold = threshold
					opts.Migration.SplitWays = ways
					res, err := runBatch(fastjoin.KindFastJoin, opts)
					if err != nil {
						return BatchResult{}, 0, err
					}
					if res.Results != expected {
						return BatchResult{}, 0, fmt.Errorf("split threshold=%v rep %d: %d results, expected exactly %d; salted routing broke the join",
							threshold, r, res.Results, expected)
					}
					if r == 0 || res.Elapsed < best.Elapsed {
						best = res
						splits = res.KeysSplit
					}
				}
				return best, splits, nil
			}
			off, _, err := run(0)
			if err != nil {
				return nil, fmt.Errorf("split off: %w", err)
			}
			// Threshold 0.3: the mega-key holds ~55% of its dispatcher
			// task's traffic (its 40% plus a quarter of the uniform rest),
			// every other key a fraction of a percent — only the mega-key
			// can split.
			on, splits, err := run(0.3)
			if err != nil {
				return nil, fmt.Errorf("split on: %w", err)
			}
			if splits == 0 {
				return nil, fmt.Errorf("split on: the mega-key never split (KeysSplit=0); the A/B compared identical systems")
			}
			speedup := 0.0
			if off.Throughput > 0 {
				speedup = on.Throughput / off.Throughput
			}
			rep := &Report{
				ID:     "split",
				Title:  fmt.Sprintf("Hot-key splitting off vs on: one key at %.0f%% of both streams, %d joiners/side, %d-way split, seed %d", megaKeyShare*100, p.Joiners, ways, p.Seed),
				XLabel: "system",
				Columns: []string{
					"nosplit(results/s)", "split(results/s)", "speedup",
					"nosplit_lat_us", "split_lat_us",
				},
			}
			rep.AddRow(fastjoin.KindFastJoin.String(),
				off.Throughput, on.Throughput, speedup,
				off.LatencyMeanUs, on.LatencyMeanUs)
			rep.AddNote("%d tuples, %d results (both runs match the residue-histogram expectation exactly); nosplit %s vs split %s elapsed (speedup %.2fx, %d split activations)",
				n, expected, off.Elapsed.Round(time.Millisecond),
				on.Elapsed.Round(time.Millisecond), speedup, splits)
			rep.AddNote("nosplit run migrated %d times — whole-key migration cannot shed a single mega-key, which is the gap splitting closes",
				off.Migrations)
			rep.AddNote("ServiceRate %.0f virtual ops/s per instance: the emulated capacity exposes the %d-way scan parallelism on any host",
				p.ServiceRate, ways)
			return []*Report{rep}, nil
		},
	}
}

// timedSweepReports runs every compared system across a sweep as timed
// saturated runs (windowed, unbounded offered load) and renders the
// throughput and latency tables.
func timedSweepReports(p Params, idA, idB, titleA, titleB, xLabel string, labels []string,
	mkOpts func(i int, kind fastjoin.Kind) fastjoin.Options) ([]*Report, error) {

	cols := make([]string, len(comparedSystems))
	for i, k := range comparedSystems {
		cols[i] = k.String()
	}
	thr := &Report{ID: idA, Title: titleA, XLabel: xLabel, Columns: cols}
	lat := &Report{ID: idB, Title: titleB, XLabel: xLabel, Columns: cols}
	var migrations int64
	for i, label := range labels {
		thrCells := make([]float64, len(comparedSystems))
		latCells := make([]float64, len(comparedSystems))
		for k, kind := range comparedSystems {
			opts := mkOpts(i, kind)
			opts.Windowing.Span = timedWindow
			res, err := runTimed(kind, opts, p.Duration, p.SampleEvery)
			if err != nil {
				return nil, fmt.Errorf("%s %s@%s: %w", idA, kind, label, err)
			}
			thrCells[k] = res.MeanThroughput()
			latCells[k] = res.MeanLatencyUs()
			if kind == fastjoin.KindFastJoin {
				migrations += res.Migrations
			}
		}
		thr.AddRow(label, thrCells...)
		lat.AddRow(label, latCells...)
	}
	thr.AddNote("timed saturated runs (window %v): each system at its own capacity", timedWindow)
	thr.AddNote("FastJoin migrations across the sweep: %d", migrations)
	return []*Report{thr, lat}, nil
}

// sweepReports runs every compared system across a sweep and renders the
// throughput and latency tables.
func sweepReports(p Params, idA, idB, titleA, titleB, xLabel string, labels []string,
	run func(i int, kind fastjoin.Kind) (BatchResult, error)) ([]*Report, error) {

	cols := make([]string, len(comparedSystems))
	for i, k := range comparedSystems {
		cols[i] = k.String()
	}
	thr := &Report{ID: idA, Title: titleA, XLabel: xLabel, Columns: cols}
	lat := &Report{ID: idB, Title: titleB, XLabel: xLabel, Columns: cols}
	var migrations int64
	for i, label := range labels {
		thrCells := make([]float64, len(comparedSystems))
		latCells := make([]float64, len(comparedSystems))
		for k, kind := range comparedSystems {
			res, err := run(i, kind)
			if err != nil {
				return nil, fmt.Errorf("%s %s@%s: %w", idA, kind, label, err)
			}
			thrCells[k] = res.Throughput
			latCells[k] = res.LatencyMeanUs
			if kind == fastjoin.KindFastJoin {
				migrations += res.Migrations
			}
		}
		thr.AddRow(label, thrCells...)
		lat.AddRow(label, latCells...)
	}
	thr.AddNote("FastJoin migrations across the sweep: %d", migrations)
	return []*Report{thr, lat}, nil
}

func intLabels(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// isqrtInt is integer sqrt (floor, >= 1).
func isqrtInt(n int) int {
	if n <= 0 {
		return 1
	}
	x, y := n, (n+1)/2
	for y < x {
		x, y = y, (y+n/y)/2
	}
	if x < 1 {
		return 1
	}
	return x
}

// RunAll executes every experiment and returns all reports in order.
func RunAll(p Params) ([]*Report, error) {
	var out []*Report
	for _, e := range All() {
		reps, err := e.Run(p)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, reps...)
	}
	return out, nil
}
