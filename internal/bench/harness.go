package bench

import (
	"fmt"
	"time"

	"fastjoin"
)

// Params scales an experiment. Paper-scale values (48 instances, 30 GB) do
// not fit a laptop; the defaults reproduce the figures' shapes at small
// scale and every knob can be raised toward the paper's setting.
type Params struct {
	// Joiners is the default join instances per side (paper: 48).
	Joiners int
	// Duration is the length of each timed run (Figs. 3/4/11).
	Duration time.Duration
	// SampleEvery is the sampling period of time-series figures.
	SampleEvery time.Duration
	// TupleBudget is the input size of each batch run (sweep figures).
	TupleBudget int
	// Keys is the key-universe size of the ride-hailing workload.
	Keys int
	// Theta is the default load-imbalance threshold Θ (paper: 2.2).
	Theta float64
	// ServiceRate is the emulated per-instance compute capacity in virtual
	// ops/second (see fastjoin.Options.ServiceRate). It stands in for the
	// paper's per-node CPU so cluster behaviour reproduces on small hosts.
	ServiceRate float64
	// Seed derandomizes workloads and placement.
	Seed int64
	// BatchSize overrides the dispatcher's data-plane batch capacity for
	// every run (0 = system default, 1 = unbatched legacy path). The
	// batch A/B experiment ignores it and sweeps both settings.
	BatchSize int
	// BatchLinger overrides how long a partially filled batch may wait
	// before a tick flushes it (0 = system default).
	BatchLinger time.Duration
	// Store overrides the joiners' window-store implementation for every
	// run (default fastjoin.StoreChunked). The store A/B experiment
	// ignores it and sweeps both.
	Store fastjoin.StoreKind
	// Quick shrinks sweeps and durations for smoke tests.
	Quick bool
	// ChaosProfile, when not ChaosNone, runs every system under the named
	// chaos fault profile (fault drill mode); ChaosSeed seeds the
	// injector so a drill replays exactly.
	ChaosProfile fastjoin.ChaosProfile
	ChaosSeed    int64
	// Observe, when non-empty, binds each run's observability endpoint to
	// this address (e.g. "127.0.0.1:0") so a drill can be scraped live.
	Observe string
}

// DefaultParams returns the laptop-scale defaults.
func DefaultParams() Params {
	return Params{
		Joiners:     8,
		Duration:    4 * time.Second,
		SampleEvery: 500 * time.Millisecond,
		TupleBudget: 200_000,
		Keys:        10_000,
		Theta:       2.2,
		ServiceRate: 20_000,
		Seed:        7,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Joiners <= 0 {
		p.Joiners = d.Joiners
	}
	if p.Duration <= 0 {
		p.Duration = d.Duration
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = d.SampleEvery
	}
	if p.TupleBudget <= 0 {
		p.TupleBudget = d.TupleBudget
	}
	if p.Keys <= 0 {
		p.Keys = d.Keys
	}
	if p.Theta <= 1 {
		p.Theta = d.Theta
	}
	if p.ServiceRate <= 0 {
		p.ServiceRate = d.ServiceRate
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.BatchSize < 0 {
		p.BatchSize = 1 // any negative spelling means "unbatched"
	}
	if p.Quick {
		p.Duration = min(p.Duration, 1200*time.Millisecond)
		p.SampleEvery = min(p.SampleEvery, 200*time.Millisecond)
		p.TupleBudget = min(p.TupleBudget, 40_000)
		p.Keys = min(p.Keys, 2_000)
		p.Joiners = min(p.Joiners, 4)
	}
	return p
}

func min[T ~int | ~int64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// systems compared in most figures, in the paper's order.
var comparedSystems = []fastjoin.Kind{
	fastjoin.KindFastJoin,
	fastjoin.KindBiStreamContRand,
	fastjoin.KindBiStream,
}

// sysOptions builds the per-system options shared by all experiments.
func sysOptions(kind fastjoin.Kind, p Params, joiners int, sources []fastjoin.TupleSource) fastjoin.Options {
	return fastjoin.Options{
		Kind:          kind,
		Joiners:       joiners,
		Dispatchers:   4,
		Shufflers:     4,
		Sources:       sources,
		StatsInterval: 50 * time.Millisecond,
		ServiceRate:   p.ServiceRate,
		Seed:          uint64(p.Seed),
		StoreKind:     p.Store,
		Migration: fastjoin.MigrationOptions{
			Theta:        p.Theta,
			Cooldown:     500 * time.Millisecond,
			AbortTimeout: abortTimeoutFor(p),
		},
		Batching: fastjoin.BatchOptions{
			Size:   p.BatchSize,
			Linger: p.BatchLinger,
		},
		Chaos: fastjoin.ChaosOptions{
			Profile: p.ChaosProfile,
			Seed:    p.ChaosSeed,
		},
		Observe: fastjoin.ObserveOptions{Addr: p.Observe},
	}
}

// Resolved returns the parameters with every default filled in, exactly
// as the experiments see them — what a JSON archive should record.
func (p Params) Resolved() Params { return p.withDefaults() }

// abortTimeoutFor enables migration abort-and-rollback whenever a bench
// run injects faults: with markers being dropped, a handshake can stall
// forever without it. Clean runs keep 0 (abort path disabled) so the
// baseline numbers are untouched.
func abortTimeoutFor(p Params) time.Duration {
	if p.ChaosProfile == fastjoin.ChaosNone {
		return 0
	}
	return 2 * time.Second
}

func max[T ~int64 | ~int](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// BatchResult is the outcome of one finite run.
type BatchResult struct {
	Kind          fastjoin.Kind
	Results       int64
	Elapsed       time.Duration
	Throughput    float64 // results per second
	LatencyMeanUs float64
	LatencyP99Us  float64
	Migrations    int64
	KeysSplit     int64
	FinalLI       float64
	// GC accounting of the run (fastjoin.Stats runtime gauges): cumulative
	// bytes allocated and total GC pause. The store experiment's A/B reads
	// the arena win off these.
	AllocBytes uint64
	GCPauseUs  float64
	GCCycles   uint32
}

// runBatch pushes a finite workload through one system and measures it.
func runBatch(kind fastjoin.Kind, opts fastjoin.Options) (BatchResult, error) {
	start := time.Now()
	sys, err := fastjoin.New(opts)
	if err != nil {
		return BatchResult{}, err
	}
	if err := sys.WaitComplete(10 * time.Minute); err != nil {
		sys.Stop()
		return BatchResult{}, err
	}
	elapsed := time.Since(start)
	sys.Stop()
	st := sys.Stats()
	res := BatchResult{
		Kind:          kind,
		Results:       st.Results,
		Elapsed:       elapsed,
		Throughput:    float64(st.Results) / elapsed.Seconds(),
		LatencyMeanUs: st.LatencyMeanUs,
		LatencyP99Us:  st.LatencyP99Us,
		Migrations:    st.Migrations,
		KeysSplit:     st.KeysSplit,
		FinalLI:       lastLI(sys),
		AllocBytes:    st.AllocBytes,
		GCPauseUs:     st.GCPauseTotalUs,
		GCCycles:      st.GCCycles,
	}
	return res, nil
}

// lastLI returns the final recorded degree of load imbalance, preferring
// the R side (the side the paper's Fig. 11 tracks).
func lastLI(sys *fastjoin.System) float64 {
	for _, side := range []fastjoin.Side{fastjoin.R, fastjoin.S} {
		if pts := sys.LISeries(side); len(pts) > 0 {
			return pts[len(pts)-1].Value
		}
	}
	return 0
}

// TimedSample is one sampling instant of a timed run.
type TimedSample struct {
	At         time.Duration
	Throughput float64 // results/s in the interval
	LatencyUs  float64 // mean latency of the interval
}

// TimedResult is the outcome of one timed (unbounded-input) run.
type TimedResult struct {
	Kind       fastjoin.Kind
	Samples    []TimedSample
	LI         []float64 // per-sample LI (R side)
	Loads      [][]fastjoin.Point
	Migrations int64
	Stats      fastjoin.Stats
}

// MeanThroughput averages interval throughput, skipping warm-up.
func (t TimedResult) MeanThroughput() float64 {
	return meanTail(samplesThroughput(t.Samples), 0.75)
}

// MeanLatencyUs averages interval latency, skipping warm-up.
func (t TimedResult) MeanLatencyUs() float64 {
	return meanTail(samplesLatency(t.Samples), 0.75)
}

func samplesThroughput(s []TimedSample) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = v.Throughput
	}
	return out
}

func samplesLatency(s []TimedSample) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = v.LatencyUs
	}
	return out
}

// meanTail averages the last frac of xs.
func meanTail(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	start := len(xs) - int(float64(len(xs))*frac)
	if start >= len(xs) {
		start = len(xs) - 1
	}
	var sum float64
	for _, x := range xs[start:] {
		sum += x
	}
	return sum / float64(len(xs)-start)
}

// runTimed runs one system against an unbounded source for the given
// duration, sampling interval throughput and latency.
func runTimed(kind fastjoin.Kind, opts fastjoin.Options, duration, every time.Duration) (TimedResult, error) {
	sys, err := fastjoin.New(opts)
	if err != nil {
		return TimedResult{}, err
	}
	res := TimedResult{Kind: kind}

	start := time.Now()
	sys.ThroughputTick() // open the first rate window
	var prevCount int64
	var prevSumUs float64
	ticker := time.NewTicker(every)
	for time.Since(start) < duration {
		<-ticker.C
		st := sys.Stats()
		rate := sys.ThroughputTick()
		// Interval latency from cumulative snapshot deltas.
		curSum := st.LatencyMeanUs * float64(countOf(st))
		var latUs float64
		if d := countOf(st) - prevCount; d > 0 {
			latUs = (curSum - prevSumUs) / float64(d)
		}
		prevCount, prevSumUs = countOf(st), curSum
		res.Samples = append(res.Samples, TimedSample{
			At:         time.Since(start).Round(time.Millisecond),
			Throughput: rate,
			LatencyUs:  latUs,
		})
		li := sys.LISeries(fastjoin.R)
		if len(li) > 0 {
			res.LI = append(res.LI, li[len(li)-1].Value)
		} else {
			res.LI = append(res.LI, 1)
		}
	}
	ticker.Stop()
	if err := sys.Drain(0); err != nil {
		sys.Stop()
		return res, fmt.Errorf("drain %v: %w", kind, err)
	}
	sys.Stop()
	res.Stats = sys.Stats()
	res.Migrations = res.Stats.Migrations
	for i := 0; i < opts.Joiners; i++ {
		res.Loads = append(res.Loads, sys.LoadSeries(fastjoin.R, i))
	}
	return res, nil
}

// countOf returns the cumulative latency sample count (one per probe).
func countOf(st fastjoin.Stats) int64 { return st.LatencySamples }

// calibrateOfferedRate measures the ingest rate the BiStream baseline
// sustains under unbounded offered load (its skew-limited capacity) and
// returns 1.15x of it. Driving every system at this fixed offered rate
// reproduces the paper's regime: the rate sits between the imbalanced
// baseline's capacity and the balanced system's, so BiStream falls behind
// (lower throughput, exploding hot-queue latency) while FastJoin keeps up.
// The given opts must already carry the experiment's window/service model.
func calibrateOfferedRate(opts fastjoin.Options, warmTotal time.Duration) (float64, error) {
	sys, err := fastjoin.New(opts)
	if err != nil {
		return 0, err
	}
	// Skip the warm-up phase (the window must fill before per-probe work
	// reaches steady state), then measure steady ingest.
	time.Sleep(warmTotal)
	base := sys.Ingested()
	start := time.Now()
	time.Sleep(2 * time.Second)
	ingested := sys.Ingested() - base
	elapsed := time.Since(start).Seconds()
	sys.Stop()
	if ingested == 0 || elapsed <= 0 {
		return 0, fmt.Errorf("bench: rate calibration ingested nothing")
	}
	return 1.2 * float64(ingested) / elapsed, nil
}
