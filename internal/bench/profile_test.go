package bench

import (
	"os"
	"testing"
)

func TestProfileBatch(t *testing.T) {
	if os.Getenv("PROFILE_BATCH") == "" {
		t.Skip("profiling helper; set PROFILE_BATCH=1")
	}
	reps, err := Find("batch").Run(Params{})
	if err != nil {
		t.Fatal(err)
	}
	_ = reps
}
