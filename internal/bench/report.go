// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Figs. 1 and 3-14): workload
// construction, parameter sweeps, the system-vs-baseline comparisons, and
// plain-text/CSV rendering of the resulting series.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one table of results: a labelled X column and one numeric
// column per series (typically one per compared system).
type Report struct {
	// ID is the experiment that produced the report (e.g. "fig3").
	ID string `json:"id"`
	// Title describes the report, referencing the paper figure.
	Title string `json:"title"`
	// XLabel names the first column (time, #instances, Θ, ...).
	XLabel string `json:"x_label"`
	// Columns names the value series.
	Columns []string `json:"columns"`
	// Rows holds the data.
	Rows []Row `json:"rows"`
	// Notes carries free-form observations (calibration values, shape
	// checks) appended below the table.
	Notes []string `json:"notes,omitempty"`
}

// Row is one line of a report.
type Row struct {
	X     string    `json:"x"`
	Cells []float64 `json:"cells"`
}

// Doc bundles the reports of a run with the parameters that produced
// them, for machine-readable archival (BENCH_*.json, CI artifacts).
type Doc struct {
	// Figure is the figure selector the run was invoked with.
	Figure string `json:"figure"`
	// Params are the resolved run parameters.
	Params Params `json:"params"`
	// Reports are every table the run produced, in order.
	Reports []*Report `json:"reports"`
}

// WriteJSON writes the document as indented JSON.
func (d Doc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// AddRow appends a data row.
func (r *Report) AddRow(x string, cells ...float64) {
	r.Rows = append(r.Rows, Row{X: x, Cells: cells})
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	headers := append([]string{r.XLabel}, r.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		line := make([]string, len(headers))
		line[0] = row.X
		for ci := range r.Columns {
			if ci < len(row.Cells) {
				line[ci+1] = formatCell(row.Cells[ci])
			}
		}
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		cells[ri] = line
	}
	writeLine := func(line []string) error {
		parts := make([]string, len(line))
		for i, c := range line {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := writeLine(headers); err != nil {
		return err
	}
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeLine(rule); err != nil {
		return err
	}
	for _, line := range cells {
		if err := writeLine(line); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  * %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the report as comma-separated values.
func (r *Report) CSV(w io.Writer) error {
	headers := append([]string{r.XLabel}, r.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		parts := make([]string, 0, len(row.Cells)+1)
		parts = append(parts, row.X)
		for _, c := range row.Cells {
			parts = append(parts, formatCell(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// formatCell renders a float compactly: integers without decimals, small
// values with three significant decimals.
func formatCell(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
