package bench

import (
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	r := &Report{
		ID:      "figX",
		Title:   "sample",
		XLabel:  "t",
		Columns: []string{"a", "b"},
	}
	r.AddRow("1s", 100, 2.5)
	r.AddRow("2s", 2000000, 0.125)
	r.AddNote("note %d", 42)
	return r
}

func TestReportRender(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"## figX — sample", "t", "a", "b", "100", "2000000", "2.500", "* note 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Errorf("render too short: %d lines", len(lines))
	}
}

func TestReportCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().CSV(&sb); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1s,100,2.500" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestFormatCell(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		100:     "100",
		2.5:     "2.500",
		123.456: "123",
		-5:      "-5",
		0.001:   "0.001",
	}
	for v, want := range cases {
		if got := formatCell(v); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	if p.Joiners != d.Joiners || p.Theta != d.Theta || p.Keys != d.Keys {
		t.Errorf("defaults not applied: %+v", p)
	}
	if p.ServiceRate != d.ServiceRate {
		t.Errorf("ServiceRate default missing: %+v", p)
	}
}

func TestParamsQuickShrinks(t *testing.T) {
	p := Params{Quick: true}.withDefaults()
	d := DefaultParams()
	if p.Duration >= d.Duration || p.TupleBudget >= d.TupleBudget {
		t.Errorf("quick did not shrink: %+v", p)
	}
	if p.Joiners > 4 {
		t.Errorf("quick joiners = %d", p.Joiners)
	}
}

func TestParamsExplicitPreserved(t *testing.T) {
	p := Params{Joiners: 32, Duration: 9 * time.Second, Theta: 3.3}.withDefaults()
	if p.Joiners != 32 || p.Duration != 9*time.Second || p.Theta != 3.3 {
		t.Errorf("explicit params overridden: %+v", p)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("experiments = %d, want 12", len(all))
	}
	// Every paper figure id (plus the batching, store, and splitting
	// A/Bs) must be covered.
	for _, id := range []string{
		"fig1a", "fig1b", "fig1ab", "fig1c", "fig1d", "fig1cd",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation",
		"batch", "bench3", "store", "bench4", "split", "bench5", "megakey",
	} {
		if Find(id) == nil {
			t.Errorf("figure %s not covered by any experiment", id)
		}
	}
	if Find("fig99") != nil {
		t.Error("unknown figure should not resolve")
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestCoversSelf(t *testing.T) {
	e := &Experiment{ID: "x", Aliases: []string{"y"}}
	if !e.Covers("x") || !e.Covers("y") || e.Covers("z") {
		t.Error("Covers logic wrong")
	}
}

func TestFig1abExperiment(t *testing.T) {
	// fig1ab is pure generation (no topology): cheap enough for a unit test.
	e := Find("fig1ab")
	reps, err := e.Run(Params{Quick: true, TupleBudget: 20000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	rep := reps[0]
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (orders, tracks)", len(rep.Rows))
	}
	// Shape check: both streams heavily skewed — well under 40% of keys
	// carry 80% of mass.
	for _, row := range rep.Rows {
		if row.Cells[0] > 40 {
			t.Errorf("%s: keys for 80%% mass = %.1f%%, want < 40%%", row.X, row.Cells[0])
		}
	}
}

func TestMeanTail(t *testing.T) {
	xs := []float64{100, 100, 2, 4}
	if got := meanTail(xs, 0.5); got != 3 {
		t.Errorf("meanTail = %f, want 3", got)
	}
	if got := meanTail(nil, 0.5); got != 0 {
		t.Errorf("meanTail(nil) = %f", got)
	}
	if got := meanTail([]float64{7}, 0.1); got != 7 {
		t.Errorf("meanTail single = %f", got)
	}
}

func TestIntLabels(t *testing.T) {
	got := intLabels([]int{1, 22})
	if got[0] != "1" || got[1] != "22" {
		t.Errorf("intLabels = %v", got)
	}
}

func TestIsqrtInt(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 9: 3, 10000: 100} {
		if got := isqrtInt(n); got != want {
			t.Errorf("isqrtInt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFig1cdExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment smoke test skipped in short mode")
	}
	e := Find("fig1cd")
	reps, err := e.Run(Params{Quick: true, Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("reports = %d, want 2 (loads + throughput)", len(reps))
	}
	if len(reps[0].Columns) == 0 || len(reps[0].Rows) == 0 {
		t.Errorf("load report empty: %+v", reps[0])
	}
	if len(reps[1].Rows) == 0 {
		t.Errorf("throughput report empty")
	}
	// The throughput series must contain non-zero samples.
	nonZero := false
	for _, row := range reps[1].Rows {
		if len(row.Cells) > 0 && row.Cells[0] > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Error("throughput series all zero")
	}
}
