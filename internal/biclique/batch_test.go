package biclique

import (
	"testing"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/stream"
)

// TestBatchingExactlyOnceMatchesUnbatched runs the identical workload
// through the legacy per-tuple path (BatchSize=1) and the batched data
// plane, and requires both to produce exactly the reference pair set.
// An odd batch size that never divides the lane traffic evenly is
// included so partial-batch flushes (linger/idle) carry real weight.
func TestBatchingExactlyOnceMatchesUnbatched(t *testing.T) {
	tuples := makeWorkload(6000, 50, 0.3, 11)
	want := referenceJoin(tuples, nil)
	for _, size := range []int{1, 7, DefaultBatchSize} {
		cfg := baseConfig()
		cfg.Strategy = StrategyHash
		cfg.BatchSize = size
		_, got := runFinite(t, cfg, tuples)
		assertExactlyOnce(t, want, got)
	}
}

// TestBatchingExactlyOnceUnderMigration is the marker-fencing check for
// the batched data plane: migrations fire under heavy skew while lanes
// carry open batches, and exactly-once only holds if the dispatcher
// flushes every open batch BEFORE emitting a marker — otherwise tuples
// buffered in a lane would arrive after the marker they must precede.
func TestBatchingExactlyOnceUnderMigration(t *testing.T) {
	tuples := makeWorkload(8000, 40, 0.5, 6)
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	cfg := baseConfig()
	cfg.Strategy = StrategyHash
	cfg.Predicate = pred
	cfg.BatchSize = DefaultBatchSize
	cfg.BatchLinger = time.Millisecond
	cfg.Migration = MigrationConfig{
		Enabled: true,
		Policy: core.MonitorPolicy{
			Theta:     1.2,
			Cooldown:  25 * time.Millisecond,
			MinStored: 16,
		},
	}
	sys, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, pred), got)
	if sys.Metrics().Migrations.Value() == 0 {
		t.Error("expected at least one migration; batched fencing untested otherwise")
	}
}

// TestBatchConfigValidation pins the BatchSize knob semantics: zero means
// "default batching", one means the legacy unbatched path, negatives are
// rejected.
func TestBatchConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := baseConfig()
		cfg.Sources = []TupleSource{sliceSource(nil)}
		return cfg
	}
	cfg := base()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.BatchSize != DefaultBatchSize {
		t.Errorf("zero BatchSize resolved to %d, want default %d", cfg.BatchSize, DefaultBatchSize)
	}
	if cfg.BatchLinger <= 0 {
		t.Errorf("zero BatchLinger not defaulted: %v", cfg.BatchLinger)
	}

	cfg = base()
	cfg.BatchSize = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate(BatchSize=1): %v", err)
	}
	if cfg.BatchSize != 1 {
		t.Errorf("BatchSize=1 rewritten to %d; must stay the unbatched path", cfg.BatchSize)
	}

	cfg = base()
	cfg.BatchSize = -3
	if err := cfg.Validate(); err == nil {
		t.Error("negative BatchSize accepted")
	}
}
