package biclique

import (
	"sync/atomic"
	"testing"
	"time"

	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// runBenchPipeline pushes one finite workload through a full system and
// returns the number of joined pairs observed. Used by the allocation
// benchmarks: one b.N iteration = one complete dispatcher→joiner run, so
// allocs/op compares the whole data plane between batch sizes.
func runBenchPipeline(b *testing.B, cfg Config, tuples []stream.Tuple) int64 {
	b.Helper()
	var pairs atomic.Int64
	cfg.EmitResults = true
	cfg.OnResult = func(stream.JoinedPair) { pairs.Add(1) }
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(60 * time.Second); err != nil {
		sys.Stop()
		b.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	return pairs.Load()
}

func benchmarkDataPlane(b *testing.B, batchSize int, store StoreImpl) {
	// Sparse key space: few pairs actually match, so per-pair result
	// allocations do not drown out the per-tuple transport cost the
	// benchmark is comparing (boxing + channel send per emit vs per batch).
	tuples := makeWorkload(20000, 15000, 0, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := baseConfig()
		cfg.Strategy = StrategyHash
		cfg.BatchSize = batchSize
		cfg.StoreImpl = store
		// Long stats interval: keep the periodic reporter out of the
		// allocation profile so the comparison isolates the data plane.
		cfg.StatsInterval = time.Second
		// Splitting enabled so the ceiling covers the detector on the hot
		// path; the sparse key space never crosses the threshold, so this
		// prices sketch observation, not salted routing.
		cfg.Split = SplitConfig{Threshold: 0.5, Ways: 2}
		// Observability on: the tracer must stay off the data plane, so
		// the allocation ceiling holds with it attached.
		cfg.Tracer = obs.NewTracer(0)
		if n := runBenchPipeline(b, cfg, tuples); n == 0 {
			b.Fatal("no pairs produced")
		}
	}
}

// BenchmarkDataPlaneUnbatched measures the legacy per-tuple path: every
// dispatcher emit boxes one TupleMsg into an interface and performs one
// channel send.
func BenchmarkDataPlaneUnbatched(b *testing.B) { benchmarkDataPlane(b, 1, StoreChunked) }

// BenchmarkDataPlaneBatch32 measures the batched data plane at the
// default batch size; allocs/op must come in well below the unbatched
// run since boxing and channel sends are amortized ~32×. This is the
// benchmark scripts/alloc_gate.sh holds against ci/alloc_ceiling.txt.
func BenchmarkDataPlaneBatch32(b *testing.B) { benchmarkDataPlane(b, DefaultBatchSize, StoreChunked) }

// BenchmarkDataPlaneBatch32MapStore is the same run with the map
// reference store, making the arena's allocation win directly observable:
//
//	go test ./internal/biclique -bench 'DataPlaneBatch32' -benchmem
func BenchmarkDataPlaneBatch32MapStore(b *testing.B) {
	benchmarkDataPlane(b, DefaultBatchSize, StoreMap)
}
