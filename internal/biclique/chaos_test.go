package biclique

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"fastjoin/internal/chaos"
	"fastjoin/internal/core"
	"fastjoin/internal/stream"
)

// Replay flags: a failing chaos run prints its profile and seed; re-run
// exactly that fault schedule with
//
//	go test ./internal/biclique -run TestChaosReplay -args \
//	    -chaos.profile=mixed -chaos.seed=17
//
// -chaos.runs widens the randomized sweep (seeds beyond the base matrix);
// `make chaos` uses it to reach hundreds of runs.
var (
	chaosProfileFlag = flag.String("chaos.profile", "mixed", "chaos profile for TestChaosReplay")
	chaosSeedFlag    = flag.Uint64("chaos.seed", 0, "injector seed for TestChaosReplay (0 skips the test)")
	chaosRunsFlag    = flag.Int("chaos.runs", 0, "extra seeds per profile in TestChaosSweep")
)

// chaosBaseConfig is the shared shape of every chaos run: migration on
// with an aggressive trigger so the protocol actually exercises, a short
// abort timeout so stuck handshakes roll back within the test, and a
// thinning predicate that keeps the hot keys' quadratic pair count
// checkable without changing probe volume.
func chaosBaseConfig(seed uint64) Config {
	cfg := baseConfig()
	cfg.Seed = seed*2 + 1
	cfg.StatsInterval = 10 * time.Millisecond
	cfg.Predicate = func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	cfg.Migration = MigrationConfig{
		Enabled: true,
		Policy: core.MonitorPolicy{
			Theta:     1.1,
			Cooldown:  15 * time.Millisecond,
			MinStored: 8,
		},
		StuckTimeout: 500 * time.Millisecond,
		AbortTimeout: 150 * time.Millisecond,
	}
	return cfg
}

// waitChaosSettled drives the system to true quiescence under fault
// injection. WaitComplete alone is not enough: the engine can settle
// during the quiet gap between stats ticks while a migration handshake
// waits for a tick-driven retransmit, with tuples parked in the source's
// temporary queue or a target's inbound buffer. So after every settle we
// poll MigrationsInFlight and go back to waiting until both agree.
func waitChaosSettled(t *testing.T, sys *System) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			t.Fatalf("chaos run hung: %d migrations still in flight at deadline",
				sys.MigrationsInFlight())
		}
		if err := sys.WaitComplete(remain); err != nil {
			t.Fatalf("WaitComplete under chaos: %v (migrations in flight: %d)",
				err, sys.MigrationsInFlight())
		}
		if sys.MigrationsInFlight() == 0 {
			// One more settle: the handler that zeroed the gauge may have
			// emitted replayed tuples that are still in flight.
			if err := sys.WaitComplete(time.Until(deadline)); err == nil &&
				sys.MigrationsInFlight() == 0 {
				return
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runChaos executes one seeded fault-injected run and checks the
// differential property: the emitted pair set must equal the brute-force
// reference exactly — no losses, no duplicates, no spurious pairs — no
// matter what the profile dropped, delayed, duplicated, or aborted.
func runChaos(t *testing.T, profileName string, seed uint64, nTuples int, mutate ...func(*Config)) *System {
	t.Helper()
	profile, err := chaos.Lookup(profileName)
	if err != nil {
		t.Fatal(err)
	}
	tuples := makeWorkload(nTuples, 30, 0.5, int64(seed)+100)
	cfg := chaosBaseConfig(seed)
	cfg.Chaos = chaos.NewInjector(profile, int64(seed))
	for _, m := range mutate {
		m(&cfg)
	}

	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitChaosSettled(t, sys)
	sys.Stop()

	want := referenceJoin(tuples, cfg.Predicate)
	got := col.snapshot()
	counts := cfg.Chaos.Counts()
	t.Logf("profile=%s seed=%d: %d pairs, faults %+v, migrations=%d aborts=%d",
		profileName, seed, len(got), counts,
		sys.Metrics().Migrations.Value(), sys.Metrics().MigrationAborts.Value())
	assertExactlyOnce(t, want, got)
	return sys
}

// enableSplit is the chaos matrix's split dimension: hot-key splitting
// with a threshold the workload's hot keys (~50% of each dispatcher
// task's traffic) clear comfortably, and a short detector epoch so the
// handshake gets many retry rounds within a few thousand tuples even
// when a profile drops intents or acks.
func enableSplit(cfg *Config) {
	cfg.Split = SplitConfig{
		Threshold:      0.15,
		Ways:           2,
		Epoch:          128,
		SketchCapacity: 32,
	}
}

// TestChaosDifferential is the base matrix: every built-in fault profile
// across {split off, split on} and a handful of seeds, each run checked
// against the brute-force join. A split-enabled run must actually split
// (the workload is skewed enough that a silent detector would void the
// dimension) and must still emit exactly the reference pair set across
// every interleaving of split marks, migration fences, and faults.
// Replay any failure with -chaos.profile/-chaos.seed.
func TestChaosDifferential(t *testing.T) {
	profiles := []string{"droponly", "delayonly", "duponly", "mixed"}
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for _, profile := range profiles {
		for _, split := range []bool{false, true} {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				profile, split, seed := profile, split, seed
				name := fmt.Sprintf("%s/split=off/seed=%d", profile, seed)
				if split {
					name = fmt.Sprintf("%s/split=on/seed=%d", profile, seed)
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					var mutate []func(*Config)
					if split {
						mutate = append(mutate, enableSplit)
					}
					sys := runChaos(t, profile, seed, 3000, mutate...)
					met := sys.Metrics()
					if split && met.KeysSplit.Value() == 0 {
						t.Errorf("split-enabled skewed run never split a key (profile=%s seed=%d)", profile, seed)
					}
					if !split && met.KeysSplit.Value() != 0 {
						t.Errorf("split disabled but %d keys split", met.KeysSplit.Value())
					}
				})
			}
		}
	}
}

// TestChaosSweep widens the seed space; -chaos.runs=N adds N seeds per
// profile (how `make chaos` reaches hundreds of runs).
func TestChaosSweep(t *testing.T) {
	if *chaosRunsFlag <= 0 {
		t.Skip("set -chaos.runs=N to run the randomized sweep")
	}
	profiles := []string{"droponly", "delayonly", "duponly", "mixed"}
	for _, profile := range profiles {
		for i := 0; i < *chaosRunsFlag; i++ {
			profile, seed := profile, uint64(1000+i)
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				t.Parallel()
				runChaos(t, profile, seed, 2000)
			})
		}
	}
}

// TestChaosReplay re-runs a single fault schedule named on the command
// line, for debugging failures from the matrix or the sweep.
func TestChaosReplay(t *testing.T) {
	if *chaosSeedFlag == 0 {
		t.Skip("set -chaos.seed=N (and optionally -chaos.profile) to replay a run")
	}
	runChaos(t, *chaosProfileFlag, *chaosSeedFlag, 3000)
}

// TestChaosAbortRollback drives the abort path deterministically: the
// abortstorm profile drops every forward marker, so no handshake can
// ever complete and every migration attempt must time out, roll back,
// and replay — while the join stays exact.
func TestChaosAbortRollback(t *testing.T) {
	profile, err := chaos.Lookup("abortstorm")
	if err != nil {
		t.Fatal(err)
	}
	tuples := makeWorkload(6000, 30, 0.5, 77)
	cfg := chaosBaseConfig(7)
	cfg.Chaos = chaos.NewInjector(profile, 7)
	// A long cooldown leaves a wide quiet window between abort cycles so
	// the settle loop can observe the system between attempts.
	cfg.Migration.Policy.Cooldown = 300 * time.Millisecond
	cfg.Migration.AbortTimeout = 60 * time.Millisecond

	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitChaosSettled(t, sys)
	sys.Stop()

	met := sys.Metrics()
	if met.MigrationAborts.Value() == 0 {
		t.Error("abortstorm run aborted nothing; the rollback path went untested")
	}
	if met.Migrations.Value() != 0 {
		t.Errorf("%d migrations completed with every forward marker dropped",
			met.Migrations.Value())
	}
	assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), col.snapshot())
	for _, ev := range met.MigrationLog() {
		if !ev.Aborted {
			t.Errorf("non-aborted migration event under abortstorm: %+v", ev)
		}
	}
}

// TestChaosAbortDisabled checks the AbortTimeout=0 contract: with aborts
// off and a profile that only delays (never drops) control traffic, a
// stuck-looking handshake must still complete via retransmits.
func TestChaosAbortDisabled(t *testing.T) {
	profile, err := chaos.Lookup("delayonly")
	if err != nil {
		t.Fatal(err)
	}
	tuples := makeWorkload(4000, 30, 0.5, 33)
	cfg := chaosBaseConfig(3)
	cfg.Chaos = chaos.NewInjector(profile, 3)
	cfg.Migration.AbortTimeout = 0

	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitChaosSettled(t, sys)
	sys.Stop()
	if sys.Metrics().MigrationAborts.Value() != 0 {
		t.Errorf("aborts fired with AbortTimeout=0")
	}
	assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), col.snapshot())
}

// TestChaosClassify pins the fault-eligibility matrix: the classifier is
// what keeps data-plane traffic out of every profile's reach, so a
// misclassification silently voids the whole differential suite.
func TestChaosClassify(t *testing.T) {
	cases := []struct {
		value any
		want  chaos.Class
	}{
		{TupleMsg{}, chaos.ClassData},
		{TupleBatch{}, chaos.ClassData},
		{ShuffleBatch{}, chaos.ClassData},
		{&PairBatch{}, chaos.ClassData},
		{Marker{}, chaos.ClassMarker},
		{Marker{Revert: true}, chaos.ClassMarkerRevert},
		{RouteUpdate{}, chaos.ClassRouteUpdate},
		{MigrateCmd{}, chaos.ClassCommand},
		{LoadReport{}, chaos.ClassReport},
		{MigrationDone{}, chaos.ClassReport},
		{MigrateBatch{}, chaos.ClassMigData},
		{MigrateFlush{}, chaos.ClassMigData},
		{MigrateAbort{}, chaos.ClassMigData},
		{MigrateReturn{}, chaos.ClassMigData},
		// Split handshake: marks are un-droppable fences (losing one
		// leaves an instance un-tainted under multi-copy routing); the
		// intent/ack legs are retried, so profiles may attack them.
		{SplitMark{}, chaos.ClassData},
		{UnsplitMark{}, chaos.ClassData},
		{SplitRetire{}, chaos.ClassData},
		{SplitIntent{}, chaos.ClassCommand},
		{SplitAck{}, chaos.ClassReport},
		{SplitDrained{}, chaos.ClassReport},
		{stream.Tuple{}, chaos.ClassOther},
		{stream.JoinedPair{}, chaos.ClassOther},
		{nil, chaos.ClassOther},
	}
	for _, c := range cases {
		if got := ChaosClassify(c.value); got != c.want {
			t.Errorf("ChaosClassify(%T) = %v, want %v", c.value, got, c.want)
		}
	}
}
