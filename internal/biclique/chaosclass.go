package biclique

import (
	"time"

	"fastjoin/internal/chaos"
	"fastjoin/internal/engine"
)

// ChaosClassify maps biclique message types onto chaos fault classes.
// The classification encodes the protocol's fault-eligibility matrix:
//
//   - TupleMsg (and anything unrecognized, e.g. raw tuples between the
//     spout/shuffler/dispatcher) is data-lane traffic whose per-key FIFO
//     the exactly-once argument relies on — profiles must keep it clean.
//   - MigrateBatch/Flush/Abort/Return ride FIFO control lanes and carry
//     stored tuples; losing one loses tuples, so profiles keep them
//     clean too (duplicates would be tolerated via epoch dedup).
//   - Markers, routing updates, commands, and reports are the recovery
//     protocol's own traffic: dropping, delaying, duplicating, or
//     reordering them must never lose results — that is what the chaos
//     suite verifies.
func ChaosClassify(value any) chaos.Class {
	switch v := value.(type) {
	case TupleMsg, TupleBatch, ShuffleBatch:
		// A batch is data-lane traffic exactly like the tuples it carries:
		// dropping one would lose a whole lane segment, so profiles must
		// keep it as clean as a single TupleMsg.
		return chaos.ClassData
	case *PairBatch:
		// Result batches are pooled and recycled by the sink; besides being
		// join output (dropping one loses pairs), a duplicated delivery
		// would race the pool's reuse of the buffer. ClassData keeps every
		// profile's hands off.
		return chaos.ClassData
	case SplitMark, UnsplitMark, SplitRetire:
		// Split state fences. A mark rides the data lane behind a lane
		// flush and ahead of the first salted tuple; losing one would leave
		// a member un-tainted (free to migrate salted tuples out from under
		// the probe fan-out) or salting stores toward an instance whose
		// probes no longer cover it. SplitRetire is fenced the same way:
		// losing one would leave a member tainted (and re-announcing
		// SplitDrained) forever after the dispatcher already unfroze the
		// key. Like the tuple traffic they fence, marks are not
		// retransmitted — so no profile may touch them.
		return chaos.ClassData
	case Marker:
		if v.Revert {
			return chaos.ClassMarkerRevert
		}
		return chaos.ClassMarker
	case RouteUpdate:
		return chaos.ClassRouteUpdate
	case MigrateCmd:
		return chaos.ClassCommand
	case SplitIntent:
		// The split handshake's request leg: droppable like a MigrateCmd —
		// the detector re-sends it every epoch until acked.
		return chaos.ClassCommand
	case LoadReport, MigrationDone:
		return chaos.ClassReport
	case SplitAck:
		// The handshake's reply leg: droppable; the owner re-acks the next
		// re-sent intent idempotently.
		return chaos.ClassReport
	case SplitDrained:
		// The drain report leg: droppable; a drained member re-announces
		// every stats tick until the retire (or a reheat) lands, and the
		// dispatcher dedups by (side, instance, generation).
		return chaos.ClassReport
	case MigrateBatch, MigrateFlush, MigrateAbort, MigrateReturn:
		return chaos.ClassMigData
	default:
		return chaos.ClassOther
	}
}

// chaosInject adapts a chaos.Injector to the engine's InjectFunc. The
// lane is the receiving task plus stream, so each delivery edge draws
// from its own deterministic random sequence regardless of goroutine
// interleaving elsewhere.
func chaosInject(in *chaos.Injector) engine.InjectFunc {
	return func(target engine.Context, stream string, _ bool, value any) engine.FaultDecision {
		d := in.Decide(target.String()+"/"+stream, ChaosClassify(value))
		switch d.Op {
		case chaos.OpDrop:
			return engine.FaultDecision{Op: engine.FaultDrop}
		case chaos.OpDup:
			return engine.FaultDecision{Op: engine.FaultDup}
		case chaos.OpDelay:
			return engine.FaultDecision{Op: engine.FaultDelay, Delay: d.Delay}
		default:
			return engine.FaultDecision{}
		}
	}
}

// chaosStall adapts a chaos.Injector to the engine's StallFunc.
func chaosStall(in *chaos.Injector) engine.StallFunc {
	return func(target engine.Context, _ string, _ any) time.Duration {
		return in.StallFor(target.String())
	}
}
