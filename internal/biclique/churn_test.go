package biclique

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fastjoin/internal/chaos"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// churnWindow is the churn scenario's time window. It must comfortably
// exceed the wall time the tuple traffic takes to settle: every tuple's
// event time is within nanoseconds of workload creation, so all salted
// shares expire together at creation+window — after the last probe has
// been processed (keeping the windowed result equal to the full-history
// reference) but early enough that the test can watch the drain rounds
// complete.
const churnWindow = 10 * time.Second

// makeChurnWorkload is the retire scenario: a hot phase (first 40%, two
// heavy hitters at ~50% bias) that forces splits, then a uniform cold
// tail long enough — a dozen detector epochs per dispatcher task — that
// every split key cools below the hysteresis and deactivates before the
// traffic ends, even when a profile's drops push the activation several
// epochs into the tail. Retirement then rides on wall clock alone: the
// window expires the residual shares and the drain handshake empties the
// table.
func makeChurnWorkload(n int, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]stream.Tuple, 0, n)
	var rSeq, sSeq uint64
	now := stream.Now()
	pick := func(i int) stream.Key {
		if i*100 < n*40 && rng.Float64() < 0.5 {
			return stream.Key(rng.Intn(2)) // two hot keys, hot phase only
		}
		return stream.Key(10 + rng.Intn(28))
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tuples = append(tuples, stream.Tuple{
				Side: stream.R, Key: pick(i), Seq: rSeq, EventTime: now + int64(i),
			})
			rSeq++
		} else {
			tuples = append(tuples, stream.Tuple{
				Side: stream.S, Key: pick(i), Seq: sSeq, EventTime: now + int64(i),
			})
			sSeq++
		}
	}
	return tuples
}

// pacedChurnSource drips the slice out with a short sleep every few
// tuples. The scenario's liveness claim — splits activate, cool, and
// retire — assumes the stream arrives over time rather than as one
// burst: on a loaded single-core box a burst lets the spout and
// dispatcher race the entire finite workload through before the owner
// joiner is ever scheduled, so the ack returns after the hot keys have
// cooled and the pending is abandoned — a void run. The sleep points
// (several per detector epoch) bound how far the dispatcher can run
// ahead of the handshake round trip.
func pacedChurnSource(tuples []stream.Tuple) TupleSource {
	i := 0
	return func() (stream.Tuple, bool) {
		if i >= len(tuples) {
			return stream.Tuple{}, false
		}
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
		t := tuples[i]
		i++
		return t, true
	}
}

// runChurn executes one seeded churn run: split-enabled, windowed stores,
// fault profile applied. After the data traffic settles it keeps the
// system running — the stats ticks drive the window Advance, the members'
// drain reports, and the dispatcher's retires — and polls the gauges
// until the split table is empty again. That emptiness is the scenario's
// bounded-memory claim: every key that ever split is accounted for as
// retired, with no entry, taint, or salted share left behind, so split
// state cannot accumulate across hot-key churn. The pair set must equal
// the brute-force reference exactly.
func runChurn(t *testing.T, profileName string, seed uint64, mutate ...func(*Config)) *System {
	t.Helper()
	profile, err := chaos.Lookup(profileName)
	if err != nil {
		t.Fatal(err)
	}
	tuples := makeChurnWorkload(6000, int64(seed)+200)
	cfg := chaosBaseConfig(seed)
	cfg.Window = churnWindow
	cfg.Chaos = chaos.NewInjector(profile, int64(seed))
	enableSplit(&cfg)
	// Migration off: a joiner mid-migration of a key defers the split ack,
	// and with the hot phase finite an unlucky schedule can starve the
	// handshake until the key cools — leaving nothing to retire and the
	// scenario void. The split×migration interleavings have their own
	// differential (TestSplitMigrateUnsplitInterleaving, the base matrix);
	// this matrix isolates the drain protocol, whose liveness must not
	// depend on migration timing.
	cfg.Migration = MigrationConfig{}
	for _, m := range mutate {
		m(&cfg)
	}

	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{pacedChurnSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitChaosSettled(t, sys)

	met := sys.Metrics()
	// Generous headroom past the window expiry: the drain itself needs
	// only a few stats ticks, but on a loaded single-core box (the full
	// suite, concurrent CI jobs) wall clock stretches several-fold.
	deadline := time.Now().Add(churnWindow + 90*time.Second)
	for met.SplitKeys.Value() != 0 || met.ResidualKeys.Value() != 0 || met.KeysRetired.Value() == 0 {
		if time.Now().After(deadline) {
			sys.Stop()
			t.Fatalf("split table never drained: split=%d splits=%d residual=%d retired=%d",
				met.SplitKeys.Value(), met.KeysSplit.Value(),
				met.ResidualKeys.Value(), met.KeysRetired.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	sys.Stop()

	if met.KeysSplit.Value() == 0 {
		t.Error("churn run never split a key: the lifecycle went unexercised")
	}
	counts := cfg.Chaos.Counts()
	t.Logf("profile=%s seed=%d: splits=%d unsplits=%d retired=%d faults=%+v",
		profileName, seed, met.KeysSplit.Value(), met.KeysUnsplit.Value(),
		met.KeysRetired.Value(), counts)
	assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), col.snapshot())
	return sys
}

// TestChaosChurnRetire is the retire differential matrix: under every
// fault profile, splits must occur, cool, drain, and retire — the split
// table returning to empty — while the emitted pair set stays exactly
// the brute-force reference. SplitDrained is droppable (re-announced
// every tick) and SplitRetire is a fenced data-lane mark, so the drain
// handshake must survive drops, delays, and duplicates unaided.
func TestChaosChurnRetire(t *testing.T) {
	profiles := []string{"droponly", "delayonly", "duponly", "mixed"}
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for _, profile := range profiles {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			profile, seed := profile, seed
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				t.Parallel()
				runChurn(t, profile, seed)
			})
		}
	}
}

// TestChurnRetireTraceSpans runs the churn scenario fault-free with the
// tracer attached: every span must validate, and — because the run ends
// with the split table empty — every split span must have reached a
// terminal event, with at least one full
// pending→activate→residual→drained→retire lifecycle on record.
func TestChurnRetireTraceSpans(t *testing.T) {
	tr := obs.NewTracer(1 << 16)
	sys := runChurn(t, "none", 3, func(c *Config) { c.Tracer = tr })
	traceSpanCheck(t, sys, tr)

	splitSpans, retires := 0, 0
	for _, s := range obs.Spans(tr.Snapshot()) {
		if !s.ID.SplitSpan() {
			continue
		}
		splitSpans++
		switch s.Terminal() {
		case obs.KindSplitRetire:
			retires++
		case obs.KindSplitAbandon:
		default:
			t.Errorf("split span %v left dangling after the table drained: %v", s.ID, kindsOf(s))
		}
	}
	if splitSpans == 0 {
		t.Error("no split spans recorded")
	}
	if retires == 0 {
		t.Error("no split span ended in retire; the full lifecycle never traced")
	}
	if got := int(sys.Metrics().KeysRetired.Value()); got != retires {
		t.Errorf("retire spans = %d, KeysRetired counter = %d", retires, got)
	}
}
