package biclique

import (
	"fmt"
	"time"

	"fastjoin/internal/chaos"
	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
	"fastjoin/internal/window"
)

// Strategy selects the partitioning scheme of the dispatcher.
type Strategy uint8

const (
	// StrategyHash is key-hash partitioning: each key has exactly one
	// owner instance per side; stores and probes for the key go there.
	// This is BiStream's hash partitioning and the mode FastJoin's
	// migration operates in (migration rewrites the key -> owner map).
	StrategyHash Strategy = iota
	// StrategyContRand is BiStream's hybrid routing: keys are statically
	// hashed to a subgroup of instances; a tuple is stored on a random
	// member of its key's subgroup and probes are broadcast to the whole
	// subgroup. Static load spreading at the cost of replicated probes.
	StrategyContRand
	// StrategyRandom stores each tuple on a random instance of its side
	// and broadcasts every probe to all instances of the opposite group
	// (the paper's random partitioning baseline).
	StrategyRandom
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case StrategyHash:
		return "hash"
	case StrategyContRand:
		return "contrand"
	case StrategyRandom:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// TupleSource produces the input tuples of one spout task. It returns
// ok=false when exhausted. Sources must be safe to call from the spout's
// goroutine only (no extra synchronization needed).
type TupleSource func() (t stream.Tuple, ok bool)

// StoreImpl selects the window-store implementation of the join instances.
type StoreImpl uint8

const (
	// StoreChunked is the chunked arena store (the default): slab-backed
	// per-key chunk chains with an open-addressing index and O(expired)
	// expiry. See DESIGN.md "Store memory layout".
	StoreChunked StoreImpl = iota
	// StoreMap is the map[Key][]Tuple reference store — the differential
	// oracle and the A/B baseline of the bench `store` experiment.
	StoreMap
)

// String names the store implementation as the bench flags do.
func (s StoreImpl) String() string {
	switch s {
	case StoreChunked:
		return "chunked"
	case StoreMap:
		return "map"
	default:
		return fmt.Sprintf("StoreImpl(%d)", uint8(s))
	}
}

// newStore builds one join instance's window store per the config.
func newStore(cfg *Config) window.Store {
	switch {
	case cfg.Window > 0 && cfg.StoreImpl == StoreMap:
		return window.NewRefWindowed(cfg.Window.Nanoseconds(), cfg.SubWindows)
	case cfg.Window > 0:
		return window.NewWindowed(cfg.Window.Nanoseconds(), cfg.SubWindows)
	case cfg.StoreImpl == StoreMap:
		return window.NewRef()
	default:
		return window.New()
	}
}

// MigrationConfig controls FastJoin's dynamic load balancing.
type MigrationConfig struct {
	// Enabled turns the monitors' migration triggers on. With it off the
	// system behaves exactly like BiStream under the same strategy.
	Enabled bool
	// Policy is the monitor trigger policy (Θ threshold, cooldown).
	Policy core.MonitorPolicy
	// Selector picks the key set to migrate; nil means core.GreedyFit.
	Selector core.Selector
	// MinBenefit is θ_gap for GreedyFit.
	MinBenefit int64
	// StuckTimeout re-arms a monitor whose triggered migration never
	// reported completion (e.g. the source instance panicked).
	StuckTimeout time.Duration
	// AbortTimeout bounds how long a migration source waits for the
	// dispatcher marker handshake before aborting the attempt and rolling
	// it back (routing restored, batch returned, buffered tuples replayed
	// in original order). It is measured in stats ticks — rounded to
	// AbortTimeout/StatsInterval, minimum one tick — so the decision
	// depends only on delivered messages, never on wall-clock reads.
	// Zero disables aborts: the source retries the handshake forever.
	AbortTimeout time.Duration
}

// SplitConfig controls hot-key splitting: the dispatcher-side heavy-hitter
// detector and the salted split routing it switches detected keys to.
// Splitting is the escape hatch for the one workload whole-key migration
// cannot fix — a single key hotter than one instance's capacity.
type SplitConfig struct {
	// Threshold enables splitting when positive: a key becomes a heavy
	// hitter when its guaranteed frequency share of the observing
	// dispatcher task's recent traffic reaches Threshold. Each key's
	// traffic flows through exactly one dispatcher task, so a per-task
	// sketch sees the key's full stream; the share is relative to that
	// task's traffic, not the whole system's. A split key un-splits when
	// its share decays below Threshold/2 (hysteresis). Requires
	// StrategyHash.
	Threshold float64
	// Ways is how many instances per side a split key's stores are salted
	// over (and its probes broadcast to). Default min(4, JoinersPerSide).
	Ways int
	// Epoch is the number of routed tuples a dispatcher task observes
	// between detector evaluations; every evaluation also halves the
	// sketch (exponential decay in observation time — no wall clock in
	// the decision path). Default 2048.
	Epoch int
	// SketchCapacity is the SpaceSaving counter budget (default 64; the
	// detector's error bound is task-traffic/SketchCapacity per epoch).
	SketchCapacity int
}

// DefaultBatchSize is the dispatcher batch capacity used when
// Config.BatchSize is zero. Batching is on by default so every test and
// chaos run exercises the batched data plane; set BatchSize to 1 for the
// legacy unbatched path.
const DefaultBatchSize = 32

// Config parameterizes a biclique join system.
type Config struct {
	// JoinersPerSide is the number of join instances in each group
	// (the paper's experiments vary 16-64; laptop-scale defaults are
	// smaller).
	JoinersPerSide int
	// Dispatchers is the parallelism of the dispatcher bolt.
	Dispatchers int
	// Shufflers is the parallelism of the pre-processing bolt.
	Shufflers int
	// Strategy is the partitioning scheme.
	Strategy Strategy
	// SubgroupSize is the ContRand subgroup size (default 2; clamped to
	// JoinersPerSide).
	SubgroupSize int
	// Migration configures FastJoin's dynamic load balancing (only
	// meaningful under StrategyHash).
	Migration MigrationConfig
	// Split configures hot-key splitting (only meaningful under
	// StrategyHash; composes with Migration — split keys are excluded
	// from migration key selection).
	Split SplitConfig
	// StatsInterval is how often join instances report load and monitors
	// evaluate (default 100ms).
	StatsInterval time.Duration
	// BatchSize is the dispatcher's per-(side, target) batch capacity: up
	// to BatchSize routed tuples travel as one TupleBatch message (one
	// channel send, one boxed value for the whole group). 0 means the
	// default (DefaultBatchSize); 1 disables batching and restores the
	// one-message-per-tuple data plane (the A/B baseline).
	BatchSize int
	// BatchLinger bounds how long a partially filled batch may sit in the
	// dispatcher under light load before a tick flushes it (default 2ms;
	// only meaningful when BatchSize > 1). Idle dispatchers flush eagerly
	// regardless — the linger only matters while the task stays busy with
	// other lanes' traffic.
	BatchLinger time.Duration
	// StoreImpl selects the join instances' window-store implementation:
	// StoreChunked (the default arena store) or StoreMap (the reference
	// layout, kept for A/B benchmarking and differential testing).
	StoreImpl StoreImpl
	// Window is the join window span; zero means full-history join.
	Window time.Duration
	// SubWindows is the number of sub-windows when Window > 0 (default 8).
	SubWindows int
	// Predicate optionally refines key-equality matches.
	Predicate stream.Predicate
	// PreProcess, when set, is applied to every tuple by the shuffler
	// (the paper's pre-processing unit supports "ordering or certain
	// user-defined functions"); it may rewrite keys or payloads. It runs
	// on the shuffler's goroutines and must be safe for concurrent use.
	PreProcess func(stream.Tuple) stream.Tuple
	// EmitResults — when true every joined pair is delivered to OnResult
	// via the sink bolt (needed for correctness checks). When false the
	// joiners only count pairs (the high-throughput mode used by the
	// benchmarks, where emitting every pair would dominate).
	EmitResults bool
	// OnResult receives joined pairs when EmitResults is set. Called from
	// the sink bolt's goroutine.
	OnResult func(stream.JoinedPair)
	// Sources feed the system; one spout task per source.
	Sources []TupleSource
	// Engine tunes queue capacities.
	Engine engine.Config
	// Chaos, when set, injects deterministic faults (drops, duplicates,
	// delays, stalls) into the control-plane traffic per the injector's
	// profile. Wired into Engine.Inject/Engine.Stall at Start unless those
	// are already set explicitly.
	Chaos *chaos.Injector
	// Tracer, when set, receives typed control-plane trace events from the
	// migration protocol: trigger with LI/Θ, key selection with benefit,
	// routing fence, marker handshake, replay, commit or abort+rollback.
	// Only migration-control messages emit events — never per-tuple work —
	// so tracing is cheap enough to leave on in production.
	Tracer *obs.Tracer
	// Seed derandomizes hash placement and the random strategies.
	Seed uint64

	// ServiceRate, when positive, emulates the per-node compute capacity
	// of a real cluster: each join instance processes at most ServiceRate
	// virtual ops per second (sleeping off any surplus), where a store
	// costs 1 op and a probe costs 1 + MatchCost * scanned-tuples ops.
	// This is the capacity model the benchmark harness uses so that the
	// paper's cluster experiments reproduce on hosts with few cores: an
	// overloaded instance saturates its own budget and backpressures,
	// while balanced instances run concurrently in virtual time.
	// Zero disables the emulation (instances run at host speed).
	ServiceRate float64
	// MatchCost is the virtual op cost per scanned stored tuple during a
	// probe (default 0.01 when ServiceRate is set).
	MatchCost float64
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if c.JoinersPerSide <= 0 {
		return fmt.Errorf("biclique: JoinersPerSide must be > 0")
	}
	if len(c.Sources) == 0 {
		return fmt.Errorf("biclique: at least one tuple source is required")
	}
	for i, src := range c.Sources {
		if src == nil {
			return fmt.Errorf("biclique: source %d is nil", i)
		}
	}
	if c.EmitResults && c.OnResult == nil {
		return fmt.Errorf("biclique: EmitResults requires OnResult")
	}
	if c.Strategy > StrategyRandom {
		// Converted from a panic in newRouter: an out-of-range strategy now
		// surfaces as a Start error instead of killing the dispatcher task.
		return fmt.Errorf("biclique: unknown strategy %v", c.Strategy)
	}
	if c.Strategy != StrategyHash && c.Migration.Enabled {
		return fmt.Errorf("biclique: migration requires StrategyHash, not %v", c.Strategy)
	}
	if c.Window < 0 {
		return fmt.Errorf("biclique: negative window")
	}
	if c.StoreImpl > StoreMap {
		return fmt.Errorf("biclique: unknown store implementation %v", c.StoreImpl)
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 2
	}
	if c.Shufflers <= 0 {
		c.Shufflers = 2
	}
	if c.SubgroupSize <= 0 {
		c.SubgroupSize = 2
	}
	if c.SubgroupSize > c.JoinersPerSide {
		c.SubgroupSize = c.JoinersPerSide
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 100 * time.Millisecond
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("biclique: negative BatchSize")
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	if c.Window > 0 && c.SubWindows <= 0 {
		c.SubWindows = 8
	}
	if c.ServiceRate < 0 {
		return fmt.Errorf("biclique: negative ServiceRate")
	}
	if c.ServiceRate > 0 && c.MatchCost <= 0 {
		c.MatchCost = 0.01
	}
	if c.Split.Threshold < 0 || c.Split.Threshold > 1 {
		return fmt.Errorf("biclique: Split.Threshold %v outside [0, 1]", c.Split.Threshold)
	}
	if c.Split.Threshold > 0 {
		if c.Strategy != StrategyHash {
			return fmt.Errorf("biclique: hot-key splitting requires StrategyHash, not %v", c.Strategy)
		}
		if c.Split.Ways <= 0 {
			c.Split.Ways = 4
		}
		if c.Split.Ways > c.JoinersPerSide {
			c.Split.Ways = c.JoinersPerSide
		}
		if c.Split.Epoch <= 0 {
			c.Split.Epoch = 2048
		}
		if c.Split.SketchCapacity <= 0 {
			c.Split.SketchCapacity = 64
		}
	}
	if c.Migration.Enabled {
		if c.Migration.Selector == nil {
			c.Migration.Selector = core.GreedyFit
		}
		if c.Migration.StuckTimeout <= 0 {
			c.Migration.StuckTimeout = 10 * time.Second
		}
		if c.Migration.MinBenefit <= 0 {
			// θ_gap: keys whose migration benefit is zero are pure routing
			// churn; skip them by default.
			c.Migration.MinBenefit = 1
		}
	}
	return nil
}

// Component names of the topology, exported for inspection via
// System.Cluster().Stats.
const (
	CompSpout      = "spout"
	CompShuffler   = "shuffler"
	CompDispatcher = "dispatcher"
	CompJoinerR    = "joinerR"
	CompJoinerS    = "joinerS"
	CompMonitorR   = "monitorR"
	CompMonitorS   = "monitorS"
	CompSink       = "sink"
)

// joinerComp returns the component name of the group that stores the given
// side's tuples.
func joinerComp(side stream.Side) string {
	if side == stream.R {
		return CompJoinerR
	}
	return CompJoinerS
}

// Stream names between components.
const (
	streamTuples   = "tuples"   // spout -> shuffler -> dispatcher
	streamToR      = "toR"      // dispatcher -> joinerR (direct)
	streamToS      = "toS"      // dispatcher -> joinerS (direct)
	streamResults  = "results"  // joiners -> sink
	streamLoadR    = "loadR"    // joinerR -> monitorR (ctrl)
	streamLoadS    = "loadS"    // joinerS -> monitorS (ctrl)
	streamCmdR     = "cmdR"     // monitorR -> joinerR (direct ctrl)
	streamCmdS     = "cmdS"     // monitorS -> joinerS (direct ctrl)
	streamMigR     = "migR"     // joinerR -> joinerR (direct ctrl)
	streamMigS     = "migS"     // joinerS -> joinerS (direct ctrl)
	streamSplitR   = "splitR"   // dispatcher -> joinerR (direct ctrl): split intents
	streamSplitS   = "splitS"   // dispatcher -> joinerS (direct ctrl): split intents
	streamRouteUpd = "routeupd" // joiners -> all dispatchers (ctrl)
	streamDoneR    = "migdoneR" // joinerR -> monitorR (ctrl)
	streamDoneS    = "migdoneS" // joinerS -> monitorS (ctrl)
)

// tupleStream returns the dispatcher->joiner stream for a side.
func tupleStream(side stream.Side) string {
	if side == stream.R {
		return streamToR
	}
	return streamToS
}

// loadStream returns the joiner->monitor load stream for a side.
func loadStream(side stream.Side) string {
	if side == stream.R {
		return streamLoadR
	}
	return streamLoadS
}

// cmdStream returns the monitor->joiner command stream for a side.
func cmdStream(side stream.Side) string {
	if side == stream.R {
		return streamCmdR
	}
	return streamCmdS
}

// splitStream returns the dispatcher->joiner split-intent stream for a
// side. Intents ride a control lane, not the data lane: an intent has no
// ordering role (only the fenced SplitMark starts multi-copy routing),
// and a control lane lets a backlogged owner ack while the key is still
// hot — on a data lane the ack could trail the entire backlog and arrive
// after the detector has already abandoned the pending.
func splitStream(side stream.Side) string {
	if side == stream.R {
		return streamSplitR
	}
	return streamSplitS
}

// migStream returns the joiner->joiner migration stream for a side.
func migStream(side stream.Side) string {
	if side == stream.R {
		return streamMigR
	}
	return streamMigS
}

// doneStream returns the joiner->monitor migration-done stream for a side.
func doneStream(side stream.Side) string {
	if side == stream.R {
		return streamDoneR
	}
	return streamDoneS
}
