package biclique

import (
	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/routing"
	"fastjoin/internal/stream"
)

// shufflerBolt is the pre-processing unit of the dispatching component
// (§III-A): it stamps event time on tuples that lack one, applies the
// user-defined pre-processing function if configured, and forwards the
// tuples to the dispatcher task owning the tuple's key. The key→task
// mapping lives here (not in an engine grouping) so that with batching
// enabled the bolt can accumulate a per-dispatcher lane and ship it as
// one ShuffleBatch; either way all traffic of one key flows through a
// single dispatcher task in arrival order.
type shufflerBolt struct {
	pre   func(stream.Tuple) stream.Tuple
	batch int
	nDisp int
	lanes []shuffleLane
}

// shuffleLane is one open shuffler→dispatcher batch; like batchLane the
// slice is handed off on emit and never reused.
type shuffleLane struct {
	tuples []stream.Tuple
}

func newShufflerFactory(cfg *Config) engine.BoltFactory {
	return func(int) engine.Bolt {
		return &shufflerBolt{pre: cfg.PreProcess, batch: cfg.BatchSize, nDisp: cfg.Dispatchers}
	}
}

func (b *shufflerBolt) Prepare(engine.Context, *engine.Collector) {
	if b.batch > 1 {
		b.lanes = make([]shuffleLane, b.nDisp)
	}
}

func (b *shufflerBolt) Execute(m engine.Message, out *engine.Collector) {
	if m.Stream == engine.TickStream {
		b.flushAll(out) // linger expired
		return
	}
	t, ok := m.Value.(stream.Tuple)
	if !ok {
		return
	}
	if b.pre != nil {
		t = b.pre(t)
	}
	if t.EventTime == 0 {
		t.EventTime = stream.Now()
	}
	target := int(uint64(t.Key) % uint64(b.nDisp))
	if b.batch <= 1 {
		out.EmitDirect(streamTuples, target, t)
		return
	}
	ln := &b.lanes[target]
	if ln.tuples == nil {
		ln.tuples = make([]stream.Tuple, 0, b.batch)
	}
	ln.tuples = append(ln.tuples, t)
	if len(ln.tuples) >= b.batch {
		b.flushShuffleLane(target, out)
	}
}

func (b *shufflerBolt) flushShuffleLane(target int, out *engine.Collector) {
	ln := &b.lanes[target]
	if len(ln.tuples) == 0 {
		return
	}
	out.EmitDirect(streamTuples, target, ShuffleBatch{Tuples: ln.tuples})
	ln.tuples = nil // ownership handed off; no recycling
}

func (b *shufflerBolt) flushAll(out *engine.Collector) {
	for target := range b.lanes {
		b.flushShuffleLane(target, out)
	}
}

// Flush implements engine.Flusher (see the invariant note there): no
// shuffle batch is left open while the system quiesces.
func (b *shufflerBolt) Flush(out *engine.Collector) { b.flushAll(out) }

func (b *shufflerBolt) Cleanup() {}

// dispatcherBolt routes every tuple twice: a store copy to the owner
// instance in the tuple's own side group and probe copies to the opposite
// group per the strategy. It maintains the routing table that FastJoin's
// migrations rewrite, acking every update back with a marker.
//
// With Config.BatchSize > 1 the bolt runs the batched data plane: routed
// tuples accumulate per (side, target) lane and travel as one TupleBatch
// message once the lane fills, a linger tick fires, or the engine's idle
// flush runs (the task's data queue drained). Lane order is preserved —
// a batch is one channel send carrying the lane's tuples in routing
// order — and every open batch is flushed before a Marker is emitted, so
// the migration fencing argument ("the marker rides behind every tuple
// this task routed there before the update") survives batching intact.
type dispatcherBolt struct {
	cfg    *Config
	router routing.Router
	met    *SystemMetrics
	// split is the task's hot-key splitting state (see split.go), nil
	// unless Config.Split.Threshold is set.
	split *splitTable
	ctx   engine.Context
	buf   []int // reusable probe-target buffer
	// seq numbers every routed tuple; see TupleMsg.Seq.
	seq uint64
	// applied orders routing updates per migration source so a delayed
	// stale update (e.g. a forward update overtaken by its own revert)
	// cannot rewind the table. Re-deliveries of the newest update are
	// re-applied (idempotent) and re-acked, which is what recovers
	// dropped markers.
	applied map[updateKey]uint64
	// batch is the effective lane capacity (<= 1 means unbatched); lanes
	// holds the open batch of each (side, joiner-task) pair.
	batch int
	lanes [2][]batchLane
}

// batchLane is one open (side, target) batch. The slice is handed to the
// consumer inside the emitted TupleBatch and never reused afterwards, so
// duplicated deliveries (fault injection) stay safe.
type batchLane struct {
	msgs []TupleMsg
}

// updateKey identifies the update stream of one migration source.
type updateKey struct {
	side   stream.Side
	source int
}

// updateOrd totally orders one source's updates: the revert of an epoch
// supersedes its forward update, and the next epoch supersedes both.
func updateOrd(u RouteUpdate) uint64 {
	ord := u.Epoch * 2
	if u.Revert {
		ord++
	}
	return ord
}

func newDispatcherBolt(cfg *Config, met *SystemMetrics) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &dispatcherBolt{cfg: cfg, met: met, router: newRouter(cfg, task), split: newSplitTable(cfg)}
	}
}

func (b *dispatcherBolt) Prepare(ctx engine.Context, _ *engine.Collector) {
	b.ctx = ctx
	b.batch = b.cfg.BatchSize
	if b.batch > 1 {
		b.lanes[stream.R] = make([]batchLane, b.cfg.JoinersPerSide)
		b.lanes[stream.S] = make([]batchLane, b.cfg.JoinersPerSide)
	}
}

//lint:hotpath
func (b *dispatcherBolt) Execute(m engine.Message, out *engine.Collector) {
	switch v := m.Value.(type) {
	case stream.Tuple:
		b.routeTuple(v, out)
	case ShuffleBatch:
		for i := range v.Tuples {
			b.routeTuple(v.Tuples[i], out)
		}
	case RouteUpdate:
		if b.applied == nil {
			b.applied = make(map[updateKey]uint64)
		}
		k := updateKey{side: v.Side, source: v.Source}
		ord := updateOrd(v)
		if ord < b.applied[k] {
			return // stale: a newer update from this source already applied
		}
		// First sighting of this update (re-deliveries re-apply and re-ack
		// but are not re-traced).
		first := ord > b.applied[k]
		b.applied[k] = ord
		// Flush every open batch before the marker: the fencing proof needs
		// the marker to ride behind every tuple this task routed before the
		// update, including tuples still sitting in a lane's open batch.
		b.flushAll(out)
		b.router.ApplyUpdate(v.Side, b.filterFrozenKeys(v.Keys), v.NewOwner)
		if first {
			b.cfg.Tracer.Emit(obs.Event{
				Kind:       obs.KindRouteApplied,
				Span:       obs.NewSpanID(uint8(v.Side), v.Source, v.Epoch),
				Side:       uint8(v.Side),
				Instance:   b.ctx.Task,
				Dispatcher: b.ctx.Task,
				Source:     v.Source,
				Target:     v.NewOwner,
				Epoch:      v.Epoch,
				Keys:       len(v.Keys),
				Revert:     v.Revert,
			})
		}
		// The marker rides the data lane to the instance waiting on the
		// handshake (source for forward updates, target for reverts),
		// behind every tuple this task routed there before the update —
		// proof that no stragglers remain.
		m := Marker{
			Side:           v.Side,
			DispatcherTask: b.ctx.Task,
			Origin:         v.Source,
			Epoch:          v.Epoch,
			Revert:         v.Revert,
		}
		out.EmitDirect(tupleStream(v.Side), v.MarkerTo, m)
		if v.Revert && v.Source != v.MarkerTo {
			// A revert needs a second fence: the source replays the merged
			// buffers only after ITS lanes are clean too, since the forward
			// markers that would have fenced them are the very messages
			// whose loss triggered the abort.
			out.EmitDirect(tupleStream(v.Side), v.Source, m)
		}
	case SplitAck:
		b.handleSplitAck(v, out)
	case SplitDrained:
		b.handleSplitDrained(v, out)
	default:
		if m.Stream == engine.TickStream {
			// Linger expired: ship whatever the lanes hold.
			b.flushAll(out)
		}
	}
}

// routeTuple sends the store copy and the probe copies.
//
//lint:hotpath
func (b *dispatcherBolt) routeTuple(t stream.Tuple, out *engine.Collector) {
	now := stream.Now()
	b.seq++
	ownSide, oppSide := t.Side, t.Side.Opposite()

	if b.split != nil {
		// Feed the detector before emitting, so an activation triggered by
		// this very tuple fences the lanes ahead of it.
		b.observeSplit(t.Key, out)
		if e := b.splitLookup(t.Key); e != nil {
			b.routeSplit(t, e, now, out)
			return
		}
	}

	// Store in the tuple's own group.
	storeAt := b.router.StoreTarget(ownSide, t.Key)
	b.emitTuple(ownSide, storeAt, TupleMsg{T: t, Op: OpStore, SentAt: now, Seq: b.seq}, out)

	// Probe the opposite group: the tuple joins against the other stream's
	// stored tuples, then is discarded there.
	b.buf = b.router.ProbeTargets(oppSide, t.Key, b.buf[:0])
	for _, target := range b.buf {
		b.emitTuple(oppSide, target, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq}, out)
	}
}

// emitTuple delivers one routed tuple to its lane: directly when batching
// is off, otherwise into the lane's open batch, flushing at capacity.
//
//lint:hotpath
func (b *dispatcherBolt) emitTuple(side stream.Side, target int, tm TupleMsg, out *engine.Collector) {
	if b.batch <= 1 {
		out.EmitDirect(tupleStream(side), target, tm)
		return
	}
	ln := &b.lanes[side][target]
	if ln.msgs == nil {
		ln.msgs = make([]TupleMsg, 0, b.batch)
	}
	ln.msgs = append(ln.msgs, tm)
	if len(ln.msgs) >= b.batch {
		b.flushLane(side, target, out)
	}
}

// flushLane emits one lane's open batch as a single TupleBatch message.
func (b *dispatcherBolt) flushLane(side stream.Side, target int, out *engine.Collector) {
	ln := &b.lanes[side][target]
	if len(ln.msgs) == 0 {
		return
	}
	out.EmitDirect(tupleStream(side), target, TupleBatch{Msgs: ln.msgs})
	// Ownership of the slice passed to the consumer; the next append
	// starts a fresh one (no recycling — a duplicated delivery must not
	// observe a reused backing array).
	ln.msgs = nil
}

// flushAll drains every open lane batch.
func (b *dispatcherBolt) flushAll(out *engine.Collector) {
	for side := range b.lanes {
		for target := range b.lanes[side] {
			b.flushLane(stream.Side(side), target, out)
		}
	}
}

// Flush implements engine.Flusher: the engine calls it whenever this
// task's data queue drains, so a batch is never left open while the
// system quiesces (see the invariant note on engine.Flusher).
func (b *dispatcherBolt) Flush(out *engine.Collector) { b.flushAll(out) }

func (b *dispatcherBolt) Cleanup() {}
