package biclique

import (
	"fastjoin/internal/engine"
	"fastjoin/internal/routing"
	"fastjoin/internal/stream"
)

// shufflerBolt is the pre-processing unit of the dispatching component
// (§III-A): it stamps event time on tuples that lack one, applies the
// user-defined pre-processing function if configured, and forwards the
// tuples to the dispatcher.
type shufflerBolt struct {
	pre func(stream.Tuple) stream.Tuple
}

func newShufflerFactory(cfg *Config) engine.BoltFactory {
	return func(int) engine.Bolt { return &shufflerBolt{pre: cfg.PreProcess} }
}

func (b *shufflerBolt) Prepare(engine.Context, *engine.Collector) {}

func (b *shufflerBolt) Execute(m engine.Message, out *engine.Collector) {
	if m.Stream == engine.TickStream {
		return
	}
	t, ok := m.Value.(stream.Tuple)
	if !ok {
		return
	}
	if b.pre != nil {
		t = b.pre(t)
	}
	if t.EventTime == 0 {
		t.EventTime = stream.Now()
	}
	out.Emit(streamTuples, t)
}

func (b *shufflerBolt) Cleanup() {}

// dispatcherBolt routes every tuple twice: a store copy to the owner
// instance in the tuple's own side group and probe copies to the opposite
// group per the strategy. It maintains the routing table that FastJoin's
// migrations rewrite, acking every update back to the migration source.
type dispatcherBolt struct {
	cfg    *Config
	router routing.Router
	ctx    engine.Context
	buf    []int // reusable probe-target buffer
}

func newDispatcherBolt(cfg *Config) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &dispatcherBolt{cfg: cfg, router: newRouter(cfg, task)}
	}
}

func (b *dispatcherBolt) Prepare(ctx engine.Context, _ *engine.Collector) { b.ctx = ctx }

func (b *dispatcherBolt) Execute(m engine.Message, out *engine.Collector) {
	switch v := m.Value.(type) {
	case stream.Tuple:
		b.routeTuple(v, out)
	case RouteUpdate:
		b.router.ApplyUpdate(v.Side, v.Keys, v.NewOwner)
		// The marker rides the data lane to the migration source, behind
		// every tuple this task routed there before the update — the
		// source uses it as proof that no stragglers remain.
		out.EmitDirect(tupleStream(v.Side), v.Source, Marker{
			Side:           v.Side,
			DispatcherTask: b.ctx.Task,
		})
	}
}

// routeTuple sends the store copy and the probe copies.
func (b *dispatcherBolt) routeTuple(t stream.Tuple, out *engine.Collector) {
	now := stream.Now()
	ownSide, oppSide := t.Side, t.Side.Opposite()

	// Store in the tuple's own group.
	storeAt := b.router.StoreTarget(ownSide, t.Key)
	out.EmitDirect(tupleStream(ownSide), storeAt, TupleMsg{T: t, Op: OpStore, SentAt: now})

	// Probe the opposite group: the tuple joins against the other stream's
	// stored tuples, then is discarded there.
	b.buf = b.router.ProbeTargets(oppSide, t.Key, b.buf[:0])
	for _, target := range b.buf {
		out.EmitDirect(tupleStream(oppSide), target, TupleMsg{T: t, Op: OpProbe, SentAt: now})
	}
}

func (b *dispatcherBolt) Cleanup() {}
