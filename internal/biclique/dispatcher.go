package biclique

import (
	"fastjoin/internal/engine"
	"fastjoin/internal/routing"
	"fastjoin/internal/stream"
)

// shufflerBolt is the pre-processing unit of the dispatching component
// (§III-A): it stamps event time on tuples that lack one, applies the
// user-defined pre-processing function if configured, and forwards the
// tuples to the dispatcher.
type shufflerBolt struct {
	pre func(stream.Tuple) stream.Tuple
}

func newShufflerFactory(cfg *Config) engine.BoltFactory {
	return func(int) engine.Bolt { return &shufflerBolt{pre: cfg.PreProcess} }
}

func (b *shufflerBolt) Prepare(engine.Context, *engine.Collector) {}

func (b *shufflerBolt) Execute(m engine.Message, out *engine.Collector) {
	if m.Stream == engine.TickStream {
		return
	}
	t, ok := m.Value.(stream.Tuple)
	if !ok {
		return
	}
	if b.pre != nil {
		t = b.pre(t)
	}
	if t.EventTime == 0 {
		t.EventTime = stream.Now()
	}
	out.Emit(streamTuples, t)
}

func (b *shufflerBolt) Cleanup() {}

// dispatcherBolt routes every tuple twice: a store copy to the owner
// instance in the tuple's own side group and probe copies to the opposite
// group per the strategy. It maintains the routing table that FastJoin's
// migrations rewrite, acking every update back with a marker.
type dispatcherBolt struct {
	cfg    *Config
	router routing.Router
	ctx    engine.Context
	buf    []int // reusable probe-target buffer
	// seq numbers every routed tuple; see TupleMsg.Seq.
	seq uint64
	// applied orders routing updates per migration source so a delayed
	// stale update (e.g. a forward update overtaken by its own revert)
	// cannot rewind the table. Re-deliveries of the newest update are
	// re-applied (idempotent) and re-acked, which is what recovers
	// dropped markers.
	applied map[updateKey]uint64
}

// updateKey identifies the update stream of one migration source.
type updateKey struct {
	side   stream.Side
	source int
}

// updateOrd totally orders one source's updates: the revert of an epoch
// supersedes its forward update, and the next epoch supersedes both.
func updateOrd(u RouteUpdate) uint64 {
	ord := u.Epoch * 2
	if u.Revert {
		ord++
	}
	return ord
}

func newDispatcherBolt(cfg *Config) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &dispatcherBolt{cfg: cfg, router: newRouter(cfg, task)}
	}
}

func (b *dispatcherBolt) Prepare(ctx engine.Context, _ *engine.Collector) { b.ctx = ctx }

func (b *dispatcherBolt) Execute(m engine.Message, out *engine.Collector) {
	switch v := m.Value.(type) {
	case stream.Tuple:
		b.routeTuple(v, out)
	case RouteUpdate:
		if b.applied == nil {
			b.applied = make(map[updateKey]uint64)
		}
		k := updateKey{side: v.Side, source: v.Source}
		ord := updateOrd(v)
		if ord < b.applied[k] {
			return // stale: a newer update from this source already applied
		}
		b.applied[k] = ord
		b.router.ApplyUpdate(v.Side, v.Keys, v.NewOwner)
		// The marker rides the data lane to the instance waiting on the
		// handshake (source for forward updates, target for reverts),
		// behind every tuple this task routed there before the update —
		// proof that no stragglers remain.
		m := Marker{
			Side:           v.Side,
			DispatcherTask: b.ctx.Task,
			Origin:         v.Source,
			Epoch:          v.Epoch,
			Revert:         v.Revert,
		}
		out.EmitDirect(tupleStream(v.Side), v.MarkerTo, m)
		if v.Revert && v.Source != v.MarkerTo {
			// A revert needs a second fence: the source replays the merged
			// buffers only after ITS lanes are clean too, since the forward
			// markers that would have fenced them are the very messages
			// whose loss triggered the abort.
			out.EmitDirect(tupleStream(v.Side), v.Source, m)
		}
	}
}

// routeTuple sends the store copy and the probe copies.
func (b *dispatcherBolt) routeTuple(t stream.Tuple, out *engine.Collector) {
	now := stream.Now()
	b.seq++
	ownSide, oppSide := t.Side, t.Side.Opposite()

	// Store in the tuple's own group.
	storeAt := b.router.StoreTarget(ownSide, t.Key)
	out.EmitDirect(tupleStream(ownSide), storeAt, TupleMsg{T: t, Op: OpStore, SentAt: now, Seq: b.seq})

	// Probe the opposite group: the tuple joins against the other stream's
	// stored tuples, then is discarded there.
	b.buf = b.router.ProbeTargets(oppSide, t.Key, b.buf[:0])
	for _, target := range b.buf {
		out.EmitDirect(tupleStream(oppSide), target, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq})
	}
}

func (b *dispatcherBolt) Cleanup() {}
