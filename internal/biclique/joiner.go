package biclique

import (
	"slices"
	"sort"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/metrics"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
	"fastjoin/internal/window"
)

// joinerBolt is one join instance. Instances in the R group (side == R)
// store tuples of stream R and probe them with arriving S tuples, and vice
// versa. A joiner also plays the two migration roles of Algorithm 2:
//
// As the *source* it runs the key selection, extracts and ships the stored
// tuples, broadcasts the routing update, buffers tuples of the migrating
// keys in a temporary queue, and flushes that queue to the target once it
// has collected a data-lane Marker from every dispatcher task (the marker
// arrives behind every tuple routed here before the update, so the flush
// provably contains every straggler).
//
// As the *target* it installs the migrated batch, buffers directly-routed
// tuples of the inbound keys until the source's flush arrives, then
// replays flush + buffer in order — preserving per-key FIFO end to end,
// which is what makes the join exactly-once across migrations.
type joinerBolt struct {
	cfg  *Config
	side stream.Side
	met  *SystemMetrics
	ctx  engine.Context

	store window.Store

	// pairs accumulates matched pairs during Execute and is emitted as one
	// pooled *PairBatch to the sink (which recycles it). Flushed at the end
	// of every Execute, so a batch never outlives the delivery it came from.
	pairs *PairBatch

	// Probe statistics: total arrivals since the last load report, an
	// EWMA-smoothed probe pressure (φ_si ≈ arrivals + backlog, the paper's
	// "queue length of the tuples from S"), and per-key arrivals for the
	// current and previous intervals (φ_sik), which key selection consumes.
	probesInterval int64
	probeEWMA      float64
	probeCur       map[stream.Key]int64
	probePrev      map[stream.Key]int64

	// Probe scratch: the match callback is bound once in Prepare and fed
	// per-probe state through these fields. Passing a fresh closure to
	// ForEachMatch would heap-allocate it (plus its captured counters) on
	// every probe, since the interface call is an escape point.
	probeFn      func(stream.Tuple)
	probeTuple   stream.Tuple
	probeNow     int64
	probeOut     *engine.Collector
	probeMatches int64
	probeScanned int

	// Scratch buffers reused across stats ticks and migration attempts so
	// the monitor/migration path stays allocation-free at steady state.
	// GreedyFit (and SAFit) copy what they keep, so handing statScratch to
	// the selector is safe; custom Selectors must not retain input.Keys.
	kcScratch   []window.KeyCount
	statScratch []core.KeyStat
	probeMerge  map[stream.Key]int64

	// Migration source state. Epochs number this instance's attempts;
	// markerSet collects the distinct dispatcher tasks that acked the
	// current update (faults can drop or duplicate markers, so a plain
	// countdown would miscount). The current update is re-broadcast every
	// stats tick until the handshake completes, and — when AbortTimeout
	// is configured — a handshake stuck past it flips the attempt into
	// the abort/rollback protocol.
	migrating  bool
	aborting   bool
	migEpoch   uint64
	migKeys    map[stream.Key]bool
	migTarget  int
	migMoved   int
	migLI      float64
	migUpdate  RouteUpdate
	markerSet  map[int]bool
	migTicks   int
	abortTicks int
	tempQueue  []TupleMsg
	// pendingReturn holds the target's rollback payload until this
	// instance's own revert-marker set completes: only then are its lanes
	// provably free of pre-update stragglers and the replay safe.
	pendingReturn *MigrateReturn

	// Hot-key splitting state. splitTaint holds every key this instance
	// has acked a SplitIntent for or received a SplitMark for; tainted
	// keys are excluded from keyStats and can therefore never be selected
	// for migration — the invariant that keeps a split key's salted
	// shares pinned in place. A taint lasts until the key's SplitRetire
	// arrives (the drain handshake proved no stray share remains), or for
	// the system's lifetime if the key never retires. splitActive tracks
	// only the currently split-marked keys, for the load reports.
	splitTaint  map[stream.Key]bool
	splitActive map[stream.Key]bool
	// splitResidual tracks the keys whose UnsplitMark named this instance
	// a draining member: the store watch is armed (or the share was
	// already gone) and once drained the instance re-announces
	// SplitDrained every stats tick until the dispatcher's SplitRetire —
	// or a reheat's SplitMark — closes the round. Reports are droppable,
	// so the re-announce is the protocol's loss recovery.
	splitResidual map[stream.Key]*residualDrain
	// drainScratch is the reusable buffer for TakeDrained and the sorted
	// re-announce loop.
	drainScratch []stream.Key

	// Migration target state, per source instance: keys whose batch
	// arrived but whose flush (or abort return) is still pending, plus
	// the buffered directly-routed tuples. finished remembers each
	// source's highest completed epoch so duplicated batches, flushes,
	// and aborts are answered idempotently; lastReturn re-sends the
	// rollback payload when a duplicate abort arrives after the fact.
	inbound    map[int]*inboundMig
	finished   map[int]uint64
	lastReturn map[int]MigrateReturn

	// Capacity emulation (Config.ServiceRate): virtual ops consumed and
	// the wall-clock origin they are measured against.
	ops      float64
	opsSince time.Time
}

// residualDrain is one residual key's drain state at a member: the
// generation of the UnsplitMark that opened the round, and whether the
// member's salted share has expired (making it eligible to report).
type residualDrain struct {
	gen     uint64
	drained bool
}

// inboundMig tracks one in-flight inbound migration at its target.
type inboundMig struct {
	origin   int
	epoch    uint64
	keys     map[stream.Key]bool
	buf      []TupleMsg
	aborting bool
	markers  map[int]bool // distinct dispatcher tasks whose revert marker arrived
}

func newJoinerFactory(cfg *Config, side stream.Side, met *SystemMetrics) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &joinerBolt{cfg: cfg, side: side, met: met}
	}
}

func (b *joinerBolt) Prepare(ctx engine.Context, _ *engine.Collector) {
	b.ctx = ctx
	b.store = newStore(b.cfg)
	b.probeCur = make(map[stream.Key]int64)
	b.probePrev = make(map[stream.Key]int64)
	b.probeMerge = make(map[stream.Key]int64)
	b.splitTaint = make(map[stream.Key]bool)
	b.splitActive = make(map[stream.Key]bool)
	b.splitResidual = make(map[stream.Key]*residualDrain)
	pred := b.cfg.Predicate
	b.probeFn = func(stored stream.Tuple) {
		b.probeScanned++
		pair := b.makePair(stored, b.probeTuple, b.probeNow)
		if pred != nil && !pred(pair.R, pair.S) {
			return
		}
		b.probeMatches++
		if b.cfg.EmitResults {
			b.appendPair(pair, b.probeOut)
		}
	}
	b.opsSince = time.Now()
	if t := b.cfg.Migration.AbortTimeout; t > 0 {
		// The timeout is measured in stats ticks so the decision is made
		// from delivered messages, not wall-clock reads.
		b.abortTicks = int(t / b.cfg.StatsInterval)
		if b.abortTicks < 1 {
			b.abortTicks = 1
		}
	}
}

// probeBaseCost is the virtual op cost of the probe's hash lookup itself,
// relative to a store's cost of 1.
const probeBaseCost = 0.2

// burstWindow caps the service credit an idle instance can bank: after a
// quiet spell the deficit between virtual and wall-clock time is clamped
// to one burst window, so a burst gets at most burstWindow's worth of
// ops at host speed before the ServiceRate throttle engages again.
// Without the clamp the deficit grows without bound across idle periods
// (ops only ever grows, ahead goes arbitrarily negative) and a
// post-idle burst is never throttled — under-modeling exactly the
// overload the balancer is supposed to detect.
const burstWindow = 20 * time.Millisecond

// consume charges virtual ops against the instance's service budget and
// sleeps off any surplus beyond a small burst allowance. Sleeping inside
// Execute is what creates the queue growth and backpressure an overloaded
// node would exhibit.
func (b *joinerBolt) consume(cost float64) {
	rate := b.cfg.ServiceRate
	if rate <= 0 {
		return
	}
	b.ops += cost
	virtual := time.Duration(b.ops / rate * float64(time.Second))
	ahead := virtual - time.Since(b.opsSince)
	if ahead < -burstWindow {
		// Idle re-base: forget the banked credit beyond one burst window,
		// keeping only the current op's charge (this also resets the float
		// accumulation in ops before long runs cost it precision).
		b.ops = cost
		b.opsSince = time.Now().Add(-burstWindow)
		virtual = time.Duration(b.ops / rate * float64(time.Second))
		ahead = virtual - burstWindow
	}
	if ahead > 2*time.Millisecond {
		time.Sleep(ahead)
	}
}

//lint:hotpath
func (b *joinerBolt) Execute(m engine.Message, out *engine.Collector) {
	// Deferred so the accumulated pairs ship even when handleBatch re-raises
	// an isolated per-tuple panic: the matches of the healthy tuples in the
	// batch must not vanish with the poisoned one.
	defer b.flushPairs(out)
	switch v := m.Value.(type) {
	case TupleMsg:
		b.handleTuple(v, out)
	case TupleBatch:
		b.handleBatch(v, out)
	case Marker:
		b.handleMarker(v, out)
	case MigrateCmd:
		b.startMigration(v, out)
	case MigrateBatch:
		b.installBatch(v)
	case MigrateFlush:
		b.handleFlush(v, out)
	case MigrateAbort:
		b.handleAbort(v, out)
	case MigrateReturn:
		b.handleReturn(v, out)
	case SplitIntent:
		b.handleSplitIntent(v, out)
	case SplitMark:
		b.handleSplitMark(v)
	case UnsplitMark:
		b.handleUnsplitMark(v)
	case SplitRetire:
		b.handleSplitRetire(v)
	default:
		if m.Stream == engine.TickStream {
			b.onTick(out)
		}
	}
}

// handleBatch unpacks a TupleBatch inline through the same per-tuple
// path: a batch is a granularity change on the wire, not a semantic one,
// so all the migration buffering logic in handleTuple applies unchanged.
// Each tuple runs under its own panic guard — the engine isolates panics
// per delivered message, which for a batch would widen a poisoned
// tuple's blast radius from one tuple to BatchSize. The first panic is
// re-raised after the loop so the engine's per-task panic accounting
// still records the failure.
func (b *joinerBolt) handleBatch(batch TupleBatch, out *engine.Collector) {
	var firstPanic any
	for i := range batch.Msgs {
		func() {
			defer func() {
				if r := recover(); r != nil && firstPanic == nil {
					firstPanic = r
				}
			}()
			b.handleTuple(batch.Msgs[i], out)
		}()
	}
	if firstPanic != nil {
		panic(firstPanic) //lint:allow panicpath re-raise of an isolated per-tuple panic, preserving the engine's per-task panic accounting
	}
}

// replay re-processes one buffered tuple after a migration flush or
// rollback, isolating panics per tuple: the engine isolates panics per
// delivered message, but a replay processes a whole buffer inside one
// delivery, and without the guard a single poisoned tuple (e.g. a user
// predicate failure) would throw away every tuple queued behind it.
func (b *joinerBolt) replay(tm TupleMsg, out *engine.Collector) {
	defer func() {
		if r := recover(); r != nil {
			b.met.ReplayPanics.Inc()
		}
	}()
	// A replayed tuple's SentAt is stale by the whole migration handshake;
	// mark it so probe() keeps it out of the latency histogram, and meter
	// it here so every replay (stores included) is accounted. The mark
	// sticks through re-buffering (a replay can land in another
	// migration's buffer and be replayed again).
	tm.Replayed = true
	b.met.ReplayedTuples.Mark(1)
	b.handleTuple(tm, out)
}

// handleTuple stores or probes one tuple, honoring the two migration
// buffers.
//
//lint:hotpath
func (b *joinerBolt) handleTuple(tm TupleMsg, out *engine.Collector) {
	key := tm.T.Key
	if b.migrating && b.migKeys[key] {
		// Algorithm 2's temporary queue: the key is leaving; hold the
		// tuple until all dispatcher markers arrive.
		b.tempQueue = append(b.tempQueue, tm)
		return
	}
	for _, in := range b.inbound {
		if in.keys[key] {
			// The key is arriving: its batch is installed but the source's
			// flush (older tuples) has not landed yet; keep FIFO by waiting.
			in.buf = append(in.buf, tm)
			return
		}
	}
	switch tm.Op {
	case OpStore:
		b.store.Add(tm.T)
		b.storedGauge().Add(1)
		b.consume(1)
	case OpProbe:
		b.probe(tm, out)
	}
}

// probe joins one opposite-stream tuple against the store.
//
//lint:hotpath
func (b *joinerBolt) probe(tm TupleMsg, out *engine.Collector) {
	key := tm.T.Key
	b.probesInterval++
	b.probeCur[key]++

	// One clock read per probe, not per matched pair: on a hot key a
	// single probe can yield thousands of pairs and the vDSO call would
	// dominate the whole scan (it showed up at ~47% of CPU).
	b.probeTuple = tm.T
	b.probeNow = stream.Now()
	b.probeOut = out
	b.probeMatches, b.probeScanned = 0, 0
	b.store.ForEachMatch(key, b.probeFn)
	b.probeOut = nil
	if !b.cfg.EmitResults && b.probeMatches > 0 {
		b.met.Results.Mark(b.probeMatches)
	}
	// A probe that finds an empty bucket is just a hash lookup — far
	// cheaper than a store's insert — so its base cost is fractional.
	b.consume(probeBaseCost + b.cfg.MatchCost*float64(b.probeScanned))
	if tm.Replayed {
		// Migration replays carry SentAt stamps that are stale by the whole
		// handshake; observing them would spike the tail of the latency
		// histogram by the migration's own wall-time. They are metered in
		// replay() instead.
		return
	}
	b.met.Latency.Observe(stream.Now() - tm.SentAt)
}

// appendPair adds one matched pair to the pooled result batch, flushing
// when it fills. Emitting pairs by the batch instead of one Emit per pair
// removes the per-pair message-envelope allocation that dominated the probe
// path on hot keys.
//
//lint:hotpath
func (b *joinerBolt) appendPair(p stream.JoinedPair, out *engine.Collector) {
	if b.pairs == nil {
		b.pairs = getPairBatch()
	}
	b.pairs.Pairs = append(b.pairs.Pairs, p)
	if len(b.pairs.Pairs) >= pairBatchCap {
		b.flushPairs(out)
	}
}

// flushPairs emits the accumulated result batch, handing ownership to the
// sink (which returns the batch to the pool after draining it).
//
//lint:hotpath
func (b *joinerBolt) flushPairs(out *engine.Collector) {
	if b.pairs == nil || len(b.pairs.Pairs) == 0 {
		return
	}
	out.Emit(streamResults, b.pairs)
	b.pairs = nil
}

// makePair orients (stored, probing) into (R, S); joinedAt is the
// probe's clock read (one per probe, shared by every pair it yields).
//
//lint:hotpath
func (b *joinerBolt) makePair(stored, probing stream.Tuple, joinedAt int64) stream.JoinedPair {
	p := stream.JoinedPair{
		StoreSide: b.side,
		Instance:  b.ctx.Task,
		JoinedAt:  joinedAt,
	}
	if b.side == stream.R {
		p.R, p.S = stored, probing
	} else {
		p.R, p.S = probing, stored
	}
	return p
}

// trace emits one control-plane event for the migration attempt of the
// given source instance on this side (this instance itself when it is the
// source; the origin of an inbound attempt when it is the target). The
// tracer's Emit is nil-safe, so call sites carry no conditionals.
func (b *joinerBolt) trace(source int, ev obs.Event) {
	ev.Span = obs.NewSpanID(uint8(b.side), source, ev.Epoch)
	ev.Side = uint8(b.side)
	ev.Instance = b.ctx.Task
	ev.Source = source
	b.cfg.Tracer.Emit(ev)
}

// handleSplitIntent answers a dispatcher's split request for a key this
// instance currently owns. The ack is withheld while any migration
// involving the key is in flight here — as the source holding it in the
// temporary queue, or as a target with the key inbound — which is what
// orders a split strictly after a racing migration's fence: the
// dispatcher re-sends the intent every detector epoch, so the handshake
// resumes once the attempt commits or rolls back. Acking taints the key
// (see splitTaint) before permission ever reaches the dispatcher, so by
// the time salted routing can start, no future selection here can pick
// the key up again.
func (b *joinerBolt) handleSplitIntent(v SplitIntent, out *engine.Collector) {
	if b.migrating && b.migKeys[v.Key] {
		return
	}
	for _, in := range b.inbound {
		if in.keys[v.Key] {
			return
		}
	}
	b.taintSplit(v.Key, false)
	out.Emit(streamRouteUpd, SplitAck{Side: b.side, Key: v.Key, Epoch: v.Epoch, From: b.ctx.Task})
}

// taintSplit excludes a key from this instance's migration candidates,
// permanently; active additionally records it as currently split-marked.
// The maps are allocated in Prepare: this runs inlined inside Execute's
// hot switch, where a lazy make() would be a new heap escape.
func (b *joinerBolt) taintSplit(k stream.Key, active bool) {
	b.splitTaint[k] = true
	// A tainted key's probe stats are dead weight: drop what accumulated
	// and let keyStats skip it from now on.
	delete(b.probeCur, k)
	delete(b.probePrev, k)
	if active {
		b.splitActive[k] = true
	}
}

// handleSplitMark applies a split activation. A mark arriving while this
// instance is mid-drain is a reheat: the key's salted shares are live
// again, so the drain round is cancelled before re-tainting — any gen-N
// SplitDrained this instance already sent is rejected by the
// dispatcher's generation check.
func (b *joinerBolt) handleSplitMark(v SplitMark) {
	if _, ok := b.splitResidual[v.Key]; ok {
		delete(b.splitResidual, v.Key)
		b.store.UnwatchKey(v.Key)
	}
	b.taintSplit(v.Key, true)
}

// handleUnsplitMark applies a split deactivation and opens the drain
// round. The mark is fenced (flush-then-mark at the dispatcher), so no
// salted tuple of the key can arrive here behind it: this instance's
// share of the key can only shrink from now on, which makes "the share
// expired from the window" a monotone, safely reportable condition.
func (b *joinerBolt) handleUnsplitMark(v UnsplitMark) {
	delete(b.splitActive, v.Key)
	if b.ctx.Task == v.Owner {
		// The owner keeps serving the key's single-owner traffic; only the
		// non-owner members form the drain quorum.
		return
	}
	rd := b.splitResidual[v.Key]
	if rd == nil {
		rd = &residualDrain{}
		b.splitResidual[v.Key] = rd
	}
	rd.gen = v.Gen
	// Arm the store watch; a share that already expired (or never
	// existed — the member may have seen only probe traffic) is drained
	// immediately and reported on the next tick.
	rd.drained = b.store.WatchKey(v.Key)
}

// handleSplitRetire closes the key's split lifecycle at this instance.
// The mark is fenced behind the dispatcher's lanes and arrives only
// after every non-owner member of both sides reported its share gone,
// so lifting the taint is sound: no stray salted share exists anywhere
// for a later migration to strand. A draining member also drops the
// key's residual probe stats — what accumulated there was fan-out
// traffic that stops with the retire, and letting it feed key selection
// would nominate this instance for a probe-benefit migration of a key
// it no longer sees. The owner (which never holds a splitResidual
// entry) keeps its counters: it receives the key's full single-owner
// probe traffic after retirement, and wiping the accumulated stats
// would skew keyStats and migration-benefit selection for up to two
// stats ticks.
func (b *joinerBolt) handleSplitRetire(v SplitRetire) {
	delete(b.splitTaint, v.Key)
	delete(b.splitActive, v.Key)
	if _, member := b.splitResidual[v.Key]; member {
		delete(b.splitResidual, v.Key)
		b.store.UnwatchKey(v.Key)
		delete(b.probeCur, v.Key)
		delete(b.probePrev, v.Key)
	}
}

// startMigration is the source-side entry of Algorithm 2.
func (b *joinerBolt) startMigration(cmd MigrateCmd, out *engine.Collector) {
	if b.migrating || cmd.Target.Instance == b.ctx.Task {
		// Stale or self-targeted command: report an empty migration so the
		// monitor re-arms. Epoch 0 keeps the report out of the trace — no
		// span was opened, and the report must not inject events into the
		// in-flight attempt's span.
		b.reportDone(out, cmd.Target.Instance, 0, 0, cmd.LI, false, 0)
		return
	}
	// Every accepted command consumes an epoch, so an attempt whose
	// selection comes up empty still gets its own trace span instead of
	// reusing the previous attempt's ID. Epochs only need to be per-source
	// monotone — the dispatchers' update ordering and the targets'
	// finished map both tolerate gaps.
	b.migEpoch++
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindTrigger,
		Epoch:  b.migEpoch,
		Target: cmd.Target.Instance,
		LI:     cmd.LI,
		Theta:  cmd.Theta,
	})
	input := core.SelectInput{
		Source:     cmd.Source,
		Target:     cmd.Target,
		Keys:       b.keyStats(cmd.Source.Probe),
		MinBenefit: b.cfg.Migration.MinBenefit,
	}
	selected := b.cfg.Migration.Selector(input)
	if b.cfg.Tracer != nil {
		// TotalBenefit re-scans the key stats; skip it when nobody listens.
		b.trace(b.ctx.Task, obs.Event{
			Kind:    obs.KindSelect,
			Epoch:   b.migEpoch,
			Target:  cmd.Target.Instance,
			Keys:    len(selected),
			Benefit: core.TotalBenefit(input, selected),
		})
	}
	if len(selected) == 0 {
		b.trace(b.ctx.Task, obs.Event{
			Kind:   obs.KindNoop,
			Epoch:  b.migEpoch,
			Target: cmd.Target.Instance,
			LI:     cmd.LI,
		})
		b.reportDone(out, cmd.Target.Instance, 0, 0, cmd.LI, false, b.migEpoch)
		return
	}

	// Extract the stored tuples of the selected keys (Algorithm 2 l. 3-8).
	batch := MigrateBatch{Side: b.side, From: b.ctx.Task, Keys: selected}
	for _, k := range selected {
		batch.Tuples = append(batch.Tuples, b.store.RemoveKey(k)...)
	}
	b.storedGauge().Add(int64(-len(batch.Tuples)))

	b.migrating = true
	b.aborting = false
	b.migTarget = cmd.Target.Instance
	b.migMoved = len(batch.Tuples)
	b.migLI = cmd.LI
	b.migTicks = 0
	b.markerSet = make(map[int]bool, b.cfg.Dispatchers)
	b.migKeys = make(map[stream.Key]bool, len(selected))
	for _, k := range selected {
		b.migKeys[k] = true
		// The keys no longer contribute to this instance's probe stats.
		delete(b.probeCur, k)
		delete(b.probePrev, k)
	}
	b.met.MigrationsInFlight.Add(1)

	// Ship the tuples (l. 9-10), then ask every dispatcher task to reroute
	// (l. 11-12); each will reply with a data-lane Marker. The update is
	// re-broadcast on every tick until the handshake completes.
	batch.Epoch = b.migEpoch
	out.EmitDirect(migStream(b.side), b.migTarget, batch)
	b.migUpdate = RouteUpdate{
		Side:     b.side,
		Keys:     selected,
		NewOwner: b.migTarget,
		Source:   b.ctx.Task,
		Epoch:    b.migEpoch,
		MarkerTo: b.ctx.Task,
	}
	// Trace before the broadcast: the dispatchers' RouteApplied events must
	// sort after the fence in the tracer's total order.
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindFence,
		Epoch:  b.migEpoch,
		Target: b.migTarget,
		Keys:   len(selected),
		Moved:  b.migMoved,
	})
	out.Emit(streamRouteUpd, b.migUpdate)
}

// handleMarker routes a dispatcher marker to its role: forward markers
// complete this instance's own outbound migration; revert markers feed
// an inbound migration this instance is rolling back as the target.
func (b *joinerBolt) handleMarker(v Marker, out *engine.Collector) {
	if v.Revert {
		if v.Origin == b.ctx.Task {
			b.handleSourceRevertMarker(v, out)
		} else {
			b.handleRevertMarker(v, out)
		}
		return
	}
	if !b.migrating || b.aborting || v.Origin != b.ctx.Task || v.Epoch != b.migEpoch {
		return // stale or duplicated marker from an earlier attempt
	}
	if !b.markerSet[v.DispatcherTask] {
		b.markerSet[v.DispatcherTask] = true
		b.trace(b.ctx.Task, obs.Event{
			Kind:       obs.KindMarker,
			Epoch:      b.migEpoch,
			Target:     b.migTarget,
			Dispatcher: v.DispatcherTask,
		})
	}
	if len(b.markerSet) < b.cfg.Dispatchers {
		return
	}
	// Markers from every dispatcher task prove no further tuples for the
	// migrated keys can reach this instance: flush the temporary queue —
	// even empty, it is what releases the target's inbound buffer (l. 13).
	// Trace before emitting so the target's replay sorts after the flush.
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindFlush,
		Epoch:  b.migEpoch,
		Target: b.migTarget,
		Moved:  len(b.tempQueue),
	})
	out.EmitDirect(migStream(b.side), b.migTarget, MigrateFlush{
		Side:   b.side,
		From:   b.ctx.Task,
		Epoch:  b.migEpoch,
		Queued: b.tempQueue,
	})
	keys := len(b.migKeys)
	target, moved := b.migTarget, b.migMoved
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindCommit,
		Epoch:  b.migEpoch,
		Target: target,
		Keys:   keys,
		Moved:  moved,
		LI:     b.migLI,
	})
	b.clearSourceState()
	b.reportDone(out, target, keys, moved, b.migLI, false, b.migEpoch)
}

// clearSourceState ends this instance's outbound migration attempt.
func (b *joinerBolt) clearSourceState() {
	b.migrating = false
	b.aborting = false
	b.migKeys = nil
	b.tempQueue = nil
	b.migMoved = 0
	b.migTicks = 0
	b.markerSet = nil
	b.pendingReturn = nil
	b.met.MigrationsInFlight.Add(-1)
}

// beginAbort flips a stuck attempt into rollback: routing reverts to
// this instance, and the dispatchers' revert markers now flow to the
// target, which will return the batch and everything it buffered.
func (b *joinerBolt) beginAbort() {
	b.aborting = true
	b.migTicks = 0
	// Traced before onTick broadcasts the revert update, so the revert
	// RouteApplied / RevertMarker events sort after the abort.
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindAbort,
		Epoch:  b.migEpoch,
		Target: b.migTarget,
	})
	// markerSet restarts: it now collects revert markers, this instance's
	// own delivery fence for the rollback replay.
	b.markerSet = make(map[int]bool, b.cfg.Dispatchers)
	b.migUpdate = RouteUpdate{
		Side:     b.side,
		Keys:     b.migUpdate.Keys,
		NewOwner: b.ctx.Task,
		Source:   b.ctx.Task,
		Epoch:    b.migEpoch,
		Revert:   true,
		MarkerTo: b.migTarget,
	}
}

// handleSourceRevertMarker collects one dispatcher's revert confirmation
// at the aborting source. The set fences this instance's own data lanes:
// pre-forward-update tuples can still be in flight here (the forward
// markers that would have proven otherwise were lost — that is why the
// attempt aborted), and each revert marker arrives behind them.
func (b *joinerBolt) handleSourceRevertMarker(v Marker, out *engine.Collector) {
	if !b.migrating || !b.aborting || v.Epoch != b.migEpoch {
		return // stale marker from an earlier attempt
	}
	if !b.markerSet[v.DispatcherTask] {
		b.markerSet[v.DispatcherTask] = true
		b.trace(b.ctx.Task, obs.Event{
			Kind:       obs.KindRevertMarker,
			Epoch:      b.migEpoch,
			Target:     b.migTarget,
			Dispatcher: v.DispatcherTask,
		})
	}
	b.tryFinishSourceAbort(out)
}

// handleReturn receives the target's rollback payload at the source; the
// replay itself waits until the revert-marker fence is complete.
func (b *joinerBolt) handleReturn(v MigrateReturn, out *engine.Collector) {
	if !b.migrating || !b.aborting || v.Origin != b.ctx.Task || v.Epoch != b.migEpoch {
		return // duplicate return of an attempt already rolled back
	}
	if b.pendingReturn == nil {
		b.trace(b.ctx.Task, obs.Event{
			Kind:   obs.KindReturn,
			Epoch:  b.migEpoch,
			Target: v.From,
			Moved:  len(v.Tuples) + len(v.Buffered),
		})
	}
	b.pendingReturn = &v
	b.tryFinishSourceAbort(out)
}

// tryFinishSourceAbort completes the rollback once both conditions hold:
// the target returned its payload, and revert markers from every
// dispatcher task arrived here. Then every pre-update tuple is in the
// temporary queue, every tuple that reached the target is in the
// returned buffer, and the two merge by Seq back into exactly the
// original per-key arrival order — tuples held here bracket the tuples
// that reached the target (before the forward update and after the
// revert), so plain concatenation would interleave wrongly.
func (b *joinerBolt) tryFinishSourceAbort(out *engine.Collector) {
	if b.pendingReturn == nil || len(b.markerSet) < b.cfg.Dispatchers {
		return
	}
	ret := b.pendingReturn
	b.store.AddBulk(ret.Tuples)
	b.storedGauge().Add(int64(len(ret.Tuples)))
	b.consume(float64(len(ret.Tuples)))

	merged := make([]TupleMsg, 0, len(b.tempQueue)+len(ret.Buffered))
	merged = append(append(merged, b.tempQueue...), ret.Buffered...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })

	keys := len(b.migKeys)
	target, moved := b.migTarget, b.migMoved
	epoch := b.migEpoch
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindReplay,
		Epoch:  epoch,
		Target: target,
		Moved:  len(merged),
	})
	// Clear the migration before replaying so the tuples are processed
	// instead of re-buffered.
	b.clearSourceState()
	for _, tm := range merged {
		b.replay(tm, out)
	}
	b.trace(b.ctx.Task, obs.Event{
		Kind:   obs.KindRollback,
		Epoch:  epoch,
		Target: target,
		Keys:   keys,
		Moved:  moved,
		LI:     b.migLI,
	})
	b.reportDone(out, target, keys, moved, b.migLI, true, epoch)
}

// reportDone notifies the side's monitor that the migration attempt
// ended (completed or aborted), re-arming its trigger. epoch identifies
// the attempt for tracing; zero marks a report with no span (a rejected
// or self-targeted command).
func (b *joinerBolt) reportDone(out *engine.Collector, target, keys, moved int, li float64, aborted bool, epoch uint64) {
	if keys > 0 {
		if aborted {
			b.met.MigrationAborts.Inc()
		} else {
			b.met.Migrations.Inc()
			b.met.MigratedKeys.Add(int64(keys))
			b.met.MigratedTuples.Add(int64(moved))
		}
		b.met.RecordMigration(MigrationEvent{
			At:      stream.Now(),
			Side:    b.side,
			Source:  b.ctx.Task,
			Target:  target,
			LI:      li,
			Keys:    keys,
			Moved:   moved,
			Aborted: aborted,
		})
	}
	out.Emit(doneStream(b.side), MigrationDone{
		Side:    b.side,
		Source:  b.ctx.Task,
		Target:  target,
		Keys:    keys,
		Moved:   moved,
		Aborted: aborted,
		Epoch:   epoch,
	})
}

// installBatch is the target-side arrival: adopt the keys and hold any
// directly-routed tuples until the source's flush lands.
func (b *joinerBolt) installBatch(batch MigrateBatch) {
	if b.finished[batch.From] >= batch.Epoch {
		return // duplicate of an attempt already completed or rolled back
	}
	if in, ok := b.inbound[batch.From]; ok && in.epoch == batch.Epoch {
		return // duplicate of the in-flight attempt
	}
	if b.inbound == nil {
		b.inbound = make(map[int]*inboundMig)
	}
	in := &inboundMig{
		origin: batch.From,
		epoch:  batch.Epoch,
		keys:   make(map[stream.Key]bool, len(batch.Keys)),
	}
	for _, k := range batch.Keys {
		in.keys[k] = true
	}
	b.inbound[batch.From] = in
	b.store.AddBulk(batch.Tuples)
	b.storedGauge().Add(int64(len(batch.Tuples)))
	b.trace(batch.From, obs.Event{
		Kind:   obs.KindInstall,
		Epoch:  batch.Epoch,
		Target: b.ctx.Task,
		Keys:   len(batch.Keys),
		Moved:  len(batch.Tuples),
	})
	// Installing migrated tuples is real work on the target node.
	b.consume(float64(len(batch.Tuples)))
}

// handleFlush replays the source's temporary queue, then the tuples this
// instance buffered while waiting — restoring the original per-key order.
func (b *joinerBolt) handleFlush(flush MigrateFlush, out *engine.Collector) {
	in, ok := b.inbound[flush.From]
	if !ok || in.epoch != flush.Epoch || in.aborting {
		return // stale or duplicated flush
	}
	delete(b.inbound, flush.From)
	b.setFinished(flush.From, flush.Epoch)
	// The target's replay trails the source's commit in the trace: the
	// source committed the moment its marker set completed, and this event
	// is causally downstream of its flush.
	b.trace(flush.From, obs.Event{
		Kind:   obs.KindReplay,
		Epoch:  flush.Epoch,
		Target: b.ctx.Task,
		Moved:  len(flush.Queued) + len(in.buf),
	})
	for _, tm := range flush.Queued {
		b.replay(tm, out)
	}
	for _, tm := range in.buf {
		b.replay(tm, out)
	}
}

// handleRevertMarker collects one dispatcher's revert confirmation at
// the abort target.
func (b *joinerBolt) handleRevertMarker(v Marker, out *engine.Collector) {
	in, ok := b.inbound[v.Origin]
	if !ok || in.epoch != v.Epoch {
		return // stale marker from an earlier attempt
	}
	if in.markers == nil {
		in.markers = make(map[int]bool, b.cfg.Dispatchers)
	}
	if !in.markers[v.DispatcherTask] {
		in.markers[v.DispatcherTask] = true
		b.trace(in.origin, obs.Event{
			Kind:       obs.KindRevertMarker,
			Epoch:      in.epoch,
			Target:     b.ctx.Task,
			Dispatcher: v.DispatcherTask,
		})
	}
	b.maybeFinishAbort(in, out)
}

// handleAbort is the target-side entry of the rollback: mark the inbound
// attempt as aborting (the revert markers may already be trickling in),
// or — for a duplicate abort of an attempt already rolled back — re-send
// the return idempotently, since the original may still be in flight
// when the source re-asks.
func (b *joinerBolt) handleAbort(v MigrateAbort, out *engine.Collector) {
	if in, ok := b.inbound[v.From]; ok && in.epoch == v.Epoch {
		in.aborting = true
		b.maybeFinishAbort(in, out)
		return
	}
	if ret, ok := b.lastReturn[v.From]; ok && ret.Epoch == v.Epoch {
		out.EmitDirect(migStream(b.side), v.From, ret)
	}
}

// maybeFinishAbort completes the rollback once revert markers from every
// dispatcher task have arrived: by then every directly-routed tuple of
// the migrated keys that will ever reach this instance is in the buffer,
// and — because all of them were buffered, never applied — the store's
// content for those keys is exactly the installed batch. Both go back to
// the source.
func (b *joinerBolt) maybeFinishAbort(in *inboundMig, out *engine.Collector) {
	if !in.aborting || len(in.markers) < b.cfg.Dispatchers {
		return
	}
	var tuples []stream.Tuple
	for k := range in.keys {
		tuples = append(tuples, b.store.RemoveKey(k)...)
	}
	b.storedGauge().Add(int64(-len(tuples)))
	ret := MigrateReturn{
		Side:     b.side,
		From:     b.ctx.Task,
		Origin:   in.origin,
		Epoch:    in.epoch,
		Tuples:   tuples,
		Buffered: in.buf,
	}
	delete(b.inbound, in.origin)
	b.setFinished(in.origin, in.epoch)
	if b.lastReturn == nil {
		b.lastReturn = make(map[int]MigrateReturn)
	}
	b.lastReturn[in.origin] = ret
	out.EmitDirect(migStream(b.side), in.origin, ret)
}

// setFinished records origin's highest finished epoch at this target.
func (b *joinerBolt) setFinished(origin int, epoch uint64) {
	if b.finished == nil {
		b.finished = make(map[int]uint64)
	}
	if b.finished[origin] < epoch {
		b.finished[origin] = epoch
	}
}

// onTick reports load to the monitor, advances the window, and drives
// the migration handshake: the current routing update is re-broadcast
// until it completes (recovering dropped updates and markers), and a
// handshake stuck past AbortTimeout flips into the rollback protocol.
func (b *joinerBolt) onTick(out *engine.Collector) {
	if b.migrating {
		b.migTicks++
		if !b.aborting && b.abortTicks > 0 && b.migTicks > b.abortTicks {
			b.beginAbort()
		}
		out.Emit(streamRouteUpd, b.migUpdate)
		if b.aborting {
			out.EmitDirect(migStream(b.side), b.migTarget, MigrateAbort{
				Side:  b.side,
				From:  b.ctx.Task,
				Epoch: b.migEpoch,
			})
		}
	}
	if b.store.Windowed() {
		removed := b.store.Advance(stream.Now())
		if removed > 0 {
			b.storedGauge().Add(int64(-removed))
		}
	}
	b.drainResiduals(out)
	// φ = arrivals this interval plus the unprocessed backlog, smoothed so
	// a single quiet interval under bursty dispatch does not read as zero
	// load. Round up: any positive pressure counts as at least one.
	raw := float64(b.probesInterval + int64(out.QueueLen()))
	b.probeEWMA = 0.5*b.probeEWMA + 0.5*raw
	probe := int64(b.probeEWMA)
	if probe == 0 && b.probeEWMA > 0 {
		probe = 1
	}
	out.Emit(loadStream(b.side), LoadReport{
		Side: b.side,
		Load: core.InstanceLoad{
			Instance: b.ctx.Task,
			Stored:   int64(b.store.Len()),
			Probe:    probe,
		},
		SplitKeys: len(b.splitActive),
	})
	b.probesInterval = 0
	// Swap-and-clear instead of a fresh map: the interval maps are hot on
	// every tick and their buckets are reusable as-is.
	b.probePrev, b.probeCur = b.probeCur, b.probePrev
	clear(b.probeCur)
}

// drainResiduals advances the open drain rounds on a stats tick: the
// keys whose store watch fired since the last tick (the window Advance
// just above is what fires them) flip to drained, then every drained
// residual key is re-announced to the dispatchers — in sorted key order,
// so the control-message sequence is identical across replays. The
// re-announce runs every tick until the dispatcher's SplitRetire (or a
// reheat's SplitMark) removes the entry: SplitDrained is a droppable
// report, and the repetition is its loss recovery.
func (b *joinerBolt) drainResiduals(out *engine.Collector) {
	if len(b.splitResidual) == 0 {
		return
	}
	b.drainScratch = b.store.TakeDrained(b.drainScratch[:0])
	for _, k := range b.drainScratch {
		rd, ok := b.splitResidual[k]
		if !ok || rd.drained {
			continue
		}
		// Re-verify against the store instead of trusting the queue entry:
		// the watch contract allows a late notification from a watch that
		// was since unwatched (a round cancelled by a reheat), and such an
		// entry may surface after a NEW round re-armed on live shares. The
		// reportable condition is emptiness — monotone once the round's
		// UnsplitMark fence has passed — not queue membership. A non-empty
		// key keeps its freshly armed watch and drains when it really does.
		if b.store.KeyCount(k) == 0 {
			rd.drained = true
		}
	}
	keys := b.drainScratch[:0]
	for k, rd := range b.splitResidual {
		if rd.drained {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	for _, k := range keys {
		out.Emit(streamRouteUpd, SplitDrained{Side: b.side, Key: k, Gen: b.splitResidual[k].gen, From: b.ctx.Task})
	}
	b.drainScratch = keys
}

// keyStats assembles the per-key statistics for key selection: stored
// counts from the window store and probe counts from the last two
// intervals, rescaled so that Σφ_sik matches the aggregate φ_si the
// monitor's command is based on. Without the rescale, the knapsack's
// per-key benefits and its capacity (L_i - L_j) would be on different
// scales and GreedyFit would systematically over-select.
func (b *joinerBolt) keyStats(aggregateProbe int64) []core.KeyStat {
	probe := b.probeMerge
	clear(probe)
	var rawTotal int64
	for k, c := range b.probePrev {
		probe[k] += c
		rawTotal += c
	}
	for k, c := range b.probeCur {
		probe[k] += c
		rawTotal += c
	}
	scale := 1.0
	if rawTotal > 0 && aggregateProbe > 0 {
		scale = float64(aggregateProbe) / float64(rawTotal)
	}
	// Truncate: a key whose scaled probe mass rounds to zero contributes
	// no probe benefit. Flooring it up instead would inflate the benefit
	// of hundreds of noise keys and starve the keys that actually carry
	// load out of the knapsack.
	scaled := func(c int64) int64 { return int64(float64(c) * scale) }
	// Stored counts come through the reusable AppendKeyCounts scratch
	// instead of a per-call snapshot map; statScratch is handed to the
	// selector, which copies what it keeps (see the field comment).
	b.kcScratch = b.store.AppendKeyCounts(b.kcScratch[:0])
	stats := b.statScratch[:0]
	for _, kc := range b.kcScratch {
		if b.splitTaint[kc.Key] {
			// Split keys are pinned here: their salted shares (or the
			// owner share of a split key) must never be offered to the
			// selector.
			delete(probe, kc.Key)
			continue
		}
		stats = append(stats, core.KeyStat{Key: kc.Key, Stored: int64(kc.Count), Probe: scaled(probe[kc.Key])})
		delete(probe, kc.Key)
	}
	for k, c := range probe {
		if b.splitTaint[k] {
			continue
		}
		// Probe-only keys: no stored tuples yet, but routing them away
		// still moves probe load.
		stats = append(stats, core.KeyStat{Key: k, Stored: 0, Probe: scaled(c)})
	}
	b.statScratch = stats
	return stats
}

func (b *joinerBolt) storedGauge() *metrics.Gauge {
	if b.side == stream.R {
		return &b.met.StoredR
	}
	return &b.met.StoredS
}

func (b *joinerBolt) Cleanup() {}
