package biclique

import (
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/metrics"
	"fastjoin/internal/stream"
	"fastjoin/internal/window"
)

// joinerBolt is one join instance. Instances in the R group (side == R)
// store tuples of stream R and probe them with arriving S tuples, and vice
// versa. A joiner also plays the two migration roles of Algorithm 2:
//
// As the *source* it runs the key selection, extracts and ships the stored
// tuples, broadcasts the routing update, buffers tuples of the migrating
// keys in a temporary queue, and flushes that queue to the target once it
// has collected a data-lane Marker from every dispatcher task (the marker
// arrives behind every tuple routed here before the update, so the flush
// provably contains every straggler).
//
// As the *target* it installs the migrated batch, buffers directly-routed
// tuples of the inbound keys until the source's flush arrives, then
// replays flush + buffer in order — preserving per-key FIFO end to end,
// which is what makes the join exactly-once across migrations.
type joinerBolt struct {
	cfg  *Config
	side stream.Side
	met  *SystemMetrics
	ctx  engine.Context

	store *window.Store

	// Probe statistics: total arrivals since the last load report, an
	// EWMA-smoothed probe pressure (φ_si ≈ arrivals + backlog, the paper's
	// "queue length of the tuples from S"), and per-key arrivals for the
	// current and previous intervals (φ_sik), which key selection consumes.
	probesInterval int64
	probeEWMA      float64
	probeCur       map[stream.Key]int64
	probePrev      map[stream.Key]int64

	// Migration source state.
	migrating     bool
	migKeys       map[stream.Key]bool
	migTarget     int
	migMoved      int
	migLI         float64
	markersNeeded int
	tempQueue     []TupleMsg

	// Migration target state: keys whose batch arrived but whose flush is
	// still pending, plus the buffered directly-routed tuples.
	inboundKeys map[stream.Key]bool
	inboundBuf  []TupleMsg

	// Capacity emulation (Config.ServiceRate): virtual ops consumed and
	// the wall-clock origin they are measured against.
	ops      float64
	opsSince time.Time
}

func newJoinerFactory(cfg *Config, side stream.Side, met *SystemMetrics) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &joinerBolt{cfg: cfg, side: side, met: met}
	}
}

func (b *joinerBolt) Prepare(ctx engine.Context, _ *engine.Collector) {
	b.ctx = ctx
	if b.cfg.Window > 0 {
		b.store = window.NewWindowed(b.cfg.Window.Nanoseconds(), b.cfg.SubWindows)
	} else {
		b.store = window.New()
	}
	b.probeCur = make(map[stream.Key]int64)
	b.probePrev = make(map[stream.Key]int64)
	b.opsSince = time.Now()
}

// probeBaseCost is the virtual op cost of the probe's hash lookup itself,
// relative to a store's cost of 1.
const probeBaseCost = 0.2

// consume charges virtual ops against the instance's service budget and
// sleeps off any surplus beyond a small burst allowance. Sleeping inside
// Execute is what creates the queue growth and backpressure an overloaded
// node would exhibit.
func (b *joinerBolt) consume(cost float64) {
	rate := b.cfg.ServiceRate
	if rate <= 0 {
		return
	}
	b.ops += cost
	virtual := time.Duration(b.ops / rate * float64(time.Second))
	ahead := virtual - time.Since(b.opsSince)
	if ahead > 2*time.Millisecond {
		time.Sleep(ahead)
	}
}

func (b *joinerBolt) Execute(m engine.Message, out *engine.Collector) {
	switch v := m.Value.(type) {
	case TupleMsg:
		b.handleTuple(v, out)
	case Marker:
		b.handleMarker(out)
	case MigrateCmd:
		b.startMigration(v, out)
	case MigrateBatch:
		b.installBatch(v)
	case MigrateFlush:
		b.handleFlush(v, out)
	default:
		if m.Stream == engine.TickStream {
			b.onTick(out)
		}
	}
}

// handleTuple stores or probes one tuple, honoring the two migration
// buffers.
func (b *joinerBolt) handleTuple(tm TupleMsg, out *engine.Collector) {
	key := tm.T.Key
	if b.migrating && b.migKeys[key] {
		// Algorithm 2's temporary queue: the key is leaving; hold the
		// tuple until all dispatcher markers arrive.
		b.tempQueue = append(b.tempQueue, tm)
		return
	}
	if b.inboundKeys != nil && b.inboundKeys[key] {
		// The key is arriving: its batch is installed but the source's
		// flush (older tuples) has not landed yet; keep FIFO by waiting.
		b.inboundBuf = append(b.inboundBuf, tm)
		return
	}
	switch tm.Op {
	case OpStore:
		b.store.Add(tm.T)
		b.storedGauge().Add(1)
		b.consume(1)
	case OpProbe:
		b.probe(tm, out)
	}
}

// probe joins one opposite-stream tuple against the store.
func (b *joinerBolt) probe(tm TupleMsg, out *engine.Collector) {
	key := tm.T.Key
	b.probesInterval++
	b.probeCur[key]++

	pred := b.cfg.Predicate
	matches := int64(0)
	scanned := 0
	b.store.ForEachMatch(key, func(stored stream.Tuple) {
		scanned++
		pair := b.makePair(stored, tm.T)
		if pred != nil && !pred(pair.R, pair.S) {
			return
		}
		matches++
		if b.cfg.EmitResults {
			out.Emit(streamResults, pair)
		}
	})
	if !b.cfg.EmitResults && matches > 0 {
		b.met.Results.Mark(matches)
	}
	// A probe that finds an empty bucket is just a hash lookup — far
	// cheaper than a store's insert — so its base cost is fractional.
	b.consume(probeBaseCost + b.cfg.MatchCost*float64(scanned))
	b.met.Latency.Observe(stream.Now() - tm.SentAt)
}

// makePair orients (stored, probing) into (R, S).
func (b *joinerBolt) makePair(stored, probing stream.Tuple) stream.JoinedPair {
	p := stream.JoinedPair{
		StoreSide: b.side,
		Instance:  b.ctx.Task,
		JoinedAt:  stream.Now(),
	}
	if b.side == stream.R {
		p.R, p.S = stored, probing
	} else {
		p.R, p.S = probing, stored
	}
	return p
}

// startMigration is the source-side entry of Algorithm 2.
func (b *joinerBolt) startMigration(cmd MigrateCmd, out *engine.Collector) {
	if b.migrating || cmd.Target.Instance == b.ctx.Task {
		// Stale or self-targeted command: report an empty migration so the
		// monitor re-arms.
		b.reportDone(out, cmd.Target.Instance, 0, 0, cmd.LI)
		return
	}
	input := core.SelectInput{
		Source:     cmd.Source,
		Target:     cmd.Target,
		Keys:       b.keyStats(cmd.Source.Probe),
		MinBenefit: b.cfg.Migration.MinBenefit,
	}
	selected := b.cfg.Migration.Selector(input)
	if len(selected) == 0 {
		b.reportDone(out, cmd.Target.Instance, 0, 0, cmd.LI)
		return
	}

	// Extract the stored tuples of the selected keys (Algorithm 2 l. 3-8).
	batch := MigrateBatch{Side: b.side, From: b.ctx.Task, Keys: selected}
	for _, k := range selected {
		batch.Tuples = append(batch.Tuples, b.store.RemoveKey(k)...)
	}
	b.storedGauge().Add(int64(-len(batch.Tuples)))

	b.migrating = true
	b.migTarget = cmd.Target.Instance
	b.migMoved = len(batch.Tuples)
	b.migLI = cmd.LI
	b.migKeys = make(map[stream.Key]bool, len(selected))
	for _, k := range selected {
		b.migKeys[k] = true
		// The keys no longer contribute to this instance's probe stats.
		delete(b.probeCur, k)
		delete(b.probePrev, k)
	}

	// Ship the tuples (l. 9-10), then ask every dispatcher task to reroute
	// (l. 11-12); each will reply with a data-lane Marker.
	out.EmitDirect(migStream(b.side), b.migTarget, batch)
	out.Emit(streamRouteUpd, RouteUpdate{
		Side:     b.side,
		Keys:     selected,
		NewOwner: b.migTarget,
		Source:   b.ctx.Task,
	})
	b.markersNeeded = b.cfg.Dispatchers
}

// handleMarker counts dispatcher markers; the last one proves no further
// tuples for the migrated keys can reach this instance, so the temporary
// queue is flushed to the target and the migration completes (l. 13).
func (b *joinerBolt) handleMarker(out *engine.Collector) {
	if !b.migrating {
		return
	}
	b.markersNeeded--
	if b.markersNeeded > 0 {
		return
	}
	// Always send the flush — even empty — because it is what releases the
	// target's inbound buffer.
	out.EmitDirect(migStream(b.side), b.migTarget, MigrateFlush{
		Side:   b.side,
		From:   b.ctx.Task,
		Queued: b.tempQueue,
	})
	keys := len(b.migKeys)
	target, moved := b.migTarget, b.migMoved
	b.migrating = false
	b.migKeys = nil
	b.tempQueue = nil
	b.migMoved = 0
	b.reportDone(out, target, keys, moved, b.migLI)
}

// reportDone notifies the side's monitor that the migration completed.
func (b *joinerBolt) reportDone(out *engine.Collector, target, keys, moved int, li float64) {
	if keys > 0 {
		b.met.Migrations.Inc()
		b.met.MigratedKeys.Add(int64(keys))
		b.met.MigratedTuples.Add(int64(moved))
		b.met.RecordMigration(MigrationEvent{
			At:     stream.Now(),
			Side:   b.side,
			Source: b.ctx.Task,
			Target: target,
			LI:     li,
			Keys:   keys,
			Moved:  moved,
		})
	}
	out.Emit(doneStream(b.side), MigrationDone{
		Side:   b.side,
		Source: b.ctx.Task,
		Target: target,
		Keys:   keys,
		Moved:  moved,
	})
}

// installBatch is the target-side arrival: adopt the keys and hold any
// directly-routed tuples until the source's flush lands.
func (b *joinerBolt) installBatch(batch MigrateBatch) {
	if b.inboundKeys == nil {
		b.inboundKeys = make(map[stream.Key]bool, len(batch.Keys))
	}
	for _, k := range batch.Keys {
		b.inboundKeys[k] = true
	}
	b.store.AddBulk(batch.Tuples)
	b.storedGauge().Add(int64(len(batch.Tuples)))
	// Installing migrated tuples is real work on the target node.
	b.consume(float64(len(batch.Tuples)))
}

// handleFlush replays the source's temporary queue, then the tuples this
// instance buffered while waiting — restoring the original per-key order.
func (b *joinerBolt) handleFlush(flush MigrateFlush, out *engine.Collector) {
	b.inboundKeys = nil
	buffered := b.inboundBuf
	b.inboundBuf = nil
	for _, tm := range flush.Queued {
		b.handleTuple(tm, out)
	}
	for _, tm := range buffered {
		b.handleTuple(tm, out)
	}
}

// onTick reports load to the monitor and advances the window.
func (b *joinerBolt) onTick(out *engine.Collector) {
	if b.store.Windowed() {
		removed := b.store.Advance(stream.Now())
		if removed > 0 {
			b.storedGauge().Add(int64(-removed))
		}
	}
	// φ = arrivals this interval plus the unprocessed backlog, smoothed so
	// a single quiet interval under bursty dispatch does not read as zero
	// load. Round up: any positive pressure counts as at least one.
	raw := float64(b.probesInterval + int64(out.QueueLen()))
	b.probeEWMA = 0.5*b.probeEWMA + 0.5*raw
	probe := int64(b.probeEWMA)
	if probe == 0 && b.probeEWMA > 0 {
		probe = 1
	}
	out.Emit(loadStream(b.side), LoadReport{
		Side: b.side,
		Load: core.InstanceLoad{
			Instance: b.ctx.Task,
			Stored:   int64(b.store.Len()),
			Probe:    probe,
		},
	})
	b.probesInterval = 0
	b.probePrev = b.probeCur
	b.probeCur = make(map[stream.Key]int64)
}

// keyStats assembles the per-key statistics for key selection: stored
// counts from the window store and probe counts from the last two
// intervals, rescaled so that Σφ_sik matches the aggregate φ_si the
// monitor's command is based on. Without the rescale, the knapsack's
// per-key benefits and its capacity (L_i - L_j) would be on different
// scales and GreedyFit would systematically over-select.
func (b *joinerBolt) keyStats(aggregateProbe int64) []core.KeyStat {
	probe := make(map[stream.Key]int64, len(b.probePrev)+len(b.probeCur))
	var rawTotal int64
	for k, c := range b.probePrev {
		probe[k] += c
		rawTotal += c
	}
	for k, c := range b.probeCur {
		probe[k] += c
		rawTotal += c
	}
	scale := 1.0
	if rawTotal > 0 && aggregateProbe > 0 {
		scale = float64(aggregateProbe) / float64(rawTotal)
	}
	// Truncate: a key whose scaled probe mass rounds to zero contributes
	// no probe benefit. Flooring it up instead would inflate the benefit
	// of hundreds of noise keys and starve the keys that actually carry
	// load out of the knapsack.
	scaled := func(c int64) int64 { return int64(float64(c) * scale) }
	stats := make([]core.KeyStat, 0, b.store.Keys()+len(probe))
	b.store.ForEachKey(func(k stream.Key, count int) {
		stats = append(stats, core.KeyStat{Key: k, Stored: int64(count), Probe: scaled(probe[k])})
		delete(probe, k)
	})
	for k, c := range probe {
		// Probe-only keys: no stored tuples yet, but routing them away
		// still moves probe load.
		stats = append(stats, core.KeyStat{Key: k, Stored: 0, Probe: scaled(c)})
	}
	return stats
}

func (b *joinerBolt) storedGauge() *metrics.Gauge {
	if b.side == stream.R {
		return &b.met.StoredR
	}
	return &b.met.StoredS
}

func (b *joinerBolt) Cleanup() {}
