package biclique

import (
	"testing"
	"time"

	"fastjoin/internal/engine"
	"fastjoin/internal/stream"
)

// newTestJoiner builds a joinerBolt outside a running topology; only the
// pure paths (keyStats, consume) are exercised.
func newTestJoiner(t *testing.T, cfg Config) *joinerBolt {
	t.Helper()
	cfg.Sources = []TupleSource{func() (stream.Tuple, bool) { return stream.Tuple{}, false }}
	if cfg.JoinersPerSide == 0 {
		cfg.JoinersPerSide = 2
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := &joinerBolt{cfg: &cfg, side: stream.R, met: NewSystemMetrics(cfg.JoinersPerSide)}
	b.Prepare(engine.Context{Component: CompJoinerR, Task: 0, Parallelism: cfg.JoinersPerSide}, nil)
	return b
}

func TestKeyStatsCombinesStoreAndProbes(t *testing.T) {
	b := newTestJoiner(t, Config{})
	b.store.Add(stream.Tuple{Key: 1, Seq: 0})
	b.store.Add(stream.Tuple{Key: 1, Seq: 1})
	b.store.Add(stream.Tuple{Key: 2, Seq: 2})
	b.probeCur[1] = 10
	b.probePrev[1] = 10
	b.probeCur[3] = 5 // probe-only key

	stats := b.keyStats(20) // aggregate equals raw total: scale 1
	byKey := map[stream.Key][2]int64{}
	for _, ks := range stats {
		byKey[ks.Key] = [2]int64{ks.Stored, ks.Probe}
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	if byKey[1] != [2]int64{2, 16} { // 20/25 scale: 20*(20/25)=16
		t.Errorf("key 1 = %v", byKey[1])
	}
	if byKey[2] != [2]int64{1, 0} {
		t.Errorf("key 2 = %v", byKey[2])
	}
	if byKey[3][0] != 0 || byKey[3][1] != 4 { // 5*(20/25)=4
		t.Errorf("key 3 = %v", byKey[3])
	}
}

func TestKeyStatsRescalesToAggregate(t *testing.T) {
	b := newTestJoiner(t, Config{})
	b.store.Add(stream.Tuple{Key: 1, Seq: 0})
	b.probeCur[1] = 4
	b.probeCur[2] = 4

	// Aggregate probe pressure is 10x the raw counts (the monitor's φ
	// includes the backlog): per-key probes scale up proportionally.
	stats := b.keyStats(80)
	var total int64
	for _, ks := range stats {
		total += ks.Probe
	}
	if total != 80 {
		t.Errorf("scaled probe total = %d, want 80", total)
	}
}

func TestKeyStatsTruncatesNoise(t *testing.T) {
	b := newTestJoiner(t, Config{})
	// 100 noise keys with one probe each, plus one hot key.
	for k := stream.Key(0); k < 100; k++ {
		b.probeCur[k] = 1
	}
	b.probeCur[500] = 900
	// Aggregate is a tenth of raw: noise keys must round down to zero,
	// not up to one (which would inflate their benefit 10x).
	stats := b.keyStats(100)
	for _, ks := range stats {
		if ks.Key != 500 && ks.Probe != 0 {
			t.Fatalf("noise key %d kept probe %d", ks.Key, ks.Probe)
		}
		if ks.Key == 500 && ks.Probe != 90 {
			t.Fatalf("hot key probe = %d, want 90", ks.Probe)
		}
	}
}

func TestKeyStatsZeroAggregate(t *testing.T) {
	b := newTestJoiner(t, Config{})
	b.probeCur[1] = 7
	stats := b.keyStats(0) // no aggregate info: keep raw counts
	if len(stats) != 1 || stats[0].Probe != 7 {
		t.Errorf("stats = %v", stats)
	}
}

func TestConsumeDisabledByDefault(t *testing.T) {
	b := newTestJoiner(t, Config{})
	start := time.Now()
	for i := 0; i < 1000; i++ {
		b.consume(100)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("consume slept although ServiceRate is zero")
	}
}

func TestConsumePacesAtServiceRate(t *testing.T) {
	b := newTestJoiner(t, Config{ServiceRate: 10000})
	start := time.Now()
	// 500 ops at 10k ops/s should take ~50ms of virtual time.
	for i := 0; i < 50; i++ {
		b.consume(10)
	}
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Errorf("consume too fast: %v for 500 ops at 10k/s", elapsed)
	}
	if elapsed > 300*time.Millisecond {
		t.Errorf("consume too slow: %v", elapsed)
	}
}

func TestMakePairOrientation(t *testing.T) {
	r := newTestJoiner(t, Config{})
	r.side = stream.R
	stored := stream.Tuple{Side: stream.R, Key: 1, Seq: 10}
	probing := stream.Tuple{Side: stream.S, Key: 1, Seq: 20}
	p := r.makePair(stored, probing, stream.Now())
	if p.R.Seq != 10 || p.S.Seq != 20 {
		t.Errorf("R-side pair = %+v", p)
	}

	s := newTestJoiner(t, Config{})
	s.side = stream.S
	p = s.makePair(probing, stored, stream.Now()) // stored is now the S tuple
	if p.R.Seq != 10 || p.S.Seq != 20 {
		t.Errorf("S-side pair = %+v", p)
	}
}

// Regression: probe() used to observe stream.Now() - SentAt for every
// probe, so tuples replayed from a migration flush carried stamps stale
// by the whole handshake and every migration spiked the latency tail by
// its own wall-time. Replays must be metered separately instead.
func TestReplayedTuplesSkipLatencyHistogram(t *testing.T) {
	b := newTestJoiner(t, Config{})
	b.handleTuple(TupleMsg{T: stream.Tuple{Side: stream.R, Key: 5, Seq: 1}, Op: OpStore, SentAt: stream.Now(), Seq: 1}, nil)

	// A fresh probe lands in the histogram.
	b.handleTuple(TupleMsg{T: stream.Tuple{Side: stream.S, Key: 5, Seq: 1}, Op: OpProbe, SentAt: stream.Now(), Seq: 2}, nil)
	if got := b.met.Latency.Count(); got != 1 {
		t.Fatalf("fresh probe: latency samples = %d, want 1", got)
	}

	// A migration flush replays a probe whose SentAt is 10s stale — the
	// real replay path: install an inbound batch, then flush it.
	stale := stream.Now() - int64(10*time.Second)
	b.installBatch(MigrateBatch{Side: stream.R, From: 1, Epoch: 1, Keys: []stream.Key{9}})
	b.handleFlush(MigrateFlush{Side: stream.R, From: 1, Epoch: 1, Queued: []TupleMsg{
		{T: stream.Tuple{Side: stream.S, Key: 5, Seq: 2}, Op: OpProbe, SentAt: stale, Seq: 3},
	}}, nil)

	if got := b.met.Latency.Count(); got != 1 {
		t.Fatalf("replayed probe entered the latency histogram: samples = %d, want 1", got)
	}
	if max := b.met.Latency.Max(); max > int64(5*time.Second) {
		t.Errorf("latency tail polluted by stale stamp: max = %v", time.Duration(max))
	}
	if got := b.met.ReplayedTuples.Count(); got != 1 {
		t.Errorf("ReplayedTuples = %d, want 1", got)
	}
}

// Regression: consume() only ever grew ops while opsSince stayed fixed,
// so an idle spell banked unbounded service credit and a following burst
// ran entirely unthrottled — under-modeling exactly the overload the
// balancer is supposed to detect. The deficit must be clamped to one
// burst window.
func TestConsumeThrottlesAfterIdle(t *testing.T) {
	b := newTestJoiner(t, Config{ServiceRate: 10000})
	// Emulate 10 minutes of idle: wall clock far ahead of virtual time.
	b.opsSince = time.Now().Add(-10 * time.Minute)
	start := time.Now()
	for i := 0; i < 50; i++ {
		b.consume(10) // 500 ops = 50ms of virtual time at 10k ops/s
	}
	elapsed := time.Since(start)
	// The clamp leaves at most burstWindow (20ms) of credit, so at least
	// ~30ms of the 50ms virtual cost must be slept off.
	if elapsed < 20*time.Millisecond {
		t.Errorf("burst after idle ran unthrottled: %v for 500 ops at 10k/s", elapsed)
	}
	if elapsed > 300*time.Millisecond {
		t.Errorf("consume too slow: %v", elapsed)
	}
}
