// Package biclique implements the distributed stream join system of the
// paper on top of the engine runtime: the join-biclique model of BiStream
// (two groups of join instances, each storing one stream and probing it
// with the other), the dispatcher with its routing table, the per-side
// monitors, and FastJoin's dynamic key-migration protocol (§III-D,
// Algorithm 2) with exactly-once join completeness.
package biclique

import (
	"fastjoin/internal/core"
	"fastjoin/internal/stream"
)

// Op says what a join instance should do with a tuple.
type Op uint8

const (
	// OpStore adds the tuple to the instance's store (it belongs to the
	// stream this instance group persists).
	OpStore Op = iota
	// OpProbe joins the tuple against the instance's store (it belongs to
	// the opposite stream) and then discards it.
	OpProbe
)

// String returns "store" or "probe".
func (o Op) String() string {
	if o == OpStore {
		return "store"
	}
	return "probe"
}

// TupleMsg is a routed tuple: the dispatcher wraps every tuple with the
// operation the receiving join instance must perform and the send
// timestamp, from which the instance measures processing latency
// (queueing + service), the paper's latency metric.
type TupleMsg struct {
	T      stream.Tuple
	Op     Op
	SentAt int64 // unix nanoseconds, stamped by the dispatcher
}

// LoadReport is the periodic statistic a join instance sends to its side's
// monitor: |R_i| (stored tuples) and φ_si (probe arrivals in the reporting
// interval plus queued probes).
type LoadReport struct {
	Side stream.Side
	Load core.InstanceLoad
}

// MigrateCmd is the monitor's instruction to the heaviest instance: run the
// key selection algorithm against the given target and migrate the selected
// keys. It carries the target's aggregate load, which the selection needs
// (§III-C).
type MigrateCmd struct {
	Side   stream.Side
	Source core.InstanceLoad
	Target core.InstanceLoad
	LI     float64
}

// MigrateBatch carries the stored tuples of the selected keys from the
// source instance to the target instance (Algorithm 2 line 10). Keys lists
// every migrated key, including keys with no stored tuples (probe-only
// keys whose routing moves without payload).
type MigrateBatch struct {
	Side   stream.Side
	From   int
	Keys   []stream.Key
	Tuples []stream.Tuple
}

// MigrateFlush carries the tuples that arrived at the source for migrating
// keys while the routing update was propagating (Algorithm 2's temporary
// queue). It follows the MigrateBatch on the same FIFO control lane, so the
// target always applies the batch first.
type MigrateFlush struct {
	Side   stream.Side
	From   int
	Queued []TupleMsg
}

// RouteUpdate tells every dispatcher task that the listed keys of one side
// now live on instance NewOwner (Algorithm 2 line 12).
type RouteUpdate struct {
	Side     stream.Side
	Keys     []stream.Key
	NewOwner int
	Source   int // instance that must receive the markers
}

// Marker is a dispatcher task's confirmation that it applied a RouteUpdate.
// Unlike a plain ack it travels on the *data* lane to the source instance,
// behind every tuple that task routed to the source before the update — so
// when the source has collected markers from all dispatcher tasks, it has
// provably seen (and buffered) every tuple of the migrated keys that will
// ever reach it, and can flush its temporary queue with per-key FIFO order
// intact. This refines the paper's Algorithm 2 notification handshake to
// stay exactly-once under parallel dispatchers.
type Marker struct {
	Side           stream.Side
	DispatcherTask int
}

// MigrationDone tells the monitor the migration finished, re-arming its
// trigger. Moved reports how many stored tuples changed instance.
type MigrationDone struct {
	Side   stream.Side
	Source int
	Target int
	Keys   int
	Moved  int
}
