// Package biclique implements the distributed stream join system of the
// paper on top of the engine runtime: the join-biclique model of BiStream
// (two groups of join instances, each storing one stream and probing it
// with the other), the dispatcher with its routing table, the per-side
// monitors, and FastJoin's dynamic key-migration protocol (§III-D,
// Algorithm 2) with exactly-once join completeness.
package biclique

import (
	"sync"

	"fastjoin/internal/core"
	"fastjoin/internal/stream"
)

// Op says what a join instance should do with a tuple.
type Op uint8

const (
	// OpStore adds the tuple to the instance's store (it belongs to the
	// stream this instance group persists).
	OpStore Op = iota
	// OpProbe joins the tuple against the instance's store (it belongs to
	// the opposite stream) and then discards it.
	OpProbe
)

// String returns "store" or "probe".
func (o Op) String() string {
	if o == OpStore {
		return "store"
	}
	return "probe"
}

// TupleMsg is a routed tuple: the dispatcher wraps every tuple with the
// operation the receiving join instance must perform and the send
// timestamp, from which the instance measures processing latency
// (queueing + service), the paper's latency metric.
type TupleMsg struct {
	T      stream.Tuple
	Op     Op
	SentAt int64 // unix nanoseconds, stamped by the dispatcher
	// Seq is a per-dispatcher-task monotone counter. All traffic of one
	// key flows through a single dispatcher task, so for any key the Seq
	// order IS the arrival order — which lets an aborted migration merge
	// the source's temporary queue with the target's returned buffer back
	// into original per-key order (the two can interleave: tuples held at
	// the source before the routing update and again after the revert
	// bracket the tuples that reached the target in between).
	Seq uint64
	// Replayed marks a tuple re-processed from a migration buffer (the
	// source's temporary queue, the target's inbound buffer, or an abort
	// rollback). Its SentAt is stale by the whole migration handshake, so
	// the latency histogram skips it; ReplayedTuples counts it instead.
	Replayed bool
}

// TupleBatch carries several routed tuples of one (side, target) lane as a
// single engine message: one channel send, one interface value, one
// allocation for the whole group. The dispatcher accumulates per-lane
// batches (Config.BatchSize / BatchLinger) and the joiner unpacks them
// inline through the same handleTuple path, so batching changes message
// granularity only — per-lane FIFO order, Seq numbering, and therefore the
// migration fencing proof are untouched. Any open batch is flushed before
// a Marker is emitted, so a marker still rides behind every earlier tuple
// of its lane.
type TupleBatch struct {
	Msgs []TupleMsg
}

// ShuffleBatch carries several pre-processed tuples of one
// shuffler→dispatcher lane as a single engine message (the upstream
// counterpart of TupleBatch). The shuffler owns the key→dispatcher
// mapping, so all tuples of one key still flow through one dispatcher
// task in arrival order — the per-key FIFO the exactly-once argument
// relies on is a property of the lane, not of the message granularity.
// The slice is handed off on emit and never reused.
type ShuffleBatch struct {
	Tuples []stream.Tuple
}

// PairBatch carries matched pairs from a joiner to the sink as a single
// pooled message. Unlike the tuple batches, PairBatch IS recycled: the sink
// is the sole subscriber of the results stream and returns each drained
// batch to the pool, and the chaos classifier pins the type to ClassData,
// which no profile drops or duplicates — so exactly one consumer ever sees
// a batch before it is reused. (Recycling a type a profile could duplicate
// would let the second delivery observe a reused buffer.)
type PairBatch struct {
	Pairs []stream.JoinedPair
}

// pairBatchCap is the flush threshold of a joiner's result batch; a probe
// on a hot key spills into multiple batches.
const pairBatchCap = 256

var pairPool = sync.Pool{New: func() any {
	return &PairBatch{Pairs: make([]stream.JoinedPair, 0, pairBatchCap)}
}}

func getPairBatch() *PairBatch { return pairPool.Get().(*PairBatch) }

// putPairBatch recycles a drained batch, dropping payload references so the
// pool does not pin the joined tuples alive.
func putPairBatch(b *PairBatch) {
	clear(b.Pairs)
	b.Pairs = b.Pairs[:0]
	pairPool.Put(b)
}

// LoadReport is the periodic statistic a join instance sends to its side's
// monitor: |R_i| (stored tuples) and φ_si (probe arrivals in the reporting
// interval plus queued probes).
type LoadReport struct {
	Side stream.Side
	Load core.InstanceLoad
	// SplitKeys is how many keys this instance is currently split-marked
	// for (active marks only; residual taints of unsplit keys are not
	// counted). The monitor exports it so /metrics can show where split
	// traffic lands; the load model itself needs no correction — salted
	// stores and fanned-out probes already show up in Stored and Probe.
	SplitKeys int
}

// MigrateCmd is the monitor's instruction to the heaviest instance: run the
// key selection algorithm against the given target and migrate the selected
// keys. It carries the target's aggregate load, which the selection needs
// (§III-C).
type MigrateCmd struct {
	Side   stream.Side
	Source core.InstanceLoad
	Target core.InstanceLoad
	LI     float64
	// Theta is the monitor's effective trigger threshold Θ, carried so the
	// source's trace events record the threshold the imbalance exceeded.
	Theta float64
}

// MigrateBatch carries the stored tuples of the selected keys from the
// source instance to the target instance (Algorithm 2 line 10). Keys lists
// every migrated key, including keys with no stored tuples (probe-only
// keys whose routing moves without payload). Epoch identifies the
// migration attempt of the From instance, so stale or duplicated batches
// are recognized and dropped.
type MigrateBatch struct {
	Side   stream.Side
	From   int
	Epoch  uint64
	Keys   []stream.Key
	Tuples []stream.Tuple
}

// MigrateFlush carries the tuples that arrived at the source for migrating
// keys while the routing update was propagating (Algorithm 2's temporary
// queue). It follows the MigrateBatch on the same FIFO control lane, so the
// target always applies the batch first.
type MigrateFlush struct {
	Side   stream.Side
	From   int
	Epoch  uint64
	Queued []TupleMsg
}

// RouteUpdate tells every dispatcher task that the listed keys of one side
// now live on instance NewOwner (Algorithm 2 line 12).
//
// The update is idempotent and the source re-broadcasts it every stats
// tick until its marker handshake completes, so dropped, delayed, or
// duplicated updates all converge: dispatchers order attempts by
// (Epoch, Revert) per source and ignore anything stale.
type RouteUpdate struct {
	Side     stream.Side
	Keys     []stream.Key
	NewOwner int
	Source   int // migration source instance (identifies the attempt)
	// Epoch is the source's migration attempt number; Revert marks the
	// rollback update of an aborting attempt (same epoch, routing
	// restored to the source).
	Epoch  uint64
	Revert bool
	// MarkerTo is the join instance the dispatchers must send their
	// markers to: the source for a forward update (it waits to flush its
	// temporary queue), the target for a revert (it waits to return the
	// batch and its buffer).
	MarkerTo int
}

// Marker is a dispatcher task's confirmation that it applied a RouteUpdate.
// Unlike a plain ack it travels on the *data* lane to the instance named
// by the update's MarkerTo, behind every tuple that task routed there
// before the update — so when that instance has collected markers from
// all dispatcher tasks (a distinct set, since faults can duplicate
// markers), it has provably seen every tuple of the migrated keys that
// will ever reach it. The source uses forward markers to flush its
// temporary queue. A revert update fences BOTH ends: dispatchers send
// revert markers to the target (which then returns the batch and its
// buffer) and to the source, which replays the merged buffers only once
// its own lanes are clean — the forward markers that would have fenced
// them are the very messages whose loss triggered the abort. This
// refines the paper's Algorithm 2 notification handshake to stay
// exactly-once under parallel dispatchers and lossy control lanes.
type Marker struct {
	Side           stream.Side
	DispatcherTask int
	Origin         int // migration source instance
	Epoch          uint64
	Revert         bool
}

// MigrateAbort tells the migration target that the source has given up
// on the marker handshake and is rolling back: the target must collect
// revert markers from every dispatcher, then send everything it holds
// for the attempt back in a MigrateReturn. Re-sent every stats tick
// until the return arrives; the target answers duplicates idempotently.
type MigrateAbort struct {
	Side  stream.Side
	From  int // migration source instance
	Epoch uint64
}

// MigrateReturn is the abort rollback payload: the stored tuples the
// target installed from the batch plus every directly-routed tuple it
// buffered while the migration was in flight. The source re-installs the
// tuples and replays its temporary queue merged with Buffered in Seq
// order, restoring per-key FIFO as if the migration never happened.
type MigrateReturn struct {
	Side     stream.Side
	From     int // target instance sending the return
	Origin   int // migration source instance
	Epoch    uint64
	Tuples   []stream.Tuple
	Buffered []TupleMsg
}

// SplitIntent opens the hot-key splitting handshake: a dispatcher task
// that detected a heavy hitter asks the key's current owner in one side
// group for permission to split. It rides the data lane to the owner and
// is re-sent every detector epoch until the SplitAck arrives, so a lost
// intent (or an owner that was mid-migration and stayed silent) only
// delays the split. Epoch is the dispatcher's split-decision epoch, for
// diagnostics; the handshake itself is idempotent per key.
type SplitIntent struct {
	Side  stream.Side
	Key   stream.Key
	Epoch uint64
}

// SplitAck is the owner's permission to split: it is sent only when no
// migration attempt involving the key is in flight at that owner (not a
// migration source holding the key, not a target with the key inbound),
// and sending it taints the key against every future migration selection
// at that instance. The ack broadcasts on the routing-update lane (all
// dispatcher tasks see it; only the key's owning task has a pending
// intent). Once the dispatcher holds acks from BOTH side groups' owners,
// no migration of the key can ever start again — the fencing order the
// split/migrate interleaving tests pin down.
type SplitAck struct {
	Side  stream.Side
	Key   stream.Key
	Epoch uint64
	From  int // acking join instance
}

// SplitMark activates split routing for one key at one join instance. It
// is fenced like a RouteUpdate's marker: the dispatcher flushes every open
// batch first and emits the mark on the data lane to the key's owner and
// every salt member in both side groups, so it arrives BEFORE the first
// salted store or fanned-out probe on each lane. A receiving instance
// marks the key split: excluded from migration key selection (GreedyFit
// and SAFit candidate sets) for as long as the instance may hold salted
// tuples of it.
type SplitMark struct {
	Side  stream.Side
	Key   stream.Key
	Epoch uint64
}

// UnsplitMark deactivates split routing for a cooled key: store salting
// stops (stores return to the owner) but the mark does NOT lift the
// migration taint — salted tuples already stored at the members stay
// where they are and keep being covered by residual probe fan-out until
// the drain/retire protocol proves the shares are gone (see DESIGN.md
// "Hot-key splitting: drain and retire"). At a non-owner member the mark
// also opens the drain phase: the member arms a window-store emptiness
// watch on the key and reports SplitDrained once its last salted share
// expires. Fenced like SplitMark (flush-then-mark), so on every lane the
// mark rides behind the final salted store — member emptiness is
// monotone from the moment the mark lands.
type UnsplitMark struct {
	Side  stream.Side
	Key   stream.Key
	Epoch uint64
	// Gen numbers the key's residual round, drawn from a dispatcher-task
	// counter that is monotone for the task's lifetime (it survives the
	// key's retirement). SplitDrained reports echo it, so a report from
	// before a reheat — or from a prior incarnation of the key that
	// split, retired, and split again — can never satisfy the retire
	// condition of a later cool-down.
	Gen uint64
	// Owner is the key's store owner on Side at deactivation time. The
	// owner keeps its pre-split share and never drains; a receiving
	// member compares its task id to decide whether to arm the watch.
	Owner int
}

// SplitDrained is a member's report that its last salted share of a
// residual key has expired from the window store: the instance holds no
// stored tuple of the key anymore and will receive no new store copies
// (salting stopped at the UnsplitMark fence). It broadcasts on the
// routing-update lane — like SplitAck, every dispatcher task sees it and
// only the task owning the key's traffic has a matching entry. Droppable:
// the member re-announces every stats tick until the SplitRetire (or a
// reheat's SplitMark) arrives.
type SplitDrained struct {
	Side stream.Side
	Key  stream.Key
	// Gen echoes the UnsplitMark generation the drain answers.
	Gen  uint64
	From int // reporting join instance
}

// SplitRetire ends a split key's lifecycle: every non-owner member of
// both sides reported SplitDrained for the current generation while the
// key stayed cold, so no instance other than the owners holds (or can
// ever again receive) a tuple of the key. The dispatcher deletes the
// split entry — restoring single-owner routing and stopping probe
// fan-out — and the mark tells owner and members to lift the migration
// taint: safe exactly because the drain handshake proved no stray share
// exists for a future migration to strand. Fenced like the other split
// marks (flush-then-mark on the data lanes), so it arrives behind the
// last fanned-out probe of every lane; members also drop the key's
// residual probe statistics, which accumulated from fan-out the owner's
// post-retire routing will no longer send them.
type SplitRetire struct {
	Side stream.Side
	Key  stream.Key
	Gen  uint64
}

// MigrationDone tells the monitor the migration finished, re-arming its
// trigger. Moved reports how many stored tuples changed instance (or,
// for an aborted attempt, how many made the round trip back).
type MigrationDone struct {
	Side    stream.Side
	Source  int
	Target  int
	Keys    int
	Moved   int
	Aborted bool
	// Epoch identifies the source's attempt for tracing; zero means the
	// report answers a rejected or self-targeted command that never opened
	// an attempt (the monitor re-arms but records no trace event).
	Epoch uint64
}
