package biclique

import (
	"math"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// recordedLICap bounds the LI values recorded into the metrics series; the
// exact (possibly infinite) ratio still drives the migration trigger.
const recordedLICap = 1e4

// monitorBolt is one side's monitoring component (§III-A): it collects the
// periodic load reports of its join instance group in a load information
// table, records the degree of load imbalance, and — when migration is
// enabled and LI exceeds Θ — instructs the heaviest instance to migrate
// keys to the lightest.
//
// Monitors always run (even for the BiStream baselines) because the
// evaluation records LI for every system (Fig. 11); only the trigger is
// gated on Migration.Enabled.
type monitorBolt struct {
	cfg  *Config
	side stream.Side
	met  *SystemMetrics

	mon    *core.Monitor
	latest map[int]core.InstanceLoad

	// loadScratch is the tick's load-table snapshot, reused across ticks:
	// Imbalance, RecordLoads, and Evaluate all copy what they keep.
	loadScratch []core.InstanceLoad

	triggeredAt time.Time
}

func newMonitorFactory(cfg *Config, side stream.Side, met *SystemMetrics) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &monitorBolt{
			cfg:    cfg,
			side:   side,
			met:    met,
			mon:    core.NewMonitor(cfg.Migration.Policy),
			latest: make(map[int]core.InstanceLoad),
		}
	}
}

func (b *monitorBolt) Prepare(engine.Context, *engine.Collector) {}

func (b *monitorBolt) Execute(m engine.Message, out *engine.Collector) {
	switch v := m.Value.(type) {
	case LoadReport:
		b.latest[v.Load.Instance] = v.Load
		b.met.RecordSplitReport(b.side, v.Load.Instance, v.SplitKeys)
	case MigrationDone:
		b.mon.MigrationDone()
		if v.Epoch != 0 {
			// Close the trace span from the monitor's side. Best-effort:
			// MigrationDone rides a droppable control lane, so a span is
			// complete without this event (the StuckTimeout below re-arms
			// the trigger if the report never lands).
			b.cfg.Tracer.Emit(obs.Event{
				Kind:     obs.KindDone,
				Span:     obs.NewSpanID(uint8(b.side), v.Source, v.Epoch),
				Side:     uint8(b.side),
				Instance: -1,
				Source:   v.Source,
				Target:   v.Target,
				Epoch:    v.Epoch,
				Keys:     v.Keys,
				Moved:    v.Moved,
				Revert:   v.Aborted,
			})
		}
	default:
		if m.Stream == engine.TickStream {
			b.onTick(out)
		}
	}
}

// onTick evaluates the load information table.
func (b *monitorBolt) onTick(out *engine.Collector) {
	if len(b.latest) < b.cfg.JoinersPerSide {
		return // not all instances have reported yet
	}
	loads := b.loadScratch[:0]
	var total int64
	for _, l := range b.latest {
		loads = append(loads, l)
		total += l.Load()
	}
	b.loadScratch = loads
	if total == 0 {
		return // idle system; LI is degenerate
	}
	li, _, _ := core.Imbalance(loads)
	// The recorded series is clipped so a momentarily idle instance
	// (L_min = 0, LI = +Inf) stays renderable; the trigger below still
	// sees the exact imbalance.
	b.met.RecordImbalance(b.side, math.Min(li, recordedLICap))
	b.met.RecordLoads(b.side, loads)

	if !b.cfg.Migration.Enabled {
		return
	}
	now := time.Now()
	if b.mon.InFlight() && now.Sub(b.triggeredAt) > b.cfg.Migration.StuckTimeout {
		// The source never reported back (it may have failed): re-arm.
		b.mon.MigrationDone()
	}
	if d := b.mon.Evaluate(now, loads); d != nil {
		b.triggeredAt = now
		out.EmitDirect(cmdStream(b.side), d.Source.Instance, MigrateCmd{
			Side:   b.side,
			Source: d.Source,
			Target: d.Target,
			LI:     d.LI,
			Theta:  b.mon.Policy().Theta,
		})
	}
}

func (b *monitorBolt) Cleanup() {}

// sinkBolt is the result-collecting component (the paper's counter bolt):
// it counts joined pairs for the throughput meter and hands them to the
// user callback when result emission is on.
type sinkBolt struct {
	cfg *Config
	met *SystemMetrics
}

func newSinkFactory(cfg *Config, met *SystemMetrics) engine.BoltFactory {
	return func(task int) engine.Bolt {
		return &sinkBolt{cfg: cfg, met: met}
	}
}

func (b *sinkBolt) Prepare(engine.Context, *engine.Collector) {}

func (b *sinkBolt) Execute(m engine.Message, _ *engine.Collector) {
	switch v := m.Value.(type) {
	case *PairBatch:
		b.met.Results.Mark(int64(len(v.Pairs)))
		if b.cfg.OnResult != nil {
			for i := range v.Pairs {
				b.cfg.OnResult(v.Pairs[i])
			}
		}
		// The batch is drained; recycle it for the joiners.
		putPairBatch(v)
	case stream.JoinedPair:
		// Legacy single-pair delivery, kept for tests that feed the sink
		// directly.
		b.met.Results.Mark(1)
		if b.cfg.OnResult != nil {
			b.cfg.OnResult(v)
		}
	}
}

func (b *sinkBolt) Cleanup() {}
