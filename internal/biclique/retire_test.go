package biclique

import (
	"slices"
	"testing"
	"time"

	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// newRetireTestDispatcher is newTestDispatcher with a config hook, for
// tests that need a tracer or a non-standard detector shape.
func newRetireTestDispatcher(t *testing.T, mutate func(*Config)) *dispatcherBolt {
	t.Helper()
	cfg := Config{
		Sources:        []TupleSource{func() (stream.Tuple, bool) { return stream.Tuple{}, false }},
		JoinersPerSide: 4,
		Strategy:       StrategyHash,
		Split:          SplitConfig{Threshold: 0.2, Ways: 2, Epoch: 64, SketchCapacity: 16},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := newDispatcherBolt(&cfg, NewSystemMetrics(cfg.JoinersPerSide))(0).(*dispatcherBolt)
	b.Prepare(engine.Context{Component: CompDispatcher, Task: 0, Parallelism: cfg.Dispatchers}, nil)
	return b
}

// activateEntry drives the full pending→acks→active handshake for a key,
// the same path a real promotion takes.
func activateEntry(t *testing.T, b *dispatcherBolt, k stream.Key) *splitEntry {
	t.Helper()
	out := engine.NullCollector()
	b.split.pending[k] = new(pendingSplit)
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: SplitAck{Side: stream.R, Key: k, From: 0}}, out)
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: SplitAck{Side: stream.S, Key: k, From: 0}}, out)
	e := b.split.entries[k]
	if e == nil || !e.active {
		t.Fatalf("handshake did not activate key %d: %+v", k, e)
	}
	return e
}

// drainReports builds the SplitDrained quorum for the key's current
// generation: one report per non-owner member of each side.
func drainReports(b *dispatcherBolt, k stream.Key) []SplitDrained {
	e := b.split.entries[k]
	var reps []SplitDrained
	for _, side := range splitSides {
		owner := b.router.StoreTarget(side, k)
		for _, m := range e.members[side] {
			if m != owner {
				reps = append(reps, SplitDrained{Side: side, Key: k, Gen: e.gen, From: m})
			}
		}
	}
	return reps
}

func feedDrained(b *dispatcherBolt, reps ...SplitDrained) {
	out := engine.NullCollector()
	for _, r := range reps {
		b.Execute(engine.Message{Stream: streamRouteUpd, Value: r}, out)
	}
}

// TestSplitDrainRetiresEntry walks the back half of the lifecycle at the
// dispatcher: residual → drain reports → retired. Reports with a stale
// generation, from the side owner, from a non-member, or duplicated must
// not count toward the quorum; the last genuine report deletes the entry;
// and a RouteUpdate naming the retired key must then apply — the freeze
// is lifted and the key migrates like any cold key.
func TestSplitDrainRetiresEntry(t *testing.T) {
	b := newRetireTestDispatcher(t, nil)
	out := engine.NullCollector()
	const k = stream.Key(9)

	e := activateEntry(t, b, k)
	b.deactivateSplit(k, e, out)
	if e.gen != 1 {
		t.Fatalf("first deactivation must open generation 1, got %d", e.gen)
	}
	if got := b.met.ResidualKeys.Value(); got != 1 {
		t.Fatalf("ResidualKeys = %d, want 1", got)
	}

	reps := drainReports(b, k)
	if len(reps) == 0 {
		t.Fatal("no non-owner members: the test shape cannot exercise the quorum")
	}

	// None of these may count: wrong generation, the owner itself, and an
	// instance outside the member set.
	stale := reps[0]
	stale.Gen = 0
	owner := b.router.StoreTarget(stream.R, k)
	outsider := -1
	for i := 0; i < b.cfg.JoinersPerSide; i++ {
		if i != owner && !slices.Contains(e.members[stream.R], i) {
			outsider = i
			break
		}
	}
	feedDrained(b, stale,
		SplitDrained{Side: stream.R, Key: k, Gen: e.gen, From: owner},
		SplitDrained{Side: stream.R, Key: k, Gen: e.gen, From: outsider})
	if n := len(e.drained[stream.R]) + len(e.drained[stream.S]); n != 0 {
		t.Fatalf("rejected reports were recorded: drained = %+v", e.drained)
	}

	// The quorum minus one, plus a duplicate: the entry must survive.
	feedDrained(b, reps[:len(reps)-1]...)
	feedDrained(b, reps[:len(reps)-1]...)
	if b.split.entries[k] == nil {
		t.Fatal("entry retired before every non-owner member reported")
	}
	if got := b.met.KeysRetired.Value(); got != 0 {
		t.Fatalf("KeysRetired = %d before the quorum completed", got)
	}

	// The last report completes the round.
	feedDrained(b, reps[len(reps)-1])
	if b.split.entries[k] != nil {
		t.Fatal("complete drain quorum must retire the entry")
	}
	if got := b.met.KeysRetired.Value(); got != 1 {
		t.Fatalf("KeysRetired = %d, want 1", got)
	}
	if got := b.met.ResidualKeys.Value(); got != 0 {
		t.Fatalf("ResidualKeys after retire = %d, want 0", got)
	}
	// A straggler re-announce after the retire is a no-op.
	feedDrained(b, reps[0])
	if got := b.met.KeysRetired.Value(); got != 1 {
		t.Fatalf("late report after retire changed state: KeysRetired = %d", got)
	}

	// The acceptance check of the whole protocol: the retired key is no
	// longer frozen, so a RouteUpdate naming it applies.
	newOwner := (owner + 1) % b.cfg.JoinersPerSide
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: RouteUpdate{
		Side: stream.R, Keys: []stream.Key{k},
		NewOwner: newOwner, Source: owner, Epoch: 1, MarkerTo: owner,
	}}, out)
	if got := b.router.StoreTarget(stream.R, k); got != newOwner {
		t.Fatalf("retired key still frozen: owner %d, want %d", got, newOwner)
	}
	if got := b.met.SplitFrozenKeys.Value(); got != 0 {
		t.Fatalf("SplitFrozenKeys = %d, want 0: the retired key must not be filtered", got)
	}
}

// TestSplitReheatVoidsDrainRound: a residual key that reheats re-activates
// without a new handshake, and the reheat voids the open drain round — the
// old generation's reports, even a complete set of them, can never retire
// the key afterward. Only the next round's own quorum can.
func TestSplitReheatVoidsDrainRound(t *testing.T) {
	b := newRetireTestDispatcher(t, nil)
	out := engine.NullCollector()
	const k = stream.Key(9)

	e := activateEntry(t, b, k)
	b.deactivateSplit(k, e, out)
	gen1 := drainReports(b, k)
	feedDrained(b, gen1[0])
	if len(e.drained[gen1[0].Side]) != 1 {
		t.Fatal("genuine gen-1 report not recorded")
	}

	// Reheat: the entries branch of evalSplit calls activateSplit directly.
	b.activateSplit(k, e, out)
	if !e.active {
		t.Fatal("reheat must re-activate")
	}
	if got := b.met.ResidualKeys.Value(); got != 0 {
		t.Fatalf("ResidualKeys after reheat = %d, want 0", got)
	}
	if n := len(e.drained[stream.R]) + len(e.drained[stream.S]); n != 0 {
		t.Fatalf("reheat must void collected reports, drained = %+v", e.drained)
	}
	// A gen-1 report arriving mid-active (the member had not yet seen the
	// reheat's SplitMark) is ignored.
	feedDrained(b, gen1[0])
	if n := len(e.drained[stream.R]) + len(e.drained[stream.S]); n != 0 {
		t.Fatal("report counted while the key was active")
	}

	b.deactivateSplit(k, e, out)
	if e.gen != 2 {
		t.Fatalf("second deactivation must open generation 2, got %d", e.gen)
	}
	// The full gen-1 quorum is stale now: it must not retire generation 2.
	feedDrained(b, gen1...)
	if b.split.entries[k] == nil {
		t.Fatal("stale-generation quorum retired the key")
	}
	feedDrained(b, drainReports(b, k)...)
	if b.split.entries[k] != nil {
		t.Fatal("current-generation quorum must retire the key")
	}
	if got := b.met.KeysRetired.Value(); got != 1 {
		t.Fatalf("KeysRetired = %d, want 1", got)
	}
}

// TestSplitRetireThenResplitStaleDrain pins generation monotonicity
// across incarnations of the same key: after a key splits, drains, and
// retires, a LATER incarnation (a fresh entry from a new handshake) must
// draw residual generations the first incarnation never used. SplitDrained
// is ClassReport — chaos profiles delay and duplicate it — so a stale
// quorum from the first incarnation can arrive mid-drain of the second;
// if generations restarted at 1 per entry, it would falsely retire the
// new round while members still hold live salted shares.
func TestSplitRetireThenResplitStaleDrain(t *testing.T) {
	b := newRetireTestDispatcher(t, nil)
	out := engine.NullCollector()
	const k = stream.Key(9)

	// First incarnation: activate, cool, drain, retire.
	e1 := activateEntry(t, b, k)
	b.deactivateSplit(k, e1, out)
	gen1 := drainReports(b, k)
	feedDrained(b, gen1...)
	if b.split.entries[k] != nil {
		t.Fatal("first incarnation did not retire")
	}

	// Second incarnation of the same key: a fresh handshake and entry.
	e2 := activateEntry(t, b, k)
	b.deactivateSplit(k, e2, out)
	if e2.gen <= e1.gen {
		t.Fatalf("generation reused across incarnations: first ended at %d, second opened %d", e1.gen, e2.gen)
	}

	// The first incarnation's full quorum, chaos-delayed past the retire
	// and the re-split, lands now. It must not count.
	feedDrained(b, gen1...)
	if b.split.entries[k] == nil {
		t.Fatal("stale prior-incarnation quorum retired the new round")
	}
	if n := len(e2.drained[stream.R]) + len(e2.drained[stream.S]); n != 0 {
		t.Fatalf("stale prior-incarnation reports were recorded: drained = %+v", e2.drained)
	}

	// The second incarnation's own quorum still works.
	feedDrained(b, drainReports(b, k)...)
	if b.split.entries[k] != nil {
		t.Fatal("current-generation quorum must retire the second incarnation")
	}
	if got := b.met.KeysRetired.Value(); got != 2 {
		t.Fatalf("KeysRetired = %d, want 2", got)
	}
}

// TestEvalSplitDeterministicOrder: evalSplit walks the pending and entry
// maps in sorted key order, so with two or more heavy hitters in flight
// the control messages (and their trace events) leave in the same order
// on every seeded replay. The abandon and residual events are emitted
// inside those same loops, so their order pins the iteration order.
func TestEvalSplitDeterministicOrder(t *testing.T) {
	tr := obs.NewTracer(4096)
	b := newRetireTestDispatcher(t, func(c *Config) { c.Tracer = tr })
	out := engine.NullCollector()

	// Two active entries, created in descending key order to rule out
	// accidental insertion-order effects.
	for _, k := range []stream.Key{9, 1} {
		e := new(splitEntry)
		b.split.entries[k] = e
		b.activateSplit(k, e, out)
	}
	// Epoch 1: keys 3 and 5 hot (half the epoch each) — both promoted to
	// pending; keys 1 and 9 see no traffic, decay out of the sketch, and
	// deactivate in the same evaluation.
	for i := 0; i < b.cfg.Split.Epoch; i++ {
		k := stream.Key(3)
		if i%2 == 0 {
			k = 5
		}
		b.observeSplit(k, out)
	}
	// Epoch 2: only a fresh key — the pendings for 3 and 5 cool below the
	// threshold and are abandoned.
	for i := 0; i < b.cfg.Split.Epoch; i++ {
		b.observeSplit(stream.Key(100), out)
	}

	var residuals, abandons []stream.Key
	for _, ev := range tr.Snapshot() {
		switch ev.Kind {
		case obs.KindSplitResidual:
			residuals = append(residuals, stream.Key(ev.Key))
		case obs.KindSplitAbandon:
			abandons = append(abandons, stream.Key(ev.Key))
		}
	}
	if !slices.Equal(residuals, []stream.Key{1, 9}) {
		t.Fatalf("deactivations out of sorted order: %v, want [1 9]", residuals)
	}
	if !slices.Equal(abandons, []stream.Key{3, 5}) {
		t.Fatalf("abandons out of sorted order: %v, want [3 5]", abandons)
	}
}

// TestUnsplitHysteresisSmallTotal pins the dead-zone clamp: with a tiny
// epoch the threshold bottoms out at 1 and the unclamped half-threshold
// would be 0 — a comparison no tracked count can ever lose. An active key
// whose traffic vanishes must still deactivate within a few epochs (via
// sketch decay), never stay split forever.
func TestUnsplitHysteresisSmallTotal(t *testing.T) {
	b := newRetireTestDispatcher(t, func(c *Config) {
		c.Split = SplitConfig{Threshold: 0.1, Ways: 2, Epoch: 8, SketchCapacity: 4}
	})
	out := engine.NullCollector()
	const k = stream.Key(1)

	e := new(splitEntry)
	b.split.entries[k] = e
	b.activateSplit(k, e, out)
	// One epoch of the key's own traffic, then nothing but cold keys.
	for i := 0; i < b.cfg.Split.Epoch; i++ {
		b.observeSplit(k, out)
	}
	if !e.active {
		t.Fatal("key deactivated while it carried the whole epoch")
	}
	next := stream.Key(1000)
	for epoch := 0; epoch < 20 && e.active; epoch++ {
		for i := 0; i < b.cfg.Split.Epoch; i++ {
			b.observeSplit(next, out)
			next++
		}
	}
	if e.active {
		t.Fatal("active key with zero traffic never deactivated under a tiny total")
	}
	if got := b.met.ResidualKeys.Value(); got != 1 {
		t.Fatalf("ResidualKeys = %d, want 1", got)
	}
}

// TestFilterFrozenKeysNoRetention pins the scratch-slice contract between
// the frozen-key filter and Router.ApplyUpdate: the filter hands the
// router a scratch slice that the next filtered update overwrites, so the
// router must copy. If it retained the slice, the second update here
// would corrupt the first one's routing.
func TestFilterFrozenKeysNoRetention(t *testing.T) {
	b := newRetireTestDispatcher(t, nil)
	out := engine.NullCollector()
	const frozen, k1, k2 = stream.Key(5), stream.Key(6), stream.Key(7)

	e := new(splitEntry)
	b.split.entries[frozen] = e
	b.activateSplit(frozen, e, out)

	o1 := (b.router.StoreTarget(stream.R, k1) + 1) % b.cfg.JoinersPerSide
	o2 := (b.router.StoreTarget(stream.R, k2) + 1) % b.cfg.JoinersPerSide
	for epoch, upd := range map[uint64][]stream.Key{1: {frozen, k1}, 2: {frozen, k2}} {
		owner := o1
		if epoch == 2 {
			owner = o2
		}
		b.Execute(engine.Message{Stream: streamRouteUpd, Value: RouteUpdate{
			Side: stream.R, Keys: upd, NewOwner: owner, Source: 0, Epoch: epoch, MarkerTo: 0,
		}}, out)
	}

	if got := b.router.StoreTarget(stream.R, k1); got != o1 {
		t.Fatalf("first update's routing corrupted by scratch reuse: owner of %d = %d, want %d", k1, got, o1)
	}
	if got := b.router.StoreTarget(stream.R, k2); got != o2 {
		t.Fatalf("second update not applied: owner of %d = %d, want %d", k2, got, o2)
	}
	if got := b.met.SplitFrozenKeys.Value(); got != 2 {
		t.Fatalf("SplitFrozenKeys = %d, want 2", got)
	}
}

// TestSketchReheatReactivatesResidual drives the cool-then-reheat path
// through the detector itself: an active key decays out under cold
// traffic (deactivating to residual), then a burst of its own traffic
// re-activates it through the entries branch of evalSplit — no new
// handshake, gauges consistent at every step.
func TestSketchReheatReactivatesResidual(t *testing.T) {
	b := newRetireTestDispatcher(t, nil)
	out := engine.NullCollector()
	const k = stream.Key(7)

	e := activateEntry(t, b, k)
	if got := b.met.SplitKeys.Value(); got != 1 {
		t.Fatalf("SplitKeys = %d, want 1", got)
	}

	// Cold traffic until the key decays below the hysteresis and cools.
	next := stream.Key(1000)
	for epoch := 0; epoch < 20 && e.active; epoch++ {
		for i := 0; i < b.cfg.Split.Epoch; i++ {
			b.observeSplit(next, out)
			next++
		}
	}
	if e.active {
		t.Fatal("key never cooled to residual")
	}
	if got, want := b.met.SplitKeys.Value(), int64(0); got != want {
		t.Fatalf("SplitKeys after cooldown = %d, want %d", got, want)
	}
	if got := b.met.ResidualKeys.Value(); got != 1 {
		t.Fatalf("ResidualKeys after cooldown = %d, want 1", got)
	}

	// Reheat: three quarters of an epoch is the key's own traffic.
	for i := 0; i < b.cfg.Split.Epoch; i++ {
		kk := k
		if i%4 == 0 {
			kk = next
			next++
		}
		b.observeSplit(kk, out)
	}
	if !e.active {
		t.Fatal("reheated residual key did not re-activate")
	}
	if len(b.split.pending) != 0 {
		t.Fatalf("reheat must not open a new handshake: pending = %v", b.split.pending)
	}
	if got := b.met.SplitKeys.Value(); got != 1 {
		t.Fatalf("SplitKeys after reheat = %d, want 1", got)
	}
	if got := b.met.ResidualKeys.Value(); got != 0 {
		t.Fatalf("ResidualKeys after reheat = %d, want 0", got)
	}
	if got := b.met.KeysSplit.Value(); got != 2 {
		t.Fatalf("KeysSplit = %d, want 2 (activation plus re-activation)", got)
	}
}

// TestJoinerDrainLifecycle drives a non-owner member joiner through the
// member half of the drain protocol: the UnsplitMark arms a watch on the
// stored share, the window expiry flips the round to drained on the next
// tick, and the SplitRetire clears every trace of the split — including
// the migration taint and the fan-out probe stats, so the key can be
// selected for migration again.
func TestJoinerDrainLifecycle(t *testing.T) {
	b := newTestJoiner(t, Config{Window: 50 * time.Millisecond})
	out := engine.NullCollector()
	const k = stream.Key(4)

	// A salted share old enough that the first Advance expires it.
	b.store.Add(stream.Tuple{Side: stream.R, Key: k, Seq: 0, EventTime: stream.Now() - int64(200*time.Millisecond)})
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: k, Epoch: 1}}, out)
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: k, Epoch: 2, Gen: 1, Owner: 1}}, out)
	rd := b.splitResidual[k]
	if rd == nil || rd.drained {
		t.Fatalf("member with a live share must arm an undrained round, got %+v", rd)
	}

	b.onTick(out) // Advance expires the share; the watch fires into the round
	if !rd.drained {
		t.Fatal("window expiry of the last share did not mark the round drained")
	}

	b.probeCur[k] = 7 // residual fan-out probe traffic
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitRetire{Side: stream.R, Key: k, Gen: 1}}, out)
	if b.splitTaint[k] || b.splitActive[k] || b.splitResidual[k] != nil {
		t.Fatalf("retire must clear all split state: taint=%v active=%v residual=%+v",
			b.splitTaint[k], b.splitActive[k], b.splitResidual[k])
	}
	if _, ok := b.probeCur[k]; ok {
		t.Fatal("retire must drop the residual fan-out probe stats")
	}
	// Taint lifted: fresh traffic puts the key back on the migration menu.
	b.probeCur[k] = 9
	found := false
	for _, ks := range b.keyStats(9) {
		found = found || ks.Key == k
	}
	if !found {
		t.Fatal("retired key missing from keyStats: the migration taint was not lifted")
	}
}

// TestJoinerRetireKeepsOwnerProbeStats: the retire drops the residual
// fan-out probe stats only at the draining members. The owner keeps
// receiving the key's full probe traffic after retirement, so its
// accumulated counters must survive — wiping them would skew keyStats
// and migration-benefit selection for up to two stats ticks.
func TestJoinerRetireKeepsOwnerProbeStats(t *testing.T) {
	b := newTestJoiner(t, Config{Window: 50 * time.Millisecond})
	out := engine.NullCollector()
	const k = stream.Key(4)

	// Owner path: Owner == this task, so no drain round ever opens here.
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: k, Epoch: 1}}, out)
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: k, Epoch: 2, Gen: 1, Owner: 0}}, out)
	b.probeCur[k] = 7
	b.probePrev[k] = 5
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitRetire{Side: stream.R, Key: k, Gen: 1}}, out)
	if b.splitTaint[k] || b.splitActive[k] {
		t.Fatalf("retire must lift the owner's taint: taint=%v active=%v", b.splitTaint[k], b.splitActive[k])
	}
	if b.probeCur[k] != 7 || b.probePrev[k] != 5 {
		t.Fatalf("retire wiped the owner's probe stats: cur=%d prev=%d, want 7/5", b.probeCur[k], b.probePrev[k])
	}
}

// TestDrainResidualsStaleWatchNotification pins the defense the window
// store's watch contract demands: a consumer that unwatches must tolerate
// a late drain notification. A watch fired by an old round can sit in the
// TakeDrained queue across a reheat; when it surfaces after a NEW round
// re-armed on live shares, the round must not flip to drained while the
// store still holds tuples of the key.
func TestDrainResidualsStaleWatchNotification(t *testing.T) {
	b := newTestJoiner(t, Config{Window: time.Hour})
	out := engine.NullCollector()
	const k = stream.Key(4)

	// Round 1: a live share arms the watch, then the share vanishes — the
	// watch fires into the store's queue (one-shot, now disarmed).
	b.store.Add(stream.Tuple{Side: stream.R, Key: k, Seq: 0, EventTime: stream.Now()})
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: k, Epoch: 2, Gen: 1, Owner: 1}}, out)
	b.store.RemoveKey(k)

	// Reheat before any tick consumed the queue: the round is cancelled
	// (UnwatchKey leaves the queued notification in place, per contract)
	// and a fresh salted share lands.
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: k, Epoch: 3}}, out)
	b.store.Add(stream.Tuple{Side: stream.R, Key: k, Seq: 1, EventTime: stream.Now()})

	// Round 2 arms on the live share.
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: k, Epoch: 4, Gen: 2, Owner: 1}}, out)
	rd := b.splitResidual[k]
	if rd == nil || rd.drained {
		t.Fatalf("round 2 must arm undrained on a live share, got %+v", rd)
	}

	// The tick surfaces round 1's stale notification; the share is live,
	// so the round must stay undrained.
	b.onTick(out)
	if rd.drained {
		t.Fatal("stale queue entry from the cancelled round marked live shares drained")
	}

	// When the share really goes, round 2's own watch fires and drains.
	b.store.RemoveKey(k)
	b.onTick(out)
	if !rd.drained {
		t.Fatal("genuine emptiness did not drain round 2")
	}
}

// TestJoinerDrainEdgeCases: the owner never joins the drain quorum, a
// member without a share drains immediately, and a reheat's SplitMark
// cancels the open round.
func TestJoinerDrainEdgeCases(t *testing.T) {
	b := newTestJoiner(t, Config{Window: 50 * time.Millisecond})
	out := engine.NullCollector()

	// Owner path: Owner == this task — no round opens.
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: 1, Epoch: 1}}, out)
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: 1, Epoch: 2, Gen: 1, Owner: 0}}, out)
	if b.splitResidual[1] != nil {
		t.Fatal("the owner must not open a drain round for its own key")
	}
	if b.splitActive[1] {
		t.Fatal("UnsplitMark must end the active split at the owner too")
	}
	if !b.splitTaint[1] {
		t.Fatal("the owner's taint must survive until the retire")
	}

	// Probe-only member: no stored share, drained from the first tick.
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: 2, Epoch: 2, Gen: 3, Owner: 1}}, out)
	rd := b.splitResidual[2]
	if rd == nil || !rd.drained || rd.gen != 3 {
		t.Fatalf("member without a share must report drained immediately, got %+v", rd)
	}

	// Reheat: a SplitMark lands while a round is open — the round dies.
	b.store.Add(stream.Tuple{Side: stream.R, Key: 3, Seq: 1, EventTime: stream.Now()})
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: 3, Epoch: 2, Gen: 1, Owner: 1}}, out)
	if b.splitResidual[3] == nil {
		t.Fatal("round must open for the stored share")
	}
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: 3, Epoch: 3}}, out)
	if b.splitResidual[3] != nil {
		t.Fatal("reheat SplitMark must cancel the open drain round")
	}
	if !b.splitActive[3] {
		t.Fatal("reheat SplitMark must re-mark the key active")
	}
}
