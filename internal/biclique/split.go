package biclique

import (
	"slices"

	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/routing"
	"fastjoin/internal/sketch"
	"fastjoin/internal/stream"
)

// splitSides enumerates the two side groups the way the split handshake
// walks them.
var splitSides = [2]stream.Side{stream.R, stream.S}

// splitTable is a dispatcher task's hot-key splitting state: the decayed
// SpaceSaving sketch that detects heavy hitters in the task's own key
// traffic, the handshakes in flight, and the per-key split entries that
// rewrite routing once a split activates.
//
// All traffic of one key flows through a single dispatcher task (the
// shuffler's key→task mapping), so the split state of a key lives at
// exactly one task and needs no cross-task coordination. Decisions are
// driven by observation counts, never wall clock, so a seeded run replays
// the same splits under the chaos harness.
//
// A key moves through a five-state lifecycle:
//
//	pending  — the sketch crossed the threshold; SplitIntents are re-sent
//	           to both side groups' current owners every detector epoch
//	           until both SplitAcks arrive. An owner acks only when no
//	           migration involving the key is in flight there, and the
//	           ack permanently taints the key against migration selection
//	           at that instance — so once both acks are in, no migration
//	           of the key can ever start again.
//	active   — both owners acked: open batches flush, SplitMarks fence
//	           every lane to the owner and the salt members of both
//	           sides, stores salt round-robin across the members, probes
//	           fan out to owner plus members.
//	residual — the key cooled below half the threshold: stores return to
//	           the owner, but the members keep their salted shares, keep
//	           receiving probes, and stay tainted. A residual key that
//	           reheats re-activates without a new handshake.
//	draining — a residual member whose last salted share expired from its
//	           window store reports SplitDrained; the entry accumulates
//	           the reports of the current generation.
//	retired  — every non-owner member of both sides drained while the key
//	           stayed cold: a fenced SplitRetire lifts the members' taints
//	           and the entry is deleted — single-owner routing returns,
//	           probe fan-out stops, and the key is free to migrate again.
//
// Active and residual keys are also frozen in the routing table: the
// dispatcher drops them from any RouteUpdate, because moving a key whose
// tuples are spread over several instances would strand the shares the
// update's source never knew about. Retirement is what unfreezes them.
type splitTable struct {
	sk        *sketch.SpaceSaving
	threshold float64
	ways      int
	epochLen  int
	sinceEval int
	epoch     uint64

	pending map[stream.Key]*pendingSplit
	entries map[stream.Key]*splitEntry

	// spanSeq numbers this task's split-lifecycle trace spans; each
	// pending promotion opens a fresh span.
	spanSeq uint64
	// genSeq issues residual-round generations (splitEntry.gen). It is
	// task-global and never resets: entries come and go — retirement
	// deletes them and a later re-split creates a fresh one — but a
	// generation number is never reused, so a chaos-delayed SplitDrained
	// from ANY earlier round, including a prior incarnation of the same
	// key, can never match a later round's gen. A per-entry counter
	// would restart at 1 for each incarnation and let exactly that
	// stale report count.
	genSeq uint64

	// frozenScratch backs the RouteUpdate key filtering; routed updates
	// are broadcast values shared across dispatcher tasks and must not be
	// mutated in place.
	frozenScratch []stream.Key
	// keyScratch backs evalSplit's sorted iteration over the pending and
	// entries maps: control messages must leave in a deterministic order
	// so seeded chaos runs replay byte-identically with ≥2 hot keys.
	keyScratch []stream.Key
}

// pendingSplit tracks one key's intent/ack handshake.
type pendingSplit struct {
	acked [2]bool
	// span is the key's split-lifecycle trace span, opened at promotion
	// and inherited by the splitEntry on activation.
	span obs.SpanID
}

// splitEntry is one split key's routing state.
type splitEntry struct {
	active bool
	// members holds the salt member set per side group — the key's
	// ContRand subgroup of Split.Ways instances, the same deterministic
	// range on every dispatcher task.
	members [2][]int
	// rr is the per-side round-robin cursor for store salting.
	rr [2]uint32
	// gen numbers the key's residual rounds: every deactivation draws a
	// fresh value from the task-monotone genSeq, and the members'
	// SplitDrained reports echo it — so a report from before a reheat,
	// or from a prior incarnation of the key that already retired, can
	// never count toward a later round's retire condition. Zero means
	// the entry has never deactivated.
	gen uint64
	// drained collects, per side, the non-owner members whose salted
	// share of the current generation has expired. Cleared on every
	// deactivation (a new round) and on reactivation.
	drained [2]map[int]bool
	// span is the key's split-lifecycle trace span (see pendingSplit).
	span obs.SpanID
}

func newSplitTable(cfg *Config) *splitTable {
	if cfg.Split.Threshold <= 0 {
		return nil
	}
	return &splitTable{
		sk:        sketch.New(cfg.Split.SketchCapacity),
		threshold: cfg.Split.Threshold,
		ways:      cfg.Split.Ways,
		epochLen:  cfg.Split.Epoch,
		pending:   make(map[stream.Key]*pendingSplit),
		entries:   make(map[stream.Key]*splitEntry),
	}
}

// observeSplit feeds one routed tuple into the detector and runs the
// epoch evaluation at the boundary. Called before the tuple is emitted,
// so an activation's marks fence the lanes ahead of the very tuple that
// tipped the key over.
//
//lint:hotpath
func (b *dispatcherBolt) observeSplit(key stream.Key, out *engine.Collector) {
	sp := b.split
	sp.sk.Observe(key)
	sp.sinceEval++
	if sp.sinceEval >= sp.epochLen {
		sp.sinceEval = 0
		sp.epoch++
		b.evalSplit(out)
		sp.sk.Halve()
	}
}

// splitLookup returns the split entry routeTuple must honor, or nil for
// the common unsplit key. Residual entries still reroute probes (the
// members hold salted shares until the system ends), so both states hit
// the split path.
//
//lint:hotpath
func (b *dispatcherBolt) splitLookup(key stream.Key) *splitEntry {
	if len(b.split.entries) == 0 {
		return nil
	}
	return b.split.entries[key]
}

// evalSplit runs once per detector epoch: promote fresh heavy hitters to
// pending, drive the pending handshakes, and cool down split keys whose
// share collapsed.
func (b *dispatcherBolt) evalSplit(out *engine.Collector) {
	sp := b.split
	total := sp.sk.Total()
	if total == 0 {
		return
	}
	th := int64(sp.threshold * float64(total))
	if th < 1 {
		th = 1
	}
	// Guaranteed-count test (count − err): SpaceSaving overestimates, so
	// gating on the guaranteed floor keeps false splits out at the cost
	// of detecting a genuine heavy hitter an epoch later.
	sp.sk.ForEach(func(k stream.Key, count, err int64) {
		if count-err < th {
			return
		}
		if e, ok := sp.entries[k]; ok {
			if !e.active {
				// A residual key reheated: its members are tainted and
				// still covered by probes, so re-activation needs no new
				// handshake — just the store-salting fence.
				b.activateSplit(k, e, out)
			}
			return
		}
		if sp.pending[k] == nil {
			sp.spanSeq++
			p := &pendingSplit{span: obs.NewSplitSpanID(b.ctx.Task, sp.spanSeq)}
			sp.pending[k] = p
			b.traceSplit(p.span, obs.Event{Kind: obs.KindSplitPending, Key: uint64(k)})
		}
	})
	// Both maps are walked in sorted key order: the SplitIntent and
	// UnsplitMark emissions below must leave in a deterministic order for
	// seeded chaos replay (map range order varies run to run).
	keys := sp.keyScratch[:0]
	for k := range sp.pending {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		p := sp.pending[k]
		if c, err, ok := sp.sk.Estimate(k); !ok || c-err < th {
			// Cooled off before the handshake completed: abandon it. Any
			// ack already collected left a harmless taint at that owner.
			delete(sp.pending, k)
			b.traceSplit(p.span, obs.Event{Kind: obs.KindSplitAbandon, Key: uint64(k)})
			continue
		}
		for _, side := range splitSides {
			if p.acked[side] {
				continue
			}
			// Re-sent every epoch until acked: intents and acks ride
			// droppable control lanes (preempting any data backlog at the
			// owner — see splitStream), and an owner that is mid-migration
			// stays silent until its attempt finishes.
			out.EmitDirect(splitStream(side), b.router.StoreTarget(side, k),
				SplitIntent{Side: side, Key: k, Epoch: sp.epoch})
		}
	}
	// Half-threshold hysteresis so a key hovering at the boundary does
	// not flap between salted and plain routing. Clamped to >= 1: with
	// th == 1 integer division makes th/2 == 0, and since a tracked key's
	// count is always >= 1 the test `c < 0` could never fire — a dead
	// zone where an active key under a tiny total deactivates only if it
	// decays out of the sketch entirely, never by cooling below its
	// share.
	half := th / 2
	if half < 1 {
		half = 1
	}
	keys = keys[:0]
	for k := range sp.entries {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e := sp.entries[k]
		if !e.active {
			continue
		}
		if c, _, ok := sp.sk.Estimate(k); !ok || c < half {
			b.deactivateSplit(k, e, out)
		}
	}
	sp.keyScratch = keys
}

// handleSplitAck records one owner's permission. When both side groups'
// owners have acked, the key's tuples can never again move between
// instances — the precondition for multi-instance routing — and the
// split activates.
func (b *dispatcherBolt) handleSplitAck(v SplitAck, out *engine.Collector) {
	sp := b.split
	if sp == nil {
		return
	}
	// Acks broadcast to every dispatcher task; only the task that owns
	// the key's traffic has a pending handshake, the rest ignore.
	p, ok := sp.pending[v.Key]
	if !ok {
		return
	}
	p.acked[v.Side] = true
	if !p.acked[stream.R] || !p.acked[stream.S] {
		return
	}
	delete(sp.pending, v.Key)
	e := &splitEntry{span: p.span}
	sp.entries[v.Key] = e
	b.activateSplit(v.Key, e, out)
}

// traceSplit emits one split-lifecycle event on the key's span. All split
// events originate at the dispatcher task owning the key's traffic; the
// tracer's Emit is nil-safe.
func (b *dispatcherBolt) traceSplit(span obs.SpanID, ev obs.Event) {
	ev.Span = span
	ev.Instance = b.ctx.Task
	ev.Dispatcher = b.ctx.Task
	ev.Epoch = span.Epoch()
	b.cfg.Tracer.Emit(ev)
}

// activateSplit switches one key to salted routing. The fencing order is
// the heart of the exactly-once argument: every open batch flushes first,
// then a SplitMark is emitted to the owner and every member on both
// sides' data lanes — so on each lane the mark precedes the first salted
// store or fanned-out probe, and an instance processes no multi-copy
// tuple of the key before it is marked (and therefore tainted).
func (b *dispatcherBolt) activateSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	sp := b.split
	if e.gen > 0 {
		// A residual key reheating: it leaves the drain phase (any reports
		// collected so far are void — the members are about to receive new
		// salted shares) and the residual gauge gives it back.
		e.drained = [2]map[int]bool{}
		b.met.ResidualKeys.Add(-1)
	}
	e.active = true
	b.flushAll(out)
	for _, side := range splitSides {
		lo, hi := routing.SubgroupRange(b.cfg.JoinersPerSide, sp.ways, b.cfg.Seed, side, k)
		e.members[side] = e.members[side][:0]
		for i := lo; i < hi; i++ {
			e.members[side] = append(e.members[side], i)
		}
		mark := SplitMark{Side: side, Key: k, Epoch: sp.epoch}
		owner := b.router.StoreTarget(side, k)
		out.EmitDirect(tupleStream(side), owner, mark)
		for _, m := range e.members[side] {
			if m != owner {
				out.EmitDirect(tupleStream(side), m, mark)
			}
		}
	}
	b.met.KeysSplit.Inc()
	b.met.SplitKeys.Add(1)
	b.traceSplit(e.span, obs.Event{Kind: obs.KindSplitActivate, Key: uint64(k)})
}

// deactivateSplit cools one key down to residual state: stores return to
// the owner, probes keep covering the members (their salted shares stay
// put until they drain), and the entry is retained so the routing freeze
// and a cheap re-activation survive. The mark opens drain round e.gen at
// every non-owner member; the members' SplitDrained reports feed
// handleSplitDrained until the round retires or a reheat voids it.
func (b *dispatcherBolt) deactivateSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	sp := b.split
	e.active = false
	sp.genSeq++
	e.gen = sp.genSeq
	e.drained = [2]map[int]bool{}
	// Flush so the mark rides behind the last salted store of each lane;
	// the joiners' active-count bookkeeping then never runs ahead of the
	// tuples it describes — and member emptiness is monotone from the
	// moment the mark lands, the monotonicity the drain proof rests on.
	b.flushAll(out)
	for _, side := range splitSides {
		owner := b.router.StoreTarget(side, k)
		mark := UnsplitMark{Side: side, Key: k, Epoch: sp.epoch, Gen: e.gen, Owner: owner}
		out.EmitDirect(tupleStream(side), owner, mark)
		for _, m := range e.members[side] {
			if m != owner {
				out.EmitDirect(tupleStream(side), m, mark)
			}
		}
	}
	b.met.KeysUnsplit.Inc()
	b.met.SplitKeys.Add(-1)
	b.met.ResidualKeys.Add(1)
	b.traceSplit(e.span, obs.Event{Kind: obs.KindSplitResidual, Key: uint64(k)})
	// Degenerate member sets (every member is the owner on both sides —
	// e.g. Ways clamped to 1 instance per side) have nobody to drain:
	// retire immediately.
	b.maybeRetireSplit(k, e, out)
}

// handleSplitDrained records one member's report that its salted share of
// a residual key expired. Reports broadcast to every dispatcher task;
// only the task owning the key's traffic holds the entry, and only
// reports matching the current residual generation from genuine
// non-owner members count.
func (b *dispatcherBolt) handleSplitDrained(v SplitDrained, out *engine.Collector) {
	sp := b.split
	if sp == nil {
		return
	}
	e, ok := sp.entries[v.Key]
	if !ok || e.active || v.Gen != e.gen {
		// Retired already, reheated, or a stale report from a voided round.
		return
	}
	owner := b.router.StoreTarget(v.Side, v.Key)
	if v.From == owner || !slices.Contains(e.members[v.Side], v.From) {
		return // the owner never drains; non-members have nothing to drain
	}
	if e.drained[v.Side][v.From] {
		return // duplicate (re-announced or chaos-duplicated) report
	}
	if e.drained[v.Side] == nil {
		e.drained[v.Side] = make(map[int]bool)
	}
	e.drained[v.Side][v.From] = true
	b.traceSplit(e.span, obs.Event{
		Kind:   obs.KindSplitDrained,
		Key:    uint64(v.Key),
		Side:   uint8(v.Side),
		Target: v.From,
	})
	b.maybeRetireSplit(v.Key, e, out)
}

// maybeRetireSplit retires the key once every non-owner member of both
// sides has drained the current generation (and the key is still cold —
// a reheat voids the round before it can complete).
func (b *dispatcherBolt) maybeRetireSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	if e.active {
		return
	}
	for _, side := range splitSides {
		owner := b.router.StoreTarget(side, k)
		for _, m := range e.members[side] {
			if m != owner && !e.drained[side][m] {
				return
			}
		}
	}
	b.retireSplit(k, e, out)
}

// retireSplit completes the lifecycle: the drain handshake proved that no
// instance beyond the two owners holds a stored tuple of the key (salting
// stopped at the UnsplitMark fence, the shares since expired, and the
// dispatcher is the key's only router), so the fenced SplitRetire can
// lift the members' taints without stranding anything. Deleting the entry
// restores single-owner routing, stops the probe fan-out, and unfreezes
// the key for future RouteUpdates — a retired key migrates like any cold
// key.
func (b *dispatcherBolt) retireSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	sp := b.split
	// Flush-then-mark, the same lane-fencing argument as activation: the
	// retire rides behind the last fanned-out probe of every lane, so a
	// member lifts its taint only after all traffic that could still
	// reference its (now empty) share has passed.
	b.flushAll(out)
	for _, side := range splitSides {
		mark := SplitRetire{Side: side, Key: k, Gen: e.gen}
		owner := b.router.StoreTarget(side, k)
		out.EmitDirect(tupleStream(side), owner, mark)
		for _, m := range e.members[side] {
			if m != owner {
				out.EmitDirect(tupleStream(side), m, mark)
			}
		}
	}
	delete(sp.entries, k)
	b.met.KeysRetired.Inc()
	b.met.ResidualKeys.Add(-1)
	b.traceSplit(e.span, obs.Event{Kind: obs.KindSplitRetire, Key: uint64(k)})
}

// filterFrozenKeys drops split keys from a RouteUpdate's key list. A
// split (or residual) key's routing entry is frozen: its stored tuples
// are spread over owner plus members, and applying an ownership change
// would point probes away from shares that never move. The only way such
// an update can arise is a stale selection — e.g. an old owner's
// probe-only statistics within the two-tick staleness window — so the
// dispatcher refuses just those keys and applies the rest of the update
// unchanged. The update's marker handshake is untouched: markers answer
// the update, not the key set.
//
// The returned slice may alias frozenScratch, which the next filtered
// update overwrites — callers hand it straight to Router.ApplyUpdate,
// whose contract forbids retaining the key slice.
func (b *dispatcherBolt) filterFrozenKeys(keys []stream.Key) []stream.Key {
	sp := b.split
	if sp == nil || len(sp.entries) == 0 {
		return keys
	}
	frozen := 0
	for _, k := range keys {
		if _, ok := sp.entries[k]; ok {
			frozen++
		}
	}
	if frozen == 0 {
		return keys
	}
	// The update is a broadcast value shared across dispatcher tasks:
	// filter into a scratch copy, never in place.
	kept := sp.frozenScratch[:0]
	for _, k := range keys {
		if _, ok := sp.entries[k]; !ok {
			kept = append(kept, k)
		}
	}
	sp.frozenScratch = kept
	b.met.SplitFrozenKeys.Add(int64(frozen))
	return kept
}

// routeSplit routes one tuple of a split (or residual) key: the store
// copy salts round-robin across the key's own-side members while the
// split is active (the owner keeps its pre-split share), and the probe
// copies fan out to the opposite side's owner plus members — every
// instance that may hold stored tuples of the key. All copies carry the
// same Seq, like the multi-target strategies' probe copies.
//
//lint:hotpath
func (b *dispatcherBolt) routeSplit(t stream.Tuple, e *splitEntry, now int64, out *engine.Collector) {
	ownSide, oppSide := t.Side, t.Side.Opposite()

	storeAt := b.router.StoreTarget(ownSide, t.Key)
	if e.active {
		m := e.members[ownSide]
		storeAt = m[int(e.rr[ownSide])%len(m)]
		e.rr[ownSide]++
	}
	b.emitTuple(ownSide, storeAt, TupleMsg{T: t, Op: OpStore, SentAt: now, Seq: b.seq}, out)

	owner := b.router.StoreTarget(oppSide, t.Key)
	b.emitTuple(oppSide, owner, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq}, out)
	for _, m := range e.members[oppSide] {
		if m != owner {
			b.emitTuple(oppSide, m, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq}, out)
		}
	}
}
