package biclique

import (
	"fastjoin/internal/engine"
	"fastjoin/internal/routing"
	"fastjoin/internal/sketch"
	"fastjoin/internal/stream"
)

// splitSides enumerates the two side groups the way the split handshake
// walks them.
var splitSides = [2]stream.Side{stream.R, stream.S}

// splitTable is a dispatcher task's hot-key splitting state: the decayed
// SpaceSaving sketch that detects heavy hitters in the task's own key
// traffic, the handshakes in flight, and the per-key split entries that
// rewrite routing once a split activates.
//
// All traffic of one key flows through a single dispatcher task (the
// shuffler's key→task mapping), so the split state of a key lives at
// exactly one task and needs no cross-task coordination. Decisions are
// driven by observation counts, never wall clock, so a seeded run replays
// the same splits under the chaos harness.
//
// A key moves through three states:
//
//	pending  — the sketch crossed the threshold; SplitIntents are re-sent
//	           to both side groups' current owners every detector epoch
//	           until both SplitAcks arrive. An owner acks only when no
//	           migration involving the key is in flight there, and the
//	           ack permanently taints the key against migration selection
//	           at that instance — so once both acks are in, no migration
//	           of the key can ever start again.
//	active   — both owners acked: open batches flush, SplitMarks fence
//	           every lane to the owner and the salt members of both
//	           sides, stores salt round-robin across the members, probes
//	           fan out to owner plus members.
//	residual — the key cooled below half the threshold: stores return to
//	           the owner, but the members keep their salted shares, keep
//	           receiving probes, and stay tainted (the unsplit drain
//	           contract). A residual key that reheats re-activates
//	           without a new handshake.
//
// Active and residual keys are also frozen in the routing table: the
// dispatcher drops them from any RouteUpdate, because moving a key whose
// tuples are spread over several instances would strand the shares the
// update's source never knew about.
type splitTable struct {
	sk        *sketch.SpaceSaving
	threshold float64
	ways      int
	epochLen  int
	sinceEval int
	epoch     uint64

	pending map[stream.Key]*pendingSplit
	entries map[stream.Key]*splitEntry

	// frozenScratch backs the RouteUpdate key filtering; routed updates
	// are broadcast values shared across dispatcher tasks and must not be
	// mutated in place.
	frozenScratch []stream.Key
}

// pendingSplit tracks one key's intent/ack handshake.
type pendingSplit struct {
	acked [2]bool
}

// splitEntry is one split key's routing state.
type splitEntry struct {
	active bool
	// members holds the salt member set per side group — the key's
	// ContRand subgroup of Split.Ways instances, the same deterministic
	// range on every dispatcher task.
	members [2][]int
	// rr is the per-side round-robin cursor for store salting.
	rr [2]uint32
}

func newSplitTable(cfg *Config) *splitTable {
	if cfg.Split.Threshold <= 0 {
		return nil
	}
	return &splitTable{
		sk:        sketch.New(cfg.Split.SketchCapacity),
		threshold: cfg.Split.Threshold,
		ways:      cfg.Split.Ways,
		epochLen:  cfg.Split.Epoch,
		pending:   make(map[stream.Key]*pendingSplit),
		entries:   make(map[stream.Key]*splitEntry),
	}
}

// observeSplit feeds one routed tuple into the detector and runs the
// epoch evaluation at the boundary. Called before the tuple is emitted,
// so an activation's marks fence the lanes ahead of the very tuple that
// tipped the key over.
//
//lint:hotpath
func (b *dispatcherBolt) observeSplit(key stream.Key, out *engine.Collector) {
	sp := b.split
	sp.sk.Observe(key)
	sp.sinceEval++
	if sp.sinceEval >= sp.epochLen {
		sp.sinceEval = 0
		sp.epoch++
		b.evalSplit(out)
		sp.sk.Halve()
	}
}

// splitLookup returns the split entry routeTuple must honor, or nil for
// the common unsplit key. Residual entries still reroute probes (the
// members hold salted shares until the system ends), so both states hit
// the split path.
//
//lint:hotpath
func (b *dispatcherBolt) splitLookup(key stream.Key) *splitEntry {
	if len(b.split.entries) == 0 {
		return nil
	}
	return b.split.entries[key]
}

// evalSplit runs once per detector epoch: promote fresh heavy hitters to
// pending, drive the pending handshakes, and cool down split keys whose
// share collapsed.
func (b *dispatcherBolt) evalSplit(out *engine.Collector) {
	sp := b.split
	total := sp.sk.Total()
	if total == 0 {
		return
	}
	th := int64(sp.threshold * float64(total))
	if th < 1 {
		th = 1
	}
	// Guaranteed-count test (count − err): SpaceSaving overestimates, so
	// gating on the guaranteed floor keeps false splits out at the cost
	// of detecting a genuine heavy hitter an epoch later.
	sp.sk.ForEach(func(k stream.Key, count, err int64) {
		if count-err < th {
			return
		}
		if e, ok := sp.entries[k]; ok {
			if !e.active {
				// A residual key reheated: its members are tainted and
				// still covered by probes, so re-activation needs no new
				// handshake — just the store-salting fence.
				b.activateSplit(k, e, out)
			}
			return
		}
		if sp.pending[k] == nil {
			sp.pending[k] = new(pendingSplit)
		}
	})
	for k, p := range sp.pending {
		if c, err, ok := sp.sk.Estimate(k); !ok || c-err < th {
			// Cooled off before the handshake completed: abandon it. Any
			// ack already collected left a harmless taint at that owner.
			delete(sp.pending, k)
			continue
		}
		for _, side := range splitSides {
			if p.acked[side] {
				continue
			}
			// Re-sent every epoch until acked: intents and acks ride
			// droppable lanes, and an owner that is mid-migration stays
			// silent until its attempt finishes.
			out.EmitDirect(tupleStream(side), b.router.StoreTarget(side, k),
				SplitIntent{Side: side, Key: k, Epoch: sp.epoch})
		}
	}
	for k, e := range sp.entries {
		if !e.active {
			continue
		}
		if c, _, ok := sp.sk.Estimate(k); !ok || c < th/2 {
			// Half-threshold hysteresis so a key hovering at the boundary
			// does not flap between salted and plain routing.
			b.deactivateSplit(k, e, out)
		}
	}
}

// handleSplitAck records one owner's permission. When both side groups'
// owners have acked, the key's tuples can never again move between
// instances — the precondition for multi-instance routing — and the
// split activates.
func (b *dispatcherBolt) handleSplitAck(v SplitAck, out *engine.Collector) {
	sp := b.split
	if sp == nil {
		return
	}
	// Acks broadcast to every dispatcher task; only the task that owns
	// the key's traffic has a pending handshake, the rest ignore.
	p, ok := sp.pending[v.Key]
	if !ok {
		return
	}
	p.acked[v.Side] = true
	if !p.acked[stream.R] || !p.acked[stream.S] {
		return
	}
	delete(sp.pending, v.Key)
	e := new(splitEntry)
	sp.entries[v.Key] = e
	b.activateSplit(v.Key, e, out)
}

// activateSplit switches one key to salted routing. The fencing order is
// the heart of the exactly-once argument: every open batch flushes first,
// then a SplitMark is emitted to the owner and every member on both
// sides' data lanes — so on each lane the mark precedes the first salted
// store or fanned-out probe, and an instance processes no multi-copy
// tuple of the key before it is marked (and therefore tainted).
func (b *dispatcherBolt) activateSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	sp := b.split
	e.active = true
	b.flushAll(out)
	for _, side := range splitSides {
		lo, hi := routing.SubgroupRange(b.cfg.JoinersPerSide, sp.ways, b.cfg.Seed, side, k)
		e.members[side] = e.members[side][:0]
		for i := lo; i < hi; i++ {
			e.members[side] = append(e.members[side], i)
		}
		mark := SplitMark{Side: side, Key: k, Epoch: sp.epoch}
		owner := b.router.StoreTarget(side, k)
		out.EmitDirect(tupleStream(side), owner, mark)
		for _, m := range e.members[side] {
			if m != owner {
				out.EmitDirect(tupleStream(side), m, mark)
			}
		}
	}
	b.met.KeysSplit.Inc()
	b.met.SplitKeys.Add(1)
}

// deactivateSplit cools one key down to residual state: stores return to
// the owner, probes keep covering the members (their salted shares stay
// put — the unsplit drain contract), and the entry is retained so the
// routing freeze and a cheap re-activation survive.
func (b *dispatcherBolt) deactivateSplit(k stream.Key, e *splitEntry, out *engine.Collector) {
	sp := b.split
	e.active = false
	// Flush so the mark rides behind the last salted store of each lane;
	// the joiners' active-count bookkeeping then never runs ahead of the
	// tuples it describes.
	b.flushAll(out)
	for _, side := range splitSides {
		mark := UnsplitMark{Side: side, Key: k, Epoch: sp.epoch}
		owner := b.router.StoreTarget(side, k)
		out.EmitDirect(tupleStream(side), owner, mark)
		for _, m := range e.members[side] {
			if m != owner {
				out.EmitDirect(tupleStream(side), m, mark)
			}
		}
	}
	b.met.KeysUnsplit.Inc()
	b.met.SplitKeys.Add(-1)
}

// filterFrozenKeys drops split keys from a RouteUpdate's key list. A
// split (or residual) key's routing entry is frozen: its stored tuples
// are spread over owner plus members, and applying an ownership change
// would point probes away from shares that never move. The only way such
// an update can arise is a stale selection — e.g. an old owner's
// probe-only statistics within the two-tick staleness window — so the
// dispatcher refuses just those keys and applies the rest of the update
// unchanged. The update's marker handshake is untouched: markers answer
// the update, not the key set.
func (b *dispatcherBolt) filterFrozenKeys(keys []stream.Key) []stream.Key {
	sp := b.split
	if sp == nil || len(sp.entries) == 0 {
		return keys
	}
	frozen := 0
	for _, k := range keys {
		if _, ok := sp.entries[k]; ok {
			frozen++
		}
	}
	if frozen == 0 {
		return keys
	}
	// The update is a broadcast value shared across dispatcher tasks:
	// filter into a scratch copy, never in place.
	kept := sp.frozenScratch[:0]
	for _, k := range keys {
		if _, ok := sp.entries[k]; !ok {
			kept = append(kept, k)
		}
	}
	sp.frozenScratch = kept
	b.met.SplitFrozenKeys.Add(int64(frozen))
	return kept
}

// routeSplit routes one tuple of a split (or residual) key: the store
// copy salts round-robin across the key's own-side members while the
// split is active (the owner keeps its pre-split share), and the probe
// copies fan out to the opposite side's owner plus members — every
// instance that may hold stored tuples of the key. All copies carry the
// same Seq, like the multi-target strategies' probe copies.
//
//lint:hotpath
func (b *dispatcherBolt) routeSplit(t stream.Tuple, e *splitEntry, now int64, out *engine.Collector) {
	ownSide, oppSide := t.Side, t.Side.Opposite()

	storeAt := b.router.StoreTarget(ownSide, t.Key)
	if e.active {
		m := e.members[ownSide]
		storeAt = m[int(e.rr[ownSide])%len(m)]
		e.rr[ownSide]++
	}
	b.emitTuple(ownSide, storeAt, TupleMsg{T: t, Op: OpStore, SentAt: now, Seq: b.seq}, out)

	owner := b.router.StoreTarget(oppSide, t.Key)
	b.emitTuple(oppSide, owner, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq}, out)
	for _, m := range e.members[oppSide] {
		if m != owner {
			b.emitTuple(oppSide, m, TupleMsg{T: t, Op: OpProbe, SentAt: now, Seq: b.seq}, out)
		}
	}
}
