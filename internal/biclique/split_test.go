package biclique

import (
	"math/rand"
	"testing"

	"fastjoin/internal/chaos"
	"fastjoin/internal/engine"
	"fastjoin/internal/stream"
)

// newTestDispatcher builds a dispatcher bolt with splitting enabled,
// outside any topology, so the split state machine can be driven one
// message at a time (mirrors newTestJoiner).
func newTestDispatcher(t *testing.T) *dispatcherBolt {
	t.Helper()
	cfg := Config{
		Sources:        []TupleSource{func() (stream.Tuple, bool) { return stream.Tuple{}, false }},
		JoinersPerSide: 4,
		Strategy:       StrategyHash,
		Split:          SplitConfig{Threshold: 0.2, Ways: 2, Epoch: 64, SketchCapacity: 16},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := newDispatcherBolt(&cfg, NewSystemMetrics(cfg.JoinersPerSide))(0).(*dispatcherBolt)
	b.Prepare(engine.Context{Component: CompDispatcher, Task: 0, Parallelism: cfg.Dispatchers}, nil)
	return b
}

// TestSplitIntentDeferredDuringMigration is the split+migrate
// interleaving regression at its root: a SplitIntent racing a migration
// of the same key must not be acked until the attempt's fence has
// passed. The deferred paths get a nil collector — an ack emission there
// would panic the test — and the re-sent intent after the attempt
// clears must taint and ack.
func TestSplitIntentDeferredDuringMigration(t *testing.T) {
	b := newTestJoiner(t, Config{})
	const k = stream.Key(7)

	// Source side: the key sits in this instance's migrating set.
	b.migrating = true
	b.migKeys = map[stream.Key]bool{k: true}
	b.handleSplitIntent(SplitIntent{Side: stream.R, Key: k, Epoch: 1}, nil)
	if b.splitTaint[k] {
		t.Fatal("intent acked while the key was mid-migration at the source")
	}

	// Target side: the key is inbound from another instance.
	b.migrating = false
	b.migKeys = nil
	b.inbound = map[int]*inboundMig{1: {
		origin: 1, epoch: 3, keys: map[stream.Key]bool{k: true},
	}}
	b.handleSplitIntent(SplitIntent{Side: stream.R, Key: k, Epoch: 2}, nil)
	if b.splitTaint[k] {
		t.Fatal("intent acked while the key was inbound at the target")
	}

	// A migration of a different key must not block the handshake.
	b.inbound = map[int]*inboundMig{1: {
		origin: 1, epoch: 3, keys: map[stream.Key]bool{8: true},
	}}
	b.handleSplitIntent(SplitIntent{Side: stream.R, Key: k, Epoch: 3}, engine.NullCollector())
	if !b.splitTaint[k] {
		t.Fatal("re-sent intent after the attempt cleared must taint the key")
	}
	if b.splitActive[k] {
		t.Fatal("an ack alone must not mark the key active; only SplitMark does")
	}
}

// TestSplitTaintExcludesKeyStats: a tainted key must never appear in the
// migration candidate list again, no matter how much store or probe
// traffic it accumulates after the taint.
func TestSplitTaintExcludesKeyStats(t *testing.T) {
	b := newTestJoiner(t, Config{})
	b.store.Add(stream.Tuple{Key: 1, Seq: 0})
	b.store.Add(stream.Tuple{Key: 1, Seq: 1})
	b.store.Add(stream.Tuple{Key: 2, Seq: 2})
	b.probeCur[1] = 10
	b.probeCur[3] = 5 // probe-only key

	b.taintSplit(1, true)
	// Probe stats re-accumulate after the taint cleared them; the filter,
	// not the clearing, is what keeps the key out.
	b.probeCur[1] = 50

	for _, ks := range b.keyStats(20) {
		if ks.Key == 1 {
			t.Fatalf("tainted key 1 in keyStats: %+v", ks)
		}
	}
	b.taintSplit(3, false)
	for _, ks := range b.keyStats(20) {
		if ks.Key == 3 {
			t.Fatalf("tainted probe-only key 3 in keyStats: %+v", ks)
		}
	}
}

// TestUnsplitKeepsTaint: UnsplitMark ends the active split (load reports
// stop counting it) but the taint persists — the member may still hold a
// salted share, so the key stays immovable until the drain handshake
// completes and the SplitRetire lifts the taint.
func TestUnsplitKeepsTaint(t *testing.T) {
	b := newTestJoiner(t, Config{})
	out := engine.NullCollector()
	const k = stream.Key(4)

	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: SplitMark{Side: stream.R, Key: k, Epoch: 1}}, out)
	if !b.splitTaint[k] || !b.splitActive[k] {
		t.Fatalf("after SplitMark: taint=%v active=%v, want both", b.splitTaint[k], b.splitActive[k])
	}
	b.Execute(engine.Message{Stream: tupleStream(stream.R), Value: UnsplitMark{Side: stream.R, Key: k, Epoch: 2, Gen: 1, Owner: 1}}, out)
	if b.splitActive[k] {
		t.Fatal("after UnsplitMark the key must not count as actively split")
	}
	if !b.splitTaint[k] {
		t.Fatal("UnsplitMark must not clear the taint: this member may still hold a salted share")
	}
	if rd := b.splitResidual[k]; rd == nil || rd.gen != 1 {
		t.Fatalf("UnsplitMark at a non-owner member must open drain round 1, got %+v", rd)
	}
}

// TestSplitAckHandshakeActivates drives the dispatcher's intent/ack state
// machine directly: one ack is not enough, both acks activate (members
// sized to Split.Ways, metrics recorded), and a late duplicate ack is a
// no-op. Deactivation then leaves a residual entry behind.
func TestSplitAckHandshakeActivates(t *testing.T) {
	b := newTestDispatcher(t)
	out := engine.NullCollector()
	const k = stream.Key(9)

	b.split.pending[k] = new(pendingSplit)
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: SplitAck{Side: stream.R, Key: k, From: 2}}, out)
	if b.split.entries[k] != nil {
		t.Fatal("a single ack must not activate the split")
	}
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: SplitAck{Side: stream.S, Key: k, From: 1}}, out)
	e := b.split.entries[k]
	if e == nil || !e.active {
		t.Fatalf("both acks must activate the split, got entry %+v", e)
	}
	for _, side := range splitSides {
		if len(e.members[side]) != b.cfg.Split.Ways {
			t.Fatalf("side %v members = %v, want %d salt targets", side, e.members[side], b.cfg.Split.Ways)
		}
	}
	if got := b.met.KeysSplit.Value(); got != 1 {
		t.Fatalf("KeysSplit = %d, want 1", got)
	}
	if got := b.met.SplitKeys.Value(); got != 1 {
		t.Fatalf("SplitKeys gauge = %d, want 1", got)
	}

	// Duplicate ack after activation: pending entry is gone, must no-op.
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: SplitAck{Side: stream.S, Key: k, From: 1}}, out)
	if got := b.met.KeysSplit.Value(); got != 1 {
		t.Fatalf("duplicate ack re-activated: KeysSplit = %d", got)
	}

	b.deactivateSplit(k, e, out)
	if e.active {
		t.Fatal("deactivate must clear active")
	}
	if b.split.entries[k] == nil {
		t.Fatal("residual entry must survive deactivation for freeze and re-activation")
	}
	if got := b.met.SplitKeys.Value(); got != 0 {
		t.Fatalf("SplitKeys gauge after unsplit = %d, want 0", got)
	}
	if got := b.met.KeysUnsplit.Value(); got != 1 {
		t.Fatalf("KeysUnsplit = %d, want 1", got)
	}
}

// TestDispatcherFreezesSplitKeyRouting: a RouteUpdate naming a split key
// must not move it — its salted shares would be stranded — while the
// rest of the update applies untouched. Residual keys are frozen too.
func TestDispatcherFreezesSplitKeyRouting(t *testing.T) {
	b := newTestDispatcher(t)
	out := engine.NullCollector()
	const frozen, movable = stream.Key(5), stream.Key(6)

	e := new(splitEntry)
	b.split.entries[frozen] = e
	b.activateSplit(frozen, e, out)

	ownerBefore := b.router.StoreTarget(stream.R, frozen)
	newOwner := (b.router.StoreTarget(stream.R, movable) + 1) % b.cfg.JoinersPerSide
	upd := RouteUpdate{
		Side: stream.R, Keys: []stream.Key{frozen, movable},
		NewOwner: newOwner, Source: ownerBefore, Epoch: 1, MarkerTo: ownerBefore,
	}
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: upd}, out)

	if got := b.router.StoreTarget(stream.R, frozen); got != ownerBefore {
		t.Fatalf("split key rerouted: owner %d -> %d", ownerBefore, got)
	}
	if got := b.router.StoreTarget(stream.R, movable); got != newOwner {
		t.Fatalf("non-split key not applied: owner %d, want %d", got, newOwner)
	}
	if got := b.met.SplitFrozenKeys.Value(); got != 1 {
		t.Fatalf("SplitFrozenKeys = %d, want 1", got)
	}
	// The broadcast value itself must be untouched (it is shared with the
	// other dispatcher tasks).
	if len(upd.Keys) != 2 || upd.Keys[0] != frozen {
		t.Fatalf("RouteUpdate.Keys mutated in place: %v", upd.Keys)
	}

	// Residual state freezes the same way.
	b.deactivateSplit(frozen, e, out)
	b.Execute(engine.Message{Stream: streamRouteUpd, Value: RouteUpdate{
		Side: stream.R, Keys: []stream.Key{frozen},
		NewOwner: newOwner, Source: ownerBefore, Epoch: 2, MarkerTo: ownerBefore,
	}}, out)
	if got := b.router.StoreTarget(stream.R, frozen); got != ownerBefore {
		t.Fatalf("residual split key rerouted: owner %d -> %d", ownerBefore, got)
	}
}

// TestSplitDetectorPromotesPending: feeding a skewed key stream through
// the detector must open a handshake for the heavy hitter — and only for
// it — at the epoch boundary.
func TestSplitDetectorPromotesPending(t *testing.T) {
	b := newTestDispatcher(t)
	out := engine.NullCollector()
	// 64-observation epoch: key 1 takes half the traffic, the rest is
	// spread thin.
	for i := 0; i < b.cfg.Split.Epoch; i++ {
		k := stream.Key(1)
		if i%2 == 0 {
			k = stream.Key(100 + i)
		}
		b.observeSplit(k, out)
	}
	if b.split.pending[1] == nil {
		t.Fatal("heavy hitter not promoted to pending after the epoch evaluation")
	}
	if len(b.split.pending) != 1 {
		t.Fatalf("light keys promoted too: pending = %v", b.split.pending)
	}
	if len(b.split.entries) != 0 {
		t.Fatal("no entry may exist before both acks arrive")
	}
}

// --- system-level tests -------------------------------------------------

// splitTestConfig is the interleaving tests' shape: the chaos base (fast
// stats ticks, aggressive migration trigger, thinning predicate) plus a
// split threshold sized so the phased workload's mega-key clears it but
// the migration phase's moderate hot keys stay well below it.
func splitTestConfig(seed uint64) Config {
	cfg := chaosBaseConfig(seed)
	cfg.Split = SplitConfig{Threshold: 0.4, Ways: 2, Epoch: 128, SketchCapacity: 32}
	return cfg
}

// makePhasedWorkload builds the split→migrate→unsplit scenario in three
// equal phases: a mega-key (key 0, ~55% of all traffic) that forces a
// split, then a cooldown phase whose moderate multi-key skew (keys 2..5)
// drives migrations while the mega-key decays below the unsplit
// hysteresis, then the mega-key again so the residual entry re-activates.
func makePhasedWorkload(n int, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]stream.Tuple, 0, n)
	var rSeq, sSeq uint64
	now := stream.Now()
	pick := func(i int) stream.Key {
		if phase := i * 3 / n; phase == 1 {
			if rng.Float64() < 0.6 {
				return stream.Key(2 + rng.Intn(4))
			}
		} else if rng.Float64() < 0.55 {
			return 0
		}
		return stream.Key(10 + rng.Intn(28))
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tuples = append(tuples, stream.Tuple{
				Side: stream.R, Key: pick(i), Seq: rSeq, EventTime: now + int64(i),
			})
			rSeq++
		} else {
			tuples = append(tuples, stream.Tuple{
				Side: stream.S, Key: pick(i), Seq: sSeq, EventTime: now + int64(i),
			})
			sSeq++
		}
	}
	return tuples
}

// TestSplitActivatesOnHotKey: under the standard skewed chaos workload
// (no fault injection) the detector must actually split, the result set
// must stay exact, and the joiners' load reports must have carried the
// split state to the monitors.
func TestSplitActivatesOnHotKey(t *testing.T) {
	tuples := makeWorkload(6000, 30, 0.5, 11)
	cfg := splitTestConfig(3)
	cfg.Split.Threshold = 0.15 // the two hot keys hold ~50% of their task's traffic
	sys, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), got)

	met := sys.Metrics()
	if met.KeysSplit.Value() == 0 {
		t.Fatal("skewed run with splitting enabled never split a key")
	}
	reported := 0
	for _, side := range splitSides {
		for _, n := range met.SplitReported(side) {
			reported += n
		}
	}
	if reported == 0 {
		t.Error("no joiner load report carried split state to a monitor")
	}
	t.Logf("splits=%d unsplits=%d frozen=%d reported=%d migrations=%d",
		met.KeysSplit.Value(), met.KeysUnsplit.Value(),
		met.SplitFrozenKeys.Value(), reported, met.Migrations.Value())
}

// TestSplitMigrateUnsplitInterleaving runs the full lifecycle — split,
// cooldown to residual while migrations fire, residual re-activation —
// and demands the exact brute-force pair set, with and without fault
// injection. This is the differential proof that the unsplit drain
// contract and the migration fence ordering compose.
func TestSplitMigrateUnsplitInterleaving(t *testing.T) {
	const n = 6000
	t.Run("nochaos", func(t *testing.T) {
		tuples := makePhasedWorkload(n, 21)
		cfg := splitTestConfig(5)
		sys, got := runFinite(t, cfg, tuples)
		assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), got)

		met := sys.Metrics()
		t.Logf("splits=%d unsplits=%d migrations=%d aborts=%d frozen=%d",
			met.KeysSplit.Value(), met.KeysUnsplit.Value(),
			met.Migrations.Value(), met.MigrationAborts.Value(),
			met.SplitFrozenKeys.Value())
		if met.KeysSplit.Value() < 2 {
			t.Errorf("KeysSplit = %d, want >= 2 (initial activation plus residual re-activation)",
				met.KeysSplit.Value())
		}
		if met.KeysUnsplit.Value() < 1 {
			t.Errorf("KeysUnsplit = %d, want >= 1 (cooldown phase must unsplit the mega-key)",
				met.KeysUnsplit.Value())
		}
		if met.Migrations.Value()+met.MigrationAborts.Value() == 0 {
			t.Error("no migration attempt fired: the interleaving was not exercised")
		}
	})
	t.Run("mixed", func(t *testing.T) {
		profile, err := chaos.Lookup("mixed")
		if err != nil {
			t.Fatal(err)
		}
		tuples := makePhasedWorkload(n, 22)
		cfg := splitTestConfig(6)
		cfg.Chaos = chaos.NewInjector(profile, 6)
		col := newPairCollector()
		cfg.EmitResults = true
		cfg.OnResult = col.add
		cfg.Sources = []TupleSource{sliceSource(tuples)}
		sys, err := Start(cfg)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		waitChaosSettled(t, sys)
		sys.Stop()
		assertExactlyOnce(t, referenceJoin(tuples, cfg.Predicate), col.snapshot())

		met := sys.Metrics()
		t.Logf("splits=%d unsplits=%d migrations=%d aborts=%d faults=%+v",
			met.KeysSplit.Value(), met.KeysUnsplit.Value(),
			met.Migrations.Value(), met.MigrationAborts.Value(), cfg.Chaos.Counts())
		if met.KeysSplit.Value() == 0 {
			t.Error("split never activated under the mixed profile")
		}
	})
}
