package biclique

import (
	"fmt"
	"testing"
)

// TestChaosStoreDifferential is the store differential at full-system
// scale: every chaos profile runs with each window-store implementation
// explicitly pinned — and, since hot-key splitting salts stores across
// instances, with splitting both off and on — and each run must emit
// exactly the brute-force reference pair set. TestChaosDifferential
// already exercises the default (chunked) store; this matrix adds the
// map reference and makes the A/B explicit, so a semantics bug in the
// arena layout — under migration, rollback, replay, and salted store
// traffic — cannot hide behind the system default. The name matches
// `make chaos`'s -run 'Chaos' filter.
func TestChaosStoreDifferential(t *testing.T) {
	profiles := []string{"droponly", "delayonly", "duponly", "mixed"}
	impls := []struct {
		name string
		impl StoreImpl
	}{
		{"chunked", StoreChunked},
		{"map", StoreMap},
	}
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for _, profile := range profiles {
		for _, si := range impls {
			for _, split := range []bool{false, true} {
				for seed := uint64(1); seed <= uint64(seeds); seed++ {
					profile, si, split, seed := profile, si, split, seed
					splitName := "off"
					if split {
						splitName = "on"
					}
					t.Run(fmt.Sprintf("%s/%s/split=%s/seed=%d", profile, si.name, splitName, seed), func(t *testing.T) {
						t.Parallel()
						mutate := []func(*Config){func(cfg *Config) {
							cfg.StoreImpl = si.impl
						}}
						if split {
							mutate = append(mutate, enableSplit)
						}
						runChaos(t, profile, seed, 2000, mutate...)
					})
				}
			}
		}
	}
}
