package biclique

import (
	"fmt"
	"testing"
)

// TestChaosStoreDifferential is the store differential at full-system
// scale: every chaos profile runs with each window-store implementation
// explicitly pinned, and each run must emit exactly the brute-force
// reference pair set. TestChaosDifferential already exercises the default
// (chunked) store; this matrix adds the map reference and makes the A/B
// explicit, so a semantics bug in the arena layout — under migration,
// rollback, and replay — cannot hide behind the system default. The name
// matches `make chaos`'s -run 'Chaos' filter.
func TestChaosStoreDifferential(t *testing.T) {
	profiles := []string{"droponly", "delayonly", "duponly", "mixed"}
	impls := []struct {
		name string
		impl StoreImpl
	}{
		{"chunked", StoreChunked},
		{"map", StoreMap},
	}
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for _, profile := range profiles {
		for _, si := range impls {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				profile, si, seed := profile, si, seed
				t.Run(fmt.Sprintf("%s/%s/seed=%d", profile, si.name, seed), func(t *testing.T) {
					t.Parallel()
					runChaos(t, profile, seed, 2000, func(cfg *Config) {
						cfg.StoreImpl = si.impl
					})
				})
			}
		}
	}
}
