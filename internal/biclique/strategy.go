package biclique

import "fastjoin/internal/routing"

// newRouter builds the router for a dispatcher task under the configured
// strategy (implementations live in internal/routing, shared with the
// simulator).
func newRouter(cfg *Config, task int) routing.Router {
	switch cfg.Strategy {
	case StrategyHash:
		return routing.NewHash(cfg.JoinersPerSide, cfg.Seed)
	case StrategyContRand:
		return routing.NewContRand(cfg.JoinersPerSide, cfg.SubgroupSize, cfg.Seed, task)
	case StrategyRandom:
		return routing.NewRandom(cfg.JoinersPerSide, cfg.Seed, task)
	default:
		panic("biclique: unknown strategy") //lint:allow panicpath unreachable after Config.Validate rejects unknown strategies; contract asserted by tests
	}
}
