package biclique

import (
	"testing"

	"fastjoin/internal/routing"
	"fastjoin/internal/stream"
)

func TestRouterFactory(t *testing.T) {
	cfg := &Config{JoinersPerSide: 4, SubgroupSize: 2, Seed: 1}
	cfg.Strategy = StrategyHash
	if _, ok := newRouter(cfg, 0).(*routing.Hash); !ok {
		t.Error("hash strategy did not produce routing.Hash")
	}
	cfg.Strategy = StrategyContRand
	if _, ok := newRouter(cfg, 0).(*routing.ContRand); !ok {
		t.Error("contrand strategy did not produce routing.ContRand")
	}
	cfg.Strategy = StrategyRandom
	if _, ok := newRouter(cfg, 0).(*routing.Random); !ok {
		t.Error("random strategy did not produce routing.Random")
	}
	cfg.Strategy = Strategy(99)
	defer func() {
		if recover() == nil {
			t.Error("unknown strategy should panic")
		}
	}()
	newRouter(cfg, 0)
}

func TestValidateRejectsUnknownStrategy(t *testing.T) {
	cfg := Config{
		JoinersPerSide: 2,
		Strategy:       Strategy(99),
		Sources:        []TupleSource{func() (t stream.Tuple, ok bool) { return }},
	}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate should reject an unknown strategy before newRouter can panic")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyHash.String() != "hash" || StrategyContRand.String() != "contrand" ||
		StrategyRandom.String() != "random" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Errorf("unknown strategy = %q", Strategy(9).String())
	}
}
