package biclique

import (
	"runtime"
	"sync"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/metrics"
	"fastjoin/internal/stream"
)

// SystemMetrics aggregates the live measurements of one running join
// system: the three quantities the paper evaluates (throughput, processing
// latency, degree of load imbalance) plus migration accounting. All fields
// are safe for concurrent use; the bolts update them directly.
type SystemMetrics struct {
	// Results counts emitted join pairs; its TickRate is the system
	// throughput (results per second), the paper's primary metric.
	Results *metrics.Meter
	// Latency records per-probe processing latency in nanoseconds
	// (dispatcher send -> join completion: queueing plus service).
	Latency *metrics.Histogram
	// StoredR / StoredS gauge the total stored tuples per side.
	StoredR metrics.Gauge
	StoredS metrics.Gauge

	// Migrations counts completed migrations; MigratedKeys and
	// MigratedTuples the total keys and stored tuples moved.
	Migrations     metrics.Counter
	MigratedKeys   metrics.Counter
	MigratedTuples metrics.Counter
	// MigrationAborts counts attempts that rolled back after the marker
	// handshake timed out (see MigrationConfig.AbortTimeout).
	MigrationAborts metrics.Counter
	// MigrationsInFlight gauges migration attempts whose handshake (or
	// rollback) has not finished. Quiescence checks poll it: engine
	// settling with a non-zero value means tuples are still parked in
	// migration buffers awaiting a tick-driven retransmit.
	MigrationsInFlight metrics.Gauge
	// ReplayPanics counts tuples lost to panics during migration replay
	// (each poisoned tuple costs only itself; see joinerBolt.replay).
	ReplayPanics metrics.Counter
	// ReplayedTuples meters tuples re-processed from migration buffers
	// (temporary queue, inbound buffer, or abort rollback). Their SentAt
	// stamps are stale by the handshake's wall-time, so they are counted
	// here instead of polluting the Latency histogram.
	ReplayedTuples *metrics.Meter

	// Hot-key splitting accounting (see DESIGN.md "Hot-key splitting").
	// SplitKeys gauges the keys currently split-routed across all
	// dispatcher tasks; KeysSplit / KeysUnsplit count activation and
	// cool-down events over the system's lifetime (a key that oscillates
	// counts each transition).
	SplitKeys   metrics.Gauge
	KeysSplit   metrics.Counter
	KeysUnsplit metrics.Counter
	// SplitFrozenKeys counts keys a dispatcher dropped from a RouteUpdate
	// because they were split: once a key's split activates, its routing
	// entry is frozen — salted shares must never move between instances —
	// so any late selection of the key (e.g. from an old owner's stale
	// probe statistics) is refused rather than applied. The freeze lifts
	// when the key retires.
	SplitFrozenKeys metrics.Counter
	// ResidualKeys gauges the cooled split keys whose drain round is still
	// open: an UnsplitMark went out but not every non-owner member has
	// reported its salted share expired. A reheat (re-activation) or the
	// retire both close the round. Bounded-memory checks poll it: a churn
	// workload that heats and cools keys must drive it back to zero once
	// the window passes.
	ResidualKeys metrics.Gauge
	// KeysRetired counts completed split lifecycles: the drain handshake
	// finished, the fenced SplitRetire went out, the dispatcher deleted
	// the split entry, and the key returned to single-owner routing with
	// its freeze and member taints lifted.
	KeysRetired metrics.Counter

	// gcBase is the runtime memory state captured at NewSystemMetrics;
	// RuntimeSample reports GC activity as deltas against it so the numbers
	// isolate this system's run, not the whole process lifetime.
	gcBase runtime.MemStats

	mu sync.Mutex
	// liSeries records the real-time degree of load imbalance per side
	// (Fig. 11); loadSeries records each instance's load over time
	// (Fig. 1c).
	liSeries   [2]*metrics.TimeSeries
	loadSeries [2][]*metrics.TimeSeries
	migLog     []MigrationEvent
	// lastLoads / lastLI hold the most recent load report of every
	// instance and the latest recorded imbalance per side — the
	// instantaneous values the /metrics endpoint exports (the series
	// above serve the post-hoc figure exports).
	lastLoads [2][]core.InstanceLoad
	lastLI    [2]float64
	// splitReported holds each joiner's latest count of actively split
	// keys it is marked for (LoadReport.SplitKeys), per side/instance.
	splitReported [2][]int
}

// RuntimeSample is a point-in-time view of the process heap and the GC
// activity accumulated since the system's metrics were created. The store
// rework trades map/slice churn for arena reuse; these gauges make that win
// observable end to end (the bench harness reports them per run).
type RuntimeSample struct {
	// HeapAllocBytes is the live heap at sampling time.
	HeapAllocBytes uint64
	// AllocBytes is the cumulative bytes allocated since NewSystemMetrics.
	AllocBytes uint64
	// GCCycles is the number of GC cycles completed since NewSystemMetrics.
	GCCycles uint32
	// GCPauseTotal is the total stop-the-world pause accumulated since
	// NewSystemMetrics.
	GCPauseTotal time.Duration
}

// MigrationEvent records one completed migration for diagnostics.
type MigrationEvent struct {
	At      int64       `json:"at"` // unix nanoseconds
	Side    stream.Side `json:"side"`
	Source  int         `json:"source"`
	Target  int         `json:"target"`
	LI      float64     `json:"li"` // imbalance that triggered it
	Keys    int         `json:"keys"`
	Moved   int         `json:"moved"`
	Aborted bool        `json:"aborted,omitempty"`
}

// NewSystemMetrics returns metrics sized for one system.
func NewSystemMetrics(joinersPerSide int) *SystemMetrics {
	m := &SystemMetrics{
		Results:        metrics.NewMeter(),
		Latency:        metrics.NewHistogram(),
		ReplayedTuples: metrics.NewMeter(),
	}
	for side := 0; side < 2; side++ {
		m.liSeries[side] = &metrics.TimeSeries{}
		m.loadSeries[side] = make([]*metrics.TimeSeries, joinersPerSide)
		m.lastLoads[side] = make([]core.InstanceLoad, joinersPerSide)
		m.splitReported[side] = make([]int, joinersPerSide)
		for i := range m.loadSeries[side] {
			m.loadSeries[side][i] = &metrics.TimeSeries{}
			m.lastLoads[side][i] = core.InstanceLoad{Instance: i}
		}
	}
	runtime.ReadMemStats(&m.gcBase)
	return m
}

// RuntimeSample reads the current runtime memory state, reporting GC
// activity as deltas since NewSystemMetrics. ReadMemStats stops the world
// briefly; callers sample at reporting boundaries, not per tuple.
func (m *SystemMetrics) RuntimeSample() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSample{
		HeapAllocBytes: ms.HeapAlloc,
		AllocBytes:     ms.TotalAlloc - m.gcBase.TotalAlloc,
		GCCycles:       ms.NumGC - m.gcBase.NumGC,
		GCPauseTotal:   time.Duration(ms.PauseTotalNs - m.gcBase.PauseTotalNs),
	}
}

// RecordImbalance appends one LI observation for a side.
func (m *SystemMetrics) RecordImbalance(side stream.Side, li float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.liSeries[side].AppendNow(li)
	m.lastLI[side] = li
}

// RecordLoads appends the current load of every reporting instance.
func (m *SystemMetrics) RecordLoads(side stream.Side, loads []core.InstanceLoad) {
	m.mu.Lock()
	defer m.mu.Unlock()
	series := m.loadSeries[side]
	for _, l := range loads {
		if l.Instance >= 0 && l.Instance < len(series) {
			series[l.Instance].AppendNow(float64(l.Load()))
			m.lastLoads[side][l.Instance] = l
		}
	}
}

// InstanceLoads returns the latest load report of every instance on a
// side: stored tuples |R_i|, probe pressure φ_si, and therefore the
// paper's load statistic L_i via Load(). Instances that have not reported
// yet carry zeros.
func (m *SystemMetrics) InstanceLoads(side stream.Side) []core.InstanceLoad {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]core.InstanceLoad, len(m.lastLoads[side]))
	copy(out, m.lastLoads[side])
	return out
}

// LastLI returns the most recently recorded degree of load imbalance of a
// side (clipped to the recording cap; zero before the first observation).
func (m *SystemMetrics) LastLI(side stream.Side) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLI[side]
}

// LISeries returns the recorded LI observations of a side.
func (m *SystemMetrics) LISeries(side stream.Side) []metrics.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liSeries[side].Points()
}

// LoadSeries returns instance i's recorded load history for a side.
func (m *SystemMetrics) LoadSeries(side stream.Side, instance int) []metrics.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	series := m.loadSeries[side]
	if instance < 0 || instance >= len(series) {
		return nil
	}
	return series[instance].Points()
}

// RecordSplitReport stores one joiner's latest count of actively split
// keys, as carried by its LoadReport.
func (m *SystemMetrics) RecordSplitReport(side stream.Side, instance, keys int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if instance >= 0 && instance < len(m.splitReported[side]) {
		m.splitReported[side][instance] = keys
	}
}

// SplitReported returns the latest per-instance counts of actively split
// keys on a side (index = instance).
func (m *SystemMetrics) SplitReported(side stream.Side) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.splitReported[side]))
	copy(out, m.splitReported[side])
	return out
}

// RecordMigration appends one migration event.
func (m *SystemMetrics) RecordMigration(ev MigrationEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.migLog = append(m.migLog, ev)
}

// MigrationLog returns a copy of the recorded migration events.
func (m *SystemMetrics) MigrationLog() []MigrationEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MigrationEvent, len(m.migLog))
	copy(out, m.migLog)
	return out
}

// Instances returns how many per-instance load series exist per side.
func (m *SystemMetrics) Instances() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.loadSeries[0])
}
