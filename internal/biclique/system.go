package biclique

import (
	"time"

	"fastjoin/internal/engine"
	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// tupleSpout adapts a TupleSource to the engine's Spout contract.
type tupleSpout struct {
	src TupleSource
}

func (s *tupleSpout) Open(engine.Context, *engine.Collector) {}

func (s *tupleSpout) Next(out *engine.Collector) bool {
	t, ok := s.src()
	if !ok {
		return false
	}
	out.Emit(streamTuples, t)
	return true
}

func (s *tupleSpout) Close() {}

// System is a running join-biclique topology.
type System struct {
	cfg     Config
	cluster *engine.LocalCluster
	met     *SystemMetrics
}

// Start validates the configuration, assembles the topology of Fig. 2
// (dispatching component, two joiner groups, two monitors, result sink) and
// launches it on a local cluster.
func Start(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	met := NewSystemMetrics(cfg.JoinersPerSide)

	b := engine.NewBuilder()
	b.AddSpout(CompSpout, func(task int) engine.Spout {
		return &tupleSpout{src: cfg.Sources[task]}
	}, len(cfg.Sources))

	shuffler := b.AddBolt(CompShuffler, newShufflerFactory(&cfg), cfg.Shufflers).
		Shuffle(CompSpout, streamTuples)

	// Tuples are routed to dispatcher tasks by key so that all traffic of
	// one key flows through a single dispatcher task — the per-key FIFO
	// that both the plain hash join and the migration protocol's
	// exactly-once argument rely on. The shuffler owns the key→task
	// mapping (a direct subscription, not an engine grouping) so it can
	// batch its per-dispatcher lanes.
	dispatcher := b.AddBolt(CompDispatcher, newDispatcherBolt(&cfg, met), cfg.Dispatchers).
		Direct(CompShuffler, streamTuples).
		BroadcastCtrl(CompJoinerR, streamRouteUpd).
		BroadcastCtrl(CompJoinerS, streamRouteUpd)
	if cfg.BatchSize > 1 {
		// The linger ticks bound how long a partially filled batch can sit
		// in a busy shuffler or dispatcher; an idle task flushes eagerly
		// via the engine's Flusher hook.
		shuffler.TickEvery(cfg.BatchLinger)
		dispatcher.TickEvery(cfg.BatchLinger)
	}

	b.AddBolt(CompJoinerR, newJoinerFactory(&cfg, stream.R, met), cfg.JoinersPerSide).
		Direct(CompDispatcher, streamToR).
		DirectCtrl(CompDispatcher, streamSplitR).
		DirectCtrl(CompMonitorR, streamCmdR).
		DirectCtrl(CompJoinerR, streamMigR).
		TickEvery(cfg.StatsInterval)

	b.AddBolt(CompJoinerS, newJoinerFactory(&cfg, stream.S, met), cfg.JoinersPerSide).
		Direct(CompDispatcher, streamToS).
		DirectCtrl(CompDispatcher, streamSplitS).
		DirectCtrl(CompMonitorS, streamCmdS).
		DirectCtrl(CompJoinerS, streamMigS).
		TickEvery(cfg.StatsInterval)

	b.AddBolt(CompMonitorR, newMonitorFactory(&cfg, stream.R, met), 1).
		GlobalCtrl(CompJoinerR, streamLoadR).
		GlobalCtrl(CompJoinerR, streamDoneR).
		TickEvery(cfg.StatsInterval)

	b.AddBolt(CompMonitorS, newMonitorFactory(&cfg, stream.S, met), 1).
		GlobalCtrl(CompJoinerS, streamLoadS).
		GlobalCtrl(CompJoinerS, streamDoneS).
		TickEvery(cfg.StatsInterval)

	b.AddBolt(CompSink, newSinkFactory(&cfg, met), 1).
		Shuffle(CompJoinerR, streamResults).
		Shuffle(CompJoinerS, streamResults)

	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		if cfg.Engine.Inject == nil {
			cfg.Engine.Inject = chaosInject(cfg.Chaos)
		}
		if cfg.Engine.Stall == nil {
			cfg.Engine.Stall = chaosStall(cfg.Chaos)
		}
	}
	cluster, err := engine.Submit(topo, cfg.Engine)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, cluster: cluster, met: met}, nil
}

// Metrics returns the live measurements of the system.
func (s *System) Metrics() *SystemMetrics { return s.met }

// Tracer returns the control-plane tracer the system was configured with,
// or nil when tracing is off.
func (s *System) Tracer() *obs.Tracer { return s.cfg.Tracer }

// MigrationsInFlight reports migration attempts whose handshake or
// rollback has not finished. Completeness checks under fault injection
// poll it after WaitComplete: the engine can settle during a quiet gap
// while a joiner waits for a tick-driven retransmit, and tuples parked
// in migration buffers only surface once this drops to zero.
func (s *System) MigrationsInFlight() int64 { return s.met.MigrationsInFlight.Value() }

// Ingested returns the number of tuples the spouts have emitted so far.
func (s *System) Ingested() int64 {
	var total int64
	for _, st := range s.cluster.Stats(CompSpout) {
		total += st.Emitted
	}
	return total
}

// Cluster exposes the underlying engine cluster (per-task stats, etc.).
func (s *System) Cluster() *engine.LocalCluster { return s.cluster }

// Config returns the effective (validated) configuration.
func (s *System) Config() Config { return s.cfg }

// WaitComplete waits until the (finite) sources are exhausted and every
// in-flight tuple — including migration traffic — has been processed.
func (s *System) WaitComplete(timeout time.Duration) error {
	return s.cluster.WaitComplete(timeout)
}

// Drain stops ingestion immediately and settles in-flight work.
func (s *System) Drain(timeout time.Duration) error {
	return s.cluster.Drain(timeout)
}

// Stop terminates the system.
func (s *System) Stop() { s.cluster.Stop() }

// RunFor lets the system process for the given duration, then drains and
// stops it. It is the shape every timed experiment uses.
func (s *System) RunFor(d time.Duration) error {
	time.Sleep(d)
	err := s.Drain(0)
	s.Stop()
	return err
}
