package biclique

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/stream"
)

// makeWorkload builds a deterministic two-stream workload with the given
// key skew: nTuples tuples alternating R/S, keys zipf-ish via rng power.
func makeWorkload(nTuples, nKeys int, hotBias float64, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]stream.Tuple, 0, nTuples)
	var rSeq, sSeq uint64
	now := stream.Now()
	pick := func() stream.Key {
		if hotBias > 0 && rng.Float64() < hotBias {
			return stream.Key(rng.Intn(2)) // two hot keys
		}
		return stream.Key(rng.Intn(nKeys))
	}
	for i := 0; i < nTuples; i++ {
		if i%2 == 0 {
			tuples = append(tuples, stream.Tuple{
				Side: stream.R, Key: pick(), Seq: rSeq, EventTime: now + int64(i),
			})
			rSeq++
		} else {
			tuples = append(tuples, stream.Tuple{
				Side: stream.S, Key: pick(), Seq: sSeq, EventTime: now + int64(i),
			})
			sSeq++
		}
	}
	return tuples
}

// referenceJoin brute-forces the expected pair set.
func referenceJoin(tuples []stream.Tuple, pred stream.Predicate) map[stream.PairID]bool {
	var rs, ss []stream.Tuple
	for _, t := range tuples {
		if t.Side == stream.R {
			rs = append(rs, t)
		} else {
			ss = append(ss, t)
		}
	}
	want := make(map[stream.PairID]bool)
	for _, r := range rs {
		for _, s := range ss {
			if r.Key != s.Key {
				continue
			}
			if pred != nil && !pred(r, s) {
				continue
			}
			want[stream.PairID{RSeq: r.Seq, SSeq: s.Seq}] = true
		}
	}
	return want
}

// sliceSource adapts a tuple slice to a TupleSource.
func sliceSource(tuples []stream.Tuple) TupleSource {
	i := 0
	return func() (stream.Tuple, bool) {
		if i >= len(tuples) {
			return stream.Tuple{}, false
		}
		t := tuples[i]
		i++
		return t, true
	}
}

// pairCollector gathers emitted pairs with counts.
type pairCollector struct {
	mu    sync.Mutex
	pairs map[stream.PairID]int
}

func newPairCollector() *pairCollector {
	return &pairCollector{pairs: make(map[stream.PairID]int)}
}

func (c *pairCollector) add(p stream.JoinedPair) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pairs[p.ID()]++
}

func (c *pairCollector) snapshot() map[stream.PairID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[stream.PairID]int, len(c.pairs))
	for k, v := range c.pairs {
		out[k] = v
	}
	return out
}

// runFinite runs a finite workload to completion and returns the system
// and observed pair counts.
func runFinite(t *testing.T, cfg Config, tuples []stream.Tuple) (*System, map[stream.PairID]int) {
	t.Helper()
	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	return sys, col.snapshot()
}

// assertExactlyOnce checks observed == expected with multiplicity 1.
func assertExactlyOnce(t *testing.T, want map[stream.PairID]bool, got map[stream.PairID]int) {
	t.Helper()
	missing, dup, extra := 0, 0, 0
	for id := range want {
		switch got[id] {
		case 0:
			missing++
		case 1:
		default:
			dup++
		}
	}
	for id := range got {
		if !want[id] {
			extra++
		}
	}
	if missing != 0 || dup != 0 || extra != 0 {
		t.Fatalf("completeness violated: %d missing, %d duplicated, %d spurious (want %d pairs, got %d)",
			missing, dup, extra, len(want), len(got))
	}
}

func baseConfig() Config {
	return Config{
		JoinersPerSide: 4,
		Dispatchers:    2,
		Shufflers:      2,
		StatsInterval:  20 * time.Millisecond,
		Seed:           1,
	}
}

func TestHashJoinExactlyOnce(t *testing.T) {
	tuples := makeWorkload(4000, 50, 0, 1)
	cfg := baseConfig()
	cfg.Strategy = StrategyHash
	_, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, nil), got)
}

func TestContRandJoinExactlyOnce(t *testing.T) {
	tuples := makeWorkload(4000, 50, 0, 2)
	cfg := baseConfig()
	cfg.Strategy = StrategyContRand
	cfg.SubgroupSize = 2
	_, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, nil), got)
}

func TestRandomJoinExactlyOnce(t *testing.T) {
	tuples := makeWorkload(4000, 50, 0, 3)
	cfg := baseConfig()
	cfg.Strategy = StrategyRandom
	_, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, nil), got)
}

func TestPredicateFiltering(t *testing.T) {
	tuples := makeWorkload(2000, 20, 0, 4)
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%2 == 0 }
	cfg := baseConfig()
	cfg.Predicate = pred
	_, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, pred), got)
}

func TestMigrationExactlyOnceUnderSkew(t *testing.T) {
	// Heavy skew so migrations actually fire, aggressive trigger policy.
	// The predicate thins the result set so the hot keys' quadratic pair
	// count stays testable; probe volume (what drives load) is unchanged.
	tuples := makeWorkload(8000, 40, 0.5, 5)
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	cfg := baseConfig()
	cfg.Strategy = StrategyHash
	cfg.Predicate = pred
	cfg.Migration = MigrationConfig{
		Enabled: true,
		Policy: core.MonitorPolicy{
			Theta:     1.2,
			Cooldown:  25 * time.Millisecond,
			MinStored: 16,
		},
	}
	sys, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, pred), got)
	if sys.Metrics().Migrations.Value() == 0 {
		t.Error("expected at least one migration under heavy skew; protocol untested otherwise")
	}
}

func TestMigrationExactlyOnceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	for seed := int64(10); seed < 16; seed++ {
		tuples := makeWorkload(5000, 25, 0.5, seed)
		cfg := baseConfig()
		cfg.Seed = uint64(seed)
		cfg.Predicate = pred
		cfg.Migration = MigrationConfig{
			Enabled: true,
			Policy: core.MonitorPolicy{
				Theta:     1.1,
				Cooldown:  15 * time.Millisecond,
				MinStored: 8,
			},
		}
		_, got := runFinite(t, cfg, tuples)
		assertExactlyOnce(t, referenceJoin(tuples, pred), got)
	}
}

func TestMigrationWithSAFit(t *testing.T) {
	tuples := makeWorkload(6000, 30, 0.5, 6)
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	cfg := baseConfig()
	cfg.Predicate = pred
	cfg.Migration = MigrationConfig{
		Enabled:  true,
		Selector: core.SAFitSelector(core.DefaultSAConfig()),
		Policy: core.MonitorPolicy{
			Theta:     1.2,
			Cooldown:  25 * time.Millisecond,
			MinStored: 16,
		},
	}
	_, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, pred), got)
}

func TestMultipleSources(t *testing.T) {
	all := makeWorkload(3000, 30, 0, 7)
	var rT, sT []stream.Tuple
	for _, tp := range all {
		if tp.Side == stream.R {
			rT = append(rT, tp)
		} else {
			sT = append(sT, tp)
		}
	}
	col := newPairCollector()
	cfg := baseConfig()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(rT), sliceSource(sT)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	assertExactlyOnce(t, referenceJoin(all, nil), col.snapshot())
}

func TestCountOnlyModeMatchesPairCount(t *testing.T) {
	tuples := makeWorkload(4000, 40, 0.2, 8)
	want := referenceJoin(tuples, nil)

	cfg := baseConfig()
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	if got := sys.Metrics().Results.Count(); got != int64(len(want)) {
		t.Errorf("counted %d pairs, reference has %d", got, len(want))
	}
}

func TestLoadImbalanceRecorded(t *testing.T) {
	// Count-only mode: we only need the monitors' LI series, not pairs.
	tuples := makeWorkload(8000, 30, 0.7, 9)
	cfg := baseConfig()
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	// Give the monitors a few stats intervals to observe the loads.
	time.Sleep(100 * time.Millisecond)
	sys.Stop()
	met := sys.Metrics()
	if len(met.LISeries(stream.R)) == 0 && len(met.LISeries(stream.S)) == 0 {
		t.Error("no LI observations recorded by the monitors")
	}
	if met.Latency.Count() == 0 {
		t.Error("no latency samples recorded")
	}
}

func TestStoredGaugesTrackWorkload(t *testing.T) {
	tuples := makeWorkload(2000, 20, 0, 11)
	cfg := baseConfig()
	sys, _ := runFinite(t, cfg, tuples)
	met := sys.Metrics()
	// 1000 R tuples stored, 1000 S tuples stored (full history).
	if met.StoredR.Value() != 1000 || met.StoredS.Value() != 1000 {
		t.Errorf("stored gauges R=%d S=%d, want 1000/1000",
			met.StoredR.Value(), met.StoredS.Value())
	}
}

func TestWindowedJoinExpiresState(t *testing.T) {
	// Event times are wall-clock; with a tiny window and a run that takes
	// longer than the window, stored counts must shrink via expiry.
	n := 4000
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		side := stream.R
		seq := uint64(i / 2)
		if i%2 == 1 {
			side = stream.S
		}
		tuples[i] = stream.Tuple{Side: side, Key: stream.Key(i % 10), Seq: seq}
		// EventTime zero: the shuffler stamps arrival time.
	}
	cfg := baseConfig()
	cfg.Window = 50 * time.Millisecond
	cfg.SubWindows = 4
	cfg.StatsInterval = 10 * time.Millisecond

	slow := sliceSource(tuples)
	throttled := func() (stream.Tuple, bool) {
		time.Sleep(50 * time.Microsecond) // stretch the run past the window
		return slow()
	}
	cfg.Sources = []TupleSource{throttled}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	// Let expiry ticks run past the window before stopping.
	time.Sleep(150 * time.Millisecond)
	sys.Stop()
	met := sys.Metrics()
	if met.StoredR.Value() == int64(n/2) {
		t.Errorf("windowed store never expired: %d tuples resident", met.StoredR.Value())
	}
}

func TestConfigValidation(t *testing.T) {
	src := sliceSource(nil)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no joiners", func(c *Config) { c.JoinersPerSide = 0 }},
		{"no sources", func(c *Config) { c.Sources = nil }},
		{"nil source", func(c *Config) { c.Sources = []TupleSource{nil} }},
		{"emit without callback", func(c *Config) { c.EmitResults = true; c.OnResult = nil }},
		{"migration without hash", func(c *Config) {
			c.Strategy = StrategyRandom
			c.Migration.Enabled = true
		}},
		{"negative window", func(c *Config) { c.Window = -time.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{JoinersPerSide: 2, Sources: []TupleSource{src}}
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	cfg := Config{JoinersPerSide: 2, Sources: []TupleSource{sliceSource(nil)}}
	cfg.Migration.Enabled = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Dispatchers == 0 || cfg.Shufflers == 0 || cfg.StatsInterval == 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	if cfg.Migration.Selector == nil {
		t.Error("default selector not set")
	}
	if cfg.Migration.StuckTimeout == 0 {
		t.Error("default stuck timeout not set")
	}
}

func TestSubgroupSizeClamped(t *testing.T) {
	cfg := Config{JoinersPerSide: 2, SubgroupSize: 50, Sources: []TupleSource{sliceSource(nil)}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.SubgroupSize != 2 {
		t.Errorf("SubgroupSize = %d, want clamped to 2", cfg.SubgroupSize)
	}
}

func TestOpString(t *testing.T) {
	if OpStore.String() != "store" || OpProbe.String() != "probe" {
		t.Error("Op strings wrong")
	}
}

func TestJoinerCompNames(t *testing.T) {
	if joinerComp(stream.R) != CompJoinerR || joinerComp(stream.S) != CompJoinerS {
		t.Error("joinerComp mapping wrong")
	}
	if tupleStream(stream.R) != streamToR || loadStream(stream.S) != streamLoadS {
		t.Error("stream mapping wrong")
	}
	if cmdStream(stream.R) != streamCmdR || migStream(stream.S) != streamMigS {
		t.Error("ctrl stream mapping wrong")
	}
	if doneStream(stream.R) != streamDoneR {
		t.Error("done stream mapping wrong")
	}
}

func TestSystemMetricsSeries(t *testing.T) {
	m := NewSystemMetrics(3)
	if m.Instances() != 3 {
		t.Fatalf("Instances = %d", m.Instances())
	}
	m.RecordImbalance(stream.R, 2.5)
	m.RecordLoads(stream.R, []core.InstanceLoad{
		{Instance: 0, Stored: 10, Probe: 2},
		{Instance: 99, Stored: 1, Probe: 1}, // out of range: ignored
	})
	if pts := m.LISeries(stream.R); len(pts) != 1 || pts[0].Value != 2.5 {
		t.Errorf("LI series = %v", pts)
	}
	if pts := m.LoadSeries(stream.R, 0); len(pts) != 1 || pts[0].Value != 20 {
		t.Errorf("load series = %v", pts)
	}
	if m.LoadSeries(stream.R, 99) != nil {
		t.Error("out-of-range load series should be nil")
	}
	if m.LoadSeries(stream.S, 0) == nil {
		t.Error("S side series missing")
	}
}

func TestWindowedMigrationExactlyOnce(t *testing.T) {
	// A window so large nothing expires during the run: the windowed code
	// path (sub-window bookkeeping, expiry ticks, migration of windowed
	// stores) must still produce the exact reference join.
	tuples := makeWorkload(8000, 40, 0.5, 21)
	pred := func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 }
	cfg := baseConfig()
	cfg.Window = time.Hour
	cfg.SubWindows = 8
	cfg.Predicate = pred
	cfg.Migration = MigrationConfig{
		Enabled: true,
		Policy: core.MonitorPolicy{
			Theta:     1.2,
			Cooldown:  25 * time.Millisecond,
			MinStored: 16,
		},
	}
	sys, got := runFinite(t, cfg, tuples)
	assertExactlyOnce(t, referenceJoin(tuples, pred), got)
	if sys.Metrics().Migrations.Value() == 0 {
		t.Error("expected migrations in the windowed run")
	}
}

func TestChaosPanicsDoNotWedge(t *testing.T) {
	// A predicate that panics on a sliver of pairs: the engine must
	// isolate the panics (dropping the poisoned probe), keep the system
	// live through migrations, and still settle.
	tuples := makeWorkload(6000, 30, 0.5, 22)
	cfg := baseConfig()
	cfg.Predicate = func(r, s stream.Tuple) bool {
		if r.Seq%997 == 0 && s.Seq%13 == 0 {
			panic("injected predicate failure")
		}
		return (r.Seq+s.Seq)%8 == 0
	}
	cfg.Migration = MigrationConfig{
		Enabled: true,
		Policy: core.MonitorPolicy{
			Theta:     1.2,
			Cooldown:  25 * time.Millisecond,
			MinStored: 16,
		},
	}
	col := newPairCollector()
	cfg.EmitResults = true
	cfg.OnResult = col.add
	cfg.Sources = []TupleSource{sliceSource(tuples)}
	sys, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.WaitComplete(30 * time.Second); err != nil {
		sys.Stop()
		t.Fatalf("system wedged under injected panics: %v", err)
	}
	sys.Stop()

	want := referenceJoin(tuples, func(r, s stream.Tuple) bool { return (r.Seq+s.Seq)%8 == 0 })
	got := col.snapshot()
	// Panics drop the poisoned probes' remaining pairs, so the output is a
	// subset of the reference — but no duplicates and no spurious pairs.
	missing, dup, extra := 0, 0, 0
	for id := range want {
		switch got[id] {
		case 0:
			missing++
		case 1:
		default:
			dup++
		}
	}
	for id := range got {
		if !want[id] {
			extra++
		}
	}
	if dup != 0 || extra != 0 {
		t.Fatalf("chaos run produced %d duplicates, %d spurious pairs", dup, extra)
	}
	if missing > len(want)/10 {
		t.Errorf("chaos run lost %d/%d pairs, more than the injected failures explain", missing, len(want))
	}
	// Some panics must actually have fired for the test to mean anything.
	var panics int64
	for _, comp := range []string{CompJoinerR, CompJoinerS} {
		for _, st := range sys.Cluster().Stats(comp) {
			panics += st.Panics
		}
	}
	if panics == 0 {
		t.Skip("no panics triggered; workload too small to exercise chaos path")
	}
}
