package biclique

import (
	"sync/atomic"
	"testing"

	"fastjoin/internal/obs"
)

// traceSpanCheck validates a settled run's trace: every span complete and
// correctly ordered per obs.Span.Err, terminal counts matching the
// migration counters, and no events outside a span. It returns the
// (commit, rollback) span counts so sweeps can assert coverage.
func traceSpanCheck(t *testing.T, sys *System, tr *obs.Tracer) (int64, int64) {
	t.Helper()
	if tr.Evicted() != 0 {
		t.Fatalf("trace ring evicted %d events; size the test tracer larger", tr.Evicted())
	}
	events := tr.Snapshot()
	for i, ev := range events {
		if ev.Span == 0 {
			t.Errorf("event %d (%v) has no span", i, ev.Kind)
		}
	}
	spans := obs.Spans(events)
	var commits, rollbacks, noops int64
	for _, s := range spans {
		if err := s.Err(); err != nil {
			t.Errorf("incomplete or mis-ordered span: %v\n  events: %v", err, kindsOf(s))
			continue
		}
		switch s.Terminal() {
		case obs.KindCommit:
			commits++
		case obs.KindRollback:
			rollbacks++
		case obs.KindNoop:
			noops++
		}
	}
	m := sys.Metrics()
	if got := m.Migrations.Value(); commits != got {
		t.Errorf("commit spans = %d, Migrations counter = %d", commits, got)
	}
	if got := m.MigrationAborts.Value(); rollbacks != got {
		t.Errorf("rollback spans = %d, MigrationAborts counter = %d", rollbacks, got)
	}
	// Every completed migration in the log must have a matching span; the
	// log records commits and rollbacks, not noop attempts.
	if logged := int64(len(m.MigrationLog())); commits+rollbacks != logged {
		t.Errorf("terminal spans (%d commits + %d rollbacks) != migration log entries (%d)",
			commits, rollbacks, logged)
	}
	t.Logf("trace: %d events, %d spans (%d commit, %d rollback, %d noop)",
		len(events), len(spans), commits, rollbacks, noops)
	return commits, rollbacks
}

func kindsOf(s obs.Span) []obs.Kind {
	out := make([]obs.Kind, len(s.Events))
	for i, ev := range s.Events {
		out[i] = ev.Kind
	}
	return out
}

// TestTraceSpansCleanRun checks that a fault-free skewed run produces one
// complete span per migration and that migrations actually happen (the
// trace has something to say).
func TestTraceSpansCleanRun(t *testing.T) {
	tr := obs.NewTracer(1 << 16)
	sys := runChaos(t, "none", 3, 6000, func(c *Config) { c.Tracer = tr })
	if sys.Metrics().Migrations.Value() == 0 {
		t.Fatal("run produced no migrations; trace test exercised nothing")
	}
	traceSpanCheck(t, sys, tr)
}

// TestTraceSpansUnderChaos seeds fault profiles that force retransmits,
// duplicate markers, and aborted handshakes, then asserts every migration
// attempt still yields a complete, correctly ordered span — the tracer's
// dedup (first route application, distinct markers) must hold under
// exactly the message weather that creates duplicates.
func TestTraceSpansUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos trace sweep is not short")
	}
	var commits, rollbacks atomic.Int64
	t.Run("sweep", func(t *testing.T) {
		for _, profile := range []string{"droponly", "duponly", "mixed", "abortstorm"} {
			profile := profile
			t.Run(profile, func(t *testing.T) {
				t.Parallel()
				for seed := uint64(1); seed <= 2; seed++ {
					tr := obs.NewTracer(1 << 16)
					sys := runChaos(t, profile, seed, 8000, func(c *Config) { c.Tracer = tr })
					c, r := traceSpanCheck(t, sys, tr)
					commits.Add(c)
					rollbacks.Add(r)
				}
			})
		}
	})
	// The sweep must exercise both terminal paths, or the span validation
	// proved nothing: abortstorm reliably forces rollbacks, the milder
	// profiles commit.
	if commits.Load() == 0 {
		t.Error("sweep produced no committed migration spans")
	}
	if rollbacks.Load() == 0 {
		t.Error("sweep produced no rollback spans")
	}
}
