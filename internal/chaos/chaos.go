// Package chaos is a deterministic, seedable fault-injection layer for
// FastJoin's runtime. It decides — per message, per lane — whether a
// delivery is dropped, duplicated, or delayed, whether a task stalls
// before processing, and whether a transport connection is reset.
//
// Determinism is the design center: every decision is drawn from a
// per-lane *rand.Rand derived from a single seed, and wall-clock time is
// never consulted in a decision path. Because each lane (one producer
// task × one stream, or one connection) has its own stream of random
// numbers, a run replays the same fault sequence per lane regardless of
// how the scheduler interleaves goroutines. A failing run is reproduced
// by re-running with the same seed and profile.
//
// Faults are scoped by message Class. The exactly-once argument for the
// marker-gated migration protocol (DESIGN.md, "Fault model &
// degradation") only survives faults on control-plane classes: data-lane
// tuples and migration state transfers must be delivered reliably, so
// the shipped profiles keep ClassData and ClassMigData clean and attack
// markers, routing updates, commands, and load reports instead.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Class partitions messages by their role in the join/migration
// protocols, so profiles can attack classes whose loss the system must
// tolerate while leaving classes whose loss would (by design) lose data.
type Class uint8

const (
	// ClassOther is anything not otherwise classified.
	ClassOther Class = iota
	// ClassData is a data-lane join tuple. Dropping one loses join pairs,
	// duplicating one fabricates pairs, and reordering breaks the per-key
	// FIFO that the exactly-once proof rests on — profiles must keep this
	// class clean.
	ClassData
	// ClassMarker is a forward migration marker (the handshake the abort
	// timeout guards). Safe to drop, delay, or duplicate.
	ClassMarker
	// ClassMarkerRevert is a revert marker sent during migration abort.
	// Kept distinct from ClassMarker so an "abort storm" profile can kill
	// the forward handshake while letting the rollback complete.
	ClassMarkerRevert
	// ClassRouteUpdate is a routing-table broadcast. Idempotent and
	// re-broadcast until acknowledged, so safe to drop/delay/duplicate.
	ClassRouteUpdate
	// ClassCommand is a monitor migration command. Safe to fault: a lost
	// command is a lost optimization, never lost data.
	ClassCommand
	// ClassReport is a joiner load report. Safe to fault.
	ClassReport
	// ClassMigData is migration state transfer (batch/flush/abort/return).
	// Must stay FIFO and lossless: a dropped batch is lost tuples, a
	// delayed batch can be overtaken by its flush. Duplicates are
	// tolerated (epoch dedup), but the shipped profiles leave the class
	// clean for clarity.
	ClassMigData

	numClasses = int(ClassMigData) + 1
)

var classNames = [...]string{
	"other", "data", "marker", "marker-revert", "route-update",
	"command", "report", "mig-data",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "invalid"
}

// Op is the action taken on one delivery.
type Op uint8

const (
	// OpNone delivers normally.
	OpNone Op = iota
	// OpDrop discards the message.
	OpDrop
	// OpDup delivers the message twice.
	OpDup
	// OpDelay holds the message for Decision.Delay before delivery;
	// later messages on the same lane overtake it (delay ⇒ reorder).
	OpDelay
)

func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpDrop:
		return "drop"
	case OpDup:
		return "dup"
	case OpDelay:
		return "delay"
	default:
		return "invalid"
	}
}

// Decision is the injector's verdict on one delivery.
type Decision struct {
	Op    Op
	Delay time.Duration
}

// ClassPolicy gives the per-delivery fault probabilities for one class.
// Probabilities are evaluated in order drop, dup, delay; at most one
// fires per delivery.
type ClassPolicy struct {
	Drop  float64
	Dup   float64
	Delay float64
	// DelayMin/DelayMax bound the uniformly drawn hold time when a delay
	// fires (defaults 1ms..10ms if both zero).
	DelayMin time.Duration
	DelayMax time.Duration
}

// Rule is a scripted fault: a deterministic override evaluated before
// the probabilistic policy. It applies to occurrences [First, First+Count)
// of the class, counted across all lanes in arrival order; Count <= 0
// means "all occurrences from First on".
type Rule struct {
	Class Class
	Op    Op
	Delay time.Duration
	First int
	Count int
}

// Profile bundles the fault schedule: scripted rules, per-class
// probabilities, task stalls, and connection resets.
type Profile struct {
	// Name identifies the profile in flags, logs, and replay
	// instructions.
	Name string
	// Policies holds the probabilistic schedule per class.
	Policies [numClasses]ClassPolicy
	// Rules are scripted overrides, checked before Policies.
	Rules []Rule
	// StallProb is the chance a task stalls before processing a message;
	// the stall duration is uniform in [StallMin, StallMax].
	StallProb float64
	StallMin  time.Duration
	StallMax  time.Duration
	// ResetProb is the chance a wrapped transport connection is reset on
	// a Send (exercising the reconnect-with-resend path).
	ResetProb float64
}

// Counts is a snapshot of how many faults an injector has injected.
type Counts struct {
	Dropped    int64 `json:"dropped"`
	Duplicated int64 `json:"duplicated"`
	Delayed    int64 `json:"delayed"`
	Stalled    int64 `json:"stalled"`
	Resets     int64 `json:"resets"`
}

// Injector draws fault decisions from a profile. One injector serves a
// whole system run; it is safe for concurrent use. The zero Injector is
// not usable — construct with NewInjector.
type Injector struct {
	profile Profile
	seed    int64

	mu    sync.Mutex
	lanes map[string]*rand.Rand
	seen  [numClasses]int

	dropped    atomic.Int64
	duplicated atomic.Int64
	delayed    atomic.Int64
	stalled    atomic.Int64
	resets     atomic.Int64
}

// NewInjector builds an injector for profile with the given seed. The
// same (profile, seed) pair yields the same per-lane decision sequence.
func NewInjector(profile Profile, seed int64) *Injector {
	return &Injector{
		profile: profile,
		seed:    seed,
		lanes:   make(map[string]*rand.Rand),
	}
}

// Profile returns the profile the injector was built with. The profile
// is immutable after NewInjector, so reads need no lock.
//
//lint:allow lockguard profile is written once in NewInjector and never mutated
func (in *Injector) Profile() Profile { return in.profile }

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// laneRand returns the dedicated rand stream for a lane, creating it
// deterministically from the seed on first use. Callers hold in.mu.
func (in *Injector) laneRand(lane string) *rand.Rand {
	if r, ok := in.lanes[lane]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(lane))
	r := rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
	in.lanes[lane] = r
	return r
}

// uniformDur draws a duration uniformly from [lo, hi] with safe
// defaults. Caller holds in.mu.
func uniformDur(r *rand.Rand, lo, hi time.Duration) time.Duration {
	if lo <= 0 && hi <= 0 {
		lo, hi = time.Millisecond, 10*time.Millisecond
	}
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)+1))
}

// Decide returns the fate of one delivery of class cls on the given
// lane. Lanes partition the decision space — typically
// "component[task]/stream" for engine messages or the connection name
// for transport — so per-lane sequences replay independent of scheduler
// interleaving.
func (in *Injector) Decide(lane string, cls Class) Decision {
	in.mu.Lock()
	n := in.seen[cls]
	in.seen[cls]++
	var d Decision
	if r, ok := in.matchRule(cls, n); ok {
		d = Decision{Op: r.Op, Delay: r.Delay}
		if d.Op == OpDelay && d.Delay <= 0 {
			d.Delay = uniformDur(in.laneRand(lane), 0, 0)
		}
	} else {
		p := in.profile.Policies[cls]
		if p.Drop > 0 || p.Dup > 0 || p.Delay > 0 {
			r := in.laneRand(lane)
			switch f := r.Float64(); {
			case f < p.Drop:
				d = Decision{Op: OpDrop}
			case f < p.Drop+p.Dup:
				d = Decision{Op: OpDup}
			case f < p.Drop+p.Dup+p.Delay:
				d = Decision{Op: OpDelay, Delay: uniformDur(r, p.DelayMin, p.DelayMax)}
			}
		}
	}
	in.mu.Unlock()

	switch d.Op {
	case OpDrop:
		in.dropped.Add(1)
	case OpDup:
		in.duplicated.Add(1)
	case OpDelay:
		in.delayed.Add(1)
	}
	return d
}

// matchRule finds the scripted rule covering occurrence n of cls, if
// any. Caller holds in.mu.
func (in *Injector) matchRule(cls Class, n int) (Rule, bool) {
	//lint:allow lockguard profile is immutable after NewInjector (and the caller holds in.mu)
	for _, r := range in.profile.Rules {
		if r.Class != cls || n < r.First {
			continue
		}
		if r.Count > 0 && n >= r.First+r.Count {
			continue
		}
		return r, true
	}
	return Rule{}, false
}

// StallFor reports how long the task owning lane should stall before
// processing its next message (zero = no stall).
func (in *Injector) StallFor(lane string) time.Duration {
	//lint:allow lockguard profile is immutable after NewInjector
	if in.profile.StallProb <= 0 {
		return 0
	}
	in.mu.Lock()
	r := in.laneRand(lane)
	var d time.Duration
	if r.Float64() < in.profile.StallProb {
		d = uniformDur(r, in.profile.StallMin, in.profile.StallMax)
	}
	in.mu.Unlock()
	if d > 0 {
		in.stalled.Add(1)
	}
	return d
}

// ResetConn reports whether the connection owning lane should be reset
// on this send.
func (in *Injector) ResetConn(lane string) bool {
	//lint:allow lockguard profile is immutable after NewInjector
	if in.profile.ResetProb <= 0 {
		return false
	}
	in.mu.Lock()
	hit := in.laneRand(lane).Float64() < in.profile.ResetProb
	in.mu.Unlock()
	if hit {
		in.resets.Add(1)
	}
	return hit
}

// Counts returns a snapshot of injected-fault totals.
func (in *Injector) Counts() Counts {
	return Counts{
		Dropped:    in.dropped.Load(),
		Duplicated: in.duplicated.Load(),
		Delayed:    in.delayed.Load(),
		Stalled:    in.stalled.Load(),
		Resets:     in.resets.Load(),
	}
}
