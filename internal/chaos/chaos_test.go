package chaos

import (
	"sync"
	"testing"
	"time"

	"fastjoin/internal/transport"
)

// decideSeq collects n decisions for one lane/class.
func decideSeq(in *Injector, lane string, cls Class, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = in.Decide(lane, cls)
	}
	return out
}

func TestDecideDeterministicPerSeed(t *testing.T) {
	p, err := Lookup("mixed")
	if err != nil {
		t.Fatal(err)
	}
	a := decideSeq(NewInjector(p, 42), "j[0]/markers", ClassMarker, 200)
	b := decideSeq(NewInjector(p, 42), "j[0]/markers", ClassMarker, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical (profile, seed): %+v vs %+v", i, a[i], b[i])
		}
	}
	c := decideSeq(NewInjector(p, 43), "j[0]/markers", ClassMarker, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("200 decisions identical across different seeds; seed is not feeding the rand")
	}
}

func TestDecidePerLaneIndependence(t *testing.T) {
	// A lane's decision stream must not shift when another lane's traffic
	// is interleaved differently — that is what makes replay robust to
	// goroutine scheduling.
	p, err := Lookup("mixed")
	if err != nil {
		t.Fatal(err)
	}
	solo := decideSeq(NewInjector(p, 7), "laneA", ClassMarker, 100)

	in := NewInjector(p, 7)
	interleaved := make([]Decision, 0, 100)
	for i := 0; i < 100; i++ {
		in.Decide("laneB", ClassReport)
		interleaved = append(interleaved, in.Decide("laneA", ClassMarker))
		in.Decide("laneC", ClassRouteUpdate)
	}
	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("laneA decision %d shifted under interleaving: %+v vs %+v", i, solo[i], interleaved[i])
		}
	}
}

func TestDecideConcurrentSafety(t *testing.T) {
	p, err := Lookup("mixed")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lane := string(rune('a' + g))
			for i := 0; i < 500; i++ {
				in.Decide(lane, ClassMarker)
				in.StallFor(lane)
				in.ResetConn(lane)
			}
		}(g)
	}
	wg.Wait()
}

func TestScriptedRuleWindow(t *testing.T) {
	p := Profile{
		Name:  "scripted",
		Rules: []Rule{{Class: ClassMarker, Op: OpDrop, First: 2, Count: 3}},
	}
	in := NewInjector(p, 0)
	var got []Op
	for i := 0; i < 8; i++ {
		got = append(got, in.Decide("x", ClassMarker).Op)
	}
	want := []Op{OpNone, OpNone, OpDrop, OpDrop, OpDrop, OpNone, OpNone, OpNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: got %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	// Unscripted classes are untouched.
	if d := in.Decide("x", ClassRouteUpdate); d.Op != OpNone {
		t.Errorf("route-update hit marker rule: %v", d)
	}
}

func TestScriptedRuleUnbounded(t *testing.T) {
	p := Profile{Rules: []Rule{{Class: ClassMarker, Op: OpDrop}}}
	in := NewInjector(p, 0)
	for i := 0; i < 50; i++ {
		if d := in.Decide("x", ClassMarker); d.Op != OpDrop {
			t.Fatalf("occurrence %d not dropped under unbounded rule: %v", i, d)
		}
	}
}

func TestDataClassesCleanInBuiltins(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cls := range []Class{ClassOther, ClassData, ClassMigData} {
			pol := p.Policies[cls]
			if pol.Drop != 0 || pol.Dup != 0 || pol.Delay != 0 {
				t.Errorf("profile %q faults %v: %+v (breaks exactly-once scoping)", name, cls, pol)
			}
			for _, r := range p.Rules {
				if r.Class == cls {
					t.Errorf("profile %q scripts a rule against %v", name, cls)
				}
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("no-such-profile"); err == nil {
		t.Error("unknown profile did not error")
	}
	p, err := Lookup("")
	if err != nil || p.Name != "none" {
		t.Errorf("empty name: profile %+v, err %v; want the none profile", p, err)
	}
}

func TestCounts(t *testing.T) {
	p := Profile{Rules: []Rule{
		{Class: ClassMarker, Op: OpDrop, First: 0, Count: 2},
		{Class: ClassMarker, Op: OpDup, First: 2, Count: 1},
		{Class: ClassMarker, Op: OpDelay, Delay: time.Microsecond, First: 3, Count: 1},
	}}
	in := NewInjector(p, 0)
	for i := 0; i < 4; i++ {
		in.Decide("x", ClassMarker)
	}
	got := in.Counts()
	want := Counts{Dropped: 2, Duplicated: 1, Delayed: 1}
	if got != want {
		t.Errorf("counts = %+v, want %+v", got, want)
	}
}

func TestWrapConnDropAndDup(t *testing.T) {
	a, b := transport.Pipe(16)
	defer b.Close()
	in := NewInjector(Profile{Rules: []Rule{
		{Class: ClassOther, Op: OpDrop, First: 0, Count: 1},
		{Class: ClassOther, Op: OpDup, First: 1, Count: 1},
	}}, 0)
	w := WrapConn(a, in, "conn", nil)
	defer w.Close()

	if err := w.Send(transport.Message{Stream: "dropped"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(transport.Message{Stream: "duped"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(transport.Message{Stream: "plain"}); err != nil {
		t.Fatal(err)
	}
	var streams []string
	for i := 0; i < 3; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, m.Stream)
	}
	want := []string{"duped", "duped", "plain"}
	for i := range want {
		if streams[i] != want[i] {
			t.Fatalf("received %v, want %v", streams, want)
		}
	}
}

func TestWrapConnReset(t *testing.T) {
	a, b := transport.Pipe(4)
	defer b.Close()
	in := NewInjector(Profile{ResetProb: 1}, 0)
	w := WrapConn(a, in, "conn", nil)
	if err := w.Send(transport.Message{}); err != ErrInjectedReset {
		t.Fatalf("Send on always-reset conn: %v, want ErrInjectedReset", err)
	}
	// The underlying conn really is closed — the peer path is dead.
	if err := a.Send(transport.Message{}); err == nil {
		t.Error("underlying conn still writable after injected reset")
	}
	if in.Counts().Resets != 1 {
		t.Errorf("resets = %d, want 1", in.Counts().Resets)
	}
}

func TestWrapConnNilInjectorPassthrough(t *testing.T) {
	a, _ := transport.Pipe(1)
	if got := WrapConn(a, nil, "x", nil); got != a {
		t.Error("nil injector should return the inner conn unchanged")
	}
}
