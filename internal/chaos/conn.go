package chaos

import (
	"errors"
	"time"

	"fastjoin/internal/transport"
)

// ErrInjectedReset is the error a chaos-wrapped connection returns when
// the injector resets it: the caller sees the same failure surface as a
// peer crash and must run its reconnect path.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// ClassifyMsg maps a transport message to its fault class. Nil means
// "everything is ClassOther".
type ClassifyMsg func(m transport.Message) Class

// faultConn wraps a transport.Conn, running every Send through the
// injector. Delays are applied inline (pure added latency — transport
// framing forbids reorder within a connection), drops return success
// without transmitting, and resets close the underlying connection so
// the caller exercises its retry path.
type faultConn struct {
	inner    transport.Conn
	in       *Injector
	lane     string
	classify ClassifyMsg
}

// WrapConn returns a Conn that injects faults on Send according to the
// injector's profile. lane names this connection's decision stream;
// classify may be nil.
func WrapConn(inner transport.Conn, in *Injector, lane string, classify ClassifyMsg) transport.Conn {
	if in == nil {
		return inner
	}
	return &faultConn{inner: inner, in: in, lane: lane, classify: classify}
}

func (c *faultConn) Send(m transport.Message) error {
	if c.in.ResetConn(c.lane) {
		_ = c.inner.Close()
		return ErrInjectedReset
	}
	cls := ClassOther
	if c.classify != nil {
		cls = c.classify(m)
	}
	switch d := c.in.Decide(c.lane, cls); d.Op {
	case OpDrop:
		return nil
	case OpDup:
		if err := c.inner.Send(m); err != nil {
			return err
		}
	case OpDelay:
		time.Sleep(d.Delay)
	}
	return c.inner.Send(m)
}

func (c *faultConn) Recv() (transport.Message, error) { return c.inner.Recv() }
func (c *faultConn) Close() error                     { return c.inner.Close() }
