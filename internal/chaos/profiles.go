package chaos

import (
	"fmt"
	"sort"
	"time"
)

// controlClasses are the classes the shipped profiles attack: every
// class whose loss, delay, or duplication the protocol must tolerate.
// ClassData and ClassMigData are deliberately absent — see the class
// docs.
var controlClasses = []Class{
	ClassMarker, ClassMarkerRevert, ClassRouteUpdate, ClassCommand, ClassReport,
}

func uniformPolicy(classes []Class, p ClassPolicy) [numClasses]ClassPolicy {
	var out [numClasses]ClassPolicy
	for _, c := range classes {
		out[c] = p
	}
	return out
}

// builtins returns the named profile set. Built fresh per call so
// callers may mutate their copy.
func builtins() map[string]Profile {
	return map[string]Profile{
		"none": {Name: "none"},
		"droponly": {
			Name:     "droponly",
			Policies: uniformPolicy(controlClasses, ClassPolicy{Drop: 0.25}),
		},
		"delayonly": {
			Name: "delayonly",
			Policies: uniformPolicy(controlClasses, ClassPolicy{
				Delay: 0.35, DelayMin: time.Millisecond, DelayMax: 20 * time.Millisecond,
			}),
		},
		"duponly": {
			Name:     "duponly",
			Policies: uniformPolicy(controlClasses, ClassPolicy{Dup: 0.35}),
		},
		"mixed": {
			Name: "mixed",
			Policies: uniformPolicy(controlClasses, ClassPolicy{
				Drop: 0.15, Dup: 0.10,
				Delay: 0.15, DelayMin: time.Millisecond, DelayMax: 15 * time.Millisecond,
			}),
			StallProb: 0.002,
			StallMin:  time.Millisecond,
			StallMax:  10 * time.Millisecond,
		},
		// abortstorm kills the forward marker handshake outright, so every
		// migration attempt hits its abort timeout and must roll back. The
		// revert path is left un-faulted so the rollback itself completes.
		"abortstorm": {
			Name:  "abortstorm",
			Rules: []Rule{{Class: ClassMarker, Op: OpDrop}},
			Policies: uniformPolicy(
				[]Class{ClassRouteUpdate, ClassReport},
				ClassPolicy{Delay: 0.2, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond},
			),
		},
	}
}

// Lookup resolves a profile by name. The empty name resolves to "none".
func Lookup(name string) (Profile, error) {
	if name == "" {
		name = "none"
	}
	p, ok := builtins()[name]
	if !ok {
		return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	m := builtins()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
