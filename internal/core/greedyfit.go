package core

import (
	"sort"

	"fastjoin/internal/stream"
)

// GreedyFit implements Algorithm 1 of the paper: select the set of keys to
// migrate from the heaviest instance to the lightest one by greedily taking
// keys in descending order of their migration key factor F_k / |R_ik|
// (Definition 2), subject to two conditions per key:
//
//   - Gap > F_k — the remaining load gap must strictly exceed the key's
//     benefit, which keeps ΔL = L_i - L_j - ΣF_k > 0 (Eq. 9) so the target
//     never ends up heavier than the source;
//   - F_k >= θ_gap — keys with negligible benefit are not worth the pause
//     and transfer cost.
//
// The returned keys preserve the factor ordering. Complexity is
// O(K log K) time and O(K) space, as analyzed in §IV-A.
func GreedyFit(in SelectInput) []stream.Key {
	gap := in.Gap()
	if gap <= 0 || len(in.Keys) == 0 {
		return nil
	}
	type scored struct {
		key     stream.Key
		benefit int64
		factor  float64
	}
	scoredKeys := make([]scored, 0, len(in.Keys))
	for _, ks := range in.Keys {
		f := Benefit(in.Source, in.Target, ks)
		// A key with no stored tuples moves for free; give it the largest
		// factor rather than dividing by zero (the paper assumes every key
		// in the store has at least one tuple).
		denom := ks.Stored
		if denom < 1 {
			denom = 1
		}
		scoredKeys = append(scoredKeys, scored{
			key:     ks.Key,
			benefit: f,
			factor:  float64(f) / float64(denom),
		})
	}
	sort.Slice(scoredKeys, func(a, b int) bool {
		if scoredKeys[a].factor != scoredKeys[b].factor {
			return scoredKeys[a].factor > scoredKeys[b].factor
		}
		// Deterministic tie-break so selections are reproducible.
		return scoredKeys[a].key < scoredKeys[b].key
	})

	var selected []stream.Key
	for _, sk := range scoredKeys {
		if gap > sk.benefit && sk.benefit >= in.MinBenefit {
			gap -= sk.benefit
			selected = append(selected, sk.key)
		}
		if gap <= 0 {
			break
		}
	}
	return selected
}
