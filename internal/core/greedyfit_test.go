package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastjoin/internal/stream"
)

func TestGreedyFitEmptyCases(t *testing.T) {
	// No keys.
	in := SelectInput{
		Source: InstanceLoad{Stored: 100, Probe: 10},
		Target: InstanceLoad{Stored: 1, Probe: 1},
	}
	if got := GreedyFit(in); got != nil {
		t.Errorf("no keys: got %v", got)
	}
	// No gap (target as heavy as source).
	in = SelectInput{
		Source: InstanceLoad{Stored: 10, Probe: 10},
		Target: InstanceLoad{Stored: 10, Probe: 10},
		Keys:   []KeyStat{{Key: 1, Stored: 5, Probe: 5}},
	}
	if got := GreedyFit(in); got != nil {
		t.Errorf("zero gap: got %v", got)
	}
	// Inverted gap.
	in.Target = InstanceLoad{Stored: 100, Probe: 100}
	if got := GreedyFit(in); got != nil {
		t.Errorf("negative gap: got %v", got)
	}
}

func TestGreedyFitSelectsHotKey(t *testing.T) {
	// One dominant key and several cold ones: the hot key has the highest
	// benefit but also high cost; the factor ordering should still migrate
	// enough keys to close the gap without overshooting.
	in := SelectInput{
		Source: InstanceLoad{Instance: 0, Stored: 110, Probe: 110},
		Target: InstanceLoad{Instance: 1, Stored: 10, Probe: 10},
		Keys: []KeyStat{
			{Key: 1, Stored: 100, Probe: 100},
			{Key: 2, Stored: 5, Probe: 5},
			{Key: 3, Stored: 5, Probe: 5},
		},
	}
	got := GreedyFit(in)
	if len(got) == 0 {
		t.Fatal("expected a non-empty selection")
	}
	// Feasibility: ΔL > 0 (Eq. 9).
	if TotalBenefit(in, got) >= in.Gap() {
		t.Errorf("selection benefit %d >= gap %d", TotalBenefit(in, got), in.Gap())
	}
}

func TestGreedyFitRespectsMinBenefit(t *testing.T) {
	in := SelectInput{
		Source: InstanceLoad{Stored: 1000, Probe: 1000},
		Target: InstanceLoad{Stored: 1, Probe: 1},
		Keys: []KeyStat{
			{Key: 1, Stored: 1, Probe: 0}, // tiny benefit
		},
		MinBenefit: 1 << 40,
	}
	if got := GreedyFit(in); got != nil {
		t.Errorf("selection %v violates MinBenefit", got)
	}
}

func TestGreedyFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomSelectInput(rng, 50)
	a := GreedyFit(in)
	b := GreedyFit(in)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic selection size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic selection order at %d", i)
		}
	}
}

func TestGreedyFitOrderedByFactor(t *testing.T) {
	in := SelectInput{
		Source: InstanceLoad{Stored: 100, Probe: 100},
		Target: InstanceLoad{Stored: 0, Probe: 0},
		Keys: []KeyStat{
			{Key: 10, Stored: 50, Probe: 1}, // low factor
			{Key: 20, Stored: 1, Probe: 20}, // high factor
		},
	}
	got := GreedyFit(in)
	if len(got) == 0 || got[0] != 20 {
		t.Errorf("selection %v should start with the highest-factor key 20", got)
	}
}

// Property: GreedyFit's selection always satisfies ΔL > 0 (Eq. 9), i.e.
// the source remains at least as loaded as the target after migration.
func TestGreedyFitFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSelectInput(rng, rng.Intn(100)+1)
		keys := GreedyFit(in)
		return TotalBenefit(in, keys) < in.Gap() || (len(keys) == 0 && in.Gap() <= 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (§IV-B): migrating GreedyFit's selection strictly reduces the
// pairwise imbalance between source and target whenever the selection is
// non-empty: LI' < LI.
func TestGreedyFitReducesImbalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSelectInput(rng, rng.Intn(100)+2)
		keys := GreedyFit(in)
		if len(keys) == 0 {
			return true
		}
		before, _, _ := Imbalance([]InstanceLoad{in.Source, in.Target})
		newSrc, newDst := ApplyMigration(in.Source, in.Target, keyStatsFor(in, keys))
		after, _, _ := Imbalance([]InstanceLoad{newSrc, newDst})
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the selection never contains duplicates and only known keys.
func TestGreedyFitSelectionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSelectInput(rng, rng.Intn(60)+1)
		keys := GreedyFit(in)
		known := make(map[stream.Key]bool)
		for _, ks := range in.Keys {
			known[ks.Key] = true
		}
		seen := make(map[stream.Key]bool)
		for _, k := range keys {
			if seen[k] || !known[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyFitNeverSelectsEverything(t *testing.T) {
	// Selecting all keys would invert the imbalance (source empty, target
	// carrying everything); the Gap > F_k guard must prevent that whenever
	// the target starts non-trivially loaded.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		in := randomSelectInput(rng, 30)
		keys := GreedyFit(in)
		if len(keys) == len(in.Keys) {
			newSrc, newDst := ApplyMigration(in.Source, in.Target, keyStatsFor(in, keys))
			if newSrc.Load() < newDst.Load() {
				t.Fatalf("selection inverted the imbalance: %v -> %v", newSrc, newDst)
			}
		}
	}
}

func BenchmarkGreedyFit1000Keys(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randomSelectInput(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyFit(in)
	}
}
