// Package core implements the FastJoin paper's primary contribution as pure,
// engine-independent algorithms:
//
//   - the load quantification model of §III-B (Eqs. 1-6): the load of join
//     instance I_{R-i} is L_i = |R_i| * φ_si, and the degree of load
//     imbalance is LI = L_heaviest / L_lightest;
//   - the GreedyFit key selection algorithm of §III-C (Algorithm 1);
//   - the SAFit simulated-annealing selector of §IV-A (Algorithm 3);
//   - the monitor decision logic that triggers migrations when LI exceeds
//     the threshold Θ (§III-A, §III-D).
//
// The joiner and monitor bolts in package biclique feed these algorithms
// with live statistics; the test suite exercises them with synthetic ones.
package core

import (
	"fmt"
	"math"

	"fastjoin/internal/stream"
)

// InstanceLoad is the load statistic one join instance reports to its
// monitor: the number of stored tuples of the storing stream (|R_i|) and
// the probe pressure of the opposite stream (φ_si, measured as probe
// arrivals in the last reporting interval plus the current queue length).
type InstanceLoad struct {
	Instance int   `json:"instance"`
	Stored   int64 `json:"stored"`
	Probe    int64 `json:"probe"`
}

// Load returns L_i = |R_i| * φ_si (Eq. 1).
func (l InstanceLoad) Load() int64 { return l.Stored * l.Probe }

// String renders the statistic compactly.
func (l InstanceLoad) String() string {
	return fmt.Sprintf("I%d{|R|=%d φ=%d L=%d}", l.Instance, l.Stored, l.Probe, l.Load())
}

// KeyStat is the per-key statistic kept by a join instance: the number of
// stored tuples with the key (|R_ik|) and the probe arrivals for the key in
// the last interval (φ_sik).
type KeyStat struct {
	Key    stream.Key `json:"key"`
	Stored int64      `json:"stored"`
	Probe  int64      `json:"probe"`
}

// Imbalance computes the degree of load imbalance LI = L_max / L_min
// (Eq. 2) over a set of instance loads, returning also the indexes (into
// loads) of the heaviest and lightest instances.
//
// Edge cases follow the model's intent: with fewer than two instances, or
// all loads zero, LI is 1 (perfectly balanced). If the lightest load is
// zero but the heaviest is not, LI is +Inf (unboundedly imbalanced).
func Imbalance(loads []InstanceLoad) (li float64, heaviest, lightest int) {
	if len(loads) == 0 {
		return 1, -1, -1
	}
	heaviest, lightest = 0, 0
	for i, l := range loads {
		if l.Load() > loads[heaviest].Load() {
			heaviest = i
		}
		if l.Load() < loads[lightest].Load() {
			lightest = i
		}
	}
	hi, lo := loads[heaviest].Load(), loads[lightest].Load()
	switch {
	case hi == 0:
		return 1, heaviest, lightest
	case lo == 0:
		return math.Inf(1), heaviest, lightest
	default:
		return float64(hi) / float64(lo), heaviest, lightest
	}
}

// Benefit returns the migration benefit F_k of moving key k from the source
// instance i to the target instance j (Definition 1, Eq. 8):
//
//	F_k = (|R_i| + |R_j|) * φ_sik + (φ_si + φ_sj) * |R_ik|
//
// Equation 7 defines F_k as (L_i - L_j) - (L'_i - L'_j); the two forms are
// algebraically identical, which TestBenefitMatchesLoadDifference verifies.
func Benefit(source, target InstanceLoad, k KeyStat) int64 {
	return (source.Stored+target.Stored)*k.Probe + (source.Probe+target.Probe)*k.Stored
}

// ApplyMigration returns the post-migration loads of the source and target
// instances after moving the given keys (Eqs. 5 and 6): the source loses
// the keys' stored tuples and probe pressure, the target gains them.
func ApplyMigration(source, target InstanceLoad, keys []KeyStat) (newSource, newTarget InstanceLoad) {
	var stored, probe int64
	for _, k := range keys {
		stored += k.Stored
		probe += k.Probe
	}
	newSource = InstanceLoad{
		Instance: source.Instance,
		Stored:   source.Stored - stored,
		Probe:    source.Probe - probe,
	}
	newTarget = InstanceLoad{
		Instance: target.Instance,
		Stored:   target.Stored + stored,
		Probe:    target.Probe + probe,
	}
	return newSource, newTarget
}

// SelectInput is everything a key selection algorithm needs: the aggregate
// loads of the source (heaviest) and target (lightest) instances, the
// per-key statistics of the source, and the minimum benefit θ_gap below
// which a key is not worth migrating.
type SelectInput struct {
	Source InstanceLoad
	Target InstanceLoad
	Keys   []KeyStat
	// MinBenefit is θ_gap in Algorithm 1: keys whose migration benefit
	// falls below it are skipped (migrating them costs more in pause and
	// transfer time than the load they re-balance).
	MinBenefit int64
}

// Gap returns L_i - L_j, the knapsack capacity of the selection problem.
func (in SelectInput) Gap() int64 { return in.Source.Load() - in.Target.Load() }

// Selector is a key selection algorithm: it picks the set of keys to move
// from the source to the target. Implementations: GreedyFit, SAFit's
// Select method.
type Selector func(in SelectInput) []stream.Key

// TotalBenefit sums the migration benefit of a key set (Benefit(SK) in
// Algorithm 3).
func TotalBenefit(in SelectInput, keys []stream.Key) int64 {
	set := make(map[stream.Key]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	var sum int64
	for _, ks := range in.Keys {
		if set[ks.Key] {
			sum += Benefit(in.Source, in.Target, ks)
		}
	}
	return sum
}
