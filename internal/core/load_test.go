package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fastjoin/internal/stream"
)

func TestInstanceLoadProduct(t *testing.T) {
	l := InstanceLoad{Instance: 3, Stored: 100, Probe: 7}
	if l.Load() != 700 {
		t.Errorf("Load = %d, want 700", l.Load())
	}
	if !strings.Contains(l.String(), "I3") {
		t.Errorf("String = %q", l.String())
	}
}

func TestImbalanceBasic(t *testing.T) {
	loads := []InstanceLoad{
		{Instance: 0, Stored: 10, Probe: 10}, // 100
		{Instance: 1, Stored: 5, Probe: 10},  // 50
		{Instance: 2, Stored: 20, Probe: 10}, // 200
	}
	li, hi, lo := Imbalance(loads)
	if li != 4 {
		t.Errorf("LI = %f, want 4", li)
	}
	if hi != 2 || lo != 1 {
		t.Errorf("heaviest=%d lightest=%d, want 2/1", hi, lo)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if li, hi, lo := Imbalance(nil); li != 1 || hi != -1 || lo != -1 {
		t.Errorf("empty: li=%f hi=%d lo=%d", li, hi, lo)
	}
	// All zero loads: balanced.
	li, _, _ := Imbalance([]InstanceLoad{{Stored: 0, Probe: 5}, {Stored: 0, Probe: 9}})
	if li != 1 {
		t.Errorf("all-zero LI = %f, want 1", li)
	}
	// Zero lightest, positive heaviest: infinite imbalance.
	li, _, _ = Imbalance([]InstanceLoad{{Stored: 10, Probe: 10}, {Stored: 0, Probe: 10}})
	if !math.IsInf(li, 1) {
		t.Errorf("LI = %f, want +Inf", li)
	}
	// Single instance: balanced by definition.
	li, hi, lo := Imbalance([]InstanceLoad{{Stored: 10, Probe: 10}})
	if li != 1 || hi != 0 || lo != 0 {
		t.Errorf("single: li=%f hi=%d lo=%d", li, hi, lo)
	}
}

func TestImbalanceAlwaysAtLeastOne(t *testing.T) {
	f := func(seeds []uint16) bool {
		loads := make([]InstanceLoad, len(seeds))
		for i, s := range seeds {
			loads[i] = InstanceLoad{Instance: i, Stored: int64(s % 100), Probe: int64(s % 37)}
		}
		li, _, _ := Imbalance(loads)
		return li >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBenefitMatchesLoadDifference verifies Eq. 7 == Eq. 8: the closed-form
// benefit formula equals the directly computed difference-of-differences.
func TestBenefitMatchesLoadDifference(t *testing.T) {
	f := func(ri, rj, pi, pj, rik, pik uint16) bool {
		src := InstanceLoad{Stored: int64(ri) + int64(rik), Probe: int64(pi) + int64(pik)}
		dst := InstanceLoad{Stored: int64(rj), Probe: int64(pj)}
		k := KeyStat{Key: 1, Stored: int64(rik), Probe: int64(pik)}

		// Eq. 8 closed form.
		f8 := Benefit(src, dst, k)

		// Eq. 7: (L_i - L_j) - (L'_i - L'_j) with Eqs. 5/6 primes.
		newSrc, newDst := ApplyMigration(src, dst, []KeyStat{k})
		f7 := (src.Load() - dst.Load()) - (newSrc.Load() - newDst.Load())

		return f7 == f8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestApplyMigrationConservation(t *testing.T) {
	src := InstanceLoad{Instance: 0, Stored: 100, Probe: 50}
	dst := InstanceLoad{Instance: 1, Stored: 20, Probe: 10}
	keys := []KeyStat{
		{Key: 1, Stored: 30, Probe: 15},
		{Key: 2, Stored: 10, Probe: 5},
	}
	newSrc, newDst := ApplyMigration(src, dst, keys)
	if newSrc.Stored+newDst.Stored != src.Stored+dst.Stored {
		t.Error("stored tuples not conserved")
	}
	if newSrc.Probe+newDst.Probe != src.Probe+dst.Probe {
		t.Error("probe pressure not conserved")
	}
	if newSrc.Stored != 60 || newDst.Stored != 60 {
		t.Errorf("stored = %d/%d, want 60/60", newSrc.Stored, newDst.Stored)
	}
	if newSrc.Instance != 0 || newDst.Instance != 1 {
		t.Error("instance ids must be preserved")
	}
}

func TestSelectInputGap(t *testing.T) {
	in := SelectInput{
		Source: InstanceLoad{Stored: 10, Probe: 10}, // 100
		Target: InstanceLoad{Stored: 3, Probe: 10},  // 30
	}
	if in.Gap() != 70 {
		t.Errorf("Gap = %d, want 70", in.Gap())
	}
}

func TestTotalBenefit(t *testing.T) {
	in := SelectInput{
		Source: InstanceLoad{Stored: 10, Probe: 10},
		Target: InstanceLoad{Stored: 2, Probe: 2},
		Keys: []KeyStat{
			{Key: 1, Stored: 3, Probe: 2},
			{Key: 2, Stored: 1, Probe: 1},
		},
	}
	want := Benefit(in.Source, in.Target, in.Keys[0]) + Benefit(in.Source, in.Target, in.Keys[1])
	if got := TotalBenefit(in, []stream.Key{1, 2}); got != want {
		t.Errorf("TotalBenefit = %d, want %d", got, want)
	}
	if got := TotalBenefit(in, nil); got != 0 {
		t.Errorf("empty TotalBenefit = %d, want 0", got)
	}
	if got := TotalBenefit(in, []stream.Key{99}); got != 0 {
		t.Errorf("unknown key TotalBenefit = %d, want 0", got)
	}
}

// randomSelectInput builds a random but structurally consistent selection
// problem: the source aggregates equal the sums of its per-key stats.
func randomSelectInput(rng *rand.Rand, nKeys int) SelectInput {
	keys := make([]KeyStat, nKeys)
	var stored, probe int64
	for i := range keys {
		keys[i] = KeyStat{
			Key:    stream.Key(i),
			Stored: int64(rng.Intn(50) + 1),
			Probe:  int64(rng.Intn(20)),
		}
		stored += keys[i].Stored
		probe += keys[i].Probe
	}
	return SelectInput{
		Source: InstanceLoad{Instance: 0, Stored: stored, Probe: probe},
		Target: InstanceLoad{Instance: 1, Stored: stored / 8, Probe: probe / 8},
		Keys:   keys,
	}
}

func keyStatsFor(in SelectInput, keys []stream.Key) []KeyStat {
	set := make(map[stream.Key]bool)
	for _, k := range keys {
		set[k] = true
	}
	var out []KeyStat
	for _, ks := range in.Keys {
		if set[ks.Key] {
			out = append(out, ks)
		}
	}
	return out
}
