package core

import (
	"time"
)

// MonitorPolicy configures the load-imbalance detector of one monitor
// (there is one monitor per biclique side, §III-A).
type MonitorPolicy struct {
	// Theta is the load imbalance threshold Θ: a migration is triggered
	// when LI = L_heaviest / L_lightest exceeds it. The paper's default
	// is 2.2.
	Theta float64
	// Cooldown is the minimum interval between two migration triggers.
	// The paper notes migrations "can never take place frequently"; the
	// cooldown keeps a slow migration from being re-triggered while the
	// previous one is still settling.
	Cooldown time.Duration
	// MinStored is the minimum number of stored tuples the heaviest
	// instance must hold before migration is considered; it suppresses
	// spurious migrations during warm-up when all loads are tiny.
	MinStored int64
	// SustainTicks is how many consecutive evaluations must observe
	// LI > Theta before a migration triggers (default 3). Hysteresis
	// filters transient spikes — notably the backlog blob a migration
	// flush momentarily deposits on its target.
	SustainTicks int
	// TargetProtection is how long after a migration its target cannot be
	// selected as the next source (default 2 * Cooldown). Without it, the
	// flushed backlog makes the fresh target look like the new hot spot
	// and keys ping-pong.
	TargetProtection time.Duration
}

// DefaultMonitorPolicy returns the paper's default configuration
// (Θ = 2.2) with a conservative cooldown.
func DefaultMonitorPolicy() MonitorPolicy {
	return MonitorPolicy{Theta: 2.2, Cooldown: time.Second, MinStored: 64}
}

func (p MonitorPolicy) withDefaults() MonitorPolicy {
	if p.Theta <= 1 {
		p.Theta = 2.2
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	if p.SustainTicks <= 0 {
		p.SustainTicks = 3
	}
	if p.TargetProtection <= 0 {
		p.TargetProtection = 2 * p.Cooldown
	}
	return p
}

// Decision is a migration trigger produced by the monitor: move load from
// the heaviest instance (Source) to the lightest (Target). It carries the
// target's aggregate statistics, which the source needs to run the key
// selection algorithm locally (§III-C: "The source instance I_{R-i}
// collects the statistics of the target instance").
type Decision struct {
	Source InstanceLoad
	Target InstanceLoad
	// LI is the imbalance degree that triggered the decision.
	LI float64
}

// Monitor is the decision state machine of one monitoring component. It is
// fed load snapshots and decides when a migration should start. Monitor is
// not safe for concurrent use; the owning monitor bolt serializes access.
type Monitor struct {
	policy MonitorPolicy

	lastTrigger time.Time
	inFlight    bool

	sustained  int
	lastTarget int
	protectTil time.Time
}

// NewMonitor returns a monitor with the given policy (zero fields are
// filled with defaults).
func NewMonitor(policy MonitorPolicy) *Monitor {
	return &Monitor{policy: policy.withDefaults(), lastTarget: -1}
}

// Policy returns the effective policy.
func (m *Monitor) Policy() MonitorPolicy { return m.policy }

// Evaluate inspects a load snapshot and returns a migration decision, or
// nil when balanced, cooling down, or a migration is already in flight.
func (m *Monitor) Evaluate(now time.Time, loads []InstanceLoad) *Decision {
	if len(loads) < 2 || m.inFlight {
		return nil
	}
	li, hi, lo := Imbalance(loads)
	if li <= m.policy.Theta || hi == lo {
		m.sustained = 0
		return nil
	}
	// The imbalance is real only if it persists: transient spikes (e.g.
	// the backlog a migration just flushed onto its target) must not
	// trigger a counter-migration.
	m.sustained++
	if m.sustained < m.policy.SustainTicks {
		return nil
	}
	if now.Sub(m.lastTrigger) < m.policy.Cooldown {
		return nil
	}
	if loads[hi].Stored < m.policy.MinStored {
		return nil
	}
	if loads[hi].Instance == m.lastTarget && now.Before(m.protectTil) {
		return nil
	}
	m.lastTrigger = now
	m.inFlight = true
	m.sustained = 0
	m.lastTarget = loads[lo].Instance
	m.protectTil = now.Add(m.policy.TargetProtection)
	return &Decision{Source: loads[hi], Target: loads[lo], LI: li}
}

// MigrationDone tells the monitor the in-flight migration finished (with or
// without moving anything), re-arming Evaluate after the cooldown.
func (m *Monitor) MigrationDone() { m.inFlight = false }

// InFlight reports whether a triggered migration has not yet completed.
func (m *Monitor) InFlight() bool { return m.inFlight }
