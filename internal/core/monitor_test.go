package core

import (
	"testing"
	"time"
)

func balancedLoads() []InstanceLoad {
	return []InstanceLoad{
		{Instance: 0, Stored: 100, Probe: 10},
		{Instance: 1, Stored: 100, Probe: 10},
	}
}

func skewedLoads() []InstanceLoad {
	return []InstanceLoad{
		{Instance: 0, Stored: 1000, Probe: 100}, // 100000
		{Instance: 1, Stored: 100, Probe: 100},  // 10000
	}
}

func TestMonitorTriggersOnImbalance(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Second, MinStored: 1, SustainTicks: 1})
	now := time.Now()
	d := m.Evaluate(now, skewedLoads())
	if d == nil {
		t.Fatal("expected a migration decision")
	}
	if d.Source.Instance != 0 || d.Target.Instance != 1 {
		t.Errorf("decision %+v, want source 0 target 1", d)
	}
	if d.LI != 10 {
		t.Errorf("LI = %f, want 10", d.LI)
	}
	if !m.InFlight() {
		t.Error("monitor should mark migration in flight")
	}
}

func TestMonitorNoTriggerWhenBalanced(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Second, MinStored: 1, SustainTicks: 1})
	if d := m.Evaluate(time.Now(), balancedLoads()); d != nil {
		t.Errorf("unexpected decision %+v", d)
	}
}

func TestMonitorInFlightSuppression(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Nanosecond, MinStored: 1, SustainTicks: 1})
	now := time.Now()
	if m.Evaluate(now, skewedLoads()) == nil {
		t.Fatal("first evaluation should trigger")
	}
	if d := m.Evaluate(now.Add(time.Hour), skewedLoads()); d != nil {
		t.Errorf("in-flight migration not suppressed: %+v", d)
	}
	m.MigrationDone()
	if m.Evaluate(now.Add(2*time.Hour), skewedLoads()) == nil {
		t.Error("after MigrationDone the monitor should trigger again")
	}
}

func TestMonitorCooldown(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Minute, MinStored: 1, SustainTicks: 1})
	now := time.Now()
	if m.Evaluate(now, skewedLoads()) == nil {
		t.Fatal("first evaluation should trigger")
	}
	m.MigrationDone()
	if d := m.Evaluate(now.Add(time.Second), skewedLoads()); d != nil {
		t.Errorf("cooldown violated: %+v", d)
	}
	if m.Evaluate(now.Add(2*time.Minute), skewedLoads()) == nil {
		t.Error("cooldown elapsed but no trigger")
	}
}

func TestMonitorMinStored(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 1.5, Cooldown: time.Nanosecond, MinStored: 10000, SustainTicks: 1})
	if d := m.Evaluate(time.Now(), skewedLoads()); d != nil {
		t.Errorf("MinStored not honored: %+v", d)
	}
}

func TestMonitorTooFewInstances(t *testing.T) {
	m := NewMonitor(DefaultMonitorPolicy())
	if d := m.Evaluate(time.Now(), skewedLoads()[:1]); d != nil {
		t.Errorf("single instance triggered migration: %+v", d)
	}
}

func TestMonitorThetaBoundary(t *testing.T) {
	// LI exactly equal to Theta must NOT trigger (strictly greater).
	m := NewMonitor(MonitorPolicy{Theta: 10, Cooldown: time.Nanosecond, MinStored: 1, SustainTicks: 1})
	if d := m.Evaluate(time.Now(), skewedLoads()); d != nil {
		t.Errorf("LI == Theta should not trigger: %+v", d)
	}
	m2 := NewMonitor(MonitorPolicy{Theta: 9.99, Cooldown: time.Nanosecond, MinStored: 1, SustainTicks: 1})
	if m2.Evaluate(time.Now(), skewedLoads()) == nil {
		t.Error("LI > Theta should trigger")
	}
}

func TestMonitorPolicyDefaults(t *testing.T) {
	m := NewMonitor(MonitorPolicy{})
	p := m.Policy()
	if p.Theta != 2.2 || p.Cooldown != time.Second {
		t.Errorf("defaults = %+v", p)
	}
	// Theta <= 1 is nonsensical (LI >= 1 always): replaced by default.
	m = NewMonitor(MonitorPolicy{Theta: 0.5})
	if m.Policy().Theta != 2.2 {
		t.Errorf("Theta 0.5 should be replaced, got %f", m.Policy().Theta)
	}
}

func TestMonitorHysteresis(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Nanosecond, MinStored: 1, SustainTicks: 3})
	now := time.Now()
	if m.Evaluate(now, skewedLoads()) != nil {
		t.Fatal("first observation must not trigger with SustainTicks=3")
	}
	if m.Evaluate(now.Add(time.Millisecond), skewedLoads()) != nil {
		t.Fatal("second observation must not trigger")
	}
	if m.Evaluate(now.Add(2*time.Millisecond), skewedLoads()) == nil {
		t.Fatal("third consecutive observation should trigger")
	}
}

func TestMonitorHysteresisResetsWhenBalanced(t *testing.T) {
	m := NewMonitor(MonitorPolicy{Theta: 2.2, Cooldown: time.Nanosecond, MinStored: 1, SustainTicks: 2})
	now := time.Now()
	m.Evaluate(now, skewedLoads())
	// A balanced observation resets the streak.
	m.Evaluate(now.Add(time.Millisecond), balancedLoads())
	if m.Evaluate(now.Add(2*time.Millisecond), skewedLoads()) != nil {
		t.Fatal("streak should have been reset by the balanced observation")
	}
}

func TestMonitorTargetProtection(t *testing.T) {
	m := NewMonitor(MonitorPolicy{
		Theta: 1.5, Cooldown: time.Nanosecond, MinStored: 1,
		SustainTicks: 1, TargetProtection: time.Hour,
	})
	now := time.Now()
	d := m.Evaluate(now, skewedLoads())
	if d == nil {
		t.Fatal("expected initial trigger")
	}
	m.MigrationDone()
	// Now the previous target (instance 1) reports as the heaviest; it
	// must be protected from immediately becoming the source.
	flipped := []InstanceLoad{
		{Instance: 0, Stored: 100, Probe: 100},
		{Instance: 1, Stored: 1000, Probe: 100},
	}
	if got := m.Evaluate(now.Add(time.Millisecond), flipped); got != nil {
		t.Fatalf("protected target became source: %+v", got)
	}
	// After the protection window it may be selected.
	if m.Evaluate(now.Add(2*time.Hour), flipped) == nil {
		t.Fatal("protection should expire")
	}
}

func TestDefaultMonitorPolicyMatchesPaper(t *testing.T) {
	if got := DefaultMonitorPolicy().Theta; got != 2.2 {
		t.Errorf("default Theta = %f, want the paper's 2.2", got)
	}
}
