package core

import (
	"math/rand"
	"testing"

	"fastjoin/internal/stream"
)

// exhaustiveBest finds the feasible key subset with the maximum total
// benefit by brute force (the 0-1 knapsack optimum the paper models the
// selection problem as, §III-C). Only usable for tiny key counts.
func exhaustiveBest(in SelectInput) (best []stream.Key, bestBenefit int64) {
	n := len(in.Keys)
	gap := in.Gap()
	for mask := 0; mask < 1<<n; mask++ {
		var benefit int64
		var keys []stream.Key
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			benefit += Benefit(in.Source, in.Target, in.Keys[i])
			keys = append(keys, in.Keys[i].Key)
		}
		if benefit < gap && benefit > bestBenefit {
			best, bestBenefit = keys, benefit
		}
	}
	return best, bestBenefit
}

// TestGreedyFitNearOptimal compares GreedyFit's gap closure against the
// exhaustive optimum on small random instances. Greedy knapsack is not
// optimal, but it should consistently reach a large fraction of the
// optimal benefit (the paper's §IV-A accepts the approximation).
func TestGreedyFitNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const trials = 60
	var ratioSum float64
	counted := 0
	for trial := 0; trial < trials; trial++ {
		in := randomSelectInput(rng, rng.Intn(8)+4) // 4..11 keys
		_, optBenefit := exhaustiveBest(in)
		if optBenefit == 0 {
			continue
		}
		greedy := TotalBenefit(in, GreedyFit(in))
		if greedy > in.Gap() {
			t.Fatalf("trial %d: greedy benefit %d exceeds gap %d", trial, greedy, in.Gap())
		}
		ratioSum += float64(greedy) / float64(optBenefit)
		counted++
	}
	if counted == 0 {
		t.Skip("no instances with feasible selections")
	}
	avg := ratioSum / float64(counted)
	if avg < 0.7 {
		t.Errorf("GreedyFit reaches only %.0f%% of the exhaustive optimum on average", avg*100)
	}
}

// TestSAFitNearOptimal does the same for the simulated-annealing selector.
func TestSAFitNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const trials = 30
	var ratioSum float64
	counted := 0
	for trial := 0; trial < trials; trial++ {
		in := randomSelectInput(rng, rng.Intn(6)+4)
		_, optBenefit := exhaustiveBest(in)
		if optBenefit == 0 {
			continue
		}
		cfg := DefaultSAConfig()
		cfg.Seed = int64(trial + 1)
		sa := TotalBenefit(in, SAFit(in, cfg))
		ratioSum += float64(sa) / float64(optBenefit)
		counted++
	}
	if counted == 0 {
		t.Skip("no instances with feasible selections")
	}
	// SAFit optimizes value (benefit per tuple), not raw benefit, so its
	// raw-benefit ratio can be lower; it must still be substantial.
	if avg := ratioSum / float64(counted); avg < 0.3 {
		t.Errorf("SAFit reaches only %.0f%% of the exhaustive optimum on average", avg*100)
	}
}

// TestSelectorsConvergeTowardBalance simulates repeated monitor+selector
// rounds on a static load distribution and asserts the pairwise imbalance
// ratchets down — the system-level property Fig. 11 shows.
func TestSelectorsConvergeTowardBalance(t *testing.T) {
	// SAFit maximizes benefit-per-tuple and therefore takes smaller steps
	// per round; it gets a looser convergence bound.
	cases := []struct {
		name     string
		selector Selector
		rounds   int
		bound    float64
	}{
		{"greedyfit", GreedyFit, 6, 2.0},
		{"safit", SAFitSelector(DefaultSAConfig()), 25, 3.0},
	}
	for _, tc := range cases {
		selector, rounds, bound := tc.selector, tc.rounds, tc.bound
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			// Build 4 instances' worth of per-key stats.
			const instances = 4
			perInst := make([][]KeyStat, instances)
			nextKey := stream.Key(0)
			for i := range perInst {
				n := rng.Intn(30) + 10
				if i == 0 {
					n *= 4 // instance 0 starts hot
				}
				for k := 0; k < n; k++ {
					perInst[i] = append(perInst[i], KeyStat{
						Key:    nextKey,
						Stored: int64(rng.Intn(40) + 1),
						Probe:  int64(rng.Intn(20) + 1),
					})
					nextKey++
				}
			}
			loadOf := func(keys []KeyStat) InstanceLoad {
				var l InstanceLoad
				for _, k := range keys {
					l.Stored += k.Stored
					l.Probe += k.Probe
				}
				return l
			}
			li := func() float64 {
				loads := make([]InstanceLoad, instances)
				for i := range perInst {
					loads[i] = loadOf(perInst[i])
					loads[i].Instance = i
				}
				v, _, _ := Imbalance(loads)
				return v
			}
			initial := li()
			for round := 0; round < rounds; round++ {
				loads := make([]InstanceLoad, instances)
				for i := range perInst {
					loads[i] = loadOf(perInst[i])
					loads[i].Instance = i
				}
				_, hi, lo := Imbalance(loads)
				if hi == lo {
					break
				}
				in := SelectInput{Source: loads[hi], Target: loads[lo], Keys: perInst[hi], MinBenefit: 1}
				selected := selector(in)
				if len(selected) == 0 {
					break
				}
				sel := make(map[stream.Key]bool)
				for _, k := range selected {
					sel[k] = true
				}
				var stay []KeyStat
				for _, ks := range perInst[hi] {
					if sel[ks.Key] {
						perInst[lo] = append(perInst[lo], ks)
					} else {
						stay = append(stay, ks)
					}
				}
				perInst[hi] = stay
			}
			final := li()
			if final >= initial {
				t.Errorf("LI did not improve: initial %.2f final %.2f", initial, final)
			}
			if final > bound {
				t.Errorf("LI after migrations = %.2f, want <= %.1f", final, bound)
			}
		})
	}
}
