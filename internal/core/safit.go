package core

import (
	"math"
	"math/rand"

	"fastjoin/internal/stream"
)

// SAConfig parameterizes the SAFit simulated-annealing selector
// (Algorithm 3): initial temperature T, termination temperature T_min,
// attenuation coefficient a applied after every L iterations, and the seed
// for the random walk.
type SAConfig struct {
	T0    float64
	Tmin  float64
	Alpha float64
	Iter  int // L: iterations per temperature
	Seed  int64
}

// DefaultSAConfig returns the annealing schedule used in the evaluation:
// small enough to run inside a migration pause, large enough to converge on
// the key counts a join instance holds in practice.
func DefaultSAConfig() SAConfig {
	return SAConfig{T0: 1.0, Tmin: 1e-3, Alpha: 0.9, Iter: 64, Seed: 1}
}

func (c SAConfig) validate() SAConfig {
	if c.T0 <= 0 {
		c.T0 = 1.0
	}
	if c.Tmin <= 0 || c.Tmin >= c.T0 {
		c.Tmin = c.T0 / 1000
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.9
	}
	if c.Iter <= 0 {
		c.Iter = 64
	}
	return c
}

// SAFit implements Algorithm 3: a simulated-annealing search over key
// subsets. The solution space is all subsets SK with Benefit(SK) <= L_i-L_j
// (the Eq. 9 feasibility condition); the objective is
//
//	Value(SK) = Σ_{k∈SK} F_k / Σ_{k∈SK} |R_ik|       (Eq. 10)
//
// i.e. benefit per migrated tuple, the same figure of merit GreedyFit
// orders by. Worse neighbours are accepted with the Metropolis probability
// e^{(Value_new - Value_old)/T} (Eq. 11).
func SAFit(in SelectInput, cfg SAConfig) []stream.Key {
	cfg = cfg.validate()
	gap := in.Gap()
	if gap <= 0 || len(in.Keys) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Precompute per-key benefit and cost.
	n := len(in.Keys)
	benefit := make([]int64, n)
	cost := make([]int64, n)
	for i, ks := range in.Keys {
		benefit[i] = Benefit(in.Source, in.Target, ks)
		cost[i] = ks.Stored
	}

	value := func(selBenefit, selCost int64) float64 {
		if selBenefit <= 0 {
			return 0
		}
		if selCost < 1 {
			selCost = 1
		}
		return float64(selBenefit) / float64(selCost)
	}

	// Initial random solution: add keys in random order while feasible
	// (Algorithm 3 lines 3-14).
	flags := make([]bool, n)
	var curBenefit, curCost int64
	for _, i := range rng.Perm(n) {
		if rng.Intn(2) == 0 {
			continue
		}
		if curBenefit+benefit[i] > gap {
			break
		}
		flags[i] = true
		curBenefit += benefit[i]
		curCost += cost[i]
	}

	bestFlags := make([]bool, n)
	copy(bestFlags, flags)
	bestValue := value(curBenefit, curCost)
	curValue := bestValue

	for t := cfg.T0; t > cfg.Tmin; t *= cfg.Alpha {
		for it := 0; it < cfg.Iter; it++ {
			i := rng.Intn(n)
			// Flip key i (Algorithm 3 lines 19-21).
			newBenefit, newCost := curBenefit, curCost
			if flags[i] {
				newBenefit -= benefit[i]
				newCost -= cost[i]
			} else {
				newBenefit += benefit[i]
				newCost += cost[i]
			}
			if newBenefit > gap {
				continue // infeasible neighbour (line 34-36)
			}
			newValue := value(newBenefit, newCost)
			accept := newValue > curValue
			if !accept {
				p := math.Exp((newValue - curValue) / t)
				accept = rng.Float64() < p
			}
			if !accept {
				continue
			}
			flags[i] = !flags[i]
			curBenefit, curCost, curValue = newBenefit, newCost, newValue
			if curValue > bestValue {
				bestValue = curValue
				copy(bestFlags, flags)
			}
		}
	}

	var out []stream.Key
	for i, on := range bestFlags {
		if on {
			out = append(out, in.Keys[i].Key)
		}
	}
	return out
}

// SAFitSelector adapts SAFit to the Selector function type.
func SAFitSelector(cfg SAConfig) Selector {
	return func(in SelectInput) []stream.Key { return SAFit(in, cfg) }
}
