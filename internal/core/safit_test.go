package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastjoin/internal/stream"
)

func TestSAFitEmptyCases(t *testing.T) {
	cfg := DefaultSAConfig()
	in := SelectInput{
		Source: InstanceLoad{Stored: 10, Probe: 10},
		Target: InstanceLoad{Stored: 10, Probe: 10},
		Keys:   []KeyStat{{Key: 1, Stored: 5, Probe: 5}},
	}
	if got := SAFit(in, cfg); got != nil {
		t.Errorf("zero gap: got %v", got)
	}
	in.Keys = nil
	in.Target = InstanceLoad{}
	if got := SAFit(in, cfg); got != nil {
		t.Errorf("no keys: got %v", got)
	}
}

func TestSAFitConfigValidation(t *testing.T) {
	cfg := SAConfig{T0: -1, Tmin: 100, Alpha: 2, Iter: -5}.validate()
	if cfg.T0 != 1.0 || cfg.Alpha != 0.9 || cfg.Iter != 64 {
		t.Errorf("validated config = %+v", cfg)
	}
	if cfg.Tmin >= cfg.T0 {
		t.Errorf("Tmin %f not below T0 %f", cfg.Tmin, cfg.T0)
	}
}

func TestSAFitDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomSelectInput(rng, 40)
	cfg := DefaultSAConfig()
	a := SAFit(in, cfg)
	b := SAFit(in, cfg)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same selection")
		}
	}
}

// Property: SAFit solutions always satisfy the feasibility constraint
// Benefit(SK) <= L_i - L_j (Algorithm 3 line 22).
func TestSAFitFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSelectInput(rng, rng.Intn(60)+1)
		cfg := DefaultSAConfig()
		cfg.Seed = seed
		keys := SAFit(in, cfg)
		return TotalBenefit(in, keys) <= in.Gap()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SAFit never makes the pairwise imbalance worse.
func TestSAFitDoesNotWorsenImbalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomSelectInput(rng, rng.Intn(60)+2)
		cfg := DefaultSAConfig()
		cfg.Seed = seed
		keys := SAFit(in, cfg)
		if len(keys) == 0 {
			return true
		}
		newSrc, _ := ApplyMigration(in.Source, in.Target, keyStatsFor(in, keys))
		// Feasible solutions keep the source at least as heavy as the
		// target, so max stays at the source and shrinks.
		return newSrc.Load() <= in.Source.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Fig. 14's finding: GreedyFit and SAFit produce selections of comparable
// quality (benefit-per-tuple within a reasonable factor on typical inputs).
func TestSAFitComparableToGreedyFit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	betterOrClose := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		in := randomSelectInput(rng, 80)
		g := GreedyFit(in)
		cfg := DefaultSAConfig()
		cfg.Seed = int64(i)
		s := SAFit(in, cfg)
		gv := selectionValue(in, g)
		sv := selectionValue(in, s)
		if sv >= gv*0.5 {
			betterOrClose++
		}
	}
	if betterOrClose < trials*2/3 {
		t.Errorf("SAFit close to GreedyFit in only %d/%d trials", betterOrClose, trials)
	}
}

// selectionValue computes Eq. 10's Value(SK) = ΣF_k / Σ|R_ik|.
func selectionValue(in SelectInput, keys []stream.Key) float64 {
	stats := keyStatsFor(in, keys)
	if len(stats) == 0 {
		return 0
	}
	var cost int64
	for _, ks := range stats {
		cost += ks.Stored
	}
	if cost < 1 {
		cost = 1
	}
	return float64(TotalBenefit(in, keys)) / float64(cost)
}
