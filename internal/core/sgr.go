package core

// SGR computes the scaling gain ratio of §IV-C (Eq. 12): the fraction of a
// newly added join instance's memory that is available for storing tuples,
// given that FastJoin additionally keeps per-key statistics.
//
//	SGR = (χ_t * |R|) / (χ_t * |R| + χ_k * K)
//
// tupleBytes is χ_t (bytes per stored tuple), keyStatBytes is χ_k (bytes
// per per-key statistics entry), tuples is |R| and keys is K.
func SGR(tupleBytes, keyStatBytes, tuples, keys int64) float64 {
	if tupleBytes <= 0 || tuples < 0 || keys < 0 || keyStatBytes < 0 {
		return 0
	}
	num := float64(tupleBytes) * float64(tuples)
	den := num + float64(keyStatBytes)*float64(keys)
	if den == 0 {
		return 0
	}
	return num / den
}

// SGRByDensity is the c-form of Eq. 13, where c = |R| / K is the average
// number of tuples per key:
//
//	SGR = (χ_t * c) / (χ_t * c + χ_k)
func SGRByDensity(tupleBytes, keyStatBytes int64, c float64) float64 {
	if tupleBytes <= 0 || c < 0 || keyStatBytes < 0 {
		return 0
	}
	num := float64(tupleBytes) * c
	den := num + float64(keyStatBytes)
	if den == 0 {
		return 0
	}
	return num / den
}
