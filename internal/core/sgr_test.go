package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSGRFormsAgree(t *testing.T) {
	// Eq. 12 with |R| = c*K must equal Eq. 13.
	f := func(tb, kb uint8, cRaw, kRaw uint16) bool {
		tupleBytes := int64(tb%64) + 1
		keyBytes := int64(kb % 32)
		c := int64(cRaw%100) + 1
		keys := int64(kRaw%1000) + 1
		a := SGR(tupleBytes, keyBytes, c*keys, keys)
		b := SGRByDensity(tupleBytes, keyBytes, float64(c))
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSGRPaperClaim(t *testing.T) {
	// §IV-C: with equal tuple/stat sizes and c > 10, SGR exceeds 0.9 —
	// "more than 90 percent of memory can be shared to store new tuples".
	if got := SGRByDensity(64, 64, 10); got < 0.9-1e-9 {
		t.Errorf("SGR at c=10 = %f, want >= 0.9", got)
	}
	// The paper's DiDi order stream has c ≈ 14.
	if got := SGRByDensity(64, 64, 14); got <= 0.9 {
		t.Errorf("SGR at c=14 = %f, want > 0.9", got)
	}
	// Track stream: c > 10000 -> essentially 1.
	if got := SGRByDensity(64, 64, 10000); got < 0.999 {
		t.Errorf("SGR at c=10000 = %f, want ~1", got)
	}
}

func TestSGRMonotoneInDensity(t *testing.T) {
	prev := 0.0
	for c := 1.0; c < 100; c++ {
		cur := SGRByDensity(48, 16, c)
		if cur < prev {
			t.Fatalf("SGR not monotone at c=%f", c)
		}
		prev = cur
	}
}

func TestSGRBounds(t *testing.T) {
	f := func(tb, kb uint8, tuples, keys uint16) bool {
		v := SGR(int64(tb)+1, int64(kb), int64(tuples), int64(keys))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSGRDegenerateInputs(t *testing.T) {
	if SGR(0, 1, 1, 1) != 0 {
		t.Error("zero tuple size should yield 0")
	}
	if SGR(1, 0, 0, 0) != 0 {
		t.Error("empty store with no keys should yield 0")
	}
	if SGRByDensity(-1, 1, 1) != 0 || SGRByDensity(1, -1, 1) != 0 {
		t.Error("negative sizes should yield 0")
	}
}
