package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastjoin/internal/xhash"
)

// LocalCluster executes a Topology in-process: every task is a goroutine
// with a bounded data queue and a priority control queue.
type LocalCluster struct {
	cfg   Config
	tasks map[string][]*task // component -> tasks

	pending    atomic.Int64 // messages enqueued but not fully processed
	spoutsLive atomic.Int64 // spout tasks still producing

	done      chan struct{} // closed on Stop: everything unblocks
	spoutStop chan struct{} // closed on Drain: spouts stop producing
	stopOnce  sync.Once
	drainOnce sync.Once
	wg        sync.WaitGroup // executor goroutines
	tickWg    sync.WaitGroup // ticker goroutines
}

// task is one running instance of a component.
type task struct {
	ctx  Context
	data chan Message
	ctrl chan Message

	spout   Spout // exactly one of spout/bolt is set
	bolt    Bolt
	flusher Flusher       // bolt's optional batch-flush hook, resolved once
	subs    []*runtimeSub // outgoing subscriptions, resolved

	processed atomic.Int64
	emitted   atomic.Int64
	panics    atomic.Int64
	// queueHW is the deepest data backlog observed at dispatch time.
	// Written only by the task's own goroutine (load-then-store is safe);
	// read concurrently by Stats.
	queueHW atomic.Int64

	collector *Collector
}

// runtimeSub is a resolved subscription: messages emitted by a source task
// on (stream) are routed to the target component's tasks.
type runtimeSub struct {
	stream  string
	kind    groupKind
	keyFn   KeyFunc
	control bool
	target  []*task
	rr      atomic.Uint64 // round-robin cursor for shuffle
}

// Submit instantiates and starts the topology on a new local cluster.
func Submit(t *Topology, cfg Config) (*LocalCluster, error) {
	if t == nil {
		return nil, fmt.Errorf("engine: nil topology")
	}
	cfg = cfg.withDefaults()
	c := &LocalCluster{
		cfg:       cfg,
		tasks:     make(map[string][]*task),
		done:      make(chan struct{}),
		spoutStop: make(chan struct{}),
	}

	// Instantiate all tasks first so subscriptions can be resolved.
	for _, sd := range t.spouts {
		tasks := make([]*task, sd.parallelism)
		for i := range tasks {
			tasks[i] = &task{
				ctx:   Context{Component: sd.name, Task: i, Parallelism: sd.parallelism},
				data:  make(chan Message, cfg.QueueSize),
				ctrl:  make(chan Message, cfg.CtrlQueueSize),
				spout: sd.factory(i),
			}
		}
		c.tasks[sd.name] = tasks
	}
	for _, bd := range t.bolts {
		tasks := make([]*task, bd.parallelism)
		for i := range tasks {
			tasks[i] = &task{
				ctx:  Context{Component: bd.name, Task: i, Parallelism: bd.parallelism},
				data: make(chan Message, cfg.QueueSize),
				ctrl: make(chan Message, cfg.CtrlQueueSize),
				bolt: bd.factory(i),
			}
			tasks[i].flusher, _ = tasks[i].bolt.(Flusher)
		}
		c.tasks[bd.name] = tasks
	}

	// Resolve subscriptions: for each source component, collect the list of
	// outgoing routes; all tasks of the source share the route table.
	routes := make(map[string][]*runtimeSub)
	for _, bd := range t.bolts {
		for _, sub := range bd.subs {
			routes[sub.source] = append(routes[sub.source], &runtimeSub{
				stream:  sub.stream,
				kind:    sub.kind,
				keyFn:   sub.keyFn,
				control: sub.control,
				target:  c.tasks[bd.name],
			})
		}
	}
	for name, tasks := range c.tasks {
		for _, tk := range tasks {
			tk.subs = routes[name]
			tk.collector = &Collector{cluster: c, task: tk}
		}
	}

	// Start executors.
	for _, sd := range t.spouts {
		for _, tk := range c.tasks[sd.name] {
			c.spoutsLive.Add(1)
			c.wg.Add(1)
			go c.runSpout(tk)
		}
	}
	for _, bd := range t.bolts {
		for _, tk := range c.tasks[bd.name] {
			c.wg.Add(1)
			go c.runBolt(tk)
		}
		if bd.tickEvery > 0 {
			for _, tk := range c.tasks[bd.name] {
				c.tickWg.Add(1)
				go c.runTicker(tk, bd.tickEvery)
			}
		}
	}
	return c, nil
}

// send enqueues m, counting it as pending. It blocks under backpressure and
// aborts (returning false) if the cluster stops.
//
//lint:hotpath
func (c *LocalCluster) send(q chan Message, m Message) bool {
	c.pending.Add(1)
	select {
	case q <- m:
		return true
	case <-c.done:
		c.pending.Add(-1)
		return false
	}
}

// sendLater enqueues m after d elapses. The message counts as pending from
// the moment of scheduling — while the producer is still inside its
// lifecycle callback — so quiescence detection never observes a window in
// which a delayed message is neither pending nor queued.
func (c *LocalCluster) sendLater(q chan Message, m Message, d time.Duration) {
	c.pending.Add(1)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-c.done:
			c.pending.Add(-1)
			return
		case <-t.C:
		}
		select {
		case q <- m:
		case <-c.done:
			c.pending.Add(-1)
		}
	}()
}

// runSpout drives one spout task.
func (c *LocalCluster) runSpout(tk *task) {
	defer c.wg.Done()
	defer c.spoutsLive.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			tk.panics.Add(1)
		}
		tk.spout.Close()
	}()
	tk.spout.Open(tk.ctx, tk.collector)
	for {
		select {
		case <-c.done:
			return
		case <-c.spoutStop:
			return
		default:
		}
		if !c.safeNext(tk) {
			return
		}
	}
}

// safeNext calls Spout.Next with panic isolation; a panic ends the spout.
func (c *LocalCluster) safeNext(tk *task) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			tk.panics.Add(1)
			more = false
		}
	}()
	return tk.spout.Next(tk.collector)
}

// runBolt drives one bolt task: control messages are consumed with strict
// priority over data.
func (c *LocalCluster) runBolt(tk *task) {
	defer c.wg.Done()
	tk.bolt.Prepare(tk.ctx, tk.collector)
	defer tk.bolt.Cleanup()
	for {
		// Priority pass: drain control first if available.
		select {
		case m := <-tk.ctrl:
			c.dispatch(tk, m)
			continue
		default:
		}
		select {
		case <-c.done:
			return
		case m := <-tk.ctrl:
			c.dispatch(tk, m)
		case m := <-tk.data:
			c.dispatch(tk, m)
		}
	}
}

// dispatch runs one message through the bolt with panic isolation and
// settles the pending count. After the bolt runs, a Flusher task whose
// data queue has drained is flushed — still under this message's pending
// count, which is what makes the quiescence invariant hold: an open batch
// can only survive dispatch if another message is queued for the task,
// so pending stays positive until the batch is delivered.
//
//lint:hotpath
func (c *LocalCluster) dispatch(tk *task, m Message) {
	defer c.pending.Add(-1)
	// Sample the backlog left behind by this dequeue. Only this goroutine
	// writes queueHW, so a plain load-compare-store needs no CAS loop, and
	// the sample costs two atomic ops — nothing on the allocation front.
	if d := int64(len(tk.data)); d > tk.queueHW.Load() {
		tk.queueHW.Store(d)
	}
	c.execute(tk, m)
	if tk.flusher != nil && len(tk.data) == 0 {
		c.flush(tk)
	}
}

// execute runs the stall hook and the bolt callback with panic isolation.
//
//lint:hotpath
func (c *LocalCluster) execute(tk *task, m Message) {
	defer func() {
		if r := recover(); r != nil {
			tk.panics.Add(1)
		}
	}()
	if c.cfg.Stall != nil && m.Stream != TickStream {
		if d := c.cfg.Stall(tk.ctx, m.Stream, m.Value); d > 0 {
			// A stalled task sleeps with the message already dequeued: the
			// pending count stays positive, so Drain waits the stall out
			// (or reports it in its timeout diagnostic) instead of
			// declaring a false quiescence.
			time.Sleep(d)
		}
	}
	tk.bolt.Execute(m, tk.collector)
	tk.processed.Add(1)
}

// flush runs a Flusher's idle flush with the same panic isolation as
// Execute, so a batch poisoned by a downstream routing fault cannot kill
// the task loop — and an Execute panic still gets its batches flushed.
func (c *LocalCluster) flush(tk *task) {
	defer func() {
		if r := recover(); r != nil {
			tk.panics.Add(1)
		}
	}()
	tk.flusher.Flush(tk.collector)
}

// runTicker delivers periodic tick messages to one task's control queue.
func (c *LocalCluster) runTicker(tk *task, every time.Duration) {
	defer c.tickWg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-c.spoutStop:
			return
		case <-ticker.C:
			m := Message{FromComp: tk.ctx.Component, FromTask: tk.ctx.Task, Stream: TickStream}
			c.pending.Add(1)
			select {
			case tk.ctrl <- m:
			default:
				// Tick queue full: skip this tick rather than block.
				c.pending.Add(-1)
			}
		}
	}
}

// route fans one emitted value out according to a subscription. The
// per-target delivery lives in the enqueueOne method (not a closure) so
// the hot emit path costs no allocation beyond the value's own boxing.
//
//lint:hotpath
func (c *LocalCluster) route(tk *task, sub *runtimeSub, value any, directTask int) {
	m := Message{
		FromComp: tk.ctx.Component,
		FromTask: tk.ctx.Task,
		Stream:   sub.stream,
		Value:    value,
	}
	n := len(sub.target)
	switch sub.kind {
	case groupShuffle:
		c.enqueueOne(tk, sub, m, sub.target[int(sub.rr.Add(1)-1)%n])
	case groupFields:
		c.enqueueOne(tk, sub, m, sub.target[xhash.Partition(sub.keyFn(value), n)])
	case groupBroadcast:
		for _, target := range sub.target {
			c.enqueueOne(tk, sub, m, target)
		}
	case groupGlobal:
		c.enqueueOne(tk, sub, m, sub.target[0])
	case groupDirect:
		if directTask < 0 || directTask >= n {
			panic(fmt.Sprintf("engine: direct emit to task %d of %d on stream %q", //lint:allow panicpath direct-emit target out of range is a routing invariant violation; recovered and counted per task
				directTask, n, sub.stream))
		}
		c.enqueueOne(tk, sub, m, sub.target[directTask])
	}
}

// enqueueOne delivers one routed message to one target task, running the
// fault injector if configured.
//
//lint:hotpath
func (c *LocalCluster) enqueueOne(tk *task, sub *runtimeSub, m Message, target *task) {
	q := target.data
	if sub.control {
		q = target.ctrl
	}
	if c.cfg.Inject != nil {
		switch d := c.cfg.Inject(target.ctx, sub.stream, sub.control, m.Value); d.Op {
		case FaultDrop:
			// Silently discarded: not pending, not counted as emitted.
			return
		case FaultDup:
			if c.send(q, m) {
				tk.emitted.Add(1)
			}
		case FaultDelay:
			c.sendLater(q, m, d.Delay)
			tk.emitted.Add(1)
			return
		}
	}
	if c.send(q, m) {
		tk.emitted.Add(1)
	}
}

// Wrong-queue note: the pending counter is only correct if every enqueue
// happens while the producing message is still being processed (or from a
// spout/ticker, which count themselves). Collector enforces this by being
// usable only inside Open/Next/Prepare/Execute.

// WaitComplete waits until every spout has exhausted naturally (Next
// returned false) and every queued message, including all transitively
// emitted ones, has been processed. Use it for batch-style runs over finite
// inputs. A zero timeout means DefaultDrainTimeout.
func (c *LocalCluster) WaitComplete(timeout time.Duration) error {
	return c.settle(timeout)
}

// Drain stops the spouts and tickers immediately, then waits until every
// in-flight message has been processed, or the timeout elapses. A zero
// timeout means DefaultDrainTimeout. Drain does not stop the bolts; call
// Stop afterwards.
func (c *LocalCluster) Drain(timeout time.Duration) error {
	c.drainOnce.Do(func() { close(c.spoutStop) })
	return c.settle(timeout)
}

// settle waits for quiescence: no live spouts and no pending messages.
func (c *LocalCluster) settle(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultDrainTimeout
	}
	deadline := time.Now().Add(timeout)
	stable := 0
	for time.Now().Before(deadline) {
		if c.spoutsLive.Load() == 0 && c.pending.Load() == 0 {
			stable++
			// Require two consecutive quiet observations to dodge the
			// window between a send's pending-increment and enqueue.
			if stable >= 2 {
				return nil
			}
		} else {
			stable = 0
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("engine: drain timed out after %v (pending=%d, spouts=%d)",
		timeout, c.pending.Load(), c.spoutsLive.Load())
}

// Stop terminates all tasks immediately. Safe to call more than once and
// after Drain. Blocks until all goroutines exit.
func (c *LocalCluster) Stop() {
	c.drainOnce.Do(func() { close(c.spoutStop) })
	c.stopOnce.Do(func() { close(c.done) })
	c.tickWg.Wait()
	c.wg.Wait()
}

// Pending returns the number of in-flight messages (for tests/diagnostics).
func (c *LocalCluster) Pending() int64 { return c.pending.Load() }

// Stats returns the current per-task statistics of one component, or nil if
// the component does not exist.
func (c *LocalCluster) Stats(component string) []TaskStats {
	tasks, ok := c.tasks[component]
	if !ok {
		return nil
	}
	out := make([]TaskStats, len(tasks))
	for i, tk := range tasks {
		out[i] = TaskStats{
			Component:      component,
			Task:           i,
			Processed:      tk.processed.Load(),
			Emitted:        tk.emitted.Load(),
			Panics:         tk.panics.Load(),
			QueueLen:       len(tk.data),
			CtrlLen:        len(tk.ctrl),
			QueueHighWater: int(tk.queueHW.Load()),
		}
	}
	return out
}

// Components returns the names of all components.
func (c *LocalCluster) Components() []string {
	out := make([]string, 0, len(c.tasks))
	for name := range c.tasks {
		out = append(out, name)
	}
	return out
}

// Collector emits values from inside a task. It is valid only within the
// lifecycle callbacks of the owning spout/bolt; emitting from outside
// goroutines corrupts the quiescence accounting.
type Collector struct {
	cluster *LocalCluster
	task    *task
}

// Context returns the owning task's context.
func (o *Collector) Context() Context { return o.task.ctx }

// QueueLen returns the current length of the owning task's data queue —
// the backlog still waiting to be processed. Join instances report it as
// part of their load statistic (the paper's φ is a queue length).
func (o *Collector) QueueLen() int { return len(o.task.data) }

// Emit sends value on stream to all non-direct subscribers.
func (o *Collector) Emit(stream string, value any) {
	for _, sub := range o.task.subs {
		if sub.stream != stream {
			continue
		}
		if sub.kind == groupDirect {
			panic(fmt.Sprintf("engine: Emit on direct stream %q; use EmitDirect", stream)) //lint:allow panicpath Emit on a direct stream is a topology programming error; recovered and counted per task
		}
		o.cluster.route(o.task, sub, value, -1)
	}
}

// EmitDirect sends value on a direct stream to a specific task of each
// subscribing component.
func (o *Collector) EmitDirect(stream string, targetTask int, value any) {
	for _, sub := range o.task.subs {
		if sub.stream != stream {
			continue
		}
		if sub.kind != groupDirect {
			panic(fmt.Sprintf("engine: EmitDirect on non-direct stream %q", stream)) //lint:allow panicpath EmitDirect on a non-direct stream is a topology programming error; recovered and counted per task
		}
		o.cluster.route(o.task, sub, value, targetTask)
	}
}
