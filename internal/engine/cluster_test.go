package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// listSpout emits a fixed sequence of ints on stream "out".
type listSpout struct {
	values []int
	i      int
}

func (s *listSpout) Open(Context, *Collector) {}
func (s *listSpout) Next(out *Collector) bool {
	if s.i >= len(s.values) {
		return false
	}
	out.Emit("out", s.values[s.i])
	s.i++
	return true
}
func (s *listSpout) Close() {}

// sinkBolt records everything it receives.
type sinkBolt struct {
	mu       sync.Mutex
	received []Message
	cleaned  atomic.Bool
}

func (b *sinkBolt) Prepare(Context, *Collector) {}
func (b *sinkBolt) Execute(m Message, _ *Collector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.received = append(b.received, m)
}
func (b *sinkBolt) Cleanup() { b.cleaned.Store(true) }

func (b *sinkBolt) messages() []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Message, len(b.received))
	copy(out, b.received)
	return out
}

func intsSpoutFactory(n int) SpoutFactory {
	return func(task int) Spout {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		return &listSpout{values: vals}
	}
}

// runAndDrain submits, drains and stops, failing the test on error.
func runAndDrain(t *testing.T, topo *Topology) *LocalCluster {
	t.Helper()
	c, err := Submit(topo, Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.WaitComplete(10 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()
	return c
}

func TestShuffleDeliversAllConserved(t *testing.T) {
	sinks := make([]*sinkBolt, 4)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(1000), 1)
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 4).Shuffle("src", "out")
	runAndDrain(t, b.MustBuild())

	total := 0
	for _, s := range sinks {
		n := len(s.messages())
		total += n
		// Round-robin shuffle should be near-perfectly balanced.
		if n != 250 {
			t.Errorf("task got %d messages, want 250", n)
		}
	}
	if total != 1000 {
		t.Errorf("total = %d, want 1000 (conservation)", total)
	}
}

func TestFieldsGroupingSameKeySameTask(t *testing.T) {
	sinks := make([]*sinkBolt, 4)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(400), 1)
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 4).Fields("src", "out", func(v any) uint64 { return uint64(v.(int) % 10) })
	runAndDrain(t, b.MustBuild())

	owner := make(map[int]int) // key -> task
	for task, s := range sinks {
		for _, m := range s.messages() {
			key := m.Value.(int) % 10
			if prev, ok := owner[key]; ok && prev != task {
				t.Fatalf("key %d delivered to tasks %d and %d", key, prev, task)
			}
			owner[key] = task
		}
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	sinks := make([]*sinkBolt, 3)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(100), 1)
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 3).Broadcast("src", "out")
	runAndDrain(t, b.MustBuild())

	for task, s := range sinks {
		if n := len(s.messages()); n != 100 {
			t.Errorf("task %d got %d messages, want 100", task, n)
		}
	}
}

func TestGlobalDeliversToTaskZero(t *testing.T) {
	sinks := make([]*sinkBolt, 3)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(50), 1)
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 3).Global("src", "out")
	runAndDrain(t, b.MustBuild())

	if n := len(sinks[0].messages()); n != 50 {
		t.Errorf("task 0 got %d, want 50", n)
	}
	for task := 1; task < 3; task++ {
		if n := len(sinks[task].messages()); n != 0 {
			t.Errorf("task %d got %d, want 0", task, n)
		}
	}
}

// routerBolt forwards each int to task (value % parallelism) downstream.
type routerBolt struct{ downstreamPar int }

func (routerBolt) Prepare(Context, *Collector) {}
func (b routerBolt) Execute(m Message, out *Collector) {
	if m.Stream == TickStream {
		return
	}
	v := m.Value.(int)
	out.EmitDirect("routed", v%b.downstreamPar, v)
}
func (routerBolt) Cleanup() {}

func TestDirectGrouping(t *testing.T) {
	sinks := make([]*sinkBolt, 3)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(99), 1)
	b.AddBolt("router", func(int) Bolt { return routerBolt{downstreamPar: 3} }, 1).
		Shuffle("src", "out")
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 3).Direct("router", "routed")
	runAndDrain(t, b.MustBuild())

	for task, s := range sinks {
		msgs := s.messages()
		if len(msgs) != 33 {
			t.Errorf("task %d got %d, want 33", task, len(msgs))
		}
		for _, m := range msgs {
			if m.Value.(int)%3 != task {
				t.Errorf("task %d received %d", task, m.Value)
			}
		}
	}
}

func TestMessageMetadata(t *testing.T) {
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(1), 1)
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("src", "out")
	runAndDrain(t, b.MustBuild())

	msgs := sink.messages()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	m := msgs[0]
	if m.FromComp != "src" || m.FromTask != 0 || m.Stream != "out" {
		t.Errorf("metadata = %+v", m)
	}
}

func TestMultiHopPipelineConservation(t *testing.T) {
	// src -> relay (x2 fanout) -> sink; 500 in, 1000 out.
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(500), 1)
	b.AddBolt("relay", func(int) Bolt {
		return execFunc(func(m Message, out *Collector) {
			out.Emit("dup", m.Value)
			out.Emit("dup", m.Value)
		})
	}, 2).Shuffle("src", "out")
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("relay", "dup")
	runAndDrain(t, b.MustBuild())

	if n := len(sink.messages()); n != 1000 {
		t.Errorf("sink got %d, want 1000", n)
	}
}

// execFunc adapts a function to the Bolt interface.
type execFunc func(Message, *Collector)

func (execFunc) Prepare(Context, *Collector)         {}
func (f execFunc) Execute(m Message, out *Collector) { f(m, out) }
func (execFunc) Cleanup()                            {}

func TestEmitOnUnsubscribedStreamIsDropped(t *testing.T) {
	// Emitting on a stream nobody subscribed to must not wedge the drain.
	b := NewBuilder()
	b.AddSpout("src", func(int) Spout {
		return &listSpout{values: []int{1, 2, 3}}
	}, 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Shuffle("src", "nosuch")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(5 * time.Second); err != nil {
		t.Fatalf("WaitComplete: %v", err)
	}
}

func TestTickDelivery(t *testing.T) {
	var ticks atomic.Int64
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(0), 1)
	b.AddBolt("ticky", func(int) Bolt {
		return execFunc(func(m Message, _ *Collector) {
			if m.Stream == TickStream {
				ticks.Add(1)
			}
		})
	}, 1).Shuffle("src", "out").TickEvery(5 * time.Millisecond)
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	c.Stop()
	if got := ticks.Load(); got < 3 {
		t.Errorf("got %d ticks, want >= 3", got)
	}
}

func TestPanicIsolation(t *testing.T) {
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(10), 1)
	b.AddBolt("flaky", func(int) Bolt {
		return execFunc(func(m Message, out *Collector) {
			if m.Value.(int) == 3 {
				panic("injected failure")
			}
			out.Emit("ok", m.Value)
		})
	}, 1).Shuffle("src", "out")
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("flaky", "ok")
	c := runAndDrain(t, b.MustBuild())

	if n := len(sink.messages()); n != 9 {
		t.Errorf("sink got %d, want 9 (one poisoned message dropped)", n)
	}
	stats := c.Stats("flaky")
	if stats[0].Panics != 1 {
		t.Errorf("panics = %d, want 1", stats[0].Panics)
	}
}

func TestSpoutPanicEndsSpout(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", func(int) Spout {
		return panicSpout{}
	}, 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(5 * time.Second); err != nil {
		t.Fatalf("WaitComplete after spout panic: %v", err)
	}
	if got := c.Stats("src")[0].Panics; got != 1 {
		t.Errorf("spout panics = %d, want 1", got)
	}
}

type panicSpout struct{}

func (panicSpout) Open(Context, *Collector) {}
func (panicSpout) Next(*Collector) bool     { panic("spout failure") }
func (panicSpout) Close()                   {}

func TestStatsAndComponents(t *testing.T) {
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(20), 1)
	b.AddBolt("sink", func(int) Bolt { return sink }, 2).Shuffle("src", "out")
	c := runAndDrain(t, b.MustBuild())

	stats := c.Stats("sink")
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	var processed int64
	for _, s := range stats {
		processed += s.Processed
	}
	if processed != 20 {
		t.Errorf("processed = %d, want 20", processed)
	}
	if c.Stats("ghost") != nil {
		t.Error("Stats of unknown component should be nil")
	}
	comps := c.Components()
	if len(comps) != 2 {
		t.Errorf("components = %v", comps)
	}
	src := c.Stats("src")
	if src[0].Emitted != 20 {
		t.Errorf("spout emitted = %d, want 20", src[0].Emitted)
	}
}

func TestCleanupCalledOnStop(t *testing.T) {
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(5), 1)
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("src", "out")
	runAndDrain(t, b.MustBuild())
	if !sink.cleaned.Load() {
		t.Error("Cleanup not called on Stop")
	}
}

func TestStopIdempotent(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(5), 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c.Stop()
	c.Stop() // must not panic or deadlock
}

func TestStopUnblocksBackpressuredSenders(t *testing.T) {
	// A tiny queue and a slow sink: the spout will block on send; Stop must
	// still terminate everything.
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(100000), 1)
	b.AddBolt("slow", func(int) Bolt {
		return execFunc(func(Message, *Collector) { time.Sleep(time.Millisecond) })
	}, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{QueueSize: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock backpressured senders")
	}
}

func TestControlPriority(t *testing.T) {
	// A bolt that records the order of arrival: flood data, then send one
	// control message; the control message must overtake queued data.
	type record struct {
		mu    sync.Mutex
		order []string
	}
	rec := &record{}
	release := make(chan struct{})
	first := true

	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(200), 1)
	b.AddSpout("ctlsrc", func(int) Spout { return &gatedCtrlSpout{gate: release} }, 1)
	b.AddBolt("op", func(int) Bolt {
		return execFunc(func(m Message, _ *Collector) {
			if first {
				// Hold the first data message until the control message is
				// queued behind ~199 data messages.
				first = false
				<-release
				time.Sleep(5 * time.Millisecond)
			}
			rec.mu.Lock()
			rec.order = append(rec.order, m.Stream)
			rec.mu.Unlock()
		})
	}, 1).
		Shuffle("src", "data").
		GlobalCtrl("ctlsrc", "ctl")
	runAndDrain(t, b.MustBuild())

	rec.mu.Lock()
	defer rec.mu.Unlock()
	pos := -1
	for i, s := range rec.order {
		if s == "ctl" {
			pos = i
			break
		}
	}
	if pos == -1 {
		t.Fatal("control message never delivered")
	}
	// The control message must arrive well before the tail of the data.
	if pos > 20 {
		t.Errorf("control message arrived at position %d of %d; priority not honored", pos, len(rec.order))
	}
}

// gatedCtrlSpout waits briefly, emits one control value, then opens the gate.
type gatedCtrlSpout struct {
	gate chan struct{}
	sent bool
}

func (s *gatedCtrlSpout) Open(Context, *Collector) {}
func (s *gatedCtrlSpout) Next(out *Collector) bool {
	if s.sent {
		return false
	}
	time.Sleep(20 * time.Millisecond) // let data queue fill
	out.Emit("ctl", "go")
	close(s.gate)
	s.sent = true
	return true
}
func (s *gatedCtrlSpout) Close() {}

func TestEmitOnDirectStreamPanics(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", func(int) Spout { return &badEmitSpout{} }, 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Direct("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(5 * time.Second); err != nil {
		t.Fatalf("WaitComplete: %v", err)
	}
	// The bad Emit panicked inside the spout; the panic is isolated.
	if got := c.Stats("src")[0].Panics; got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

type badEmitSpout struct{ done bool }

func (s *badEmitSpout) Open(Context, *Collector) {}
func (s *badEmitSpout) Next(out *Collector) bool {
	if s.done {
		return false
	}
	s.done = true
	out.Emit("out", 1) // wrong: direct stream requires EmitDirect
	return true
}
func (s *badEmitSpout) Close() {}

func TestSubmitNilTopology(t *testing.T) {
	if _, err := Submit(nil, Config{}); err == nil {
		t.Error("Submit(nil) should error")
	}
}

func TestDrainTimeout(t *testing.T) {
	// A bolt that never finishes processing: drain must time out, not hang.
	block := make(chan struct{})
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(10), 1)
	b.AddBolt("stuck", func(int) Bolt {
		return execFunc(func(Message, *Collector) { <-block })
	}, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let the spout enqueue work first
	if err := c.Drain(50 * time.Millisecond); err == nil {
		t.Error("Drain should time out when a bolt is stuck")
	}
	close(block)
	c.Stop()
}

func TestMultipleSpoutTasks(t *testing.T) {
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(100), 4) // 4 tasks x 100 values
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("src", "out")
	runAndDrain(t, b.MustBuild())
	if n := len(sink.messages()); n != 400 {
		t.Errorf("sink got %d, want 400", n)
	}
}

func TestCollectorContext(t *testing.T) {
	var mu sync.Mutex
	var got []Context
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(1), 1)
	b.AddBolt("op", func(int) Bolt {
		return prepFunc(func(ctx Context, out *Collector) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, out.Context())
		})
	}, 3).Shuffle("src", "out")
	runAndDrain(t, b.MustBuild())
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("prepared %d tasks, want 3", len(got))
	}
	for _, ctx := range got {
		if ctx.Component != "op" || ctx.Parallelism != 3 {
			t.Errorf("collector context = %+v", ctx)
		}
	}
}

// prepFunc is a bolt that only records Prepare.
type prepFunc func(Context, *Collector)

func (f prepFunc) Prepare(ctx Context, out *Collector) { f(ctx, out) }
func (prepFunc) Execute(Message, *Collector)           {}
func (prepFunc) Cleanup()                              {}
