// Package engine is a from-scratch, Storm-like stream processing runtime:
// the substrate FastJoin runs on, replacing Apache Storm in the paper's
// implementation (§V).
//
// The programming model mirrors Storm's: an application is a Topology of
// named components — Spouts (sources) and Bolts (operators) — connected by
// named streams with declarative groupings (shuffle, fields, broadcast,
// global, direct). Each component runs as a set of parallel tasks; every
// task is a goroutine with a bounded data queue (providing backpressure,
// the mechanism behind the paper's load-imbalance dynamics) and a separate
// control queue that is drained with strict priority, so coordination
// traffic (load reports, migration commands, routing-table updates) is
// never stuck behind a full data queue.
//
// A LocalCluster executes the topology in-process. It supports cooperative
// draining with quiescence detection (used by batch-style experiments and
// the completeness tests), periodic tick messages for bolts, per-task
// metrics, and panic isolation per task.
package engine

import (
	"fmt"
	"time"
)

// Message is the unit of communication between tasks.
type Message struct {
	// FromComp and FromTask identify the producing task. Tick messages
	// carry the receiving component's own name.
	FromComp string
	FromTask int
	// Stream is the logical stream the message was emitted on; tick
	// messages use TickStream.
	Stream string
	// Value is the payload.
	Value any
}

// TickStream is the reserved stream name of periodic tick messages
// delivered to bolts that declared a tick interval.
const TickStream = "__tick"

// Context describes the task a spout or bolt instance is running as.
type Context struct {
	// Component is the topology-level component name.
	Component string
	// Task is the index of this task within the component, in
	// [0, Parallelism).
	Task int
	// Parallelism is the number of tasks of this component.
	Parallelism int
}

// String renders "component[task/parallelism]".
func (c Context) String() string {
	return fmt.Sprintf("%s[%d/%d]", c.Component, c.Task, c.Parallelism)
}

// Spout is a stream source. The runtime calls Next repeatedly from the
// task's goroutine until it returns false (exhausted) or the cluster stops
// spouts. Next should emit at most a handful of tuples per call and return
// promptly so that stop requests are honored.
type Spout interface {
	// Open is called once before the first Next.
	Open(ctx Context, out *Collector)
	// Next emits zero or more values and reports whether the spout may
	// have more data. Returning false permanently ends the spout.
	Next(out *Collector) bool
	// Close is called once after the spout ends or the cluster stops.
	Close()
}

// Bolt is a stream operator. Execute is called from the task's single
// goroutine, so bolt state needs no synchronization.
type Bolt interface {
	// Prepare is called once before the first Execute.
	Prepare(ctx Context, out *Collector)
	// Execute processes one input message (possibly emitting downstream).
	Execute(m Message, out *Collector)
	// Cleanup is called once when the cluster stops.
	Cleanup()
}

// Flusher is an optional Bolt extension for operators that accumulate
// emitted values into batches. The runtime calls Flush from the task's
// goroutine after an Execute that leaves the task's data queue empty, so
// a batch is never left open while the cluster is otherwise quiescent:
// an open batch implies a queued message for the task, which implies a
// positive pending count, which keeps WaitComplete/Drain waiting. Flush
// must be idempotent (it runs after control messages and ticks too).
type Flusher interface {
	Flush(out *Collector)
}

// SpoutFactory builds the spout instance for one task.
type SpoutFactory func(task int) Spout

// BoltFactory builds the bolt instance for one task.
type BoltFactory func(task int) Bolt

// KeyFunc extracts the partitioning key of a value for fields grouping.
type KeyFunc func(value any) uint64

// groupKind enumerates the supported stream groupings.
type groupKind uint8

const (
	groupShuffle groupKind = iota
	groupFields
	groupBroadcast
	groupGlobal
	groupDirect
)

func (k groupKind) String() string {
	switch k {
	case groupShuffle:
		return "shuffle"
	case groupFields:
		return "fields"
	case groupBroadcast:
		return "broadcast"
	case groupGlobal:
		return "global"
	case groupDirect:
		return "direct"
	default:
		return fmt.Sprintf("groupKind(%d)", uint8(k))
	}
}

// FaultOp is the action a fault injector takes on one message delivery.
type FaultOp uint8

const (
	// FaultNone delivers the message normally.
	FaultNone FaultOp = iota
	// FaultDrop discards the message without enqueuing it.
	FaultDrop
	// FaultDup enqueues the message twice.
	FaultDup
	// FaultDelay enqueues the message after FaultDecision.Delay elapses;
	// messages enqueued on the same lane in the meantime overtake it, so a
	// delay is also a reorder.
	FaultDelay
)

// FaultDecision is an injector's verdict on one enqueue.
type FaultDecision struct {
	Op FaultOp
	// Delay is the hold time for FaultDelay.
	Delay time.Duration
}

// InjectFunc intercepts every message enqueue (except locally generated
// ticks) and decides its fate. It is called from producer goroutines
// concurrently and must be safe for concurrent use. See internal/chaos for
// a deterministic, seedable implementation.
type InjectFunc func(target Context, stream string, control bool, value any) FaultDecision

// StallFunc is consulted before each bolt Execute; a positive duration
// stalls the task for that long first (emulating a slow or briefly frozen
// worker). Must be safe for concurrent use.
type StallFunc func(target Context, stream string, value any) time.Duration

// Config tunes the local cluster.
type Config struct {
	// QueueSize is the capacity of each task's data queue (default 1024).
	// Small queues tighten backpressure; the FastJoin experiments rely on
	// bounded queues to reproduce the paper's congestion behaviour.
	QueueSize int
	// CtrlQueueSize is the capacity of each task's control queue
	// (default 4096).
	CtrlQueueSize int
	// Inject, when set, runs every enqueue through a fault injector
	// (message drop, duplication, delay/reorder). Tick messages bypass it:
	// they are local timers, not transported messages.
	Inject InjectFunc
	// Stall, when set, can pause a task before processing a message,
	// emulating slow-task stalls.
	Stall StallFunc
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.CtrlQueueSize <= 0 {
		c.CtrlQueueSize = 4096
	}
	return c
}

// TaskStats is a point-in-time view of one task's activity.
type TaskStats struct {
	Component string `json:"component"`
	Task      int    `json:"task"`
	Processed int64  `json:"processed"`
	Emitted   int64  `json:"emitted"`
	Panics    int64  `json:"panics"`
	QueueLen  int    `json:"queue_len"`
	CtrlLen   int    `json:"ctrl_len"`
	// QueueHighWater is the deepest data-queue backlog the task has
	// observed at dispatch time since start — the congestion signal the
	// observability endpoint exports alongside the instantaneous QueueLen.
	QueueHighWater int `json:"queue_high_water"`
}

// DefaultDrainTimeout bounds how long Drain waits for quiescence.
const DefaultDrainTimeout = 30 * time.Second
