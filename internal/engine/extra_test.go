package engine

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPendingZeroAfterWaitComplete(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(200), 2)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 2).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(10 * time.Second); err != nil {
		t.Fatalf("WaitComplete: %v", err)
	}
	if got := c.Pending(); got != 0 {
		t.Errorf("Pending = %d after WaitComplete", got)
	}
}

func TestTicksStopAfterDrain(t *testing.T) {
	var ticks atomic.Int64
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(0), 1)
	b.AddBolt("ticky", func(int) Bolt {
		return execFunc(func(m Message, _ *Collector) {
			if m.Stream == TickStream {
				ticks.Add(1)
			}
		})
	}, 1).Shuffle("src", "out").TickEvery(3 * time.Millisecond)
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	after := ticks.Load()
	time.Sleep(30 * time.Millisecond)
	if got := ticks.Load(); got != after {
		t.Errorf("ticks continued after Drain: %d -> %d", after, got)
	}
	c.Stop()
}

func TestSmallQueueBackpressure(t *testing.T) {
	// With a 1-slot queue and a slow consumer, the spout cannot run ahead:
	// in-flight messages stay bounded by the queue depth plus one being
	// processed per stage.
	var maxPending int64
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(50), 1)
	b.AddBolt("slow", func(int) Bolt {
		return execFunc(func(Message, *Collector) { time.Sleep(time.Millisecond) })
	}, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{QueueSize: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-time.After(200 * time.Microsecond):
				if p := c.Pending(); p > maxPending {
					maxPending = p
				}
			case <-time.After(5 * time.Second):
				return
			}
			if c.Pending() == 0 && c.spoutsLive.Load() == 0 {
				return
			}
		}
	}()
	if err := c.WaitComplete(10 * time.Second); err != nil {
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()
	<-done
	if maxPending > 4 {
		t.Errorf("max pending = %d with queue size 1; backpressure leak", maxPending)
	}
}

func TestWaitCompleteIdempotent(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(10), 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	for i := 0; i < 3; i++ {
		if err := c.WaitComplete(5 * time.Second); err != nil {
			t.Fatalf("WaitComplete #%d: %v", i, err)
		}
	}
}

func TestDrainAfterWaitComplete(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(10), 1)
	b.AddBolt("sink", func(int) Bolt { return &sinkBolt{} }, 1).Shuffle("src", "out")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(5 * time.Second); err != nil {
		t.Fatalf("WaitComplete: %v", err)
	}
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain after WaitComplete: %v", err)
	}
}

func TestSelfLoopComponent(t *testing.T) {
	// A bolt subscribed to itself (the joiner migration pattern): messages
	// on the self stream must be delivered and drain must still settle.
	type relayMsg struct{ hops int }
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", func(int) Spout { return &listSpout{values: []int{3}} }, 1)
	b.AddBolt("loop", func(int) Bolt {
		return execFunc(func(m Message, out *Collector) {
			switch v := m.Value.(type) {
			case int:
				out.EmitDirect("self", 0, relayMsg{hops: v})
			case relayMsg:
				if v.hops > 0 {
					out.EmitDirect("self", 0, relayMsg{hops: v.hops - 1})
				} else {
					out.Emit("done", "finished")
				}
			}
		})
	}, 1).
		Shuffle("src", "out").
		DirectCtrl("loop", "self")
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("loop", "done")
	c, err := Submit(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer c.Stop()
	if err := c.WaitComplete(5 * time.Second); err != nil {
		t.Fatalf("WaitComplete with self-loop: %v", err)
	}
	if n := len(sink.messages()); n != 1 {
		t.Errorf("sink got %d, want 1", n)
	}
}

func TestManyComponentsLargeTopology(t *testing.T) {
	// A wider topology: 4 spouts -> 8 relays -> 8 sinks; conservation must
	// hold across the fan.
	sinks := make([]*sinkBolt, 8)
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(100), 4)
	b.AddBolt("relay", func(int) Bolt {
		return execFunc(func(m Message, out *Collector) { out.Emit("fwd", m.Value) })
	}, 8).Shuffle("src", "out")
	b.AddBolt("sink", func(task int) Bolt {
		sinks[task] = &sinkBolt{}
		return sinks[task]
	}, 8).Fields("relay", "fwd", func(v any) uint64 { return uint64(v.(int)) })
	runAndDrain(t, b.MustBuild())
	total := 0
	for _, s := range sinks {
		total += len(s.messages())
	}
	if total != 400 {
		t.Errorf("total = %d, want 400", total)
	}
}
