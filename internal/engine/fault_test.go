package engine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countBolt counts received values.
type countBolt struct {
	count *atomic.Int64
}

func (b *countBolt) Prepare(Context, *Collector) {}
func (b *countBolt) Execute(m Message, _ *Collector) {
	if m.Stream != TickStream {
		b.count.Add(1)
	}
}
func (b *countBolt) Cleanup() {}

// faultTopology is a one-spout, one-bolt pipeline used by the fault tests.
func faultTopology(n int, count *atomic.Int64) *Topology {
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(n), 1)
	b.AddBolt("fsink", func(int) Bolt { return &countBolt{count: count} }, 1).
		Shuffle("src", "out")
	return b.MustBuild()
}

func TestInjectDrop(t *testing.T) {
	var count atomic.Int64
	cfg := Config{
		Inject: func(_ Context, stream string, _ bool, value any) FaultDecision {
			if v, ok := value.(int); ok && v%2 == 0 {
				return FaultDecision{Op: FaultDrop}
			}
			return FaultDecision{}
		},
	}
	c, err := Submit(faultTopology(100, &count), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitComplete(10 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()
	if got := count.Load(); got != 50 {
		t.Errorf("delivered %d messages, want 50 (evens dropped)", got)
	}
}

func TestInjectDuplicate(t *testing.T) {
	var count atomic.Int64
	cfg := Config{
		Inject: func(_ Context, _ string, _ bool, _ any) FaultDecision {
			return FaultDecision{Op: FaultDup}
		},
	}
	c, err := Submit(faultTopology(100, &count), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitComplete(10 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()
	if got := count.Load(); got != 200 {
		t.Errorf("delivered %d messages, want 200 (all duplicated)", got)
	}
}

func TestInjectDelayCountsAsPending(t *testing.T) {
	// Delayed messages must be visible to quiescence detection: a
	// WaitComplete racing a delayed delivery has to wait it out, never
	// settle early and lose the message.
	var count atomic.Int64
	cfg := Config{
		Inject: func(_ Context, _ string, _ bool, _ any) FaultDecision {
			return FaultDecision{Op: FaultDelay, Delay: 50 * time.Millisecond}
		},
	}
	c, err := Submit(faultTopology(20, &count), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitComplete(10 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()
	if got := count.Load(); got != 20 {
		t.Errorf("delivered %d messages, want all 20 despite delays", got)
	}
}

func TestInjectDelayAbortsOnStop(t *testing.T) {
	// Stopping the cluster while messages are held must not leak the
	// delay goroutines (Stop blocks on the waitgroup they joined).
	var count atomic.Int64
	cfg := Config{
		Inject: func(_ Context, _ string, _ bool, _ any) FaultDecision {
			return FaultDecision{Op: FaultDelay, Delay: time.Hour}
		},
	}
	c, err := Submit(faultTopology(5, &count), cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock held delay goroutines")
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d after Stop, want 0", c.Pending())
	}
}

// stallOnce stalls the first matching delivery for a fixed duration.
type stallOnce struct {
	mu    sync.Mutex
	fired bool
	dur   time.Duration
}

func (s *stallOnce) fn(_ Context, stream string, _ any) time.Duration {
	if stream == TickStream {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired {
		return 0
	}
	s.fired = true
	return s.dur
}

func (s *stallOnce) engaged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// waitEngaged blocks until the stall has actually captured a task, so a
// subsequent Drain races against a real mid-drain stall rather than an
// empty pipeline.
func waitEngaged(t *testing.T, s *stallOnce) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.engaged() {
		if time.Now().After(deadline) {
			t.Fatal("stall never engaged")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainCompletesAfterStallClears(t *testing.T) {
	// A task stalled mid-drain holds the pending count up; drain must wait
	// the stall out and then settle — not hang, not settle early.
	var count atomic.Int64
	st := &stallOnce{dur: 300 * time.Millisecond}
	c, err := Submit(faultTopology(50, &count), Config{Stall: st.fn})
	if err != nil {
		t.Fatal(err)
	}
	waitEngaged(t, st)
	start := time.Now()
	if err := c.Drain(5 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("Drain under a clearing stall: %v", err)
	}
	c.Stop()
	if elapsed := time.Since(start); elapsed < st.dur {
		t.Errorf("drain returned in %v, before the %v stall cleared", elapsed, st.dur)
	}
	if count.Load() == 0 {
		t.Error("no messages processed")
	}
}

func TestDrainTimesOutWithDiagnosticUnderStall(t *testing.T) {
	// A stall longer than the drain budget must surface as a timeout error
	// naming the pending backlog — the diagnostic for a wedged shutdown —
	// and never hang the caller.
	var count atomic.Int64
	st := &stallOnce{dur: 2 * time.Second}
	c, err := Submit(faultTopology(50, &count), Config{Stall: st.fn})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitEngaged(t, st)
	err = c.Drain(150 * time.Millisecond)
	if err == nil {
		t.Fatal("Drain returned nil under a 2s stall with a 150ms budget")
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Errorf("drain diagnostic %q does not report the pending backlog", err)
	}
}
