package engine

import (
	"testing"
)

// batchingBolt groups incoming ints into slices of up to limit values,
// emitting a full group eagerly and leaving the remainder for Flush.
// It models the dispatcher's batched data plane: correctness depends on
// the engine idle-flushing open batches before quiescence settles.
type batchingBolt struct {
	limit   int
	panicOn int // value that makes Execute panic; 0 disables
	buf     []int
	flushes int
}

func (b *batchingBolt) Prepare(Context, *Collector) {}
func (b *batchingBolt) Execute(m Message, out *Collector) {
	v := m.Value.(int)
	if b.panicOn != 0 && v == b.panicOn {
		panic("batchingBolt: poisoned value") //lint:allow panicpath test bolt exercising the engine's panic isolation
	}
	b.buf = append(b.buf, v)
	if len(b.buf) >= b.limit {
		b.emit(out)
	}
}
func (b *batchingBolt) Flush(out *Collector) {
	b.flushes++
	b.emit(out)
}
func (b *batchingBolt) emit(out *Collector) {
	if len(b.buf) == 0 {
		return
	}
	out.Emit("batch", b.buf)
	b.buf = nil
}
func (b *batchingBolt) Cleanup() {}

// sumBatches totals the ints inside every []int a sink received.
func sumBatchCount(s *sinkBolt) int {
	n := 0
	for _, m := range s.messages() {
		n += len(m.Value.([]int))
	}
	return n
}

// TestFlusherDeliversOpenBatchBeforeSettle pins the quiescence invariant
// of the Flusher hook: a bolt holding an open batch when its queue runs
// dry gets flushed before WaitComplete can settle, so no tuple is ever
// stranded in a partial batch. The batch limit never divides the input
// evenly, so without the idle flush the tail would be lost.
func TestFlusherDeliversOpenBatchBeforeSettle(t *testing.T) {
	const n = 103 // prime: never a multiple of the batch limit
	var batcher *batchingBolt
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(n), 1)
	b.AddBolt("batcher", func(int) Bolt {
		batcher = &batchingBolt{limit: 8}
		return batcher
	}, 1).Shuffle("src", "out")
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("batcher", "batch")
	runAndDrain(t, b.MustBuild())

	if got := sumBatchCount(sink); got != n {
		t.Errorf("sink saw %d values, want %d (open batch lost at settle)", got, n)
	}
	if batcher.flushes == 0 {
		t.Errorf("Flush never invoked; idle-flush path untested")
	}
}

// TestFlusherRunsAfterExecutePanic pins that a panic inside Execute does
// not starve the flush: the engine recovers the panic, records it, and
// still gives the Flusher a chance to drain its open batch. Every value
// except the poisoned one must reach the sink.
func TestFlusherRunsAfterExecutePanic(t *testing.T) {
	const n = 10
	sink := &sinkBolt{}
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(n), 1)
	b.AddBolt("batcher", func(int) Bolt {
		// limit > n: nothing ever emits from Execute, only via Flush.
		return &batchingBolt{limit: n + 1, panicOn: 5}
	}, 1).Shuffle("src", "out")
	b.AddBolt("sink", func(int) Bolt { return sink }, 1).Shuffle("batcher", "batch")
	c := runAndDrain(t, b.MustBuild())

	if got := c.Stats("batcher")[0].Panics; got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := sumBatchCount(sink); got != n-1 {
		t.Errorf("sink saw %d values, want %d (flush starved by panic)", got, n-1)
	}
}
