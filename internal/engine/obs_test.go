package engine

import (
	"sync"
	"testing"
	"time"
)

// gateBolt blocks its first Execute until released, letting the test pile
// a known backlog onto its input queue.
type gateBolt struct {
	release chan struct{}
	once    sync.Once
}

func (b *gateBolt) Prepare(Context, *Collector) {}
func (b *gateBolt) Execute(Message, *Collector) {
	b.once.Do(func() { <-b.release })
}
func (b *gateBolt) Cleanup() {}

// TestQueueHighWaterSampling checks the dispatch-time congestion signal:
// a bolt that stalls while its spout floods must report a queue high-water
// near the backlog it later drained, and the instantaneous QueueLen must
// return to zero once the run settles.
func TestQueueHighWaterSampling(t *testing.T) {
	const n = 300
	release := make(chan struct{})
	b := NewBuilder()
	b.AddSpout("src", intsSpoutFactory(n), 1)
	b.AddBolt("gate", func(task int) Bolt {
		return &gateBolt{release: release}
	}, 1).Shuffle("src", "out")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Submit(topo, Config{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let the spout flood the gated bolt's queue, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Stats("gate"); len(st) == 1 && st[0].QueueLen >= n/2 {
			break
		}
		if time.Now().After(deadline) {
			c.Stop()
			t.Fatalf("backlog never built: %+v", c.Stats("gate"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := c.WaitComplete(10 * time.Second); err != nil {
		c.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	c.Stop()

	st := c.Stats("gate")
	if len(st) != 1 {
		t.Fatalf("Stats: %+v", st)
	}
	if st[0].QueueHighWater < n/2 {
		t.Errorf("QueueHighWater = %d, want >= %d (backlog was drained through dispatch)",
			st[0].QueueHighWater, n/2)
	}
	if st[0].QueueLen != 0 {
		t.Errorf("QueueLen = %d after settle, want 0", st[0].QueueLen)
	}
	if st[0].Processed != n {
		t.Errorf("Processed = %d, want %d", st[0].Processed, n)
	}
}
