package engine

// NullCollector returns a Collector wired to nothing: it belongs to no
// topology, so every Emit and EmitDirect finds zero subscriptions and is
// a no-op, and QueueLen reports zero. It exists so bolt unit tests can
// drive lifecycle methods that emit without assembling a cluster; a
// running topology never uses it.
func NullCollector() *Collector {
	return &Collector{task: &task{}}
}
