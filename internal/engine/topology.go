package engine

import (
	"fmt"
	"time"
)

// Topology is an immutable description of a dataflow: spouts, bolts and the
// subscriptions between them. Build one with NewBuilder and submit it to a
// LocalCluster.
type Topology struct {
	spouts []*spoutDecl
	bolts  []*boltDecl
	names  map[string]bool
}

type spoutDecl struct {
	name        string
	factory     SpoutFactory
	parallelism int
}

type boltDecl struct {
	name        string
	factory     BoltFactory
	parallelism int
	tickEvery   time.Duration
	subs        []subDecl
}

type subDecl struct {
	source  string // component name
	stream  string
	kind    groupKind
	keyFn   KeyFunc
	control bool
}

// Builder assembles a Topology.
type Builder struct {
	t    *Topology
	errs []error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{names: make(map[string]bool)}}
}

// AddSpout declares a spout component with the given parallelism.
func (b *Builder) AddSpout(name string, factory SpoutFactory, parallelism int) *Builder {
	if err := b.checkComponent(name, parallelism); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: spout %q has nil factory", name))
		return b
	}
	b.t.names[name] = true
	b.t.spouts = append(b.t.spouts, &spoutDecl{name: name, factory: factory, parallelism: parallelism})
	return b
}

// AddBolt declares a bolt component with the given parallelism and returns
// a BoltBuilder to attach subscriptions.
func (b *Builder) AddBolt(name string, factory BoltFactory, parallelism int) *BoltBuilder {
	d := &boltDecl{name: name, factory: factory, parallelism: parallelism}
	if err := b.checkComponent(name, parallelism); err != nil {
		b.errs = append(b.errs, err)
		return &BoltBuilder{b: b, d: d}
	}
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: bolt %q has nil factory", name))
		return &BoltBuilder{b: b, d: d}
	}
	b.t.names[name] = true
	b.t.bolts = append(b.t.bolts, d)
	return &BoltBuilder{b: b, d: d}
}

func (b *Builder) checkComponent(name string, parallelism int) error {
	if name == "" {
		return fmt.Errorf("engine: component name must not be empty")
	}
	if b.t.names[name] {
		return fmt.Errorf("engine: duplicate component name %q", name)
	}
	if parallelism <= 0 {
		return fmt.Errorf("engine: component %q parallelism must be > 0", name)
	}
	return nil
}

// Build validates the topology and returns it.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	// Every subscription must reference a declared component; direct and
	// non-direct subscriptions must not share a (source, stream) pair,
	// because EmitDirect and Emit have incompatible routing.
	kindBy := make(map[string]bool) // "src/stream" -> isDirect
	seen := make(map[string]bool)
	for _, bolt := range b.t.bolts {
		for _, sub := range bolt.subs {
			if !b.t.names[sub.source] {
				return nil, fmt.Errorf("engine: bolt %q subscribes to unknown component %q", bolt.name, sub.source)
			}
			if sub.stream == "" || sub.stream == TickStream {
				return nil, fmt.Errorf("engine: bolt %q subscribes to invalid stream %q", bolt.name, sub.stream)
			}
			if sub.kind == groupFields && sub.keyFn == nil {
				return nil, fmt.Errorf("engine: bolt %q fields-subscription on %q/%q has nil key function", bolt.name, sub.source, sub.stream)
			}
			id := sub.source + "/" + sub.stream
			isDirect := sub.kind == groupDirect
			if prev, ok := kindBy[id]; ok && prev != isDirect {
				return nil, fmt.Errorf("engine: stream %s mixes direct and non-direct subscriptions", id)
			}
			kindBy[id] = isDirect
			seen[id] = true
		}
	}
	if len(b.t.spouts) == 0 {
		return nil, fmt.Errorf("engine: topology has no spouts")
	}
	return b.t, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// BoltBuilder attaches subscriptions and options to a bolt declaration.
type BoltBuilder struct {
	b *Builder
	d *boltDecl
}

func (bb *BoltBuilder) sub(source, stream string, kind groupKind, keyFn KeyFunc, control bool) *BoltBuilder {
	bb.d.subs = append(bb.d.subs, subDecl{
		source: source, stream: stream, kind: kind, keyFn: keyFn, control: control,
	})
	return bb
}

// Shuffle subscribes to (source, stream) with round-robin distribution.
func (bb *BoltBuilder) Shuffle(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupShuffle, nil, false)
}

// Fields subscribes with key-hash distribution: values with equal keys go
// to the same task.
func (bb *BoltBuilder) Fields(source, stream string, keyFn KeyFunc) *BoltBuilder {
	return bb.sub(source, stream, groupFields, keyFn, false)
}

// Broadcast subscribes with replication to every task.
func (bb *BoltBuilder) Broadcast(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupBroadcast, nil, false)
}

// Global subscribes with delivery to task 0 only.
func (bb *BoltBuilder) Global(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupGlobal, nil, false)
}

// Direct subscribes with emitter-chosen task delivery; the emitter must use
// Collector.EmitDirect on this stream.
func (bb *BoltBuilder) Direct(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupDirect, nil, false)
}

// GlobalCtrl is Global delivered on the control queue (priority lane).
func (bb *BoltBuilder) GlobalCtrl(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupGlobal, nil, true)
}

// BroadcastCtrl is Broadcast delivered on the control queue.
func (bb *BoltBuilder) BroadcastCtrl(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupBroadcast, nil, true)
}

// DirectCtrl is Direct delivered on the control queue.
func (bb *BoltBuilder) DirectCtrl(source, stream string) *BoltBuilder {
	return bb.sub(source, stream, groupDirect, nil, true)
}

// TickEvery asks the runtime to deliver a tick message (stream TickStream)
// to every task of this bolt at the given interval. Ticks stop when the
// cluster begins draining.
func (bb *BoltBuilder) TickEvery(d time.Duration) *BoltBuilder {
	bb.d.tickEvery = d
	return bb
}

// Done returns the parent builder for declaring further components.
func (bb *BoltBuilder) Done() *Builder { return bb.b }
