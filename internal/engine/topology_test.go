package engine

import (
	"strings"
	"testing"
	"time"
)

// nopSpout emits nothing and ends immediately.
type nopSpout struct{}

func (nopSpout) Open(Context, *Collector) {}
func (nopSpout) Next(*Collector) bool     { return false }
func (nopSpout) Close()                   {}

// nopBolt discards everything.
type nopBolt struct{}

func (nopBolt) Prepare(Context, *Collector) {}
func (nopBolt) Execute(Message, *Collector) {}
func (nopBolt) Cleanup()                    {}

func nopSpoutFactory(int) Spout { return nopSpout{} }
func nopBoltFactory(int) Bolt   { return nopBolt{} }

func TestBuilderHappyPath(t *testing.T) {
	b := NewBuilder()
	b.AddSpout("src", nopSpoutFactory, 2)
	b.AddBolt("op", nopBoltFactory, 3).
		Shuffle("src", "default").
		TickEvery(time.Second)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(topo.spouts) != 1 || len(topo.bolts) != 1 {
		t.Errorf("spouts=%d bolts=%d", len(topo.spouts), len(topo.bolts))
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*Topology, error)
		wantSub string
	}{
		{
			"empty name",
			func() (*Topology, error) {
				return NewBuilder().AddSpout("", nopSpoutFactory, 1).Build()
			},
			"must not be empty",
		},
		{
			"duplicate name",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("x", nopSpoutFactory, 1)
				b.AddBolt("x", nopBoltFactory, 1)
				return b.Build()
			},
			"duplicate",
		},
		{
			"zero parallelism",
			func() (*Topology, error) {
				return NewBuilder().AddSpout("x", nopSpoutFactory, 0).Build()
			},
			"parallelism",
		},
		{
			"nil spout factory",
			func() (*Topology, error) {
				return NewBuilder().AddSpout("x", nil, 1).Build()
			},
			"nil factory",
		},
		{
			"nil bolt factory",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("s", nopSpoutFactory, 1)
				b.AddBolt("x", nil, 1)
				return b.Build()
			},
			"nil factory",
		},
		{
			"unknown source",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("s", nopSpoutFactory, 1)
				b.AddBolt("op", nopBoltFactory, 1).Shuffle("ghost", "default")
				return b.Build()
			},
			"unknown component",
		},
		{
			"tick stream subscription",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("s", nopSpoutFactory, 1)
				b.AddBolt("op", nopBoltFactory, 1).Shuffle("s", TickStream)
				return b.Build()
			},
			"invalid stream",
		},
		{
			"nil fields key function",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("s", nopSpoutFactory, 1)
				b.AddBolt("op", nopBoltFactory, 1).Fields("s", "default", nil)
				return b.Build()
			},
			"nil key function",
		},
		{
			"mixed direct and non-direct",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddSpout("s", nopSpoutFactory, 1)
				b.AddBolt("a", nopBoltFactory, 1).Direct("s", "default")
				b.AddBolt("b", nopBoltFactory, 1).Shuffle("s", "default")
				return b.Build()
			},
			"mixes direct",
		},
		{
			"no spouts",
			func() (*Topology, error) {
				b := NewBuilder()
				b.AddBolt("op", nopBoltFactory, 1)
				return b.Build()
			},
			"no spouts",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid topology")
		}
	}()
	NewBuilder().MustBuild()
}

func TestContextString(t *testing.T) {
	ctx := Context{Component: "joiner", Task: 2, Parallelism: 8}
	if got, want := ctx.String(), "joiner[2/8]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestGroupKindString(t *testing.T) {
	kinds := map[groupKind]string{
		groupShuffle:   "shuffle",
		groupFields:    "fields",
		groupBroadcast: "broadcast",
		groupGlobal:    "global",
		groupDirect:    "direct",
		groupKind(99):  "groupKind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.QueueSize != 1024 || cfg.CtrlQueueSize != 4096 {
		t.Errorf("defaults = %+v", cfg)
	}
	cfg = Config{QueueSize: 7, CtrlQueueSize: 9}.withDefaults()
	if cfg.QueueSize != 7 || cfg.CtrlQueueSize != 9 {
		t.Errorf("explicit config overridden: %+v", cfg)
	}
}
