// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by the fastjoin-lint suite.
//
// The build environment for this repository is fully offline, so the real
// x/tools module cannot be vendored; this package provides the same shape
// on top of the standard library's go/ast and go/types. Analyzers written
// against it port to the upstream framework by changing one import line.
//
// The one deliberate extension is the //lint:allow escape hatch: a comment
//
//	//lint:allow <analyzer>[,<analyzer>...] [justification]
//
// placed on the flagged line or the line directly above it suppresses the
// diagnostic. Every suppression should carry a justification; the linters
// encode protocol invariants (bounded queues, lock discipline, goroutine
// lifecycle, panic-free library paths) and an allow without a reason is a
// review smell.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow comments.
	// It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by fastjoin-lint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
	// Requires lists analyzers that must run on the same package first;
	// their results are available through Pass.ResultOf. The driver
	// expands the closure and orders it topologically.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports or imports
	// (one zero value per type). Using an undeclared fact type panics,
	// as in x/tools.
	FactTypes []Fact
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives every diagnostic that survives //lint:allow
	// filtering. The driver sets it.
	Report func(Diagnostic)

	// ResultOf holds the results of this package's runs of the analyzers
	// named in Analyzer.Requires.
	ResultOf map[*Analyzer]any

	// facts is the driver-wide fact store; use the
	// Import/ExportPackageFact and Import/ExportObjectFact methods.
	facts *FactStore

	allow map[allowKey]bool
}

type allowKey struct {
	file string
	line int
	name string
}

// allowRE matches the escape-hatch directive. The directive must start the
// comment: "//lint:allow name1,name2 free-form justification".
var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,]+)`)

// buildAllow indexes every //lint:allow directive in the pass's files by
// (file, line, analyzer name). A trailing directive suppresses its own
// line; a standalone directive (no code on its line) also suppresses the
// line below, so it can sit above the flagged statement.
func (p *Pass) buildAllow() {
	p.allow = make(map[allowKey]bool)
	for _, f := range p.Files {
		code := codeLines(p.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					p.allow[allowKey{pos.Filename, pos.Line, name}] = true
					if !code[pos.Line] {
						p.allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
}

// codeLines returns the set of lines of f that contain non-comment code.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Allowed reports whether a diagnostic of this pass's analyzer at pos is
// suppressed by a //lint:allow directive.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allow == nil {
		p.buildAllow()
	}
	pp := p.Fset.Position(pos)
	return p.allow[allowKey{pp.Filename, pp.Line, p.Analyzer.Name}]
}

// Reportf reports a formatted diagnostic at pos unless it is allowlisted.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
