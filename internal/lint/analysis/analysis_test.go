package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

func a() {
	_ = 1 //lint:allow checkme same-line suppression
	_ = 2
	//lint:allow checkme,other comma list on preceding line
	_ = 3
	//lint:allow other different analyzer only
	_ = 4
}
`

// TestAllowDirectives exercises the //lint:allow matching rules: same
// line, preceding line, comma-separated analyzer lists, and non-matching
// analyzer names.
func TestAllowDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var reported []int
	pass := &Pass{
		Analyzer: &Analyzer{Name: "checkme"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report: func(d Diagnostic) {
			reported = append(reported, fset.Position(d.Pos).Line)
		},
	}
	// Report once from each assignment statement in the function body.
	fn := f.Decls[0].(*ast.FuncDecl)
	for _, stmt := range fn.Body.List {
		pass.Reportf(stmt.Pos(), "finding")
	}
	// Line 4 is allowlisted inline, line 7 via the preceding comma list;
	// lines 5 and 9 (directive names a different analyzer) must report.
	want := []int{5, 9}
	if len(reported) != len(want) {
		t.Fatalf("reported lines %v, want %v", reported, want)
	}
	for i := range want {
		if reported[i] != want[i] {
			t.Fatalf("reported lines %v, want %v", reported, want)
		}
	}
}
