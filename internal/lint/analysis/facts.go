package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// Fact is a datum one analyzer computes about a package or object and a
// later pass (of the same analyzer, possibly on a different package) can
// import. It mirrors golang.org/x/tools/go/analysis.Fact, minus the gob
// serialization: the fastjoin-lint driver runs every package in one
// process, so facts are held live in memory.
//
// An analyzer must declare every fact type it exports or imports in its
// FactTypes list; exporting an undeclared fact type is a programming
// error and panics.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factKey addresses one fact: a package path (for package facts) or a
// package path plus a stable object key (for object facts), crossed with
// the dynamic type of the fact.
type factKey struct {
	pkg string
	obj string // "" for package facts
	typ string
}

// FactStore holds the facts exported by every analyzer across one driver
// run. One store is shared by all passes; the zero value is not usable —
// use NewFactStore.
//
// Object facts are keyed by a structural object key rather than object
// identity, because a package loaded from syntax and the same package
// imported from export data materialize distinct types.Object values.
// See ObjectKey for the supported object shapes.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]Fact)}
}

func (s *FactStore) set(k factKey, f Fact) {
	s.mu.Lock()
	s.facts[k] = f
	s.mu.Unlock()
}

func (s *FactStore) get(k factKey) (Fact, bool) {
	s.mu.Lock()
	f, ok := s.facts[k]
	s.mu.Unlock()
	return f, ok
}

// ObjectKey derives a stable, identity-free key for obj, usable across
// the syntax-checked and export-data views of the same package. Supported
// shapes:
//
//   - package-scope objects (types, funcs, vars, consts): their name;
//   - struct fields of a package-scope named type: "Type.Field", found by
//     scanning the object's package scope;
//   - methods with a named receiver: "Type.Method".
//
// Objects that fit none of these (locals, fields of anonymous structs)
// return "", and facts cannot be attached to them.
func ObjectKey(obj types.Object) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	if scope.Lookup(obj.Name()) == obj {
		return obj.Name()
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
		return ""
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return name + "." + v.Name()
				}
			}
		}
	}
	return ""
}

// namedOf unwraps pointers to a named type, or returns nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// declaresFactType reports whether the pass's analyzer declared a fact of
// the same dynamic type as f.
func (p *Pass) declaresFactType(f Fact) bool {
	for _, ft := range p.Analyzer.FactTypes {
		if fmt.Sprintf("%T", ft) == fmt.Sprintf("%T", f) {
			return true
		}
	}
	return false
}

func (p *Pass) factCheck(f Fact) {
	if p.facts == nil {
		panic("analysis: pass has no fact store (driver must set Facts)") //lint:allow panicpath driver wiring bug, not a user input path
	}
	if !p.declaresFactType(f) {
		panic(fmt.Sprintf("analysis: analyzer %s used fact type %T without declaring it in FactTypes", p.Analyzer.Name, f)) //lint:allow panicpath analyzer programming contract, mirrors x/tools behaviour
	}
}

// ExportPackageFact records f as a fact about the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	p.factCheck(f)
	p.facts.set(factKey{pkg: p.Pkg.Path(), typ: fmt.Sprintf("%T", f)}, f)
}

// ImportPackageFact reports whether a fact of ptr's type was exported for
// pkg (by an earlier pass of this analyzer) and, if so, copies it into
// ptr. ptr must be a pointer to the fact type, as with x/tools.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	p.factCheck(ptr)
	f, ok := p.facts.get(factKey{pkg: pkg.Path(), typ: fmt.Sprintf("%T", ptr)})
	if !ok {
		return false
	}
	copyFact(f, ptr)
	return true
}

// ExportObjectFact records f as a fact about obj. Objects that ObjectKey
// cannot address are silently skipped (no cross-view identity exists for
// them).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	p.factCheck(f)
	key := ObjectKey(obj)
	if key == "" || obj.Pkg() == nil {
		return
	}
	p.facts.set(factKey{pkg: obj.Pkg().Path(), obj: key, typ: fmt.Sprintf("%T", f)}, f)
}

// ImportObjectFact reports whether a fact of ptr's type is recorded for
// obj and, if so, copies it into ptr.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	p.factCheck(ptr)
	key := ObjectKey(obj)
	if key == "" || obj.Pkg() == nil {
		return false
	}
	f, ok := p.facts.get(factKey{pkg: obj.Pkg().Path(), obj: key, typ: fmt.Sprintf("%T", ptr)})
	if !ok {
		return false
	}
	copyFact(f, ptr)
	return true
}

// copyFact copies the stored fact value into the caller's pointer. Facts
// are pointer-typed by convention (x/tools requires it), and the typ
// component of the key guarantees src and dst share a dynamic type, so a
// shallow struct copy through reflection is exact.
func copyFact(src, dst Fact) {
	sv := reflect.ValueOf(src)
	dv := reflect.ValueOf(dst)
	if sv.Kind() != reflect.Pointer || dv.Kind() != reflect.Pointer || sv.IsNil() || dv.IsNil() {
		panic(fmt.Sprintf("analysis: facts must be non-nil pointers, got %T / %T", src, dst)) //lint:allow panicpath analyzer programming contract, mirrors x/tools behaviour
	}
	dv.Elem().Set(sv.Elem())
}
