package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// testFact carries a payload so the copy semantics are observable.
type testFact struct {
	N int
}

func (*testFact) AFact() {}

// otherFact is never declared by the test analyzer.
type otherFact struct{}

func (*otherFact) AFact() {}

const factsSrc = `package p

type Counter struct {
	Hits int64
	miss int64
}

func (c *Counter) Bump() { c.Hits++ }

var Top int
`

// checkFacts type-checks factsSrc and returns a pass over it wired to a
// fresh store.
func checkFacts(t *testing.T) (*Pass, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", factsSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{
			Name:      "facttest",
			FactTypes: []Fact{(*testFact)(nil)},
		},
		Fset:  fset,
		Files: []*ast.File{f},
		Pkg:   pkg,
		facts: NewFactStore(),
	}
	return pass, pkg
}

func lookupField(t *testing.T, pkg *types.Package, typeName, field string) *types.Var {
	t.Helper()
	tn := pkg.Scope().Lookup(typeName).(*types.TypeName)
	st := tn.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i)
		}
	}
	t.Fatalf("no field %s.%s", typeName, field)
	return nil
}

func TestObjectKeyShapes(t *testing.T) {
	_, pkg := checkFacts(t)
	cases := []struct {
		obj  types.Object
		want string
	}{
		{pkg.Scope().Lookup("Counter"), "Counter"},
		{pkg.Scope().Lookup("Top"), "Top"},
		{lookupField(t, pkg, "Counter", "Hits"), "Counter.Hits"},
		{lookupField(t, pkg, "Counter", "miss"), "Counter.miss"},
	}
	for _, c := range cases {
		if got := ObjectKey(c.obj); got != c.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", c.obj, got, c.want)
		}
	}
	// The method key goes through the receiver type.
	tn := pkg.Scope().Lookup("Counter").(*types.TypeName)
	named := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == "Bump" {
			if got := ObjectKey(m); got != "Counter.Bump" {
				t.Errorf("ObjectKey(Bump) = %q, want %q", got, "Counter.Bump")
			}
		}
	}
}

func TestPackageFactRoundTrip(t *testing.T) {
	pass, pkg := checkFacts(t)
	var missing testFact
	if pass.ImportPackageFact(pkg, &missing) {
		t.Fatal("imported a package fact before any export")
	}
	pass.ExportPackageFact(&testFact{N: 42})
	var got testFact
	if !pass.ImportPackageFact(pkg, &got) || got.N != 42 {
		t.Fatalf("package fact round trip: got %+v, ok=%v", got, got.N == 42)
	}
}

// TestObjectFactCrossView exports a fact against the syntax-checked field
// object and imports it through a distinct types.Var for the same field
// (a second check of the same source), which is exactly the situation the
// driver hits when an importer sees the field via export data.
func TestObjectFactCrossView(t *testing.T) {
	pass, pkg := checkFacts(t)
	pass.ExportObjectFact(lookupField(t, pkg, "Counter", "Hits"), &testFact{N: 7})

	_, pkg2 := checkFacts(t)
	other := lookupField(t, pkg2, "Counter", "Hits")
	if other == lookupField(t, pkg, "Counter", "Hits") {
		t.Fatal("test defeated: both views share one object")
	}
	var got testFact
	if !pass.ImportObjectFact(other, &got) || got.N != 7 {
		t.Fatalf("object fact did not survive the view change: got %+v", got)
	}
	// A different field of the same struct stays clean.
	var none testFact
	if pass.ImportObjectFact(lookupField(t, pkg2, "Counter", "miss"), &none) {
		t.Fatal("fact leaked to an unrelated field")
	}
}

func TestUndeclaredFactTypePanics(t *testing.T) {
	pass, _ := checkFacts(t)
	defer func() {
		if recover() == nil {
			t.Fatal("exporting an undeclared fact type did not panic")
		}
	}()
	pass.ExportPackageFact(&otherFact{})
}
