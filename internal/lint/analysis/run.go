package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Unit is one loaded package as the runner consumes it: syntax plus type
// information. The lint driver builds Units from loader.Packages; the
// test harness builds them directly.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Expand returns the Requires closure of analyzers in topological order
// (dependencies first, then the requested analyzers in their given
// order). It reports a cycle or a nil entry as an error.
func Expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	var (
		out   []*Analyzer
		state = make(map[*Analyzer]int) // 0 unseen, 1 visiting, 2 done
		visit func(a *Analyzer) error
	)
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer in Requires")
		}
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: Requires cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortUnits orders units so that every unit appears after the units it
// imports (directly or transitively). Import edges to packages outside
// the unit set are ignored; ties keep the input order.
func sortUnits(units []*Unit) []*Unit {
	byPath := make(map[string]*Unit, len(units))
	for _, u := range units {
		byPath[u.Pkg.Path()] = u
	}
	var (
		out   []*Unit
		state = make(map[*Unit]int)
		visit func(u *Unit)
	)
	visit = func(u *Unit) {
		if state[u] != 0 {
			return // visiting (go/types forbids import cycles) or done
		}
		state[u] = 1
		for _, imp := range u.Pkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[u] = 2
		out = append(out, u)
	}
	for _, u := range units {
		visit(u)
	}
	return out
}

// Run applies the analyzers (with their Requires closures) to every unit,
// packages in dependency order so facts exported by a dependency are
// visible when its importers are analyzed. report receives each
// diagnostic together with the unit's FileSet; results and facts are
// threaded internally. Run stops at the first analyzer error.
func Run(units []*Unit, analyzers []*Analyzer, facts *FactStore,
	report func(*Unit, Diagnostic)) error {

	ordered, err := Expand(analyzers)
	if err != nil {
		return err
	}
	if facts == nil {
		facts = NewFactStore()
	}
	for _, u := range sortUnits(units) {
		results := make(map[*Analyzer]any, len(ordered))
		for _, a := range ordered {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
				ResultOf:  resultsFor(a, results),
				facts:     facts,
				Report: func(d Diagnostic) {
					report(u, d)
				},
			}
			res, err := a.Run(pass)
			if err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, u.Pkg.Path(), err)
			}
			results[a] = res
		}
	}
	return nil
}

// resultsFor narrows the package's accumulated results to the analyzers a
// declared in Requires, so an analyzer cannot depend on an undeclared
// result by accident.
func resultsFor(a *Analyzer, all map[*Analyzer]any) map[*Analyzer]any {
	if len(a.Requires) == 0 {
		return nil
	}
	out := make(map[*Analyzer]any, len(a.Requires))
	for _, dep := range a.Requires {
		out[dep] = all[dep]
	}
	return out
}
