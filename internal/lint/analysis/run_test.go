package analysis

import (
	"go/types"
	"testing"
)

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestExpandClosureOrder(t *testing.T) {
	base := &Analyzer{Name: "base"}
	mid := &Analyzer{Name: "mid", Requires: []*Analyzer{base}}
	top := &Analyzer{Name: "top", Requires: []*Analyzer{mid, base}}
	other := &Analyzer{Name: "other", Requires: []*Analyzer{base}}

	got, err := Expand([]*Analyzer{top, other})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"base", "mid", "top", "other"}
	g := names(got)
	if len(g) != len(want) {
		t.Fatalf("Expand order %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Expand order %v, want %v", g, want)
		}
	}
}

func TestExpandCycle(t *testing.T) {
	a := &Analyzer{Name: "a"}
	b := &Analyzer{Name: "b", Requires: []*Analyzer{a}}
	a.Requires = []*Analyzer{b}
	if _, err := Expand([]*Analyzer{a}); err == nil {
		t.Fatal("Expand accepted a Requires cycle")
	}
}

func TestExpandNil(t *testing.T) {
	a := &Analyzer{Name: "a", Requires: []*Analyzer{nil}}
	if _, err := Expand([]*Analyzer{a}); err == nil {
		t.Fatal("Expand accepted a nil dependency")
	}
}

// TestSortUnits checks the dependency reorder the runner relies on for
// fact flow: go list hands packages back alphabetically, and in this repo
// the fact *consumer* (biclique) sorts before the fact *producer* (obs).
func TestSortUnits(t *testing.T) {
	obs := types.NewPackage("fastjoin/internal/obs", "obs")
	biclique := types.NewPackage("fastjoin/internal/biclique", "biclique")
	biclique.SetImports([]*types.Package{obs})
	engine := types.NewPackage("fastjoin/internal/engine", "engine")
	engine.SetImports([]*types.Package{biclique, obs})

	in := []*Unit{{Pkg: biclique}, {Pkg: engine}, {Pkg: obs}}
	got := sortUnits(in)
	pos := make(map[string]int)
	for i, u := range got {
		pos[u.Pkg.Name()] = i
	}
	if len(got) != 3 {
		t.Fatalf("sortUnits dropped units: %d of 3", len(got))
	}
	if pos["obs"] > pos["biclique"] || pos["biclique"] > pos["engine"] {
		order := make([]string, len(got))
		for i, u := range got {
			order[i] = u.Pkg.Name()
		}
		t.Fatalf("sortUnits order %v: importers must follow their imports", order)
	}
}
