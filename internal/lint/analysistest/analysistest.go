// Package analysistest is a small golden-comment harness for the lint
// analyzers, modelled on golang.org/x/tools/go/analysis/analysistest.
//
// Test packages live under testdata/src/<name>/. Expected diagnostics are
// declared in the source with trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Every diagnostic must match a want-pattern on its line and every
// want-pattern must be matched by a diagnostic; anything else fails the
// test. Because expectations are positional, the harness also verifies the
// //lint:allow escape hatch: an allowlisted line simply carries no want
// comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fastjoin/internal/lint/analysis"
	"fastjoin/internal/lint/loader"
)

// wantRE extracts the expectation list from a comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// quotedRE extracts each double-quoted pattern from an expectation list.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want-pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to each named package under testdata/src and
// compares its diagnostics against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("%s: no Go files in %s", pkg, dir)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := loader.ExportsFor(dir, imports)
	if err != nil {
		t.Fatalf("%s: resolving imports: %v", pkg, err)
	}

	info := loader.NewTypesInfo()
	conf := types.Config{Importer: loader.NewExportImporter(fset, exports)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
	}

	expects, err := collectExpectations(paths)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pkg, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				pkg, e.pattern, e.file, e.line)
		}
	}
}

// collectExpectations scans the raw sources for want comments.
func collectExpectations(paths []string) ([]*expectation, error) {
	var out []*expectation
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", path, i+1)
			}
			for _, q := range quoted {
				text, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", path, i+1, q, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return out, nil
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}
