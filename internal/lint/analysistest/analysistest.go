// Package analysistest is a small golden-comment harness for the lint
// analyzers, modelled on golang.org/x/tools/go/analysis/analysistest.
//
// Test packages live under testdata/src/<name>/. Expected diagnostics are
// declared in the source with trailing comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Every diagnostic must match a want-pattern on its line and every
// want-pattern must be matched by a diagnostic; anything else fails the
// test. Because expectations are positional, the harness also verifies the
// //lint:allow escape hatch: an allowlisted line simply carries no want
// comment.
//
// A test package may import other packages under testdata/src by their
// src-relative path (GOPATH-style, e.g. `import "spanstate/obs"`). Local
// imports are parsed and type-checked from source, analyzed first (in
// dependency order) with a shared fact store, and their own want
// comments are honoured — which is how the cross-package fact analyzers
// (spanstate, chaosclass, atomicfield) are tested end to end. The
// analyzer's Requires closure runs on every package; only the tested
// analyzer's diagnostics are compared against the want comments.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fastjoin/internal/lint/analysis"
	"fastjoin/internal/lint/loader"
)

// wantRE extracts the expectation list from a comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// quotedRE extracts each double-quoted pattern from an expectation list.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want-pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to each named package under testdata/src and
// compares its diagnostics against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

// testPkg is one parsed testdata package awaiting type-check.
type testPkg struct {
	path  string // src-relative import path, also the package key
	dir   string
	files []*ast.File
	paths []string // file names, for want collection
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	fset := token.NewFileSet()

	// Load the target package and, recursively, every local import.
	ordered, external, err := loadClosure(fset, src, pkg)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}

	exports, err := loader.ExportsFor(filepath.Join(src, pkg), external)
	if err != nil {
		t.Fatalf("%s: resolving imports: %v", pkg, err)
	}

	// Type-check in dependency order; local imports resolve to the
	// already-checked packages, everything else to export data.
	checked := make(map[string]*types.Package)
	imp := &localImporter{
		local: checked,
		fileb: loader.NewExportImporter(fset, exports),
	}
	var units []*analysis.Unit
	for _, tp := range ordered {
		info := loader.NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(tp.path, fset, tp.files, info)
		if err != nil {
			t.Fatalf("%s: typecheck: %v", tp.path, err)
		}
		checked[tp.path] = tpkg
		units = append(units, &analysis.Unit{
			Fset: fset, Files: tp.files, Pkg: tpkg, TypesInfo: info,
		})
	}

	// Run the analyzer (and its Requires closure) over the whole closure
	// with one shared fact store; keep only the tested analyzer's
	// diagnostics.
	var diags []analysis.Diagnostic
	err = analysis.Run(units, []*analysis.Analyzer{a}, analysis.NewFactStore(),
		func(_ *analysis.Unit, d analysis.Diagnostic) {
			if d.Category == a.Name {
				diags = append(diags, d)
			}
		})
	if err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
	}

	var allFiles []string
	for _, tp := range ordered {
		allFiles = append(allFiles, tp.paths...)
	}
	expects, err := collectExpectations(allFiles)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pkg, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				pkg, e.pattern, e.file, e.line)
		}
	}
}

// loadClosure parses pkg and every transitively imported testdata-local
// package, returning them dependency-first plus the union of external
// (non-local) import paths.
func loadClosure(fset *token.FileSet, src, pkg string) ([]*testPkg, []string, error) {
	var (
		ordered []*testPkg
		state   = map[string]int{} // 1 visiting, 2 done
		extSet  = map[string]bool{}
		visit   func(path string) error
	)
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		tp, imports, err := parseTestPkg(fset, src, path)
		if err != nil {
			return err
		}
		for _, im := range imports {
			if dirExists(filepath.Join(src, im)) {
				if err := visit(im); err != nil {
					return err
				}
			} else if im != "unsafe" {
				extSet[im] = true
			}
		}
		state[path] = 2
		ordered = append(ordered, tp)
		return nil
	}
	if err := visit(pkg); err != nil {
		return nil, nil, err
	}
	external := make([]string, 0, len(extSet))
	for p := range extSet {
		external = append(external, p)
	}
	sort.Strings(external)
	return ordered, external, nil
}

// parseTestPkg parses the Go files of one testdata package.
func parseTestPkg(fset *token.FileSet, src, path string) (*testPkg, []string, error) {
	dir := filepath.Join(src, path)
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(paths)
	tp := &testPkg{path: path, dir: dir, paths: paths}
	importSet := map[string]bool{}
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		tp.files = append(tp.files, f)
		for _, imp := range f.Imports {
			if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[ip] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return tp, imports, nil
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// localImporter resolves testdata-local packages to their source-checked
// types.Package and delegates everything else to export data.
type localImporter struct {
	local map[string]*types.Package
	fileb types.ImporterFrom
}

func (li *localImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *localImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := li.local[path]; ok {
		return p, nil
	}
	return li.fileb.ImportFrom(path, dir, mode)
}

// collectExpectations scans the raw sources for want comments.
func collectExpectations(paths []string) ([]*expectation, error) {
	var out []*expectation
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", path, i+1)
			}
			for _, q := range quoted {
				text, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", path, i+1, q, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return out, nil
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}
