package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"fastjoin/internal/lint/analysis"
)

// AtomicFieldFact marks a struct field as accessed through sync/atomic
// somewhere in the codebase. It is an object fact: once exported by the
// declaring package's pass, importing packages see it too, so a bare
// access in another package is caught even when all the atomic accesses
// live elsewhere.
type AtomicFieldFact struct{}

// AFact marks AtomicFieldFact as a fact.
func (*AtomicFieldFact) AFact() {}

// AtomicField flags mixed atomic/plain access to a struct field: a field
// whose address is passed to a sync/atomic function anywhere must be
// accessed through sync/atomic everywhere. A plain read racing an
// atomic.AddInt64 is a data race the race detector only catches when the
// schedule cooperates, and it is the one mixed-access shape lockguard
// does not cover (no mutex is involved at all).
//
// Fields of the typed atomic kinds (atomic.Int64 &c.) enforce atomicity
// by construction and are out of scope. Intentional pre-publication
// writes (constructor init before any goroutine exists) are silenced
// with //lint:allow atomicfield <reason>.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flags struct fields accessed both through sync/atomic and with plain " +
		"reads/writes; mixed access is a data race the typed atomics would prevent",
	Run:       runAtomicField,
	FactTypes: []analysis.Fact{(*AtomicFieldFact)(nil)},
}

// atomicFns are the sync/atomic functions whose first argument is the
// address of the accessed word.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicField(pass *analysis.Pass) (any, error) {
	// Pass 1: find every field whose address feeds a sync/atomic call and
	// export the fact, plus remember the exact selector nodes that are
	// those atomic operands (they are the sanctioned accesses).
	atomicOperand := make(map[*ast.SelectorExpr]bool)
	local := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicCall(pass, call) {
				return true
			}
			sel := addrOfField(pass, call.Args[0])
			if sel == nil {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil {
				return true
			}
			atomicOperand[sel] = true
			local[fv] = true
			pass.ExportObjectFact(fv, &AtomicFieldFact{})
			return true
		})
	}

	// Pass 2: every other access to an atomic field — locally discovered
	// or marked by a fact from another package — is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperand[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil {
				return true
			}
			isAtomic := local[fv]
			if !isAtomic {
				var fact AtomicFieldFact
				isAtomic = pass.ImportObjectFact(fv, &fact)
			}
			if isAtomic {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere but plainly here; use the atomic API everywhere (or a typed atomic), or justify with //lint:allow atomicfield",
					fv.Name())
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call is sync/atomic.<addr-taking fn>(...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFns[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addrOfField unwraps &x.f (possibly parenthesized) to the selector.
func addrOfField(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(ue.X).(*ast.SelectorExpr)
	return sel
}

// fieldVar resolves a selector to the struct field it denotes, or nil
// for non-field selections (methods, package members, locals).
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
