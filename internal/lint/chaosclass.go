package lint

import (
	"go/ast"

	"fastjoin/internal/lint/analysis"
)

// ChaosRegistryFact is the package fact chaosclass exports from every
// package that declares a ChaosClassify function: the set of message
// types the classifier's type switch registers, keyed "pkgpath.Type".
type ChaosRegistryFact struct {
	Types map[string]bool
}

// AFact marks ChaosRegistryFact as a fact.
func (*ChaosRegistryFact) AFact() {}

// chaosClassifyFunc is the function chaosclass treats as the fault-class
// registry: its top-level type switch enumerates every message type the
// chaos layer knows how to scope.
const chaosClassifyFunc = "ChaosClassify"

// ChaosClass enforces the chaos suite's coverage invariant: every
// message type that crosses the engine's fault-injection seam (a value
// handed to Collector.Emit/EmitDirect) must be registered with a chaos
// class — i.e. appear as a case in a ChaosClassify type switch. A new
// message type (a future cluster-mode frame, a new control report) that
// skips registration would silently ride the injector's default class
// and bypass the differential suite's fault-eligibility matrix.
//
// Types declared in packages without a ChaosClassify registry (raw
// stream tuples, engine-internal values) are out of scope: the check
// binds exactly the packages that opted into classification.
var ChaosClass = &analysis.Analyzer{
	Name: "chaosclass",
	Doc: "flags message types sent through the engine emit seam that are not " +
		"registered in a ChaosClassify type switch; unregistered types bypass " +
		"the chaos suite's fault-eligibility matrix",
	Run:       runChaosClass,
	Requires:  []*analysis.Analyzer{EmitSites},
	FactTypes: []analysis.Fact{(*ChaosRegistryFact)(nil)},
}

func runChaosClass(pass *analysis.Pass) (any, error) {
	if reg := extractChaosRegistry(pass); reg != nil {
		pass.ExportPackageFact(reg)
	}
	// Registries visible here: this package's own (if any) plus every
	// direct import's. A type is checkable when its declaring package
	// carries a registry; it must then appear in at least one visible
	// registry.
	visible := make(map[string]*ChaosRegistryFact)
	var self ChaosRegistryFact
	if pass.ImportPackageFact(pass.Pkg, &self) {
		visible[pass.Pkg.Path()] = &self
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact ChaosRegistryFact
		if pass.ImportPackageFact(imp, &fact) {
			visible[imp.Path()] = &fact
		}
	}
	if len(visible) == 0 {
		return nil, nil
	}
	idx := pass.ResultOf[EmitSites].(*EmitIndex)
	for _, send := range idx.Sends {
		named := namedOf(send.Type)
		if named == nil || named.Obj().Pkg() == nil {
			continue // interfaces, built-ins: not classifiable statically
		}
		declPkg := named.Obj().Pkg().Path()
		if _, bound := visible[declPkg]; !bound {
			continue // declaring package has no registry: out of scope
		}
		key := declPkg + "." + named.Obj().Name()
		registered := false
		for _, reg := range visible {
			if reg.Types[key] {
				registered = true
				break
			}
		}
		if !registered {
			pass.Reportf(send.Value.Pos(),
				"%s crosses the fault-injection seam but has no case in %s; register it with a chaos class so the differential suite can scope faults",
				named.Obj().Name(), chaosClassifyFunc)
		}
	}
	return nil, nil
}

// extractChaosRegistry collects the case types of the package's
// ChaosClassify type switch, if it declares one.
func extractChaosRegistry(pass *analysis.Pass) *ChaosRegistryFact {
	var reg *ChaosRegistryFact
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != chaosClassifyFunc || fd.Body == nil {
				continue
			}
			ts := firstTypeSwitch(fd.Body)
			if ts == nil {
				pass.Reportf(fd.Pos(),
					"%s has no type switch; chaosclass cannot extract the registered message types",
					chaosClassifyFunc)
				continue
			}
			if reg == nil {
				reg = &ChaosRegistryFact{Types: make(map[string]bool)}
			}
			for _, stmt := range ts.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					tv, ok := pass.TypesInfo.Types[e]
					if !ok {
						continue
					}
					named := namedOf(tv.Type)
					if named == nil || named.Obj().Pkg() == nil {
						continue
					}
					reg.Types[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = true
				}
			}
		}
	}
	return reg
}

// firstTypeSwitch returns the first type switch in body, at any depth.
func firstTypeSwitch(body *ast.BlockStmt) *ast.TypeSwitchStmt {
	var out *ast.TypeSwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if ts, ok := n.(*ast.TypeSwitchStmt); ok {
			out = ts
			return false
		}
		return true
	})
	return out
}
