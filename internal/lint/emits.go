package lint

import (
	"go/ast"
	"go/types"

	"fastjoin/internal/lint/analysis"
)

// EmitIndex is the result of the EmitSites analyzer: every protocol emit
// site in one package, pre-resolved so the protocol-aware analyzers
// (spanstate, chaosclass) share a single AST walk.
type EmitIndex struct {
	// Events are the obs.Event composite literals (tracer emit sites).
	Events []EventLit
	// Sends are the values handed to engine Collector.Emit/EmitDirect —
	// the seam every message crosses before fault injection.
	Sends []SendSite
}

// EventLit is one obs.Event composite literal.
type EventLit struct {
	// Pos is the literal's position (the Kind value's position when a
	// Kind field is present, so diagnostics land on the kind).
	Pos ast.Node
	// Kind is the name of the Kind constant the literal's Kind field
	// resolves to ("" when the literal has no Kind field or the field is
	// not a named constant).
	Kind string
	// HasKindField reports whether a Kind: key is present at all.
	HasKindField bool
	// Func is the enclosing function declaration (nil at package scope).
	Func *ast.FuncDecl
	// Block is the innermost *ast.BlockStmt whose statement list
	// (transitively through expression statements) contains the literal;
	// two literals with the same Block execute in source order.
	Block *ast.BlockStmt
}

// SendSite is one value expression passed to Collector.Emit/EmitDirect.
type SendSite struct {
	// Value is the argument expression carrying the message.
	Value ast.Expr
	// Type is its static type.
	Type types.Type
}

// EmitSites indexes the package's protocol emit sites. It reports
// nothing itself; spanstate and chaosclass consume its result via
// Pass.ResultOf.
var EmitSites = &analysis.Analyzer{
	Name: "emitsites",
	Doc: "internal: indexes obs.Event literals and engine Collector emit calls " +
		"for the protocol-aware analyzers",
	Run: runEmitSites,
}

func runEmitSites(pass *analysis.Pass) (any, error) {
	idx := &EmitIndex{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			var blocks []*ast.BlockStmt
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case nil:
					return false
				case *ast.BlockStmt:
					blocks = append(blocks, n)
					return true
				case *ast.CompositeLit:
					if lit := eventLit(pass, n, fd, innermost(blocks, n)); lit != nil {
						idx.Events = append(idx.Events, *lit)
					}
				case *ast.CallExpr:
					if site := collectorSend(pass, n); site != nil {
						idx.Sends = append(idx.Sends, *site)
					}
				}
				return true
			})
		}
	}
	return idx, nil
}

// innermost returns the innermost block (of the blocks opened so far in
// this declaration walk) that encloses n.
func innermost(blocks []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range blocks {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			best = b // blocks appear outermost-first, so the last hit wins
		}
	}
	return best
}

// eventLit recognizes a composite literal of the obs Event type and
// resolves its Kind field to a constant name.
func eventLit(pass *analysis.Pass, lit *ast.CompositeLit, fd *ast.FuncDecl, block *ast.BlockStmt) *EventLit {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Event" || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return nil
	}
	out := &EventLit{Pos: lit, Func: fd, Block: block}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		out.HasKindField = true
		out.Pos = kv.Value
		if c := constName(pass, kv.Value); c != "" {
			out.Kind = c
		}
	}
	return out
}

// constName resolves an expression to the name of the declared constant
// it references (KindTrigger, obs.KindTrigger, ...), or "".
func constName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// collectorSend recognizes out.Emit(stream, value) and
// out.EmitDirect(stream, task, value) calls on the engine Collector and
// returns the value argument.
func collectorSend(pass *analysis.Pass, call *ast.CallExpr) *SendSite {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var argIdx int
	switch sel.Sel.Name {
	case "Emit":
		argIdx = 1
	case "EmitDirect":
		argIdx = 2
	default:
		return nil
	}
	if len(call.Args) <= argIdx {
		return nil
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return nil
	}
	named := namedOf(recv.Type)
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Collector" || obj.Pkg() == nil || obj.Pkg().Name() != "engine" {
		return nil
	}
	arg := call.Args[argIdx]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return nil
	}
	return &SendSite{Value: arg, Type: tv.Type}
}

// namedOf unwraps pointers to a named type, or returns nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
