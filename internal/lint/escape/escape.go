// Package escape implements the compiler-backed escape gate: it parses
// the heap-escape diagnostics `go build -gcflags=-m` emits, attributes
// them to functions annotated `//lint:hotpath`, and diffs the result
// against a checked-in baseline so a new allocation on a hot path fails
// CI instead of quietly landing.
//
// Keys are (file, function, message, count) — deliberately without line
// numbers, so editing an unrelated part of a file does not churn the
// baseline; only a genuinely new escape (or one more occurrence of an
// existing message inside the same function) trips the gate.
package escape

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Region is one //lint:hotpath-annotated function: the file the compiler
// will name in its diagnostics and the function's line range.
type Region struct {
	File       string
	Func       string
	Start, End int
}

// Diag is one compiler diagnostic of interest.
type Diag struct {
	File string
	Line int
	Msg  string
}

// Finding is a heap escape attributed to a hotpath function.
type Finding struct {
	File string
	Func string
	Msg  string
}

// hotpathMarker is the annotation the gate looks for in a function's doc
// comment (or on any line of it).
const hotpathMarker = "//lint:hotpath"

// diagRE matches `file.go:line:col: message` diagnostic lines.
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+)$`)

// escapeMsg reports whether a -m diagnostic describes a heap escape (as
// opposed to inlining decisions, leak annotations &c.).
func escapeMsg(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// ParseDiagnostics extracts the heap-escape diagnostics from `go build
// -gcflags=-m` output. Package header lines (`# pkg`) and non-escape
// diagnostics are ignored.
func ParseDiagnostics(r io.Reader) ([]Diag, error) {
	var out []Diag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(sc.Text())
		if m == nil || !escapeMsg(m[3]) {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		out = append(out, Diag{File: m[1], Line: line, Msg: m[3]})
	}
	return out, sc.Err()
}

// HotpathsDir scans the Go files of one package directory for
// //lint:hotpath functions. rel is the directory path as the compiler
// will print it (normally the package dir relative to the working
// directory); region files are recorded as rel/<file>.go.
func HotpathsDir(dir, rel string) ([]Region, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	var out []Region
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", p, err)
		}
		name := filepath.ToSlash(filepath.Join(rel, filepath.Base(p)))
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
					annotated = true
					break
				}
			}
			if !annotated {
				continue
			}
			out = append(out, Region{
				File:  name,
				Func:  funcName(fd),
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

// funcName renders a declaration as Func or (Recv).Func, matching the
// compiler's method naming closely enough for humans reading the diff.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + exprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// exprString renders the receiver type expression compactly.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + exprString(t.X)
	case *ast.IndexExpr:
		return exprString(t.X)
	default:
		return "?"
	}
}

// Attribute maps each diagnostic inside a hotpath region to a Finding;
// diagnostics elsewhere are dropped.
func Attribute(diags []Diag, regions []Region) []Finding {
	var out []Finding
	for _, d := range diags {
		for _, r := range regions {
			if d.File == r.File && d.Line >= r.Start && d.Line <= r.End {
				out = append(out, Finding{File: r.File, Func: r.Func, Msg: d.Msg})
				break
			}
		}
	}
	return out
}

// Counts folds findings into a multiset keyed by (file, func, msg).
func Counts(findings []Finding) map[Finding]int {
	out := make(map[Finding]int, len(findings))
	for _, f := range findings {
		out[f]++
	}
	return out
}

// Format renders a counts multiset as sorted baseline lines:
//
//	file<TAB>func<TAB>count<TAB>message
func Format(counts map[Finding]int) string {
	lines := make([]string, 0, len(counts))
	for f, n := range counts {
		lines = append(lines, fmt.Sprintf("%s\t%s\t%d\t%s", f.File, f.Func, n, f.Msg))
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// ParseBaseline reads baseline lines back into a counts multiset. Blank
// lines and #-comments are skipped.
func ParseBaseline(r io.Reader) (map[Finding]int, error) {
	out := make(map[Finding]int)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want 4 tab-separated fields, got %d", lineNo, len(parts))
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[2])
		}
		out[Finding{File: parts[0], Func: parts[1], Msg: parts[3]}] = n
	}
	return out, sc.Err()
}

// Diff compares current escapes against the baseline. New returns the
// findings absent from (or more numerous than) the baseline — these fail
// the gate. Stale returns baseline entries the current build no longer
// produces — these merit a baseline refresh but do not fail.
func Diff(current, baseline map[Finding]int) (fresh, stale []Finding) {
	for f, n := range current {
		if n > baseline[f] {
			fresh = append(fresh, f)
		}
	}
	for f, n := range baseline {
		if current[f] < n {
			stale = append(stale, f)
		}
	}
	sortFindings(fresh)
	sortFindings(stale)
	return fresh, stale
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Func != fs[j].Func {
			return fs[i].Func < fs[j].Func
		}
		return fs[i].Msg < fs[j].Msg
	})
}
