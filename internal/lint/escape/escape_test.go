package escape

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const mOutput = `# fastjoin/internal/window
internal/window/chunked.go:96:6: can inline (*chunkStore).Windowed
internal/window/chunked.go:105:10: moved to heap: t
internal/window/chunked.go:110:12: make([]byte, 64) escapes to heap
internal/window/chunked.go:300:3: leaking param: key
garbage line without a position
internal/window/other.go:12:2: new(entry) escapes to heap
`

func TestParseDiagnostics(t *testing.T) {
	diags, err := ParseDiagnostics(strings.NewReader(mOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []Diag{
		{File: "internal/window/chunked.go", Line: 105, Msg: "moved to heap: t"},
		{File: "internal/window/chunked.go", Line: 110, Msg: "make([]byte, 64) escapes to heap"},
		{File: "internal/window/other.go", Line: 12, Msg: "new(entry) escapes to heap"},
	}
	if len(diags) != len(want) {
		t.Fatalf("parsed %d diagnostics %v, want %d", len(diags), diags, len(want))
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("diag %d = %+v, want %+v", i, diags[i], want[i])
		}
	}
}

const hotpathSrc = `package p

// Add is hot.
//
//lint:hotpath
func (s *Store) Add(x int) {
	_ = x
}

// Cold has no annotation.
func (s *Store) Cold() {}

//lint:hotpath
func Top() {}

type Store struct{}
`

func TestHotpathsDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(hotpathSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file with an annotation must be ignored.
	testSrc := "package p\n\n//lint:hotpath\nfunc helper() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "p_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	regions, err := HotpathsDir(dir, "pkg/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("found %d regions %v, want 2", len(regions), regions)
	}
	add, top := regions[0], regions[1]
	if add.Func != "(*Store).Add" || add.File != "pkg/p/p.go" || add.Start >= add.End {
		t.Errorf("bad Add region: %+v", add)
	}
	if top.Func != "Top" {
		t.Errorf("bad Top region: %+v", top)
	}
}

func TestAttribute(t *testing.T) {
	regions := []Region{{File: "a.go", Func: "F", Start: 10, End: 20}}
	diags := []Diag{
		{File: "a.go", Line: 15, Msg: "moved to heap: x"}, // inside
		{File: "a.go", Line: 25, Msg: "moved to heap: y"}, // outside range
		{File: "b.go", Line: 15, Msg: "moved to heap: z"}, // other file
	}
	got := Attribute(diags, regions)
	if len(got) != 1 || got[0] != (Finding{File: "a.go", Func: "F", Msg: "moved to heap: x"}) {
		t.Fatalf("Attribute = %+v", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	counts := Counts([]Finding{
		{File: "a.go", Func: "F", Msg: "moved to heap: x"},
		{File: "a.go", Func: "F", Msg: "moved to heap: x"},
		{File: "b.go", Func: "(*T).M", Msg: "make([]int, n) escapes to heap"},
	})
	text := "# comment\n\n" + Format(counts)
	back, err := ParseBaseline(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(counts) {
		t.Fatalf("round trip lost entries: %v vs %v", back, counts)
	}
	for f, n := range counts {
		if back[f] != n {
			t.Fatalf("round trip count for %+v = %d, want %d", f, back[f], n)
		}
	}
}

// TestDiffSyntheticEscape pins the gate semantics: a brand-new escape and
// a count increase both fail; a vanished entry is stale, not fatal.
func TestDiffSyntheticEscape(t *testing.T) {
	old := Finding{File: "a.go", Func: "F", Msg: "moved to heap: x"}
	gone := Finding{File: "a.go", Func: "F", Msg: "moved to heap: old"}
	brand := Finding{File: "a.go", Func: "F", Msg: "moved to heap: leak"}

	baseline := map[Finding]int{old: 1, gone: 1}
	current := map[Finding]int{old: 2, brand: 1}

	fresh, stale := Diff(current, baseline)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want the new escape and the count increase", fresh)
	}
	if len(stale) != 1 || stale[0] != gone {
		t.Fatalf("stale = %v, want the vanished entry", stale)
	}
	// Identical states are quiet in both directions.
	fresh, stale = Diff(baseline, baseline)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("self-diff not empty: fresh=%v stale=%v", fresh, stale)
	}
}
