package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"fastjoin/internal/lint/analysis"
)

// GoroutineStop flags goroutine launches whose body spins in an unbounded
// loop with no visible stop signal. Spouts, bolt executors, tickers and
// connection pumps must all exit when the cluster's done/stop channels
// close; a goroutine that only ever waits on work channels leaks past
// Stop() and keeps queues (and the φ load statistics) alive after the
// topology is gone.
//
// A launch is flagged when the launched body — a func literal or a
// same-package function/method — contains a `for { ... }` loop (no
// condition, no range) and nowhere receives from a shutdown-shaped signal:
// a channel or context whose expression mentions done/stop/quit/close/
// shutdown/cancel/ctx/exit, e.g. `<-c.done`, `case <-ctx.Done():`. Ranging
// over a channel also counts as bounded (it ends when the channel closes).
//
// Justified exceptions carry //lint:allow goroutinestop <reason>.
var GoroutineStop = &analysis.Analyzer{
	Name: "goroutinestop",
	Doc: "flags go statements whose body loops forever without selecting on a " +
		"done/stop/context signal; such goroutines leak past cluster Stop()",
	Run: runGoroutineStop,
}

// stopNameRE matches expressions that read as shutdown signals.
var stopNameRE = regexp.MustCompile(`(?i)done|stop|quit|exit|clos|shutdown|cancel|ctx`)

func runGoroutineStop(pass *analysis.Pass) (any, error) {
	decls := funcDeclIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, decls, g.Call)
			if body == nil {
				return true // dynamic or cross-package target: out of scope
			}
			if !hasUnboundedLoop(body) || hasStopSignal(pass, decls, body, nil) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine runs an unbounded loop with no done/stop/context signal; it will leak past shutdown — select on a stop channel inside the loop")
			return true
		})
	}
	return nil, nil
}

// funcDeclIndex maps every function and method declared in the package to
// its declaration, so `go c.run()` launches can be followed.
func funcDeclIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// launchedBody resolves the body a go statement will execute, when it is
// statically known within this package.
func launchedBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasUnboundedLoop reports whether body contains a `for {}`-style loop:
// no condition and no range clause.
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			found = true
			return false
		}
		return !found
	})
	return found
}

// stopSignalDepth bounds the same-package call chain hasStopSignal
// follows out of a goroutine body.
const stopSignalDepth = 4

// hasStopSignal reports whether body anywhere receives from a
// shutdown-shaped expression or ranges over a channel. The search
// follows calls to same-package functions and methods (depth-limited,
// cycle-safe): the loop's stop condition often lives in a helper — e.g.
// a pump that does `for range ch` over a closable channel and reports
// exhaustion to the looping caller — and treating the helper as opaque
// produced false positives on exactly that shape.
func hasStopSignal(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if visited == nil {
		visited = make(map[*ast.BlockStmt]bool)
	}
	if visited[body] || len(visited) > stopSignalDepth {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && stopNameRE.MatchString(types.ExprString(n.X)) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if callee := calleeBody(pass, decls, n); callee != nil &&
				hasStopSignal(pass, decls, callee, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeBody resolves a call to the body of a same-package function or
// method declaration, or nil.
func calleeBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
		if fd := decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}
