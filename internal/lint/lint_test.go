package lint

import (
	"testing"

	"fastjoin/internal/lint/analysistest"
)

func TestUnboundedChan(t *testing.T) {
	analysistest.Run(t, "testdata", UnboundedChan, "unboundedchan")
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", LockGuard, "lockguard")
}

func TestGoroutineStop(t *testing.T) {
	analysistest.Run(t, "testdata", GoroutineStop, "goroutinestop")
}

func TestPanicPath(t *testing.T) {
	analysistest.Run(t, "testdata", PanicPath, "panicpath", "panicpath/cmd")
}

func TestSpanState(t *testing.T) {
	analysistest.Run(t, "testdata", SpanState, "spanstate")
}

func TestChaosClass(t *testing.T) {
	analysistest.Run(t, "testdata", ChaosClass, "chaosclass", "chaosclassbad")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", AtomicField, "atomicfield")
}
