// Package loader type-checks Go packages for the fastjoin-lint driver
// without depending on golang.org/x/tools/go/packages.
//
// It shells out to the go tool twice: once to enumerate the target
// packages, and once with -deps -export to obtain compiled export data for
// every transitive dependency (standard library included). Targets are then
// parsed with full comments and type-checked against that export data, so
// analyzers see both syntax and types for the code under analysis while
// dependencies stay cheap. Everything works from the local build cache —
// no network, no GOPATH assumptions.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list -json=...` in dir with the given extra arguments and
// decodes the concatenated JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load enumerates the packages matching patterns (relative to dir),
// type-checks them and returns them in `go list` order. Overlapping
// patterns that resolve to the same package (`./internal/lint` next to
// `fastjoin/internal/lint`) are deduplicated; packages with no non-test
// Go files (external-test-only directories) are skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	seen := make(map[string]bool, len(targets))
	var pkgs []*Package
	for _, e := range targets {
		if len(e.GoFiles) == 0 || seen[e.ImportPath] {
			continue
		}
		seen[e.ImportPath] = true
		p, err := checkPackage(fset, imp, e)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportsFor builds an import-path -> export-data map covering the given
// packages and all their transitive dependencies. The lint test harness
// uses it to type-check testdata packages against the real standard
// library.
func ExportsFor(dir string, pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	return exportMap(dir, pkgs)
}

func exportMap(dir string, patterns []string) (map[string]string, error) {
	// -e tolerates targets that fail to compile: their dependencies still
	// yield export data, and the type error surfaces from checkPackage as
	// a reported diagnostic instead of an opaque go-list failure.
	deps, err := goList(dir, append([]string{"-e", "-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// checkPackage parses and type-checks one target package.
func checkPackage(fset *token.FileSet, imp types.ImporterFrom, e listEntry) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		path := filepath.Join(e.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Name:       e.Name,
		Dir:        e.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter resolves imports from compiled export data via the
// standard gc importer, with a shared cache across all target packages.
type exportImporter struct {
	gc types.ImporterFrom
}

// NewExportImporter wraps an export-data map in a types importer.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	return newExportImporter(fset, exports)
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		panic("loader: gc importer does not implement types.ImporterFrom") //lint:allow panicpath toolchain invariant: the gc importer always implements ImporterFrom
	}
	return &exportImporter{gc: gc}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return ei.gc.ImportFrom(path, dir, mode)
}
