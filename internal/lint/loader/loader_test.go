package loader

import (
	"strings"
	"testing"
)

// TestLoadSelf loads this package through the export-data pipeline and
// checks that syntax, types and comments all survive.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "loader" {
		t.Errorf("package name = %q, want loader", p.Name)
	}
	if len(p.Syntax) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatal("loaded package missing syntax or type information")
	}
	// Cross-module and stdlib imports must resolve from export data.
	if p.Types.Scope().Lookup("Load") == nil {
		t.Error("type information lacks the Load function")
	}
	comments := 0
	for _, f := range p.Syntax {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Error("comments were not preserved; //lint:allow directives would be lost")
	}
}

// TestLoadTransitive loads a package whose dependencies include other
// module packages, exercising in-module export data.
func TestLoadTransitive(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/lint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "fastjoin/internal/lint" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("All") == nil {
		t.Error("type information lacks lint.All")
	}
}

// TestLoadExternalTestOnly targets a directory holding only external test
// files: go list reports it with no GoFiles, and Load must skip it
// rather than panic or fabricate an empty package.
func TestLoadExternalTestOnly(t *testing.T) {
	pkgs, err := Load(".", "./testdata/xtestonly")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("Load returned %d packages for an external-test-only directory, want 0", len(pkgs))
	}
}

// TestLoadTypeError targets a package that parses but fails type-check:
// the failure must come back as an error naming the type-check stage, not
// as a panic and not as a go-list enumeration failure.
func TestLoadTypeError(t *testing.T) {
	pkgs, err := Load(".", "./testdata/broken")
	if err == nil {
		t.Fatalf("Load succeeded on a type-broken package: %+v", pkgs)
	}
	if !strings.Contains(err.Error(), "typecheck") {
		t.Fatalf("Load error %q does not identify the typecheck stage", err)
	}
}

// TestLoadDeduplicates passes the same package under two spellings; Load
// must type-check and return it once.
func TestLoadDeduplicates(t *testing.T) {
	pkgs, err := Load(".", ".", "fastjoin/internal/lint/loader")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		paths := make([]string, len(pkgs))
		for i, p := range pkgs {
			paths[i] = p.ImportPath
		}
		t.Fatalf("Load returned %v, want the loader package exactly once", paths)
	}
}
