// Package broken parses but does not type-check; the loader must surface
// the type error instead of panicking.
package broken

func oops() int {
	var s string
	return s + 1
}
