// Package xtestonly_test exists to prove the loader skips packages with
// no non-test Go files instead of panicking on an empty file list.
package xtestonly_test

import "testing"

func TestNothing(t *testing.T) {}
