package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"fastjoin/internal/lint/analysis"
)

// LockGuard flags struct fields that are accessed both while a mutex of
// the same struct is held and at least once without it, anywhere in the
// package's methods. That mixed pattern is the classic shape of a data
// race on routing tables, migration state and metrics aggregates: the
// author clearly considered the field shared (it has guarded accesses),
// yet some path reaches it bare.
//
// The analysis is a package-local heuristic, not a proof:
//
//   - Only methods of the struct are examined, so constructors (which
//     publish nothing) don't count as unguarded accesses.
//   - Heldness is positional within a method body: a Lock() earlier in
//     the source marks later accesses held until the matching Unlock();
//     a deferred Unlock holds to the end of the method.
//   - Fields whose types synchronize themselves (sync.*, sync/atomic.*,
//     channels, or structs carrying their own mutex) are exempt.
//
// False positives are silenced with //lint:allow lockguard <reason>.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flags struct fields accessed both with and without the struct's own " +
		"mutex held; mixed access is the shape of a data race",
	Run: runLockGuard,
}

// fieldKey identifies one field of one named struct type.
type fieldKey struct {
	typ   *types.Named
	field string
}

// fieldUse is one access with its computed heldness.
type fieldUse struct {
	pos  token.Pos
	held bool
}

func runLockGuard(pass *analysis.Pass) (any, error) {
	guarded := guardedStructs(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	uses := make(map[fieldKey][]fieldUse)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := receiverVar(pass, fd)
			if recv == nil {
				continue
			}
			named := namedRecvType(recv.Type())
			if named == nil {
				continue
			}
			mutexes, ok := guarded[named]
			if !ok {
				continue
			}
			collectMethodUses(pass, fd, recv, named, mutexes, uses)
		}
	}
	report(pass, uses)
	return nil, nil
}

// guardedStructs finds the named struct types declared in this package
// that carry at least one sync.Mutex/sync.RWMutex field, keyed to the set
// of mutex field names.
func guardedStructs(pass *analysis.Pass) map[*types.Named]map[string]bool {
	out := make(map[*types.Named]map[string]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mutexes map[string]bool
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				if mutexes == nil {
					mutexes = make(map[string]bool)
				}
				mutexes[f.Name()] = true
			}
		}
		if mutexes != nil {
			out[named] = mutexes
		}
	}
	return out
}

// collectMethodUses walks one method body, computing positional heldness
// from Lock/Unlock calls on the receiver's mutex fields and recording
// every access to the struct's plain data fields.
func collectMethodUses(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var,
	named *types.Named, mutexes map[string]bool, uses map[fieldKey][]fieldUse) {

	type lockEvent struct {
		pos   token.Pos
		delta int // +1 Lock/RLock, -1 Unlock/RUnlock
	}
	var events []lockEvent
	type access struct {
		pos   token.Pos
		field string
	}
	var accesses []access

	st := named.Underlying().(*types.Struct)
	fieldType := make(map[string]types.Type, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldType[st.Field(i).Name()] = st.Field(i).Type()
	}

	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: it never ends the held
			// span, so skip the call but still walk its arguments.
			if isMutexOp(pass, n.Call, recv, mutexes) != 0 {
				return false
			}
		case *ast.CallExpr:
			if d := isMutexOp(pass, n, recv, mutexes); d != 0 {
				events = append(events, lockEvent{n.Pos(), d})
				return false
			}
		case *ast.SelectorExpr:
			x, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[x] != recv {
				return true
			}
			name := n.Sel.Name
			ft, ok := fieldType[name]
			if !ok || mutexes[name] || isSelfSynchronized(ft, 0) {
				return true
			}
			accesses = append(accesses, access{n.Sel.Pos(), name})
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := func(pos token.Pos) bool {
		depth := 0
		for _, ev := range events {
			if ev.pos > pos {
				break
			}
			depth += ev.delta
			if depth < 0 {
				depth = 0
			}
		}
		return depth > 0
	}
	for _, a := range accesses {
		k := fieldKey{named, a.field}
		uses[k] = append(uses[k], fieldUse{a.pos, held(a.pos)})
	}
}

// report emits one diagnostic per unguarded access of every field that has
// mixed guarded/unguarded accesses across the package.
func report(pass *analysis.Pass, uses map[fieldKey][]fieldUse) {
	keys := make([]fieldKey, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].typ != keys[j].typ {
			return keys[i].typ.Obj().Name() < keys[j].typ.Obj().Name()
		}
		return keys[i].field < keys[j].field
	})
	for _, k := range keys {
		var anyHeld, anyBare bool
		for _, u := range uses[k] {
			if u.held {
				anyHeld = true
			} else {
				anyBare = true
			}
		}
		if !anyHeld || !anyBare {
			continue
		}
		us := uses[k]
		sort.Slice(us, func(i, j int) bool { return us[i].pos < us[j].pos })
		for _, u := range us {
			if u.held {
				continue
			}
			pass.Reportf(u.pos,
				"field %s of %s is accessed elsewhere under the struct's mutex but not here; hold the lock or annotate why this access is safe",
				k.field, k.typ.Obj().Name())
		}
	}
}

// isMutexOp classifies recv.<mutexfield>.Lock/RLock (+1) and
// Unlock/RUnlock (-1) calls; anything else returns 0.
func isMutexOp(pass *analysis.Pass, call *ast.CallExpr, recv *types.Var, mutexes map[string]bool) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return 0
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	x, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[x] != recv || !mutexes[inner.Sel.Name] {
		return 0
	}
	return delta
}

// receiverVar returns the receiver's types.Var, or nil for unnamed
// receivers.
func receiverVar(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[names[0]].(*types.Var)
	return v
}

// namedRecvType unwraps a receiver type (possibly a pointer) to its named
// type.
func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSelfSynchronized reports whether values of type t coordinate their own
// concurrent access, making the holder's mutex irrelevant: sync and
// sync/atomic types, channels, and (transitively) structs built only from
// such types or carrying their own mutex.
func isSelfSynchronized(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
		return isSelfSynchronized(t.Underlying(), depth+1)
	case *types.Pointer:
		return isSelfSynchronized(t.Elem(), depth+1)
	case *types.Array:
		return isSelfSynchronized(t.Elem(), depth+1)
	case *types.Chan:
		return true
	case *types.Struct:
		if t.NumFields() == 0 {
			return true
		}
		all := true
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if isMutexType(f.Type()) {
				return true // guards itself
			}
			if !isSelfSynchronized(f.Type(), depth+1) {
				all = false
			}
		}
		return all
	}
	return false
}
