package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"fastjoin/internal/lint/analysis"
)

// PanicPath flags panic calls in library packages. A panic that escapes a
// bolt goroutine takes the whole join instance with it — the engine
// isolates and counts these, but every counted panic is load the paper's
// protocol silently stops serving. Library paths should return errors;
// panics are reserved for genuine programming-contract violations.
//
// Two conventional escapes need no annotation:
//
//   - package main (cmd binaries own their process lifetime), and
//   - functions named Must* (the Go-wide "panic on error" convention,
//     e.g. MustBuild).
//
// Everything else must either become a returned error or carry an explicit
// //lint:allow panicpath <reason> stating the invariant it guards.
var PanicPath = &analysis.Analyzer{
	Name: "panicpath",
	Doc: "flags panic(...) reachable in non-main, non-test packages; return an " +
		"error, use a Must* wrapper, or allowlist a true invariant",
	Run: runPanicPath,
}

func runPanicPath(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in library path: return an error the caller can handle, or annotate the invariant with //lint:allow panicpath <reason>")
				return true
			})
		}
	}
	return nil, nil
}
