package lint

import (
	"go/ast"
	"sort"
	"strings"

	"fastjoin/internal/lint/analysis"
)

// SpanRule is the statically extracted lifecycle rule of one trace-event
// kind, mirroring the obs package's KindRule by constant name.
type SpanRule struct {
	Requires []string
	Forbids  []string
	Terminal bool
	Trailing bool
}

// SpanTableFact is the package fact spanstate exports from the package
// that declares the span-rule table (internal/obs): the migration-event
// state machine, keyed by Kind constant name.
type SpanTableFact struct {
	Rules map[string]SpanRule
}

// AFact marks SpanTableFact as a fact.
func (*SpanTableFact) AFact() {}

// spanTableVar is the variable spanstate extracts the state machine from.
// It must be a keyed composite literal in a package named "obs";
// Span.Err interprets the same table at runtime, which is what makes the
// static and dynamic views of the protocol impossible to desynchronize.
const spanTableVar = "spanRules"

// SpanState checks tracer emit sites against the migration-protocol
// state machine. On the obs package it extracts the spanRules table (and
// validates the table's internal references); on every package that
// imports obs it checks each obs.Event composite literal: the Kind field
// must be present, must name a constant, the constant must have a rule
// in the table, and two emits in the same straight-line block must not
// encode an ordering the table rejects (an event after a terminal kind
// that cannot trail it, or after a kind its rule forbids).
var SpanState = &analysis.Analyzer{
	Name: "spanstate",
	Doc: "checks tracer emit sites against the obs span-rule table: unknown " +
		"kinds, missing Kind fields, and orderings the migration protocol forbids",
	Run:       runSpanState,
	Requires:  []*analysis.Analyzer{EmitSites},
	FactTypes: []analysis.Fact{(*SpanTableFact)(nil)},
}

func runSpanState(pass *analysis.Pass) (any, error) {
	table := extractSpanTable(pass)
	if table != nil {
		pass.ExportPackageFact(table)
	}
	if table == nil {
		// Not the table's package: find it among the imports.
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() != "obs" {
				continue
			}
			var fact SpanTableFact
			if pass.ImportPackageFact(imp, &fact) {
				table = &fact
				break
			}
		}
	}
	if table == nil {
		return nil, nil // no state machine in scope: nothing to check
	}
	idx := pass.ResultOf[EmitSites].(*EmitIndex)
	checkEmitKinds(pass, table, idx)
	checkEmitOrder(pass, table, idx)
	return nil, nil
}

// extractSpanTable pulls the state machine out of the spanRules table
// when the package under analysis declares it (package obs). The table
// must be a keyed composite literal: array index or map key names the
// kind, the value is a KindRule literal.
func extractSpanTable(pass *analysis.Pass) *SpanTableFact {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	var lit *ast.CompositeLit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != spanTableVar || i >= len(vs.Values) {
						continue
					}
					lit, _ = vs.Values[i].(*ast.CompositeLit)
				}
			}
		}
	}
	if lit == nil {
		return nil
	}
	fact := &SpanTableFact{Rules: make(map[string]SpanRule)}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(el.Pos(),
				"span-rule table entry without a Kind key; spanstate needs keyed entries to extract the state machine")
			continue
		}
		kind := constName(pass, kv.Key)
		if kind == "" {
			pass.Reportf(kv.Key.Pos(), "span-rule table key is not a Kind constant")
			continue
		}
		rule, ok := extractKindRule(pass, kv.Value)
		if !ok {
			pass.Reportf(kv.Value.Pos(), "span-rule for %s is not a literal KindRule", kind)
			continue
		}
		fact.Rules[kind] = rule
	}
	// The table must be internally closed: every referenced kind needs
	// its own entry, or Span.Err and the emit checks diverge.
	for kind, rule := range fact.Rules {
		for _, ref := range append(append([]string{}, rule.Requires...), rule.Forbids...) {
			if _, ok := fact.Rules[ref]; !ok {
				pass.Reportf(lit.Pos(),
					"span-rule for %s references %s, which has no entry in the table", kind, ref)
			}
		}
	}
	return fact
}

// extractKindRule reads one KindRule composite literal.
func extractKindRule(pass *analysis.Pass, e ast.Expr) (SpanRule, bool) {
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return SpanRule{}, false
	}
	var rule SpanRule
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return SpanRule{}, false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return SpanRule{}, false
		}
		switch key.Name {
		case "Requires", "Forbids":
			inner, ok := kv.Value.(*ast.CompositeLit)
			if !ok {
				return SpanRule{}, false
			}
			var kinds []string
			for _, ke := range inner.Elts {
				name := constName(pass, ke)
				if name == "" {
					return SpanRule{}, false
				}
				kinds = append(kinds, name)
			}
			if key.Name == "Requires" {
				rule.Requires = kinds
			} else {
				rule.Forbids = kinds
			}
		case "Terminal", "Trailing":
			id, ok := kv.Value.(*ast.Ident)
			if !ok {
				return SpanRule{}, false
			}
			val := id.Name == "true"
			if key.Name == "Terminal" {
				rule.Terminal = val
			} else {
				rule.Trailing = val
			}
		}
	}
	return rule, true
}

// checkEmitKinds flags emit sites whose Kind is absent, dynamic, or has
// no rule in the table.
func checkEmitKinds(pass *analysis.Pass, table *SpanTableFact, idx *EmitIndex) {
	known := make([]string, 0, len(table.Rules))
	for k := range table.Rules {
		known = append(known, k)
	}
	sort.Strings(known)
	for _, ev := range idx.Events {
		switch {
		case !ev.HasKindField:
			pass.Reportf(ev.Pos.Pos(),
				"obs.Event literal without a Kind field; every tracer emit must name a protocol step")
		case ev.Kind == "":
			pass.Reportf(ev.Pos.Pos(),
				"obs.Event Kind is not a named constant; spanstate cannot check dynamic kinds — use a Kind* constant")
		case !hasRule(table, ev.Kind):
			pass.Reportf(ev.Pos.Pos(),
				"emit of %s, which has no rule in the span-rule table (known kinds: %s); add a table entry in internal/obs or fix the emit",
				ev.Kind, strings.Join(known, ", "))
		}
	}
}

func hasRule(table *SpanTableFact, kind string) bool {
	_, ok := table.Rules[kind]
	return ok
}

// checkEmitOrder flags pairs of emits in the same straight-line block
// whose source order the state machine can never accept: a non-trailing
// kind after a terminal one, or a kind after one its rule forbids.
func checkEmitOrder(pass *analysis.Pass, table *SpanTableFact, idx *EmitIndex) {
	byBlock := make(map[*ast.BlockStmt][]EventLit)
	for _, ev := range idx.Events {
		if ev.Block == nil || ev.Kind == "" || !hasRule(table, ev.Kind) {
			continue
		}
		byBlock[ev.Block] = append(byBlock[ev.Block], ev)
	}
	for _, evs := range byBlock {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Pos.Pos() < evs[j].Pos.Pos() })
		for i, later := range evs {
			lr := table.Rules[later.Kind]
			for _, earlier := range evs[:i] {
				er := table.Rules[earlier.Kind]
				if er.Terminal && !lr.Trailing {
					pass.Reportf(later.Pos.Pos(),
						"emit of %s after terminal %s in the same block; no span accepts this order",
						later.Kind, earlier.Kind)
					break
				}
				if contains(lr.Forbids, earlier.Kind) {
					pass.Reportf(later.Pos.Pos(),
						"emit of %s after %s in the same block, but the span-rule table forbids %s once %s has appeared",
						later.Kind, earlier.Kind, later.Kind, earlier.Kind)
					break
				}
			}
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
