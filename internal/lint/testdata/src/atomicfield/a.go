package atomicfield

import (
	"sync/atomic"

	"atomicfield/dep"
)

type stats struct {
	n    int64  // atomic everywhere except the flagged read below
	m    int64  // plain everywhere: fine
	done uint32 // atomic everywhere: fine
}

func (s *stats) add() {
	atomic.AddInt64(&s.n, 1)
	atomic.StoreUint32(&s.done, 1)
}

func (s *stats) mixedRead() int64 {
	return s.n // want "field n is accessed with sync/atomic elsewhere but plainly here"
}

func (s *stats) plainOnly() int64 {
	s.m++
	return s.m
}

func (s *stats) atomicOnly() (int64, uint32) {
	return atomic.LoadInt64(&s.n), atomic.LoadUint32(&s.done)
}

// suppressed: pre-publication initialization before any goroutine exists.
func newStats() *stats {
	s := &stats{}
	//lint:allow atomicfield constructor runs before the struct is shared
	s.n = 0
	return s
}

// crossPkgRead reads dep.Gauge.V plainly; the atomic accesses are all in
// package dep, so this is caught purely via the imported object fact.
func crossPkgRead(g *dep.Gauge) int64 {
	return g.V // want "field V is accessed with sync/atomic elsewhere but plainly here"
}

func crossPkgAtomic(g *dep.Gauge) int64 {
	return atomic.LoadInt64(&g.V)
}
