// Package dep declares a gauge whose field is only ever touched
// atomically *inside this package*; the plain access lives in the
// importing package, so catching it requires the exported object fact.
package dep

import "sync/atomic"

// Gauge is a shared counter.
type Gauge struct {
	V int64
}

// Bump adds atomically.
func (g *Gauge) Bump(d int64) {
	atomic.AddInt64(&g.V, d)
}
