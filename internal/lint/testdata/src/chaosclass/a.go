package chaosclass

import (
	"chaosclass/engine"
	"chaosclass/reg"
)

// Local is declared here and registered by this package's own registry.
type Local struct{ N int }

// Unreg is declared here but missing from every visible registry.
type Unreg struct{ N int }

// ChaosClassify registers this package's own message types.
func ChaosClassify(msg any) reg.Class {
	switch msg.(type) {
	case Local:
		return reg.ClassData
	default:
		return reg.ClassNone
	}
}

func send(c *engine.Collector) {
	c.Emit("right", reg.Frame{Seq: 1})            // registered in reg
	c.EmitDirect("acks", 0, &reg.Ack{Seq: 2})     // registered by pointer case
	c.Emit("rogue", reg.Rogue{})                  // want "Rogue crosses the fault-injection seam"
	c.Emit("local", Local{N: 3})                  // registered locally
	c.EmitDirect("local", 1, Unreg{N: 4})         // want "Unreg crosses the fault-injection seam"
	c.Emit("note", "plain string is unclassable") // built-in type: out of scope
}

// suppressed: the escape hatch.
func allowedSend(c *engine.Collector) {
	//lint:allow chaosclass bench-only frame, never active under chaos
	c.Emit("bench", reg.Rogue{})
}
