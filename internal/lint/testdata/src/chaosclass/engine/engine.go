// Package engine is a miniature of fastjoin/internal/engine for the
// chaosclass golden tests: just the Collector emit seam.
package engine

// Collector is the fault-injection seam stub.
type Collector struct{}

// Emit hands value to the injector.
func (c *Collector) Emit(stream string, value any) {}

// EmitDirect hands value to one task's injector.
func (c *Collector) EmitDirect(stream string, task int, value any) {}
