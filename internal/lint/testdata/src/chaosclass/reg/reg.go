// Package reg declares message types and a ChaosClassify registry that
// covers some of them, for the chaosclass cross-package fact tests.
package reg

// Frame is a registered message type.
type Frame struct{ Seq uint64 }

// Ack is a registered message type (by pointer case).
type Ack struct{ Seq uint64 }

// Rogue is deliberately unregistered.
type Rogue struct{ Payload []byte }

// Class is the chaos class enum stand-in.
type Class int

// Classes.
const (
	ClassNone Class = iota
	ClassData
	ClassControl
)

// ChaosClassify is the registry the analyzer extracts.
func ChaosClassify(msg any) Class {
	switch msg.(type) {
	case Frame:
		return ClassData
	case *Ack:
		return ClassControl
	default:
		return ClassNone
	}
}
