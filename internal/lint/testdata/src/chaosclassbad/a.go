// Package chaosclassbad declares a ChaosClassify with no type switch:
// the analyzer reports the degenerate registry and skips seam checks
// rather than cascading findings it cannot ground.
package chaosclassbad

// Class is a stand-in enum.
type Class int

// ChaosClassify is malformed: no type switch to extract.
func ChaosClassify(msg any) Class { // want "no type switch"
	if msg == nil {
		return 0
	}
	return 1
}
