package goroutinestop

import "context"

func work() {}

// flagged: literal goroutine spinning forever with no stop signal.
func badLit() {
	go func() { // want "unbounded loop"
		for {
			work()
		}
	}()
}

// flagged: worker loop that only waits for jobs leaks past shutdown.
func badJobsOnly(jobs chan int) {
	go func() { // want "unbounded loop"
		for {
			j := <-jobs
			_ = j
		}
	}()
}

// clean: select includes a done case.
func goodSelect(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// clean: context cancellation.
func goodContext(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// clean: ranging over a channel ends when the channel closes.
func goodRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// clean: bounded loop.
func goodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

func spin() {
	for {
		work()
	}
}

// flagged: named same-package function with an unbounded loop.
func badNamed() {
	go spin() // want "unbounded loop"
}

type server struct {
	stop chan struct{}
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
			work()
		}
	}
}

// clean: method launch whose body selects on a stop channel.
func goodMethod(s *server) {
	go s.loop()
}

// suppressed: the escape hatch.
func allowedSpin() {
	//lint:allow goroutinestop daemon intentionally runs for the process lifetime
	go spin()
}
