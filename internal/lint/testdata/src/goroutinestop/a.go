package goroutinestop

import "context"

func work() {}

// flagged: literal goroutine spinning forever with no stop signal.
func badLit() {
	go func() { // want "unbounded loop"
		for {
			work()
		}
	}()
}

// flagged: worker loop that only waits for jobs leaks past shutdown.
func badJobsOnly(jobs chan int) {
	go func() { // want "unbounded loop"
		for {
			j := <-jobs
			_ = j
		}
	}()
}

// clean: select includes a done case.
func goodSelect(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// clean: context cancellation.
func goodContext(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// clean: ranging over a channel ends when the channel closes.
func goodRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// clean: bounded loop.
func goodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

func spin() {
	for {
		work()
	}
}

// flagged: named same-package function with an unbounded loop.
func badNamed() {
	go spin() // want "unbounded loop"
}

type server struct {
	stop chan struct{}
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
			work()
		}
	}
}

// clean: method launch whose body selects on a stop channel.
func goodMethod(s *server) {
	go s.loop()
}

// suppressed: the escape hatch.
func allowedSpin() {
	//lint:allow goroutinestop daemon intentionally runs for the process lifetime
	go spin()
}

type pump struct {
	in chan int
}

// drain ranges over a closable channel inside a select-free helper: the
// loop ends when the channel closes, and it reports exhaustion to the
// looping caller.
func (p *pump) drain() bool {
	n := 0
	for v := range p.in {
		n += v
		if n > 1024 {
			return true // batch full, more to come
		}
	}
	return false // channel closed
}

// clean (regression): the stop signal lives in the helper called from
// the launched body, not in the body itself. This exact shape used to be
// a false positive.
func goodHelperRange(p *pump) {
	go func() {
		for {
			if !p.drain() {
				return
			}
		}
	}()
}

func (p *pump) busy() {
	for i := 0; i < 8; i++ {
		work()
	}
}

// flagged: the helper chain never touches a channel or stop signal, so
// following calls must not silence the real leak.
func badHelperNoSignal(p *pump) {
	go func() { // want "unbounded loop"
		for {
			p.busy()
		}
	}()
}
