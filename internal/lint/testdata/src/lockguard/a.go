package lockguard

import (
	"sync"
	"sync/atomic"
)

// counter mixes guarded and unguarded access to n.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

func (c *counter) Peek() int {
	return c.n // want "field n of counter"
}

// table shows the same mix under an RWMutex.
type table struct {
	mu sync.RWMutex
	m  map[int]int
}

func (t *table) Get(k int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) Put(k, v int) {
	t.m[k] = v // want "field m of table"
}

// clean: every access holds the lock.
type safe struct {
	mu sync.Mutex
	v  float64
}

func (s *safe) Set(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = v
}

func (s *safe) Read() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

// stats: atomics and channels synchronize themselves and are exempt even
// when other fields of the struct are mutex-guarded.
type stats struct {
	mu    sync.Mutex
	seen  map[string]bool
	count atomic.Int64
	wake  chan struct{}
}

func (s *stats) Mark(k string) {
	s.mu.Lock()
	s.seen[k] = true
	s.mu.Unlock()
	s.count.Add(1)
}

func (s *stats) Count() int64 {
	return s.count.Load()
}

func (s *stats) Wake() {
	s.wake <- struct{}{}
}

// suppressed: the escape hatch.
func (c *counter) reset() {
	//lint:allow lockguard only called before the goroutines start
	c.n = 0
}
