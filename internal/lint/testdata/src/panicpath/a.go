package panicpath

import "errors"

// flagged: library-path panic.
func bad(n int) int {
	if n < 0 {
		panic("negative") // want "panic in library path"
	}
	return n
}

// clean: the error is returned instead.
func good(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// clean: Must* convention — panic-on-error wrappers are self-describing.
func MustGood(n int) int {
	v, err := good(n)
	if err != nil {
		panic(err)
	}
	return v
}

// suppressed: annotated invariant.
func invariant(side int) {
	if side != 0 && side != 1 {
		panic("side must be 0 or 1") //lint:allow panicpath binary-side invariant asserted by tests
	}
}
