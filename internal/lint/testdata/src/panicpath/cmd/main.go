// Package main is exempt from panicpath: a binary owns its process
// lifetime and may panic on startup errors.
package main

func main() {
	if len([]string{}) > 0 {
		panic("unreachable")
	}
}
