package spanstate

import "spanstate/obs"

var tr *obs.Tracer

func cond() bool { return false }

// clean: a well-ordered protocol function; the noop branch terminates in
// its own block, so the fence/commit that follow in the outer block are
// a different path.
func good() {
	tr.Emit(obs.Event{Kind: obs.KindTrigger})
	tr.Emit(obs.Event{Kind: obs.KindSelect})
	if cond() {
		tr.Emit(obs.Event{Kind: obs.KindNoop})
		return
	}
	tr.Emit(obs.Event{Kind: obs.KindFence})
	tr.Emit(obs.Event{Kind: obs.KindCommit})
	tr.Emit(obs.Event{Kind: obs.KindDone}) // trailing kinds may follow a terminal
}

// flagged: KindOrphan is a declared constant with no rule in the table.
func unknownKind() {
	tr.Emit(obs.Event{Kind: obs.KindOrphan}) // want "no rule in the span-rule table"
}

// flagged: an emit that names no protocol step at all.
func missingKind() {
	tr.Emit(obs.Event{Epoch: 7}) // want "without a Kind field"
}

// flagged: spanstate cannot check a dynamic kind.
func dynamicKind(k obs.Kind) {
	tr.Emit(obs.Event{Kind: k}) // want "not a named constant"
}

// flagged: nothing but trailing kinds may follow a terminal emit in the
// same straight-line block.
func afterTerminal() {
	tr.Emit(obs.Event{Kind: obs.KindTrigger})
	tr.Emit(obs.Event{Kind: obs.KindSelect})
	tr.Emit(obs.Event{Kind: obs.KindNoop})
	tr.Emit(obs.Event{Kind: obs.KindFence}) // want "after terminal KindNoop"
}

// flagged: the table forbids a noop once the fence is up.
func forbiddenOrder() {
	tr.Emit(obs.Event{Kind: obs.KindFence})
	tr.Emit(obs.Event{Kind: obs.KindNoop}) // want "forbids KindNoop once KindFence"
}

// suppressed: the escape hatch still applies.
func allowed() {
	//lint:allow spanstate synthetic replay tooling emits out of band
	tr.Emit(obs.Event{Kind: obs.KindOrphan})
}
