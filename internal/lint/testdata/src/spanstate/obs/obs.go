// Package obs is a miniature of fastjoin/internal/obs for the spanstate
// golden tests: a Kind taxonomy, the shared span-rule table, and a
// Tracer accepting Event literals.
package obs

// Kind is the type of one trace event.
type Kind uint8

const (
	KindNone Kind = iota
	KindTrigger
	KindSelect
	KindNoop
	KindFence
	KindCommit
	KindDone
	// KindOrphan deliberately has no rule in the table below, so emit
	// sites referencing it are "unknown kind" findings.
	KindOrphan

	numKinds
)

// KindRule mirrors the real package's lifecycle rule.
type KindRule struct {
	Requires []Kind
	Forbids  []Kind
	Terminal bool
	Trailing bool
}

// spanRules is the table spanstate extracts.
var spanRules = [numKinds]KindRule{
	KindTrigger: {Forbids: []Kind{KindTrigger}},
	KindSelect:  {Requires: []Kind{KindTrigger}},
	KindNoop:    {Forbids: []Kind{KindFence}, Terminal: true},
	KindFence:   {Requires: []Kind{KindSelect}},
	KindCommit:  {Requires: []Kind{KindFence}, Terminal: true},
	KindDone:    {Trailing: true},
}

// Event is one trace event.
type Event struct {
	Kind  Kind
	Epoch uint64
}

// Tracer is the emit sink.
type Tracer struct{}

// Emit records one event.
func (t *Tracer) Emit(ev Event) {}

// use keeps the table referenced.
func use() int { return len(spanRules) }

var _ = use
