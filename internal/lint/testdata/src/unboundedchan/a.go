package unboundedchan

// flagged: rendezvous data channel.
func bad() {
	ch := make(chan int)      // want "unbuffered make"
	msgs := make(chan string) // want "unbuffered make"
	_, _ = ch, msgs
}

// clean: bounded queues, signal channels, non-channel makes.
func good() {
	q := make(chan int, 128)
	done := make(chan struct{}) // close-only signal: exempt
	s := make([]int, 4)
	m := make(map[string]int)
	_, _, _, _ = q, done, s, m
}

type payload struct{ v int }

// flagged: a named empty-ish struct with fields still carries data.
func carriesData() {
	ch := make(chan payload) // want "unbuffered make"
	_ = ch
}

// suppressed: the escape hatch on the preceding line.
func allowed() {
	//lint:allow unboundedchan intentional rendezvous handoff in tests
	ch := make(chan int)
	_ = ch
}

// suppressed: the escape hatch on the same line.
func allowedInline() {
	ch := make(chan int) //lint:allow unboundedchan handshake channel
	_ = ch
}

const zeroCap = 0

// flagged: an explicit zero capacity is the same rendezvous channel the
// no-capacity form builds, spelled to look bounded.
func explicitZero() {
	ch := make(chan int, 0)          // want "rendezvous channel"
	named := make(chan int, zeroCap) // want "rendezvous channel"
	_, _ = ch, named
}

// clean: dynamic and non-zero capacities, zero-capacity signal channels.
func explicitZeroClean(n int) {
	q := make(chan int, 1)
	dyn := make(chan int, n) // dynamic capacity is the caller's contract
	sig := make(chan struct{}, 0)
	_, _, _ = q, dyn, sig
}
