// Package lint hosts the fastjoin-specific static analyzers run by
// cmd/fastjoin-lint. Each analyzer encodes one concurrency invariant the
// paper's protocol depends on; see LINTING.md for the catalogue and the
// //lint:allow escape hatch.
package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"fastjoin/internal/lint/analysis"
)

// All returns the full fastjoin-lint suite in reporting order. Hidden
// dependency analyzers (emitsites) are not listed; the driver pulls them
// in through Requires.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		UnboundedChan,
		LockGuard,
		GoroutineStop,
		PanicPath,
		SpanState,
		ChaosClass,
		AtomicField,
	}
}

// UnboundedChan flags `make(chan T)` without a capacity, and
// `make(chan T, 0)` with an explicit (possibly named-constant) zero
// capacity — both build the same rendezvous channel. The engine's load
// model (L_i = |R_i|·φ_si, with φ a queue length) and its back-pressure
// behaviour only hold if every data-carrying queue is bounded; a
// rendezvous channel on a hot path turns back-pressure into head-of-line
// blocking. Pure signal channels — element type struct{}, used only for
// close/broadcast — carry no data and are exempt.
var UnboundedChan = &analysis.Analyzer{
	Name: "unboundedchan",
	Doc: "flags make(chan T) with no capacity and make(chan T, 0); every data " +
		"queue must be bounded for the φ back-pressure model (chan struct{} " +
		"signal channels are exempt)",
	Run: runUnboundedChan,
}

func runUnboundedChan(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) < 1 || len(call.Args) > 2 {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok {
				return true
			}
			ch, ok := tv.Type.Underlying().(*types.Chan)
			if !ok {
				return true
			}
			// make(chan T, n): only a capacity that constant-folds to zero
			// is a rendezvous channel in disguise; dynamic capacities are
			// the caller's contract.
			if len(call.Args) == 2 && !isConstZero(pass, call.Args[1]) {
				return true
			}
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true // close-only signal channel
			}
			if len(call.Args) == 2 {
				pass.Reportf(call.Pos(),
					"make(chan %s, 0) is a rendezvous channel: bound every data queue so back-pressure stays measurable, or use chan struct{} for pure signals",
					ch.Elem())
			} else {
				pass.Reportf(call.Pos(),
					"unbuffered make(chan %s): bound every data queue so back-pressure stays measurable, or use chan struct{} for pure signals",
					ch.Elem())
			}
			return true
		})
	}
	return nil, nil
}

// isConstZero reports whether e is a compile-time constant equal to 0.
func isConstZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}
