// Package metrics implements the measurement primitives used throughout
// FastJoin: atomic counters and gauges, exponentially weighted rates,
// logarithmic latency histograms and time series.
//
// These back the three quantities the paper evaluates — system throughput
// (final result tuples per second), average processing latency, and the
// real-time degree of load imbalance — as well as the per-instance load
// statistics (|R_i|, φ_si) that the monitoring component aggregates.
package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta") //lint:allow panicpath monotonic-counter contract; asserted by tests
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Meter converts a counter into interval rates: each call to TickRate
// returns the events per second since the previous call.
type Meter struct {
	count Counter

	mu       sync.Mutex
	lastTick time.Time
	lastVal  int64
}

// NewMeter returns a meter whose first interval starts now.
func NewMeter() *Meter {
	return &Meter{lastTick: time.Now()}
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count returns the total number of events recorded.
func (m *Meter) Count() int64 { return m.count.Value() }

// TickRate returns the rate (events/second) accumulated since the last call
// (or since construction) and starts a new interval.
func (m *Meter) TickRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	cur := m.count.Value()
	dt := now.Sub(m.lastTick).Seconds()
	var rate float64
	if dt > 0 {
		rate = float64(cur-m.lastVal) / dt
	}
	m.lastTick = now
	m.lastVal = cur
	return rate
}

// EWMA is an exponentially weighted moving average with a configurable
// smoothing factor alpha in (0, 1]. Higher alpha weights recent samples more.
// It is safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: EWMA alpha must be in (0, 1]") //lint:allow panicpath constructor contract (alpha range); asserted by tests
	}
	return &EWMA{alpha: alpha}
}

// Update folds a new sample into the average.
func (e *EWMA) Update(sample float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value = sample
		e.init = true
		return
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
}

// Value returns the current average (zero before any update).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// histBuckets is the number of logarithmic buckets in a Histogram. Bucket i
// covers durations in [2^i, 2^(i+1)) microseconds-scale units; with 64
// buckets any int64 nanosecond duration fits.
const histBuckets = 64

// Histogram records int64 samples (typically nanosecond latencies) in
// power-of-two buckets. It keeps exact totals for the mean and approximate
// quantiles from the bucket boundaries. Safe for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketFor returns the bucket index for a sample.
func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 63 - bits.LeadingZeros64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the exact mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// from the bucket boundaries. The estimate is exact to within a factor of 2.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return int64(1) << uint(i+1) // upper bound of bucket i
		}
	}
	return h.Max()
}

// Snapshot captures the histogram's summary statistics at a point in time.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}
