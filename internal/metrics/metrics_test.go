package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("new counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestMeterCountAndRate(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	if m.Count() != 100 {
		t.Fatalf("count = %d, want 100", m.Count())
	}
	time.Sleep(20 * time.Millisecond)
	rate := m.TickRate()
	if rate <= 0 {
		t.Errorf("rate = %f, want > 0", rate)
	}
	// Second tick with no events should be ~0.
	time.Sleep(5 * time.Millisecond)
	if r2 := m.TickRate(); r2 != 0 {
		t.Errorf("idle rate = %f, want 0", r2)
	}
}

func TestEWMAFirstSample(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("initial value = %f, want 0", e.Value())
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("after first sample = %f, want 10", e.Value())
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	e.Update(20)
	if got := e.Value(); got != 15 {
		t.Errorf("value = %f, want 15", got)
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%f) should panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("value = %f, want 42", e.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Mean() != 20 {
		t.Errorf("mean = %f, want 20", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Errorf("min/max = %d/%d, want 10/30", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Quantile(0.5)
	// Bucket estimate is exact within a factor of 2.
	if p50 < 500 || p50 > 1024 {
		t.Errorf("p50 = %d, want in [500, 1024]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 2048 {
		t.Errorf("p99 = %d, want in [990, 2048]", p99)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 500; i++ {
		h.Observe(i * 7 % 1000)
	}
	f := func(a, b float64) bool {
		qa, qb := math.Abs(a), math.Abs(b)
		qa, qb = qa-math.Floor(qa), qb-math.Floor(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramNonPositiveSamples(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if h.Min() != -5 {
		t.Errorf("min = %d, want -5", h.Min())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("snapshot count = %d, want 100", s.Count)
	}
	if s.Mean != 50.5 {
		t.Errorf("snapshot mean = %f, want 50.5", s.Mean)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not ordered: %d %d %d", s.P50, s.P95, s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 1000; j++ {
				h.Observe(base + j)
			}
		}(int64(i) * 1000)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d, want 4000", h.Count())
	}
	if h.Min() != 0 || h.Max() != 3999 {
		t.Errorf("min/max = %d/%d, want 0/3999", h.Min(), h.Max())
	}
}

func TestBucketForBoundaries(t *testing.T) {
	tests := []struct {
		v    int64
		want int
	}{
		{0, 0}, {-1, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1 << 40, 40},
	}
	for _, tt := range tests {
		if got := bucketFor(tt.v); got != tt.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}
