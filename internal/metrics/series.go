package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Point is one sample of a time series: a value observed at an instant.
type Point struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// TimeSeries is an append-only, concurrency-safe sequence of points. The
// bench harness uses it to record the real-time throughput, latency and
// load-imbalance curves of Figures 1(c)(d), 3, 4 and 11.
type TimeSeries struct {
	mu     sync.Mutex
	points []Point
}

// Append records a value at time t.
func (ts *TimeSeries) Append(t time.Time, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.points = append(ts.points, Point{At: t, Value: v})
}

// AppendNow records a value at the current time.
func (ts *TimeSeries) AppendNow(v float64) { ts.Append(time.Now(), v) }

// Points returns a copy of all recorded points in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Len returns the number of recorded points.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.points)
}

// Values returns just the values of all points, in order.
func (ts *TimeSeries) Values() []float64 {
	pts := ts.Points()
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Value
	}
	return out
}

// Mean returns the mean of all recorded values (0 when empty).
func (ts *TimeSeries) Mean() float64 {
	vals := ts.Values()
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Max returns the largest recorded value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	vals := ts.Values()
	var max float64
	for i, v := range vals {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// TailMean returns the mean of the last frac (0,1] of the points. Experiments
// use it to discard warm-up transients, mirroring the paper's practice of
// recording "the stable statistics after the application runs for a while".
func (ts *TimeSeries) TailMean(frac float64) float64 {
	if frac <= 0 || frac > 1 {
		panic("metrics: TailMean frac must be in (0, 1]") //lint:allow panicpath frac-range contract; asserted by tests
	}
	vals := ts.Values()
	if len(vals) == 0 {
		return 0
	}
	start := len(vals) - int(float64(len(vals))*frac)
	if start >= len(vals) {
		start = len(vals) - 1
	}
	var sum float64
	for _, v := range vals[start:] {
		sum += v
	}
	return sum / float64(len(vals)-start)
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 when empty). It does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Stddev returns the population standard deviation of xs (0 when empty).
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}
