package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestTimeSeriesAppendAndPoints(t *testing.T) {
	var ts TimeSeries
	t0 := time.Now()
	ts.Append(t0, 1)
	ts.Append(t0.Add(time.Second), 2)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("len = %d, want 2", len(pts))
	}
	if pts[0].Value != 1 || pts[1].Value != 2 {
		t.Errorf("values = %v", pts)
	}
	if ts.Len() != 2 {
		t.Errorf("Len = %d, want 2", ts.Len())
	}
}

func TestTimeSeriesPointsIsCopy(t *testing.T) {
	var ts TimeSeries
	ts.AppendNow(1)
	pts := ts.Points()
	pts[0].Value = 99
	if ts.Points()[0].Value != 1 {
		t.Error("Points() must return a copy")
	}
}

func TestTimeSeriesStats(t *testing.T) {
	var ts TimeSeries
	for _, v := range []float64{1, 2, 3, 4} {
		ts.AppendNow(v)
	}
	if ts.Mean() != 2.5 {
		t.Errorf("mean = %f, want 2.5", ts.Mean())
	}
	if ts.Max() != 4 {
		t.Errorf("max = %f, want 4", ts.Max())
	}
}

func TestTimeSeriesEmptyStats(t *testing.T) {
	var ts TimeSeries
	if ts.Mean() != 0 || ts.Max() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestTimeSeriesTailMean(t *testing.T) {
	var ts TimeSeries
	for _, v := range []float64{100, 100, 2, 4} {
		ts.AppendNow(v)
	}
	if got := ts.TailMean(0.5); got != 3 {
		t.Errorf("TailMean(0.5) = %f, want 3", got)
	}
	if got := ts.TailMean(1.0); got != 51.5 {
		t.Errorf("TailMean(1.0) = %f, want 51.5", got)
	}
}

func TestTimeSeriesTailMeanValidation(t *testing.T) {
	var ts TimeSeries
	for _, frac := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TailMean(%f) should panic", frac)
				}
			}()
			ts.TailMean(frac)
		}()
	}
}

func TestTimeSeriesTailMeanSinglePoint(t *testing.T) {
	var ts TimeSeries
	ts.AppendNow(7)
	// Tiny fraction still averages at least the last point.
	if got := ts.TailMean(0.01); got != 7 {
		t.Errorf("TailMean = %f, want 7", got)
	}
}

func TestTimeSeriesConcurrent(t *testing.T) {
	var ts TimeSeries
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ts.AppendNow(1)
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 800 {
		t.Errorf("len = %d, want 800", ts.Len())
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %f, want 5", got)
	}
	if got := Stddev(xs); got != 2 {
		t.Errorf("Stddev = %f, want 2", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %f, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %f, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestStatsEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-input stats should be 0")
	}
}

func TestStddevConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	if got := Stddev(xs); math.Abs(got) > 1e-12 {
		t.Errorf("Stddev of constants = %f, want 0", got)
	}
}
