package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricType is the Prometheus metric type of a Family.
type MetricType string

const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
	TypeSummary MetricType = "summary"
	TypeUntyped MetricType = "untyped"
)

// Label is one name/value pair on a Sample.
type Label struct {
	Name, Value string
}

// Sample is one time-series point within a Family.
type Sample struct {
	Labels []Label
	Value  float64
	// Suffix is appended to the family name ("_sum", "_count") for
	// summary component series; empty for plain samples.
	Suffix string
}

// Family is one named metric family in the exposition.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// L is shorthand for building a label list: L("side", "R", "instance", "3").
// Panics on an odd argument count (programmer error at the call site).
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("obs.L: odd number of label arguments") //lint:allow panicpath static call-site invariant
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// WriteProm writes the families in Prometheus text exposition format 0.0.4.
// Families are written in the order given; samples within a family keep
// their order (callers should sort label sets for a stable exposition).
func WriteProm(w io.Writer, families []Family) error {
	var b strings.Builder
	for _, f := range families {
		if f.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		typ := f.Type
		if typ == "" {
			typ = TypeUntyped
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(string(typ))
		b.WriteByte('\n')
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	// strconv's 'g' shortest form matches what Prometheus clients emit;
	// integral values render without an exponent for readability.
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// SortSamples orders a family's samples by their label values, giving the
// exposition a stable line order for golden tests and diffing.
func SortSamples(f *Family) {
	sort.SliceStable(f.Samples, func(i, j int) bool {
		a, b := f.Samples[i], f.Samples[j]
		if a.Suffix != b.Suffix {
			return a.Suffix < b.Suffix
		}
		n := len(a.Labels)
		if len(b.Labels) < n {
			n = len(b.Labels)
		}
		for k := 0; k < n; k++ {
			if a.Labels[k].Value != b.Labels[k].Value {
				// Numeric label values (instance/task IDs) sort
				// numerically so instance 10 follows 9, not 1.
				ai, aerr := strconv.Atoi(a.Labels[k].Value)
				bi, berr := strconv.Atoi(b.Labels[k].Value)
				if aerr == nil && berr == nil {
					return ai < bi
				}
				return a.Labels[k].Value < b.Labels[k].Value
			}
		}
		return len(a.Labels) < len(b.Labels)
	})
}

// Validate checks the exposition constraints this package relies on:
// non-empty family names, metric and label names matching the Prometheus
// charset, and no duplicate family names. It is a test helper, not a
// serving-path check.
func Validate(families []Family) error {
	seen := make(map[string]bool, len(families))
	for _, f := range families {
		if !validName(f.Name) {
			return fmt.Errorf("invalid family name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if !validName(l.Name) {
					return fmt.Errorf("family %q: invalid label name %q", f.Name, l.Name)
				}
			}
		}
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
