package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenFamilies is a fixed exposition exercising every formatting path:
// help escaping, label escaping, summary suffixes, float and integral
// values, and numeric label ordering.
func goldenFamilies() []Family {
	inst := Family{
		Name: "fastjoin_instance_load",
		Help: "Per-instance load L_i = |R_i|*phi_si.",
		Type: TypeGauge,
	}
	for _, task := range []string{"0", "1", "2", "10"} {
		inst.Samples = append(inst.Samples, Sample{
			Labels: L("side", "R", "instance", task),
			Value:  float64(len(task)) * 100,
		})
	}
	// Deliberately shuffled; SortSamples must order 0,1,2,10 numerically.
	inst.Samples[0], inst.Samples[3] = inst.Samples[3], inst.Samples[0]
	SortSamples(&inst)
	return []Family{
		{
			Name: "fastjoin_results_total", Help: "Joined pairs emitted.",
			Type:    TypeCounter,
			Samples: []Sample{{Value: 123456}},
		},
		{
			Name: "fastjoin_latency_us",
			Help: "Latency summary with\na newline and a back\\slash in help.",
			Type: TypeSummary,
			Samples: []Sample{
				{Labels: L("quantile", "0.95"), Value: 1234.5},
				{Labels: L("quantile", "0.99"), Value: 0.000125},
				{Suffix: "_sum", Value: 98765.5},
				{Suffix: "_count", Value: 42},
			},
		},
		inst,
		{
			Name: "fastjoin_info", Help: "Escaped label value below.",
			Type:    TypeGauge,
			Samples: []Sample{{Labels: L("system", `Fast"Join\v1`), Value: 1}},
		},
		{
			Name:    "fastjoin_untyped_default",
			Samples: []Sample{{Value: -7}},
		},
	}
}

// TestWritePromGolden pins the exact exposition bytes. Run with -update to
// regenerate testdata/metrics.golden after an intentional format change.
func TestWritePromGolden(t *testing.T) {
	fams := goldenFamilies()
	if err := Validate(fams); err != nil {
		t.Fatalf("golden families invalid: %v", err)
	}
	var b strings.Builder
	if err := WriteProm(&b, fams); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWritePromLineShape(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, goldenFamilies()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		// Every sample line is "name{labels} value" or "name value".
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	// Summary suffixes attach to the family name.
	if !strings.Contains(b.String(), "fastjoin_latency_us_sum 98765.5") {
		t.Error("summary _sum series missing")
	}
	if !strings.Contains(b.String(), "fastjoin_latency_us_count 42") {
		t.Error("summary _count series missing")
	}
	if !strings.Contains(b.String(), `quantile="0.99"`) {
		t.Error("quantile label missing")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		fams []Family
	}{
		{"empty name", []Family{{Name: ""}}},
		{"bad charset", []Family{{Name: "fastjoin-results"}}},
		{"leading digit", []Family{{Name: "0fastjoin"}}},
		{"duplicate", []Family{{Name: "a_total"}, {Name: "a_total"}}},
		{"bad label", []Family{{Name: "a_total", Samples: []Sample{{Labels: L("bad-label", "x")}}}}},
	}
	for _, c := range cases {
		if err := Validate(c.fams); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := Validate(goldenFamilies()); err != nil {
		t.Errorf("golden families rejected: %v", err)
	}
}

func TestL(t *testing.T) {
	got := L("a", "1", "b", "2")
	if len(got) != 2 || got[0] != (Label{"a", "1"}) || got[1] != (Label{"b", "2"}) {
		t.Fatalf("L = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd L() argument count did not panic")
		}
	}()
	L("only-one")
}
