package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Source is what a Server scrapes. The facade implements it over the
// running system; every call happens on the scrape path, never on the
// data path, so implementations may take snapshots under locks.
type Source interface {
	// ObsFamilies returns the current metric families for /metrics.
	ObsFamilies() []Family
	// ObsStats returns the object rendered as /stats.json.
	ObsStats() any
	// ObsTrace returns the buffered trace events for /trace.json.
	ObsTrace() []Event
}

// Server serves the observability endpoints over HTTP:
//
//	/metrics        Prometheus text exposition
//	/stats.json     the facade's Stats snapshot
//	/trace.json     the control-plane trace ring, oldest first
//	/debug/pprof/*  net/http/pprof
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. ":9144" or "127.0.0.1:0") and serves the
// endpoints for src until Close. It returns once the listener is bound,
// so Addr() is immediately valid.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, src.ObsFamilies())
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.ObsStats())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.ObsTrace())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{ln: ln, srv: srv}
	go func() {
		// Serve returns http.ErrServerClosed after Close; any earlier
		// error just ends the endpoint — the join system is unaffected.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
