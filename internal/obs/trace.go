// Package obs is FastJoin's live observability plane: a bounded,
// lock-cheap control-plane tracer for the migration protocol and a
// dependency-free Prometheus-text-format HTTP exporter.
//
// The paper's whole contribution is runtime-observable — per-instance load
// L_i = |R_i|·φ_si, the degree of load imbalance LI, and the phases of the
// key-migration protocol — yet snapshots alone cannot show a live system
// detect, fence, migrate, and rebalance. This package provides the
// introspection plane: internal/biclique feeds typed trace events into a
// Tracer, and the facade exposes them (plus metric families built from the
// system's counters and gauges) over HTTP.
//
// Design constraints, in order:
//
//   - Nothing here may touch the data plane. Events exist only for
//     control-plane transitions (migration protocol steps); there are no
//     per-tuple events, and a nil *Tracer no-ops every method so call
//     sites need no branches.
//   - Bounded memory. The event buffer is a fixed-capacity ring; under an
//     event storm old events are evicted, never allocated around.
//   - No dependencies. The exporter writes the Prometheus text exposition
//     format by hand; the HTTP server uses only net/http.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Kind is the type of one control-plane trace event. The taxonomy follows
// the migration protocol (Algorithm 2 plus the abort/rollback refinement);
// see DESIGN.md "Observability" for the span lifecycle.
type Kind uint8

const (
	// KindNone is the zero Kind; it never appears in emitted events.
	KindNone Kind = iota
	// KindTrigger opens a span: the migration source received the
	// monitor's command. Carries the triggering LI, the configured Θ, and
	// the chosen source/target instances.
	KindTrigger
	// KindSelect records the key selection: how many keys GreedyFit (or
	// SAFit) chose and their total migration benefit ΣF_k.
	KindSelect
	// KindNoop terminates a span whose selection chose nothing (or whose
	// gap closed before the command arrived): no routing changed.
	KindNoop
	// KindFence records the source broadcasting the routing update to all
	// dispatcher tasks — the start of the marker handshake.
	KindFence
	// KindRouteApplied records one dispatcher task applying the update
	// (first application only; re-deliveries are idempotent and silent).
	// Revert distinguishes the rollback update of an aborting attempt.
	KindRouteApplied
	// KindMarker records one dispatcher's forward marker reaching the
	// source (distinct dispatchers only — duplicates are not re-traced).
	KindMarker
	// KindInstall records the target installing the migrated batch.
	KindInstall
	// KindFlush records the source flushing its temporary queue to the
	// target after the forward-marker fence completed.
	KindFlush
	// KindReplay records buffered tuples being replayed: at the target
	// after a flush (commit path) or at the source after a rollback.
	KindReplay
	// KindCommit terminates a committed span: routing moved, the
	// temporary queue flushed, exactly-once preserved.
	KindCommit
	// KindAbort records the marker handshake timing out: the attempt
	// flips into the rollback protocol.
	KindAbort
	// KindRevertMarker records one dispatcher's revert marker arriving
	// (at the target or the source — Instance tells which end).
	KindRevertMarker
	// KindReturn records the target's rollback payload (installed batch
	// plus buffered tuples) reaching the source.
	KindReturn
	// KindRollback terminates an aborted span: routing restored, payload
	// re-installed, buffers replayed in original order.
	KindRollback
	// KindDone records the side's monitor observing the MigrationDone
	// report and re-arming its trigger. It trails the span's terminal
	// event and is best-effort: the report rides a droppable control
	// lane, so a span is complete without it.
	KindDone

	// The split-lifecycle kinds below open a second span family: one span
	// per split key's lifetime at its owning dispatcher task (pending →
	// active → residual → … → abandoned or retired), identified by
	// NewSplitSpanID. They never mix with migration spans.

	// KindSplitPending opens a split span: the detector promoted a heavy
	// hitter and the intent/ack handshake started. Carries the key.
	KindSplitPending
	// KindSplitActivate records the key switching to salted routing —
	// after the first handshake or again on a residual reheat, so it can
	// repeat within the span.
	KindSplitActivate
	// KindSplitResidual records a cool-down: salting stops, members keep
	// their shares, the drain phase begins. Repeats when a reheated key
	// cools again (each round bumps the residual generation).
	KindSplitResidual
	// KindSplitDrained records one member's first drain report of the
	// current generation (Target is the reporting instance).
	KindSplitDrained
	// KindSplitAbandon terminates a span whose key cooled off before the
	// intent/ack handshake completed: no salted routing ever started.
	KindSplitAbandon
	// KindSplitRetire terminates a retired span: every non-owner member
	// of both sides drained, the entry is deleted, routing unfreezes and
	// the taint lifts.
	KindSplitRetire

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:          "none",
	KindTrigger:       "trigger",
	KindSelect:        "select",
	KindNoop:          "noop",
	KindFence:         "fence",
	KindRouteApplied:  "route-applied",
	KindMarker:        "marker",
	KindInstall:       "install",
	KindFlush:         "flush",
	KindReplay:        "replay",
	KindCommit:        "commit",
	KindAbort:         "abort",
	KindRevertMarker:  "revert-marker",
	KindReturn:        "return",
	KindRollback:      "rollback",
	KindDone:          "done",
	KindSplitPending:  "split-pending",
	KindSplitActivate: "split-activate",
	KindSplitResidual: "split-residual",
	KindSplitDrained:  "split-drained",
	KindSplitAbandon:  "split-abandon",
	KindSplitRetire:   "split-retire",
}

// String names the kind as DESIGN.md's taxonomy does.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON renders the kind by name, so /trace.json reads as prose.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Terminal reports whether the kind ends a span's protocol work at the
// source. KindDone and the target's post-flush KindReplay may still trail
// a terminal event (they are causally downstream of it).
func (k Kind) Terminal() bool {
	if int(k) >= len(spanRules) {
		return false
	}
	return spanRules[k].Terminal
}

// KindRule is one kind's place in the migration span lifecycle. The rule
// constrains where the kind may appear relative to the kinds already seen
// in the same span (in Seq order).
type KindRule struct {
	// Requires lists kinds that must all have appeared earlier in the
	// span before this kind is valid.
	Requires []Kind
	// Forbids lists kinds that must not have appeared earlier.
	Forbids []Kind
	// Terminal marks the kinds that end the span's protocol work.
	Terminal bool
	// Trailing marks the kinds that may still appear after a terminal
	// event (they are causally downstream of it: the target runs
	// concurrently with the source's commit, and the monitor's done
	// report rides a droppable lane).
	Trailing bool
}

// spanRules is the single source of truth for the migration-event state
// machine: one entry per emittable kind, encoding the causal skeleton of
// Algorithm 2 plus the abort/rollback refinement. Span.Err interprets it
// at runtime, and the spanstate analyzer (internal/lint) extracts it
// statically to check every tracer emit site in internal/biclique —
// adding a Kind constant or an emit site without a rule here fails lint,
// and so does weakening a rule the emit sites rely on. Keep the table
// keyed (spanstate reads the keys) and keep every emittable kind present,
// even when its rule is empty.
var spanRules = [numKinds]KindRule{
	KindTrigger:      {Forbids: []Kind{KindTrigger}},
	KindSelect:       {Requires: []Kind{KindTrigger}},
	KindNoop:         {Forbids: []Kind{KindFence}, Terminal: true},
	KindFence:        {Requires: []Kind{KindSelect}},
	KindRouteApplied: {},
	KindMarker:       {Requires: []Kind{KindFence}},
	KindInstall:      {Trailing: true},
	KindFlush:        {Requires: []Kind{KindMarker}},
	KindReplay:       {Trailing: true},
	KindCommit:       {Requires: []Kind{KindFlush}, Forbids: []Kind{KindAbort}, Terminal: true},
	KindAbort:        {Requires: []Kind{KindFence}},
	KindRevertMarker: {Requires: []Kind{KindAbort}},
	KindReturn:       {Requires: []Kind{KindAbort}},
	KindRollback:     {Requires: []Kind{KindReturn}, Terminal: true},
	KindDone:         {Trailing: true},
	// Split lifecycle. Activate repeats on reheats (no Forbids), residual
	// requires a preceding activation, and a retire requires residual —
	// but NOT a drained event: a split whose member sets hold no
	// non-owner instance retires the moment it cools, with zero reports.
	KindSplitPending:  {Forbids: []Kind{KindSplitPending}},
	KindSplitActivate: {Requires: []Kind{KindSplitPending}},
	KindSplitResidual: {Requires: []Kind{KindSplitActivate}},
	KindSplitDrained:  {Requires: []Kind{KindSplitResidual}},
	KindSplitAbandon:  {Requires: []Kind{KindSplitPending}, Forbids: []Kind{KindSplitActivate}, Terminal: true},
	KindSplitRetire:   {Requires: []Kind{KindSplitResidual}, Terminal: true},
}

// Rule returns the lifecycle rule for k (the zero rule for out-of-range
// kinds). It exposes the shared table read-only for tests and tooling.
func (k Kind) Rule() KindRule {
	if int(k) >= len(spanRules) {
		return KindRule{}
	}
	return spanRules[k]
}

// SpanID identifies one migration attempt: (side, source instance, epoch)
// packed into 64 bits. Every event of the attempt — from the source, the
// target, the dispatchers, and the monitor — carries the same SpanID.
type SpanID uint64

// NewSpanID packs (side, source, epoch). Side uses the top bit, the source
// instance the next 15, the source's attempt epoch the low 48.
func NewSpanID(side uint8, source int, epoch uint64) SpanID {
	return SpanID(uint64(side&1)<<63 | uint64(source&0x7fff)<<48 | epoch&0xffffffffffff)
}

// Side returns the biclique side bit (0 = R, 1 = S).
func (id SpanID) Side() uint8 { return uint8(id >> 63) }

// Source returns the migration source instance.
func (id SpanID) Source() int { return int(id >> 48 & 0x7fff) }

// Epoch returns the source's attempt epoch.
func (id SpanID) Epoch() uint64 { return uint64(id) & 0xffffffffffff }

// splitSpanBit marks a split-lifecycle span inside the SpanID's 15-bit
// source field, keeping the two span families disjoint: a dispatcher
// task index can never reach 0x4000, so no split span collides with a
// migration span.
const splitSpanBit = 0x4000

// NewSplitSpanID packs the identity of one split key's lifecycle span:
// the owning dispatcher task (tagged with splitSpanBit in the source
// field) and the task's split span sequence number. Side is 0 — a split
// spans both side groups.
func NewSplitSpanID(task int, seq uint64) SpanID {
	return NewSpanID(0, splitSpanBit|(task&0x3fff), seq)
}

// SplitSpan reports whether the span belongs to the split-lifecycle
// family.
func (id SpanID) SplitSpan() bool { return id.Source()&splitSpanBit != 0 }

// String renders "side/source/epoch" for migration spans and
// "split/task/seq" for split-lifecycle spans.
func (id SpanID) String() string {
	if id.SplitSpan() {
		return fmt.Sprintf("split/%d/%d", id.Source()&^splitSpanBit, id.Epoch())
	}
	side := "R"
	if id.Side() == 1 {
		side = "S"
	}
	return fmt.Sprintf("%s/%d/%d", side, id.Source(), id.Epoch())
}

// Event is one control-plane trace event. Fields beyond Kind/Span/At are
// populated per kind; zero values mean "not applicable".
type Event struct {
	// Seq is the tracer-assigned global sequence number. It is a total
	// order consistent with causality: an event emitted after receiving a
	// message always carries a higher Seq than the event traced before
	// that message was sent.
	Seq uint64 `json:"seq"`
	// At is the emission wall time in unix nanoseconds.
	At int64 `json:"at"`
	// Span ties the event to one migration attempt.
	Span SpanID `json:"span"`
	Kind Kind   `json:"kind"`
	// Side is the biclique side of the migration (0 = R, 1 = S).
	Side uint8 `json:"side"`
	// Instance is the task that emitted the event: a join instance for
	// joiner events, the dispatcher task for KindRouteApplied, -1 for the
	// monitor's KindDone.
	Instance int `json:"instance"`
	// Source and Target are the migration's endpoints.
	Source int `json:"source"`
	Target int `json:"target"`
	// Epoch is the source's attempt number (also packed in Span).
	Epoch uint64 `json:"epoch"`
	// Dispatcher is the acking dispatcher task for marker events.
	Dispatcher int `json:"dispatcher,omitempty"`
	// Keys and Moved count migrated keys and tuples (per kind: selected,
	// installed, flushed, replayed, returned…).
	Keys  int `json:"keys,omitempty"`
	Moved int `json:"moved,omitempty"`
	// Key is the subject key of a split-lifecycle event (migration events
	// carry key counts, never individual keys).
	Key uint64 `json:"key,omitempty"`
	// Benefit is the selection's total migration benefit ΣF_k.
	Benefit int64 `json:"benefit,omitempty"`
	// LI is the imbalance that triggered the span; Theta the configured Θ.
	LI    float64 `json:"li,omitempty"`
	Theta float64 `json:"theta,omitempty"`
	// Revert marks a KindRouteApplied of the rollback update.
	Revert bool `json:"revert,omitempty"`
}

// DefaultTraceCapacity is the ring capacity used when NewTracer is given
// a non-positive one. At ~160 bytes per event this bounds the tracer near
// 700 KiB — thousands of migrations of history, since a span is O(10)
// events.
const DefaultTraceCapacity = 4096

// Tracer is a bounded ring buffer of trace events. All methods are safe
// for concurrent use and all no-op on a nil receiver, so producers hold
// no conditional wiring. Emission takes one short mutex-guarded critical
// section and never allocates: the ring is carved once at construction.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // ring write cursor
	full    bool   // the ring has wrapped at least once
	seq     uint64 // events ever emitted
	evicted uint64 // events overwritten by the ring
}

// NewTracer returns a tracer with the given ring capacity
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit stamps and records one event. Seq and At are assigned here; the
// caller fills every other field.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if ev.At == 0 {
		ev.At = now
	}
	if t.full {
		t.evicted++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Evicted returns how many events the ring has overwritten.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Snapshot copies the buffered events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Span is the event sequence of one migration attempt, in Seq order.
type Span struct {
	ID     SpanID
	Events []Event
}

// Spans groups events by SpanID, preserving Seq order within each span
// and ordering spans by their first event. Events with a zero SpanID are
// skipped.
func Spans(events []Event) []Span {
	index := make(map[SpanID]int)
	var out []Span
	for _, ev := range events {
		if ev.Span == 0 {
			continue
		}
		i, ok := index[ev.Span]
		if !ok {
			i = len(out)
			index[ev.Span] = i
			out = append(out, Span{ID: ev.Span})
		}
		out[i].Events = append(out[i].Events, ev)
	}
	return out
}

// Terminal returns the span's terminal event kind (KindCommit,
// KindRollback, or KindNoop), or KindNone if the span has not finished.
func (s Span) Terminal() Kind {
	for _, ev := range s.Events {
		if ev.Kind.Terminal() {
			return ev.Kind
		}
	}
	return KindNone
}

// Err validates the span against the protocol's lifecycle and returns a
// description of the first violation, or nil for a complete, correctly
// ordered span. The per-kind rules — prerequisites, exclusions, terminal
// and trailing roles — come from spanRules, the same table the spanstate
// analyzer checks emit sites against; Err adds only the structural
// scaffolding the table cannot express (the span opens with trigger then
// select, Seq order is monotone, exactly one terminal event appears).
//
// The causal skeleton the table encodes:
//
//   - markers appear only inside the fence (after KindFence);
//   - a commit is preceded by the full forward-marker handshake and the
//     flush; a rollback by KindAbort, the revert markers, and KindReturn;
//   - only KindReplay and KindInstall (the target runs concurrently with
//     the marker handshake, so its events can trail the source's commit)
//     and KindDone may trail the terminal event.
//
// Split-lifecycle spans (NewSplitSpanID) validate against the same table
// with their own opening rule: the first event must be KindSplitPending,
// and the rules chain pending → activate → residual → drained/retire (or
// abandon) from there.
//
// The ring can evict a span's oldest events under an event storm; callers
// that need full validation should size the tracer generously. Err reports
// a truncated span (first event not the family's opener) as a violation.
func (s Span) Err() error {
	if len(s.Events) == 0 {
		return fmt.Errorf("span %v: empty", s.ID)
	}
	if s.ID.SplitSpan() {
		if s.Events[0].Kind != KindSplitPending {
			return fmt.Errorf("span %v: opens with %v, want split-pending", s.ID, s.Events[0].Kind)
		}
	} else {
		if s.Events[0].Kind != KindTrigger {
			return fmt.Errorf("span %v: opens with %v, want trigger", s.ID, s.Events[0].Kind)
		}
		if len(s.Events) < 2 || s.Events[1].Kind != KindSelect {
			return fmt.Errorf("span %v: trigger not followed by select", s.ID)
		}
	}
	var (
		terminal Kind
		seen     [numKinds]bool
		lastSeq  uint64
	)
	for i, ev := range s.Events {
		if ev.Seq < lastSeq {
			return fmt.Errorf("span %v: event %d (%v) out of Seq order", s.ID, i, ev.Kind)
		}
		lastSeq = ev.Seq
		if int(ev.Kind) >= int(numKinds) {
			return fmt.Errorf("span %v: unknown kind %d", s.ID, uint8(ev.Kind))
		}
		rule := spanRules[ev.Kind]
		if terminal != KindNone && !rule.Trailing {
			return fmt.Errorf("span %v: %v after terminal %v", s.ID, ev.Kind, terminal)
		}
		for _, req := range rule.Requires {
			if !seen[req] {
				return fmt.Errorf("span %v: %v without earlier %v", s.ID, ev.Kind, req)
			}
		}
		for _, bad := range rule.Forbids {
			if seen[bad] {
				return fmt.Errorf("span %v: %v after %v", s.ID, ev.Kind, bad)
			}
		}
		if rule.Terminal {
			terminal = ev.Kind
		}
		seen[ev.Kind] = true
	}
	if terminal == KindNone {
		return fmt.Errorf("span %v: no terminal event (last is %v)",
			s.ID, s.Events[len(s.Events)-1].Kind)
	}
	return nil
}
