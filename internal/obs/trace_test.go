package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanIDPacking(t *testing.T) {
	cases := []struct {
		side   uint8
		source int
		epoch  uint64
	}{
		{0, 0, 1},
		{1, 3, 17},
		{0, 32767, 1 << 40},
		{1, 7, 0xffffffffffff},
	}
	for _, c := range cases {
		id := NewSpanID(c.side, c.source, c.epoch)
		if id.Side() != c.side || id.Source() != c.source || id.Epoch() != c.epoch {
			t.Errorf("NewSpanID(%d,%d,%d) round-tripped to (%d,%d,%d)",
				c.side, c.source, c.epoch, id.Side(), id.Source(), id.Epoch())
		}
	}
	if got := NewSpanID(1, 3, 17).String(); got != "S/3/17" {
		t.Errorf("String() = %q, want S/3/17", got)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for e := uint64(1); e <= 6; e++ {
		tr.Emit(Event{Kind: KindTrigger, Span: NewSpanID(0, 1, e), Epoch: e})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := tr.Emitted(); got != 6 {
		t.Fatalf("Emitted = %d, want 6", got)
	}
	if got := tr.Evicted(); got != 2 {
		t.Fatalf("Evicted = %d, want 2", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(i + 3); ev.Epoch != want || ev.Seq != want {
			t.Errorf("snapshot[%d]: epoch=%d seq=%d, want %d (oldest first)", i, ev.Epoch, ev.Seq, want)
		}
		if ev.At == 0 {
			t.Errorf("snapshot[%d]: At not stamped", i)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindTrigger}) // must not panic
	if tr.Len() != 0 || tr.Emitted() != 0 || tr.Evicted() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer must report zeros")
	}
}

func TestKindJSONAndString(t *testing.T) {
	b, err := json.Marshal(KindRouteApplied)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"route-applied"` {
		t.Fatalf("marshal = %s", b)
	}
	for k := KindNone; k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// ev is shorthand for building span event sequences with increasing Seq.
func evs(kinds ...Kind) []Event {
	id := NewSpanID(0, 2, 9)
	out := make([]Event, len(kinds))
	for i, k := range kinds {
		out[i] = Event{Seq: uint64(i + 1), Span: id, Kind: k}
	}
	return out
}

func TestSpanErr(t *testing.T) {
	valid := [][]Event{
		// Committed migration: full handshake, flush, commit; target's
		// install and replay trail the source's commit (concurrency), the
		// monitor's done comes last.
		evs(KindTrigger, KindSelect, KindFence, KindRouteApplied, KindMarker,
			KindMarker, KindFlush, KindInstall, KindCommit, KindReplay, KindDone),
		// Empty selection: trigger, select, noop.
		evs(KindTrigger, KindSelect, KindNoop, KindDone),
		// Aborted migration: fence, partial markers, abort, revert
		// markers, return, rollback with replay after.
		evs(KindTrigger, KindSelect, KindFence, KindMarker, KindAbort,
			KindRevertMarker, KindRevertMarker, KindReturn, KindReplay, KindRollback, KindDone),
	}
	for i, events := range valid {
		if err := (Span{ID: events[0].Span, Events: events}).Err(); err != nil {
			t.Errorf("valid span %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"no trigger", evs(KindSelect, KindNoop)},
		{"no select", evs(KindTrigger, KindNoop)},
		{"marker before fence", evs(KindTrigger, KindSelect, KindMarker)},
		{"flush without marker", evs(KindTrigger, KindSelect, KindFence, KindFlush)},
		{"commit without flush", evs(KindTrigger, KindSelect, KindFence, KindMarker, KindCommit)},
		{"commit after abort", evs(KindTrigger, KindSelect, KindFence, KindMarker, KindFlush, KindAbort, KindCommit)},
		{"rollback without return", evs(KindTrigger, KindSelect, KindFence, KindAbort, KindRollback)},
		{"noop after fence", evs(KindTrigger, KindSelect, KindFence, KindNoop)},
		{"event after terminal", evs(KindTrigger, KindSelect, KindNoop, KindFence)},
		{"no terminal", evs(KindTrigger, KindSelect, KindFence, KindMarker)},
	}
	for _, c := range invalid {
		span := Span{ID: NewSpanID(0, 2, 9), Events: c.events}
		if err := span.Err(); err == nil {
			t.Errorf("%s: invalid span accepted", c.name)
		}
	}

	// Out-of-order Seq within a span is a tracer bug worth catching.
	events := evs(KindTrigger, KindSelect, KindNoop)
	events[2].Seq = 1
	if err := (Span{ID: events[0].Span, Events: events}).Err(); err == nil {
		t.Error("out-of-Seq span accepted")
	}
}

func TestSpansGrouping(t *testing.T) {
	a := NewSpanID(0, 1, 1)
	b := NewSpanID(1, 2, 1)
	events := []Event{
		{Seq: 1, Span: a, Kind: KindTrigger},
		{Seq: 2, Span: b, Kind: KindTrigger},
		{Seq: 3, Span: 0, Kind: KindDone}, // no span: skipped
		{Seq: 4, Span: a, Kind: KindSelect},
		{Seq: 5, Span: b, Kind: KindSelect},
		{Seq: 6, Span: a, Kind: KindNoop},
		{Seq: 7, Span: b, Kind: KindNoop},
	}
	spans := Spans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].ID != a || spans[1].ID != b {
		t.Fatalf("span order: %v, %v (want first-appearance order a, b)", spans[0].ID, spans[1].ID)
	}
	for _, s := range spans {
		if len(s.Events) != 3 {
			t.Errorf("span %v: %d events, want 3", s.ID, len(s.Events))
		}
		if s.Terminal() != KindNoop {
			t.Errorf("span %v: terminal %v, want noop", s.ID, s.Terminal())
		}
		if err := s.Err(); err != nil {
			t.Errorf("span %v: %v", s.ID, err)
		}
	}
}
