// Package remote provides network ingestion for a join system: a server
// accepts TCP connections (package transport) and turns each into a tuple
// source for fastjoin.Options.Sources, and a client streams a workload to
// such a server. This splits tuple production and join processing across
// processes/hosts the way the paper's deployment separates Kafka producers
// from the Storm cluster.
package remote

import (
	"fmt"
	"io"

	"fastjoin"
	"fastjoin/internal/stream"
	"fastjoin/internal/transport"
	"fastjoin/internal/workload"
)

// tupleStream is the transport stream name carrying tuples.
const tupleStream = "tuples"

func init() {
	// Payload types that may travel inside tuples.
	transport.RegisterValue(stream.Tuple{})
	transport.RegisterValue(workload.OrderPayload{})
	transport.RegisterValue(workload.TrackPayload{})
	transport.RegisterValue(workload.QueryPayload{})
	transport.RegisterValue(workload.ClickPayload{})
}

// AcceptSources waits for n client connections on the server and returns
// one TupleSource per client. Each source yields the client's tuples in
// arrival order and ends when the client closes its connection. The
// returned closer shuts every accepted connection.
func AcceptSources(srv *transport.Server, n int) ([]fastjoin.TupleSource, func(), error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("remote: need at least one ingestion connection")
	}
	conns := make([]transport.Conn, 0, n)
	closer := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	sources := make([]fastjoin.TupleSource, 0, n)
	for i := 0; i < n; i++ {
		conn, err := srv.Accept()
		if err != nil {
			closer()
			return nil, nil, fmt.Errorf("remote: accept ingestion %d: %w", i, err)
		}
		conns = append(conns, conn)
		sources = append(sources, connSource(conn))
	}
	return sources, closer, nil
}

// connSource adapts one connection to a pull-based tuple source. The spout
// goroutine blocks in Recv between tuples; EOF or any error ends the
// source.
func connSource(conn transport.Conn) fastjoin.TupleSource {
	done := false
	return func() (fastjoin.Tuple, bool) {
		if done {
			return fastjoin.Tuple{}, false
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				done = true
				return fastjoin.Tuple{}, false
			}
			if m.Stream != tupleStream {
				continue // ignore non-tuple traffic
			}
			t, ok := m.Value.(stream.Tuple)
			if !ok {
				continue
			}
			return t, true
		}
	}
}

// StreamTuples dials a join server and pushes the source's tuples until it
// is exhausted, then closes the connection. It returns how many tuples
// were sent.
func StreamTuples(addr string, src fastjoin.TupleSource) (int, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	sent := 0
	for {
		t, ok := src()
		if !ok {
			return sent, nil
		}
		if err := conn.Send(transport.Message{Stream: tupleStream, Value: t}); err != nil {
			if err == io.EOF {
				return sent, nil
			}
			return sent, fmt.Errorf("remote: send tuple %d: %w", sent, err)
		}
		sent++
	}
}
