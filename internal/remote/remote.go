// Package remote provides network ingestion for a join system: a server
// accepts TCP connections (package transport) and turns each into a tuple
// source for fastjoin.Options.Sources, and a client streams a workload to
// such a server. This splits tuple production and join processing across
// processes/hosts the way the paper's deployment separates Kafka producers
// from the Storm cluster.
package remote

import (
	"fmt"
	"io"

	"fastjoin"
	"fastjoin/internal/stream"
	"fastjoin/internal/transport"
	"fastjoin/internal/workload"
)

// tupleStream is the transport stream name carrying tuples.
const tupleStream = "tuples"

func init() {
	// Payload types that may travel inside tuples.
	transport.RegisterValue(stream.Tuple{})
	transport.RegisterValue(workload.OrderPayload{})
	transport.RegisterValue(workload.TrackPayload{})
	transport.RegisterValue(workload.QueryPayload{})
	transport.RegisterValue(workload.ClickPayload{})
}

// AcceptSources waits for n client connections on the server and returns
// one TupleSource per client. Each source yields the client's tuples in
// arrival order and ends when the client closes its connection. The
// returned closer shuts every accepted connection.
func AcceptSources(srv *transport.Server, n int) ([]fastjoin.TupleSource, func(), error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("remote: need at least one ingestion connection")
	}
	conns := make([]transport.Conn, 0, n)
	closer := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	sources := make([]fastjoin.TupleSource, 0, n)
	for i := 0; i < n; i++ {
		conn, err := srv.Accept()
		if err != nil {
			closer()
			return nil, nil, fmt.Errorf("remote: accept ingestion %d: %w", i, err)
		}
		conns = append(conns, conn)
		sources = append(sources, connSource(conn))
	}
	return sources, closer, nil
}

// connSource adapts one connection to a pull-based tuple source. The spout
// goroutine blocks in Recv between tuples; EOF or any error ends the
// source. Tuples arrive either singly or packed in a transport.Chunk
// (the wire-level batch StreamTuples sends); a chunk is unpacked in order
// across successive pulls.
func connSource(conn transport.Conn) fastjoin.TupleSource {
	done := false
	var queued []stream.Tuple // remainder of the chunk being unpacked
	return func() (fastjoin.Tuple, bool) {
		if done {
			return fastjoin.Tuple{}, false
		}
		for {
			if len(queued) > 0 {
				t := queued[0]
				queued = queued[1:]
				return t, true
			}
			m, err := conn.Recv()
			if err != nil {
				done = true
				return fastjoin.Tuple{}, false
			}
			if m.Stream != tupleStream {
				continue // ignore non-tuple traffic
			}
			switch v := m.Value.(type) {
			case stream.Tuple:
				return v, true
			case transport.Chunk:
				for _, raw := range v.Values {
					if t, ok := raw.(stream.Tuple); ok {
						queued = append(queued, t)
					}
				}
			}
		}
	}
}

// StreamTuples dials a join server and pushes the source's tuples until it
// is exhausted, then closes the connection. Tuples travel packed in
// transport.Chunks of DefaultChunkSize, so the gob pipe encodes and the
// reliable layer sequences each group as a single unit. It returns how
// many tuples were sent.
func StreamTuples(addr string, src fastjoin.TupleSource) (int, error) {
	return StreamTuplesChunked(addr, src, transport.DefaultChunkSize)
}

// StreamTuplesChunked is StreamTuples with an explicit chunk size;
// size <= 1 sends one message per tuple (the unbatched wire format).
func StreamTuplesChunked(addr string, src fastjoin.TupleSource, size int) (int, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	sent := 0
	sendOne := func(v any) error {
		err := conn.Send(transport.Message{Stream: tupleStream, Value: v})
		if err != nil && err != io.EOF {
			return fmt.Errorf("remote: send after %d tuples: %w", sent, err)
		}
		return err
	}
	if size <= 1 {
		for {
			t, ok := src()
			if !ok {
				return sent, nil
			}
			if err := sendOne(t); err != nil {
				if err == io.EOF {
					return sent, nil
				}
				return sent, err
			}
			sent++
		}
	}
	chunk := transport.Chunk{Values: make([]any, 0, size)}
	flush := func() error {
		if len(chunk.Values) == 0 {
			return nil
		}
		if err := sendOne(chunk); err != nil {
			return err
		}
		sent += len(chunk.Values)
		// Fresh slice: the gob encoder may still reference the old one.
		chunk.Values = make([]any, 0, size)
		return nil
	}
	for {
		t, ok := src()
		if !ok {
			if err := flush(); err != nil && err != io.EOF {
				return sent, err
			}
			return sent, nil
		}
		chunk.Values = append(chunk.Values, t)
		if len(chunk.Values) >= size {
			if err := flush(); err != nil {
				if err == io.EOF {
					return sent, nil
				}
				return sent, err
			}
		}
	}
}
