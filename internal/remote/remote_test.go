package remote

import (
	"sync"
	"testing"
	"time"

	"fastjoin"
	"fastjoin/internal/transport"
)

// finiteSource emits n tuples alternating sides over k shared keys.
func finiteSource(n, k int, seqOffset, stride uint64) fastjoin.TupleSource {
	i := 0
	rSeq, sSeq := seqOffset, seqOffset
	return func() (fastjoin.Tuple, bool) {
		if i >= n {
			return fastjoin.Tuple{}, false
		}
		t := fastjoin.Tuple{Key: fastjoin.Key((i / 2) % k)}
		if i%2 == 0 {
			t.Side, t.Seq = fastjoin.R, rSeq
			rSeq += stride
		} else {
			t.Side, t.Seq = fastjoin.S, sSeq
			sSeq += stride
		}
		i++
		return t, true
	}
}

// TestNetworkIngestionJoin runs a join server fed by two TCP clients and
// checks the result count against the closed-form expectation.
func TestNetworkIngestionJoin(t *testing.T) {
	srv, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// Two clients, disjoint sequence spaces, same key universe.
	var wg sync.WaitGroup
	clientErr := make([]error, 2)
	clientSent := make([]int, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clientSent[c], clientErr[c] = StreamTuples(srv.Addr(), finiteSource(1000, 10, uint64(c), 2))
		}(c)
	}

	sources, closeConns, err := AcceptSources(srv, 2)
	if err != nil {
		t.Fatalf("AcceptSources: %v", err)
	}
	defer closeConns()

	sys, err := fastjoin.New(fastjoin.Options{
		Kind:    fastjoin.KindFastJoin,
		Joiners: 3,
		Sources: sources,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatalf("WaitComplete: %v", err)
	}
	sys.Stop()
	wg.Wait()
	for c := 0; c < 2; c++ {
		if clientErr[c] != nil {
			t.Fatalf("client %d: %v", c, clientErr[c])
		}
		if clientSent[c] != 1000 {
			t.Fatalf("client %d sent %d", c, clientSent[c])
		}
	}

	// 1000 R tuples and 1000 S tuples over 10 keys: 10 * 100 * 100 pairs.
	if got := sys.Stats().Results; got != 10*100*100 {
		t.Errorf("results = %d, want 100000", got)
	}
	if got := sys.Ingested(); got != 2000 {
		t.Errorf("ingested = %d, want 2000", got)
	}
}

func TestAcceptSourcesValidation(t *testing.T) {
	srv, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	if _, _, err := AcceptSources(srv, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestStreamTuplesDialFailure(t *testing.T) {
	if _, err := StreamTuples("127.0.0.1:1", finiteSource(1, 1, 0, 1)); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestConnSourceIgnoresForeignMessages(t *testing.T) {
	a, b := transport.Pipe(8)
	defer a.Close()
	src := connSource(b)
	// A non-tuple message must be skipped, then the tuple delivered.
	if err := a.Send(transport.Message{Stream: "noise", Value: 42}); err != nil {
		t.Fatal(err)
	}
	want := fastjoin.Tuple{Side: fastjoin.R, Key: 9, Seq: 3}
	if err := a.Send(transport.Message{Stream: "tuples", Value: want}); err != nil {
		t.Fatal(err)
	}
	got, ok := src()
	if !ok || got.Key != 9 || got.Seq != 3 {
		t.Errorf("got %+v ok=%v", got, ok)
	}
	// Closing ends the source, permanently.
	a.Close()
	if _, ok := src(); ok {
		t.Error("source alive after close")
	}
	if _, ok := src(); ok {
		t.Error("source revived")
	}
}
