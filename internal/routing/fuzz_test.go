package routing

import (
	"testing"

	"fastjoin/internal/stream"
)

// FuzzRoutingUpdate drives the hash router through an arbitrary script
// of ownership updates — the operation a migration's RouteUpdate (and
// its abort revert) performs — and checks the invariants every
// dispatcher relies on:
//
//   - the owner of any key is always a valid instance index in [0, n)
//   - StoreTarget and ProbeTargets agree on that single owner
//   - the last applied update wins (tracked against a shadow map)
//   - Overrides equals the number of distinct re-routed (side, key) pairs
//
// The script bytes decode as: b[0] picks n, b[1] the hash seed, then
// triples of (side, key, newOwner) apply updates.
func FuzzRoutingUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 7, 0, 5, 1})
	f.Add([]byte{0, 0, 1, 200, 2, 0, 200, 3, 1, 200, 1})
	f.Add([]byte{7, 255, 0, 1, 2, 0, 1, 3, 1, 1, 4, 0, 2, 5})
	f.Fuzz(func(t *testing.T, script []byte) {
		n := 1
		var seed uint64
		if len(script) > 0 {
			n = 1 + int(script[0]%8)
		}
		if len(script) > 1 {
			seed = uint64(script[1])
		}
		r := NewHash(n, seed)
		shadow := [2]map[stream.Key]int{
			make(map[stream.Key]int),
			make(map[stream.Key]int),
		}

		check := func() {
			for side := 0; side < 2; side++ {
				overrides := 0
				for key := stream.Key(0); key < 64; key++ {
					owner := r.Owner(stream.Side(side), key)
					if owner < 0 || owner >= n {
						t.Fatalf("owner %d of key %d out of range [0,%d)", owner, key, n)
					}
					if got := r.StoreTarget(stream.Side(side), key); got != owner {
						t.Fatalf("StoreTarget %d != Owner %d for key %d", got, owner, key)
					}
					targets := r.ProbeTargets(stream.Side(side), key, nil)
					if len(targets) != 1 || targets[0] != owner {
						t.Fatalf("ProbeTargets %v, want single owner %d for key %d", targets, owner, key)
					}
					if want, ok := shadow[side][key]; ok && owner != want {
						t.Fatalf("key %d side %d: owner %d, last update said %d", key, side, owner, want)
					}
				}
				overrides = len(shadow[side])
				if got := r.Overrides(stream.Side(side)); got != overrides {
					t.Fatalf("Overrides(%d) = %d, shadow has %d", side, got, overrides)
				}
			}
		}

		check()
		for i := 2; i+2 < len(script); i += 3 {
			side := stream.Side(script[i] % 2)
			key := stream.Key(script[i+1] % 64)
			owner := int(script[i+2]) % n
			r.ApplyUpdate(side, []stream.Key{key}, owner)
			shadow[side][key] = owner
			check()
		}
	})
}
