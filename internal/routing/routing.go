// Package routing implements the dispatcher's partitioning strategies,
// shared by the live runtime (package biclique) and the discrete-event
// simulator (package sim): key-hash partitioning with a mutable per-side
// routing table (the strategy FastJoin's migration rewrites), BiStream's
// ContRand hybrid, and the random/broadcast baseline.
package routing

import (
	"math/rand"

	"fastjoin/internal/stream"
	"fastjoin/internal/xhash"
)

// Router decides where a tuple is stored and where it probes. A Router
// belongs to one dispatcher task; it is not safe for concurrent use.
type Router interface {
	// StoreTarget returns the instance (within the tuple's own side group)
	// that stores the tuple.
	StoreTarget(side stream.Side, key stream.Key) int
	// ProbeTargets appends to buf the instances (within the given side
	// group) a tuple of the opposite stream must probe, returning the
	// extended buffer.
	ProbeTargets(side stream.Side, key stream.Key, buf []int) []int
	// ApplyUpdate records a key ownership change for one side. Only the
	// hash router honors it; static strategies ignore updates.
	//
	// Implementations must not retain keys: callers may pass a scratch
	// slice that the next ApplyUpdate overwrites (the dispatcher's frozen-
	// key filter does exactly that). Copy what outlives the call — the
	// hash router copies each key into its route map.
	ApplyUpdate(side stream.Side, keys []stream.Key, newOwner int)
}

// Hash is key-hash partitioning with a per-side routing table. Both the
// store location of side X's tuples and the probe location of the opposite
// stream's tuples follow the same owner map, so migrating a key moves its
// storage and its probe traffic together — the property the load model
// L_i = |R_i| * φ_si builds on. The two sides hash with different seeds so
// a hot key's R-store and S-store land on different instance indexes.
type Hash struct {
	n     int
	seed  uint64
	route [2]map[stream.Key]int
}

// NewHash returns a hash router over n instances per side.
func NewHash(n int, seed uint64) *Hash {
	return &Hash{
		n:    n,
		seed: seed,
		route: [2]map[stream.Key]int{
			make(map[stream.Key]int),
			make(map[stream.Key]int),
		},
	}
}

// Owner returns the current owner of a key within a side group.
func (r *Hash) Owner(side stream.Side, key stream.Key) int {
	if o, ok := r.route[side][key]; ok {
		return o
	}
	return xhash.SeededPartition(key, r.seed^(uint64(side)+1)*0x9e3779b9, r.n)
}

// StoreTarget implements Router.
func (r *Hash) StoreTarget(side stream.Side, key stream.Key) int {
	return r.Owner(side, key)
}

// ProbeTargets implements Router.
func (r *Hash) ProbeTargets(side stream.Side, key stream.Key, buf []int) []int {
	return append(buf, r.Owner(side, key))
}

// ApplyUpdate implements Router.
func (r *Hash) ApplyUpdate(side stream.Side, keys []stream.Key, newOwner int) {
	for _, k := range keys {
		r.route[side][k] = newOwner
	}
}

// Overrides returns how many keys of a side have been re-routed away from
// their hash home (diagnostics).
func (r *Hash) Overrides(side stream.Side) int { return len(r.route[side]) }

// ContRand implements BiStream's hybrid routing: the key space is hashed
// onto subgroups of g instances; a tuple is stored on a random member of
// its key's subgroup, and probes broadcast to the whole subgroup.
type ContRand struct {
	n    int
	g    int
	seed uint64
	rng  *rand.Rand
}

// NewContRand returns a ContRand router (subgroup size g, clamped to
// [1, n]); salt decorrelates the random store choice across dispatcher
// tasks.
func NewContRand(n, g int, seed uint64, salt int) *ContRand {
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	return &ContRand{
		n: n, g: g, seed: seed,
		rng: rand.New(rand.NewSource(int64(seed) ^ int64(salt)<<17 ^ 0x7f4a7c15)),
	}
}

// Members returns the half-open instance range of the key's subgroup.
func (r *ContRand) Members(side stream.Side, key stream.Key) (lo, hi int) {
	return SubgroupRange(r.n, r.g, r.seed, side, key)
}

// SubgroupRange computes the contiguous g-instance subgroup a key hashes
// to within a side group of n instances, as a half-open range [lo, hi).
// It is the subgroup geometry ContRand routes with, exported so the
// dispatcher's hot-key splitting can salt a heavy hitter's stores over the
// same deterministic member set its probes broadcast to: same n, g, seed
// and side always yield the same range, on every dispatcher task, with no
// coordination.
func SubgroupRange(n, g int, seed uint64, side stream.Side, key stream.Key) (lo, hi int) {
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	groups := (n + g - 1) / g
	grp := xhash.SeededPartition(key, seed^uint64(side+1)*0x9e37, groups)
	lo = grp * g
	hi = lo + g
	if hi > n {
		hi = n
	}
	return lo, hi
}

// StoreTarget implements Router.
func (r *ContRand) StoreTarget(side stream.Side, key stream.Key) int {
	lo, hi := r.Members(side, key)
	return lo + r.rng.Intn(hi-lo)
}

// ProbeTargets implements Router.
func (r *ContRand) ProbeTargets(side stream.Side, key stream.Key, buf []int) []int {
	lo, hi := r.Members(side, key)
	for i := lo; i < hi; i++ {
		buf = append(buf, i)
	}
	return buf
}

// ApplyUpdate implements Router (no-op: ContRand is static).
func (r *ContRand) ApplyUpdate(stream.Side, []stream.Key, int) {}

// Random is the random-partitioning baseline: store anywhere, probe
// everywhere.
type Random struct {
	n   int
	rng *rand.Rand
}

// NewRandom returns a random router; salt decorrelates dispatcher tasks.
func NewRandom(n int, seed uint64, salt int) *Random {
	return &Random{
		n:   n,
		rng: rand.New(rand.NewSource(int64(seed) ^ int64(salt)<<21 ^ 0x51afd7ed)),
	}
}

// StoreTarget implements Router.
func (r *Random) StoreTarget(stream.Side, stream.Key) int { return r.rng.Intn(r.n) }

// ProbeTargets implements Router.
func (r *Random) ProbeTargets(_ stream.Side, _ stream.Key, buf []int) []int {
	for i := 0; i < r.n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// ApplyUpdate implements Router (no-op).
func (r *Random) ApplyUpdate(stream.Side, []stream.Key, int) {}
