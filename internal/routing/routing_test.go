package routing

import (
	"testing"
	"testing/quick"

	"fastjoin/internal/stream"
)

func TestHashConsistentOwnership(t *testing.T) {
	r := NewHash(8, 7)
	for key := stream.Key(0); key < 100; key++ {
		store := r.StoreTarget(stream.R, key)
		probe := r.ProbeTargets(stream.R, key, nil)
		if len(probe) != 1 {
			t.Fatalf("hash probe fan-out = %d, want 1", len(probe))
		}
		// Stores of side R and probes against side R agree on the owner —
		// the invariant behind L_i = |R_i| * φ_si.
		if probe[0] != store {
			t.Fatalf("key %d: store at %d but probe at %d", key, store, probe[0])
		}
		if store < 0 || store >= 8 {
			t.Fatalf("owner %d out of range", store)
		}
	}
}

func TestHashSidesDecoupled(t *testing.T) {
	// The R and S owners of the same key should differ for most keys so a
	// hot key does not compound on one instance index.
	r := NewHash(16, 7)
	same := 0
	for key := stream.Key(0); key < 400; key++ {
		if r.Owner(stream.R, key) == r.Owner(stream.S, key) {
			same++
		}
	}
	// Expectation ~400/16 = 25 coincidences.
	if same > 60 {
		t.Errorf("%d/400 keys share owners across sides", same)
	}
}

func TestHashApplyUpdate(t *testing.T) {
	r := NewHash(4, 1)
	before := r.Owner(stream.R, 42)
	newOwner := (before + 1) % 4
	r.ApplyUpdate(stream.R, []stream.Key{42}, newOwner)
	if got := r.Owner(stream.R, 42); got != newOwner {
		t.Errorf("owner = %d, want %d", got, newOwner)
	}
	if got := r.ProbeTargets(stream.R, 42, nil); got[0] != newOwner {
		t.Errorf("probe target = %d, want %d", got[0], newOwner)
	}
	// The S side's owner for key 42 must be untouched.
	if got := r.Owner(stream.S, 42); got != NewHash(4, 1).Owner(stream.S, 42) {
		t.Error("S side affected by R-side update")
	}
	// Another key is unaffected.
	if r.Owner(stream.R, 43) != NewHash(4, 1).Owner(stream.R, 43) {
		t.Error("unrelated key moved")
	}
	if r.Overrides(stream.R) != 1 || r.Overrides(stream.S) != 0 {
		t.Errorf("overrides = %d/%d", r.Overrides(stream.R), r.Overrides(stream.S))
	}
}

func TestHashSeedChangesPlacement(t *testing.T) {
	a := NewHash(16, 1)
	b := NewHash(16, 2)
	same := 0
	for key := stream.Key(0); key < 200; key++ {
		if a.Owner(stream.R, key) == b.Owner(stream.R, key) {
			same++
		}
	}
	if same > 40 { // expectation ~200/16 = 12.5
		t.Errorf("%d/200 keys agree across seeds", same)
	}
}

func TestHashBalancedPlacement(t *testing.T) {
	const n, keys = 8, 8000
	r := NewHash(n, 3)
	counts := make([]int, n)
	for k := stream.Key(0); k < keys; k++ {
		counts[r.Owner(stream.R, k)]++
	}
	for i, c := range counts {
		if c < keys/n*8/10 || c > keys/n*12/10 {
			t.Errorf("instance %d owns %d keys, want ~%d", i, c, keys/n)
		}
	}
}

func TestContRandSubgroupMembership(t *testing.T) {
	r := NewContRand(8, 2, 1, 0)
	for key := stream.Key(0); key < 100; key++ {
		lo, hi := r.Members(stream.R, key)
		if hi-lo != 2 {
			t.Fatalf("subgroup size = %d, want 2", hi-lo)
		}
		for trial := 0; trial < 10; trial++ {
			s := r.StoreTarget(stream.R, key)
			if s < lo || s >= hi {
				t.Fatalf("store %d outside subgroup [%d,%d)", s, lo, hi)
			}
		}
		probes := r.ProbeTargets(stream.R, key, nil)
		if len(probes) != 2 || probes[0] != lo || probes[1] != lo+1 {
			t.Fatalf("probes = %v, want [%d %d]", probes, lo, lo+1)
		}
	}
}

func TestContRandStoreSpreadsWithinSubgroup(t *testing.T) {
	r := NewContRand(4, 2, 1, 0)
	counts := make(map[int]int)
	for i := 0; i < 1000; i++ {
		counts[r.StoreTarget(stream.R, 7)]++
	}
	if len(counts) != 2 {
		t.Fatalf("stores hit %d members, want 2", len(counts))
	}
	for member, c := range counts {
		if c < 300 {
			t.Errorf("member %d got %d/1000 stores", member, c)
		}
	}
}

func TestContRandClamping(t *testing.T) {
	if got := NewContRand(3, 10, 1, 0).ProbeTargets(stream.R, 1, nil); len(got) != 3 {
		t.Errorf("oversize subgroup probes = %v", got)
	}
	if got := NewContRand(3, 0, 1, 0).ProbeTargets(stream.R, 1, nil); len(got) != 1 {
		t.Errorf("zero subgroup probes = %v", got)
	}
}

func TestContRandUpdateIgnored(t *testing.T) {
	r := NewContRand(8, 2, 1, 0)
	lo, hi := r.Members(stream.R, 5)
	r.ApplyUpdate(stream.R, []stream.Key{5}, 0)
	lo2, hi2 := r.Members(stream.R, 5)
	if lo != lo2 || hi != hi2 {
		t.Error("static router changed after update")
	}
}

func TestRandomRouterRanges(t *testing.T) {
	r := NewRandom(5, 1, 0)
	seen := make(map[int]bool)
	for i := 0; i < 500; i++ {
		s := r.StoreTarget(stream.R, stream.Key(i))
		if s < 0 || s >= 5 {
			t.Fatalf("store %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Errorf("stores hit %d/5 instances", len(seen))
	}
	probes := r.ProbeTargets(stream.S, 9, nil)
	if len(probes) != 5 {
		t.Fatalf("probe fan-out %d, want 5", len(probes))
	}
	for i, p := range probes {
		if p != i {
			t.Fatalf("probes = %v", probes)
		}
	}
	r.ApplyUpdate(stream.R, []stream.Key{1}, 0) // must be a no-op
}

// Property: hash probe targets always equal the store target for any key,
// side and routing-table state reachable by updates.
func TestHashProbeStoreAgreementProperty(t *testing.T) {
	f := func(key stream.Key, updates []uint8) bool {
		r := NewHash(6, 3)
		for i, u := range updates {
			r.ApplyUpdate(stream.Side(i%2), []stream.Key{stream.Key(u % 16)}, int(u)%6)
		}
		for _, side := range []stream.Side{stream.R, stream.S} {
			p := r.ProbeTargets(side, key%16, nil)
			if len(p) != 1 || p[0] != r.StoreTarget(side, key%16) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ProbeTargets always returns at least one target in range, for
// every strategy.
func TestProbeTargetsInRangeProperty(t *testing.T) {
	routers := []Router{
		NewHash(7, 1),
		NewContRand(7, 3, 1, 0),
		NewRandom(7, 1, 0),
	}
	f := func(key stream.Key, sideRaw uint8) bool {
		side := stream.Side(sideRaw % 2)
		for _, r := range routers {
			targets := r.ProbeTargets(side, key, nil)
			if len(targets) == 0 {
				return false
			}
			for _, tg := range targets {
				if tg < 0 || tg >= 7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SubgroupRange is a well-formed, deterministic tiling of the
// instance space — every key's range is non-empty, in bounds, aligned to a
// group boundary, and identical to what ContRand.Members routes with (the
// contract hot-key splitting relies on: stores salted over the range are
// always covered by probes broadcast to the same range).
func TestSubgroupRangeProperty(t *testing.T) {
	f := func(key stream.Key, sideRaw, nRaw, gRaw uint8, seed uint64) bool {
		side := stream.Side(sideRaw % 2)
		n := int(nRaw%16) + 1
		g := int(gRaw % 20) // may exceed n or be zero: must clamp
		lo, hi := SubgroupRange(n, g, seed, side, key)
		if lo < 0 || hi > n || lo >= hi {
			return false
		}
		gc := g
		if gc < 1 {
			gc = 1
		}
		if gc > n {
			gc = n
		}
		if hi-lo > gc || lo%gc != 0 {
			return false
		}
		// Deterministic: same inputs, same range.
		lo2, hi2 := SubgroupRange(n, g, seed, side, key)
		return lo == lo2 && hi == hi2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubgroupRangeMatchesContRand(t *testing.T) {
	const n, g, seed = 10, 3, 77
	r := NewContRand(n, g, seed, 0)
	for _, side := range []stream.Side{stream.R, stream.S} {
		for key := stream.Key(0); key < 200; key++ {
			clo, chi := r.Members(side, key)
			slo, shi := SubgroupRange(n, g, seed, side, key)
			if clo != slo || chi != shi {
				t.Fatalf("side %v key %d: ContRand [%d,%d) != SubgroupRange [%d,%d)",
					side, key, clo, chi, slo, shi)
			}
		}
	}
}
