package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"time"

	"fastjoin/internal/core"
	"fastjoin/internal/metrics"
	"fastjoin/internal/routing"
	"fastjoin/internal/stream"
)

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := newSim(cfg)
	s.run()
	return s.finish(), nil
}

// sim is the simulation state.
type sim struct {
	cfg Config
	now float64
	seq int64

	events eventHeap
	router routing.Router
	inst   [2][]*instance

	monitors [2]*core.Monitor

	// chaos draws fault-emulation decisions; nil when chaos is off. It is
	// seeded from cfg.Seed and consumed only inside the (deterministic)
	// event loop, so runs replay exactly.
	chaos *rand.Rand

	latency *metrics.Histogram
	res     *Result

	arrivalCount int64 // interleave counter for R:S ratio
	lastSampleAt float64
	lastResults  int64
}

func newSim(cfg Config) *sim {
	s := &sim{
		cfg:     cfg,
		latency: metrics.NewHistogram(),
		res:     &Result{},
	}
	switch cfg.Strategy {
	case StrategyHash:
		s.router = routing.NewHash(cfg.Instances, cfg.Seed)
	case StrategyContRand:
		s.router = routing.NewContRand(cfg.Instances, cfg.SubgroupSize, cfg.Seed, 0)
	case StrategyRandom:
		s.router = routing.NewRandom(cfg.Instances, cfg.Seed, 0)
	}
	for side := 0; side < 2; side++ {
		s.inst[side] = make([]*instance, cfg.Instances)
		for i := range s.inst[side] {
			s.inst[side][i] = &instance{
				side:         stream.Side(side),
				id:           i,
				storedPerKey: make(map[stream.Key]int64),
				probePerKey:  make(map[stream.Key]int64),
			}
		}
		s.monitors[side] = core.NewMonitor(core.MonitorPolicy{
			Theta:            cfg.Theta,
			Cooldown:         secDur(cfg.CooldownSec),
			SustainTicks:     cfg.SustainTicks,
			TargetProtection: secDur(cfg.TargetProtectSec),
			MinStored:        64,
		})
	}
	if cfg.Chaos.enabled() {
		s.chaos = rand.New(rand.NewSource(int64(cfg.Seed)*0x9e3779b9 + 0x7f4a7c15))
	}
	s.schedule(0, evArrival, nil)
	s.schedule(cfg.StatsInterval, evStats, nil)
	s.schedule(cfg.SampleEvery, evSample, nil)
	return s
}

// secDur converts virtual seconds to a duration for the monitor policy.
func secDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// vtime maps virtual seconds onto a time.Time for the monitor.
func vtime(sec float64) time.Time {
	return time.Unix(0, 0).Add(secDur(sec))
}

func (s *sim) schedule(at float64, kind evKind, in *instance) {
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, kind: kind, inst: in})
}

// run drives the event loop until the virtual horizon.
func (s *sim) run() {
	heap.Init(&s.events)
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.at > s.cfg.Duration {
			break
		}
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			s.onArrival()
		case evComplete:
			s.onComplete(ev.inst)
		case evStats:
			s.onStats()
			s.schedule(s.now+s.cfg.StatsInterval, evStats, nil)
		case evSample:
			s.onSample()
			s.schedule(s.now+s.cfg.SampleEvery, evSample, nil)
		}
	}
}

// onArrival generates one tuple, routes its store and probe tasks, and
// schedules the next arrival.
func (s *sim) onArrival() {
	side := stream.R
	if s.arrivalCount%int64(s.cfg.SPerR+1) != 0 {
		side = stream.S
	}
	s.arrivalCount++
	s.res.Ingested++

	var key stream.Key
	if side == stream.R {
		key = s.cfg.SamplerR.Sample()
	} else {
		key = s.cfg.SamplerS.Sample()
	}

	// Store in the tuple's own group.
	storeAt := s.router.StoreTarget(side, key)
	s.enqueue(s.inst[side][storeAt], task{key: key, store: true, enqueued: s.now})

	// Probe the opposite group.
	opp := side.Opposite()
	var buf [64]int
	for _, target := range s.router.ProbeTargets(opp, key, buf[:0]) {
		s.enqueue(s.inst[opp][target], task{key: key, store: false, enqueued: s.now})
	}

	s.schedule(s.now+1/s.cfg.ArrivalRate, evArrival, nil)
}

// enqueue appends a task; an idle instance starts serving immediately.
func (s *sim) enqueue(in *instance, t task) {
	in.queue = append(in.queue, t)
	if !in.busy {
		s.startNext(in)
	}
}

// startNext pops the next task and schedules its completion.
func (s *sim) startNext(in *instance) {
	t, ok := in.popTask()
	if !ok {
		in.busy = false
		return
	}
	in.busy = true
	in.current = t
	cost := t.cost
	if cost == 0 {
		if t.store {
			cost = 1
		} else {
			// Probe cost scales with the matching stored tuples at start
			// of service.
			cost = s.cfg.ProbeBase + s.cfg.MatchCost*float64(in.storedPerKey[t.key])
		}
	}
	s.schedule(s.now+cost/s.cfg.ServiceRate, evComplete, in)
}

// onComplete applies the finished task's effects and starts the next one.
func (s *sim) onComplete(in *instance) {
	t := in.current
	s.res.Processed++
	if t.cost > 0 {
		// Synthetic work (migration transfer): no data effects.
	} else if t.store {
		in.storedTotal++
		in.storedPerKey[t.key]++
		if s.cfg.WindowSpan > 0 {
			s.admitToBucket(in, t.key)
		}
	} else {
		matches := in.storedPerKey[t.key]
		s.res.Results += matches
		in.probeIntvl++
		in.probePerKey[t.key]++
		s.latency.Observe(int64((s.now - t.enqueued) * 1e9))
	}
	s.startNext(in)
}

// admitToBucket records a stored tuple in the instance's newest window
// bucket (bucket span = WindowSpan / 8).
func (s *sim) admitToBucket(in *instance, key stream.Key) {
	span := s.cfg.WindowSpan / 8
	if n := len(in.buckets); n == 0 || s.now >= in.buckets[n-1].start+span {
		in.buckets = append(in.buckets, bucket{start: s.now, counts: make(map[stream.Key]int64)})
	}
	in.buckets[len(in.buckets)-1].counts[key]++
}

// expireWindows drops buckets older than the window from every instance.
func (s *sim) expireWindows() {
	if s.cfg.WindowSpan <= 0 {
		return
	}
	span := s.cfg.WindowSpan / 8
	cutoff := s.now - s.cfg.WindowSpan
	for side := 0; side < 2; side++ {
		for _, in := range s.inst[side] {
			drop := 0
			for _, b := range in.buckets {
				if b.start+span >= cutoff {
					break
				}
				for k, c := range b.counts {
					in.storedPerKey[k] -= c
					in.storedTotal -= c
					if in.storedPerKey[k] <= 0 {
						delete(in.storedPerKey, k)
					}
				}
				drop++
			}
			if drop > 0 {
				in.buckets = in.buckets[drop:]
			}
		}
	}
}

// onStats is the periodic monitor evaluation: update φ, record LI, and
// trigger migrations.
func (s *sim) onStats() {
	s.expireWindows()
	for side := 0; side < 2; side++ {
		loads := make([]core.InstanceLoad, s.cfg.Instances)
		for i, in := range s.inst[side] {
			raw := float64(in.probeIntvl + int64(in.queueLen()))
			in.probeEWMA = 0.5*in.probeEWMA + 0.5*raw
			probe := int64(in.probeEWMA)
			if probe == 0 && in.probeEWMA > 0 {
				probe = 1
			}
			loads[i] = core.InstanceLoad{Instance: i, Stored: in.storedTotal, Probe: probe}
		}
		if side == int(stream.R) {
			li, _, _ := core.Imbalance(loads)
			s.res.LI = append(s.res.LI, Sample{T: s.now, Value: math.Min(li, 1e4)})
		}
		if s.cfg.Migration {
			if d := s.monitors[side].Evaluate(vtime(s.now), loads); d != nil {
				s.migrate(stream.Side(side), d)
				s.monitors[side].MigrationDone()
			}
		}
		// Interval stats reset.
		for _, in := range s.inst[side] {
			in.probeIntvl = 0
			in.probePrev = in.probePerKey
			in.probePerKey = make(map[stream.Key]int64)
		}
	}
	if s.chaos != nil && s.cfg.Chaos.StallProb > 0 {
		// Chaos stalls: synthetic work that blocks the instance for
		// StallSec, delaying everything queued behind it — the load-model
		// analogue of the live StallFunc.
		for side := 0; side < 2; side++ {
			for _, in := range s.inst[side] {
				if s.chaos.Float64() < s.cfg.Chaos.StallProb {
					s.enqueue(in, task{cost: s.cfg.Chaos.StallSec * s.cfg.ServiceRate, enqueued: s.now})
				}
			}
		}
	}
}

// migrate applies one migration: select keys, move per-key state, re-home
// queued probe tasks, and charge transfer work to both endpoints.
func (s *sim) migrate(side stream.Side, d *core.Decision) {
	src := s.inst[side][d.Source.Instance]
	dst := s.inst[side][d.Target.Instance]

	// Per-key stats, rescaled to the aggregate φ the decision used (the
	// same normalization as the live joiner).
	var rawTotal int64
	probe := make(map[stream.Key]int64, len(src.probePrev)+len(src.probePerKey))
	for k, c := range src.probePrev {
		probe[k] += c
		rawTotal += c
	}
	for k, c := range src.probePerKey {
		probe[k] += c
		rawTotal += c
	}
	scale := 1.0
	if rawTotal > 0 && d.Source.Probe > 0 {
		scale = float64(d.Source.Probe) / float64(rawTotal)
	}
	stats := make([]core.KeyStat, 0, len(src.storedPerKey)+len(probe))
	for k, c := range src.storedPerKey {
		stats = append(stats, core.KeyStat{Key: k, Stored: c, Probe: int64(float64(probe[k]) * scale)})
		delete(probe, k)
	}
	for k, c := range probe {
		stats = append(stats, core.KeyStat{Key: k, Stored: 0, Probe: int64(float64(c) * scale)})
	}
	selected := s.cfg.Selector(core.SelectInput{
		Source:     d.Source,
		Target:     d.Target,
		Keys:       stats,
		MinBenefit: s.cfg.MinBenefit,
	})
	if len(selected) == 0 {
		return
	}

	if s.chaos != nil && s.chaos.Float64() < s.cfg.Chaos.MigFailProb {
		// Aborted handshake: the batch was shipped to the target and
		// returned, so both endpoints pay the transfer twice, but routing
		// and stored state roll back unchanged (the live dual-fence abort).
		var would int64
		for _, k := range selected {
			would += src.storedPerKey[k]
		}
		if would > 0 {
			cost := 2 * float64(would) * s.cfg.TransferCost
			s.enqueue(src, task{cost: cost, enqueued: s.now})
			s.enqueue(dst, task{cost: cost, enqueued: s.now})
		}
		s.res.MigrationAborts++
		return
	}

	sel := make(map[stream.Key]bool, len(selected))
	var moved int64
	for _, k := range selected {
		sel[k] = true
		// The keys' probe history leaves with them; stale entries could
		// otherwise re-select keys this instance no longer owns.
		delete(src.probePerKey, k)
		delete(src.probePrev, k)
		if c := src.storedPerKey[k]; c > 0 {
			delete(src.storedPerKey, k)
			src.storedTotal -= c
			dst.storedPerKey[k] += c
			dst.storedTotal += c
			moved += c
		}
		// Move window-bucket residues so expiry stays consistent.
		for bi := range src.buckets {
			if c := src.buckets[bi].counts[k]; c > 0 {
				delete(src.buckets[bi].counts, k)
				s.bucketAt(dst, src.buckets[bi].start)[k] += c
			}
		}
	}
	s.router.ApplyUpdate(side, selected, d.Target.Instance)

	// Re-home queued tasks for the migrated keys (the live protocol's
	// temporary queue + flush).
	var stay []task
	for i := src.qHead; i < len(src.queue); i++ {
		t := src.queue[i]
		if sel[t.key] {
			dst.queue = append(dst.queue, t)
			if !dst.busy {
				s.startNext(dst)
			}
		} else {
			stay = append(stay, t)
		}
	}
	src.queue = stay
	src.qHead = 0

	// Charge the transfer to both endpoints.
	if moved > 0 {
		cost := float64(moved) * s.cfg.TransferCost
		s.enqueue(src, task{cost: cost, enqueued: s.now})
		s.enqueue(dst, task{cost: cost, enqueued: s.now})
	}

	s.res.Migrations++
	s.res.MigratedKeys += int64(len(selected))
	s.res.MigratedTuples += moved
}

// bucketAt finds or creates the destination bucket with the given start.
func (s *sim) bucketAt(in *instance, start float64) map[stream.Key]int64 {
	for i := range in.buckets {
		if in.buckets[i].start == start {
			return in.buckets[i].counts
		}
	}
	// Insert keeping starts sorted (rare path).
	b := bucket{start: start, counts: make(map[stream.Key]int64)}
	in.buckets = append(in.buckets, b)
	for i := len(in.buckets) - 1; i > 0 && in.buckets[i-1].start > start; i-- {
		in.buckets[i-1], in.buckets[i] = in.buckets[i], in.buckets[i-1]
	}
	for i := range in.buckets {
		if in.buckets[i].start == start {
			return in.buckets[i].counts
		}
	}
	return b.counts
}

// onSample records the throughput series.
func (s *sim) onSample() {
	dt := s.now - s.lastSampleAt
	if dt <= 0 {
		return
	}
	rate := float64(s.res.Results-s.lastResults) / dt
	s.res.Throughput = append(s.res.Throughput, Sample{T: s.now, Value: rate})
	s.lastSampleAt = s.now
	s.lastResults = s.res.Results
}

// finish computes the summary statistics.
func (s *sim) finish() *Result {
	snap := s.latency.Snapshot()
	s.res.MeanLatencySec = snap.Mean / 1e9
	s.res.P99LatencySec = float64(snap.P99) / 1e9
	s.res.MeanThroughput = tailMean(s.res.Throughput, 0.5)
	s.res.SteadyLI = tailMean(s.res.LI, 0.5)
	for _, in := range s.inst[stream.R] {
		raw := in.probeEWMA
		load := in.storedTotal * int64(raw)
		s.res.FinalLoads = append(s.res.FinalLoads, load)
	}
	return s.res
}

// tailMean averages the last fraction of a series.
func tailMean(xs []Sample, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	start := len(xs) - int(float64(len(xs))*frac)
	if start >= len(xs) {
		start = len(xs) - 1
	}
	var sum float64
	for _, x := range xs[start:] {
		sum += x.Value
	}
	return sum / float64(len(xs)-start)
}
