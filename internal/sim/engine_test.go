package sim

import (
	"testing"
	"time"

	"fastjoin/internal/stream"
)

func TestPopTaskCompaction(t *testing.T) {
	in := &instance{}
	const n = 10000
	for i := 0; i < n; i++ {
		in.queue = append(in.queue, task{key: stream.Key(i)})
	}
	for i := 0; i < n; i++ {
		tk, ok := in.popTask()
		if !ok {
			t.Fatalf("queue exhausted early at %d", i)
		}
		if tk.key != stream.Key(i) {
			t.Fatalf("FIFO broken at %d: got key %d", i, tk.key)
		}
	}
	if _, ok := in.popTask(); ok {
		t.Error("pop on empty queue succeeded")
	}
	if in.queueLen() != 0 {
		t.Errorf("queueLen = %d after drain", in.queueLen())
	}
	// Compaction must have happened at least once (head reset).
	if in.qHead > n/2 {
		t.Errorf("queue never compacted: qHead = %d", in.qHead)
	}
}

func TestQueueLen(t *testing.T) {
	in := &instance{}
	in.queue = append(in.queue, task{}, task{}, task{})
	in.popTask()
	if got := in.queueLen(); got != 2 {
		t.Errorf("queueLen = %d, want 2", got)
	}
}

func TestSecDurAndVtime(t *testing.T) {
	if secDur(1.5) != 1500*time.Millisecond {
		t.Errorf("secDur(1.5) = %v", secDur(1.5))
	}
	a, b := vtime(1), vtime(2)
	if !b.After(a) {
		t.Error("vtime not monotone")
	}
	if b.Sub(a) != time.Second {
		t.Errorf("vtime delta = %v", b.Sub(a))
	}
}

func TestTailMeanSamples(t *testing.T) {
	xs := []Sample{{Value: 100}, {Value: 100}, {Value: 2}, {Value: 4}}
	if got := tailMean(xs, 0.5); got != 3 {
		t.Errorf("tailMean = %f, want 3", got)
	}
	if tailMean(nil, 0.5) != 0 {
		t.Error("tailMean(nil) != 0")
	}
}

func TestEventHeapOrdering(t *testing.T) {
	h := eventHeap{
		{at: 3, seq: 1},
		{at: 1, seq: 2},
		{at: 1, seq: 1},
		{at: 2, seq: 5},
	}
	// Heapify through the sim loop's usage pattern.
	s := &sim{events: h}
	_ = s
	// Verify Less: earlier time first; ties broken by seq.
	if !h.Less(2, 1) {
		t.Error("tie-break by seq broken")
	}
	if !h.Less(1, 3) {
		t.Error("time ordering broken")
	}
}

func TestBucketAtInsertsSorted(t *testing.T) {
	s := &sim{cfg: Config{WindowSpan: 8}}
	in := &instance{}
	s.bucketAt(in, 3.0)[1] = 1
	s.bucketAt(in, 1.0)[2] = 1
	s.bucketAt(in, 2.0)[3] = 1
	if len(in.buckets) != 3 {
		t.Fatalf("buckets = %d", len(in.buckets))
	}
	for i := 1; i < len(in.buckets); i++ {
		if in.buckets[i-1].start > in.buckets[i].start {
			t.Fatalf("buckets unsorted: %v then %v", in.buckets[i-1].start, in.buckets[i].start)
		}
	}
	// Existing bucket reused, not duplicated.
	m := s.bucketAt(in, 2.0)
	if m[3] != 1 {
		t.Error("existing bucket not found")
	}
	if len(in.buckets) != 3 {
		t.Errorf("duplicate bucket created: %d", len(in.buckets))
	}
}

func TestExpireWindowsRemovesOldCounts(t *testing.T) {
	cfg := Config{
		Instances: 1, ServiceRate: 1000, ArrivalRate: 1000, Duration: 1,
		WindowSpan: 8, SamplerR: constSampler(1), SamplerS: constSampler(1),
	}
	if err := (&cfg).validate(); err != nil {
		t.Fatal(err)
	}
	s := newSim(cfg)
	in := s.inst[0][0]
	in.storedPerKey[5] = 3
	in.storedTotal = 3
	s.bucketAt(in, 0.0)[5] = 3
	s.now = 100 // far past the window
	s.expireWindows()
	if in.storedTotal != 0 || in.storedPerKey[5] != 0 {
		t.Errorf("expiry left stored=%d perKey=%d", in.storedTotal, in.storedPerKey[5])
	}
	if len(in.buckets) != 0 {
		t.Errorf("buckets not dropped: %d", len(in.buckets))
	}
}

// constSampler always returns the same key.
type constSampler stream.Key

func (c constSampler) Sample() stream.Key { return stream.Key(c) }
func (c constSampler) Cardinality() int   { return 1 }
