// Package sim is a deterministic discrete-event simulator of the
// join-biclique system at cluster scale. It complements the live runtime
// (package biclique): where the live system proves protocol correctness on
// real concurrent executions, the simulator reproduces the paper's
// *performance* experiments at their original scale — 48 join instances,
// millions of tuples — on any host, in virtual time, with exact latency
// accounting and no scheduler noise.
//
// Model: an open queueing network (Storm-like, unbounded queues). Every
// join instance is a server with a virtual service rate; a store costs 1
// op, a probe costs ProbeBase + MatchCost per matching stored tuple. The
// dispatcher routes with the same strategies as the live system
// (internal/routing), the monitors run the same core.Monitor policy, and
// migrations use the same key selection algorithms (core.GreedyFit /
// core.SAFit) fed with the simulated per-key statistics. A migration
// charges both endpoints transfer work, models the paper's Algorithm 2
// disruption.
package sim

import (
	"fmt"

	"fastjoin/internal/core"
	"fastjoin/internal/stream"
	"fastjoin/internal/workload"
)

// Strategy mirrors the live system's partitioning strategies.
type Strategy uint8

const (
	// StrategyHash is key-hash partitioning (FastJoin's substrate).
	StrategyHash Strategy = iota
	// StrategyContRand is BiStream's hybrid routing.
	StrategyContRand
	// StrategyRandom is the broadcast baseline.
	StrategyRandom
)

// Config parameterizes one simulation run.
type Config struct {
	// Instances is the number of join instances per biclique side
	// (the paper's default is 48).
	Instances int
	// ServiceRate is each instance's capacity in ops/second.
	ServiceRate float64
	// ProbeBase and MatchCost shape the per-probe cost:
	// ProbeBase + MatchCost * |R_k|. Defaults 0.2 and 0.01.
	ProbeBase float64
	MatchCost float64
	// ArrivalRate is the offered load in tuples/second.
	ArrivalRate float64
	// Duration is the simulated time span in seconds.
	Duration float64
	// WindowSpan bounds the join window in seconds (0 = full history).
	WindowSpan float64
	// StatsInterval is the monitor/report period in seconds (default 0.1).
	StatsInterval float64
	// Strategy selects the partitioning scheme.
	Strategy Strategy
	// SubgroupSize is ContRand's subgroup size (default 2).
	SubgroupSize int

	// Migration enables FastJoin's dynamic load balancing (hash only).
	Migration bool
	// Policy is the monitor policy; zero fields take core defaults, with
	// durations interpreted by the monitor in wall-clock terms mapped
	// onto virtual time.
	Theta            float64 // default 2.2
	CooldownSec      float64 // default 1.0
	SustainTicks     int     // default 3
	TargetProtectSec float64 // default 2 * cooldown
	MinBenefit       int64   // θ_gap, default 1
	// TransferCost is the virtual ops charged per migrated tuple at both
	// endpoints (default 1).
	TransferCost float64
	// Selector picks the key set (nil = core.GreedyFit).
	Selector core.Selector

	// SamplerR and SamplerS draw the join keys of the two streams; SPerR
	// is the S:R rate ratio (default 1).
	SamplerR workload.Sampler
	SamplerS workload.Sampler
	SPerR    int

	// SampleEvery is the metrics sampling period in seconds (default 0.5).
	SampleEvery float64
	// Seed derandomizes placement.
	Seed uint64

	// Chaos emulates the live system's fault drills in the load model.
	Chaos Chaos
}

// Chaos configures the simulator's fault emulation. The simulator has no
// message lanes to drop packets on, so it models the *load effects* of the
// live chaos profiles instead: a failed marker handshake becomes a
// migration that aborts and rolls back (the batch is shipped and
// returned, charging both endpoints double transfer work, with routing
// and state unchanged); message delays become periodic instance stalls.
// All draws come from the run's Seed, so a simulation replays exactly.
type Chaos struct {
	// MigFailProb is the probability that a triggered migration aborts
	// after shipping its batch (the live AbortTimeout path).
	MigFailProb float64
	// StallProb is the per-instance, per-stats-tick probability of a
	// stall; StallSec is the stall length in virtual seconds
	// (default 0.05 when StallProb is set).
	StallProb float64
	StallSec  float64
}

func (c Chaos) enabled() bool { return c.MigFailProb > 0 || c.StallProb > 0 }

// ChaosPreset maps the live chaos profile names (chaos.Names) onto
// simulator knobs, so `fastjoin-sim -chaos mixed` drills the same
// scenarios the live suite replays.
func ChaosPreset(name string) (Chaos, error) {
	switch name {
	case "", "none":
		return Chaos{}, nil
	case "droponly":
		// Dropped forward markers are what time a handshake out.
		return Chaos{MigFailProb: 0.5}, nil
	case "delayonly":
		return Chaos{StallProb: 0.2, StallSec: 0.05}, nil
	case "duponly":
		// Duplicates are absorbed by epoch dedup; no load-model effect.
		return Chaos{}, nil
	case "mixed":
		return Chaos{MigFailProb: 0.3, StallProb: 0.1, StallSec: 0.05}, nil
	case "abortstorm":
		return Chaos{MigFailProb: 1}, nil
	default:
		return Chaos{}, fmt.Errorf("sim: unknown chaos preset %q", name)
	}
}

func (c *Config) validate() error {
	if c.Instances <= 0 {
		return fmt.Errorf("sim: Instances must be > 0")
	}
	if c.ServiceRate <= 0 {
		return fmt.Errorf("sim: ServiceRate must be > 0")
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("sim: ArrivalRate must be > 0")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: Duration must be > 0")
	}
	if c.SamplerR == nil || c.SamplerS == nil {
		return fmt.Errorf("sim: both stream samplers are required")
	}
	if c.Migration && c.Strategy != StrategyHash {
		return fmt.Errorf("sim: migration requires StrategyHash")
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = 0.2
	}
	if c.MatchCost <= 0 {
		c.MatchCost = 0.01
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 0.1
	}
	if c.SubgroupSize <= 0 {
		c.SubgroupSize = 2
	}
	if c.SubgroupSize > c.Instances {
		c.SubgroupSize = c.Instances
	}
	if c.Theta <= 1 {
		c.Theta = 2.2
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = 1.0
	}
	if c.SustainTicks <= 0 {
		c.SustainTicks = 3
	}
	if c.TargetProtectSec <= 0 {
		c.TargetProtectSec = 2 * c.CooldownSec
	}
	if c.MinBenefit <= 0 {
		c.MinBenefit = 1
	}
	if c.TransferCost <= 0 {
		c.TransferCost = 1
	}
	if c.Selector == nil {
		c.Selector = core.GreedyFit
	}
	if c.SPerR <= 0 {
		c.SPerR = 1
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 0.5
	}
	if c.Chaos.MigFailProb < 0 || c.Chaos.MigFailProb > 1 ||
		c.Chaos.StallProb < 0 || c.Chaos.StallProb > 1 {
		return fmt.Errorf("sim: chaos probabilities must be in [0,1]")
	}
	if c.Chaos.StallProb > 0 && c.Chaos.StallSec <= 0 {
		c.Chaos.StallSec = 0.05
	}
	return nil
}

// Sample is one point of a simulated time series.
type Sample struct {
	T     float64 `json:"t"`
	Value float64 `json:"value"`
}

// Result summarizes one simulation run.
type Result struct {
	// Ingested counts offered tuples; Processed counts completed tasks
	// (stores + probes); Results counts joined pairs.
	Ingested  int64
	Processed int64
	Results   int64
	// MeanLatencySec and P99LatencySec are probe sojourn times
	// (enqueue to completion), exact.
	MeanLatencySec float64
	P99LatencySec  float64
	// Throughput and LI time series, sampled every SampleEvery.
	Throughput []Sample
	LI         []Sample
	// MeanThroughput is the tail mean of the throughput series.
	MeanThroughput float64
	// SteadyLI is the tail mean of the LI series.
	SteadyLI float64
	// Migrations / MigratedKeys / MigratedTuples count balancing activity.
	Migrations     int
	MigratedKeys   int64
	MigratedTuples int64
	// MigrationAborts counts attempts that rolled back under chaos.
	MigrationAborts int
	// FinalLoads is each R-side instance's load at the end.
	FinalLoads []int64
}

// event kinds.
type evKind uint8

const (
	evArrival evKind = iota
	evComplete
	evStats
	evSample
)

// event is one scheduled occurrence.
type event struct {
	at   float64
	seq  int64 // tie-break for determinism
	kind evKind
	inst *instance // for evComplete
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// task is one unit of work queued at an instance. A zero cost means "use
// the store/probe cost model"; a positive cost is synthetic work (the
// migration transfer charge).
type task struct {
	key      stream.Key
	store    bool // store (own stream) vs probe (opposite stream)
	cost     float64
	enqueued float64
}

// instance is one simulated join instance of one side.
type instance struct {
	side stream.Side
	id   int

	queue   []task // FIFO; head at index qHead
	qHead   int
	busy    bool
	current task

	// Load accounting.
	storedTotal  int64
	storedPerKey map[stream.Key]int64
	probeIntvl   int64
	probePerKey  map[stream.Key]int64
	probePrev    map[stream.Key]int64
	probeEWMA    float64

	// Window expiry: ring of per-bucket admission maps.
	buckets []bucket
}

type bucket struct {
	start  float64
	counts map[stream.Key]int64
}

func (in *instance) queueLen() int { return len(in.queue) - in.qHead }

func (in *instance) popTask() (task, bool) {
	if in.qHead >= len(in.queue) {
		return task{}, false
	}
	t := in.queue[in.qHead]
	in.qHead++
	// Compact occasionally so memory stays bounded.
	if in.qHead > 4096 && in.qHead*2 > len(in.queue) {
		n := copy(in.queue, in.queue[in.qHead:])
		in.queue = in.queue[:n]
		in.qHead = 0
	}
	return t, true
}
