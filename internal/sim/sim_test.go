package sim

import (
	"testing"

	"fastjoin/internal/workload"
)

// baseline returns a small but non-trivial simulation config.
func baseline(strategy Strategy, migration bool, theta float64) Config {
	return Config{
		Instances:   8,
		ServiceRate: 20000,
		ArrivalRate: 30000,
		Duration:    10,
		WindowSpan:  2,
		Strategy:    strategy,
		Migration:   migration,
		Theta:       theta,
		CooldownSec: 1,
		SamplerR:    workload.NewZipfShuffled(5000, 1.0, 11),
		SamplerS:    workload.NewZipfShuffled(5000, 1.0, 12),
		SPerR:       3,
		SampleEvery: 0.5,
		Seed:        7,
	}
}

func TestValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Instances = 0 },
		func(c *Config) { c.ServiceRate = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.SamplerR = nil },
		func(c *Config) { c.Strategy = StrategyRandom; c.Migration = true },
	}
	for i, mutate := range cases {
		cfg := baseline(StrategyHash, false, 2.2)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := baseline(StrategyHash, true, 1.8)
		cfg.Duration = 5
		// Fresh samplers per run: they carry rng state.
		cfg.SamplerR = workload.NewZipfShuffled(2000, 1.0, 11)
		cfg.SamplerS = workload.NewZipfShuffled(2000, 1.0, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Results != b.Results || a.Processed != b.Processed || a.Migrations != b.Migrations {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
	if a.MeanLatencySec != b.MeanLatencySec {
		t.Errorf("latency differs: %v vs %v", a.MeanLatencySec, b.MeanLatencySec)
	}
}

func TestIngestMatchesArrivalRate(t *testing.T) {
	cfg := baseline(StrategyHash, false, 2.2)
	cfg.Duration = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(cfg.ArrivalRate * cfg.Duration)
	if res.Ingested < want*95/100 || res.Ingested > want*105/100 {
		t.Errorf("ingested %d, want ~%d", res.Ingested, want)
	}
	if res.Results == 0 {
		t.Error("no join results produced")
	}
	if res.MeanLatencySec <= 0 {
		t.Error("no latency recorded")
	}
	if len(res.Throughput) == 0 || len(res.LI) == 0 {
		t.Error("series not recorded")
	}
}

func TestUniformWorkloadBalanced(t *testing.T) {
	cfg := baseline(StrategyHash, false, 2.2)
	cfg.SamplerR = workload.NewUniform(5000, 11)
	cfg.SamplerS = workload.NewUniform(5000, 12)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SteadyLI > 3 {
		t.Errorf("uniform workload LI = %.2f, want small", res.SteadyLI)
	}
}

func TestSkewedWorkloadImbalancedWithoutMigration(t *testing.T) {
	cfg := baseline(StrategyHash, false, 2.2)
	cfg.SamplerR = workload.NewZipfShuffled(5000, 1.5, 11)
	cfg.SamplerS = workload.NewZipfShuffled(5000, 1.5, 12)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SteadyLI < 3 {
		t.Errorf("skewed BiStream LI = %.2f, want large", res.SteadyLI)
	}
	if res.Migrations != 0 {
		t.Errorf("baseline migrated %d times", res.Migrations)
	}
}

func TestMigrationReducesImbalance(t *testing.T) {
	mk := func(migration bool) *Result {
		cfg := baseline(StrategyHash, migration, 2.2)
		cfg.SamplerR = workload.NewZipfShuffled(5000, 1.0, 11)
		cfg.SamplerS = workload.NewZipfShuffled(5000, 1.0, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	bistream := mk(false)
	fastjoin := mk(true)
	if fastjoin.Migrations == 0 {
		t.Fatal("FastJoin never migrated under skew")
	}
	if fastjoin.SteadyLI >= bistream.SteadyLI {
		t.Errorf("migration did not reduce LI: FastJoin %.2f vs BiStream %.2f",
			fastjoin.SteadyLI, bistream.SteadyLI)
	}
}

// TestPaperScaleFastJoinWins is the headline reproduction at the paper's
// instance count: 48 join instances per side, overloaded skewed input;
// FastJoin must beat BiStream on throughput and latency.
func TestPaperScaleFastJoinWins(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation skipped in short mode")
	}
	mk := func(migration bool) *Result {
		cfg := Config{
			Instances:   48,
			ServiceRate: 20000,
			// Offered load ~ 60% of aggregate nominal capacity: far above
			// what the skew-bottlenecked instances can absorb.
			ArrivalRate: 250000,
			Duration:    20,
			WindowSpan:  2,
			Strategy:    StrategyHash,
			Migration:   migration,
			Theta:       2.2,
			CooldownSec: 1,
			SamplerR:    workload.NewZipfPerm(100000, 0.95, 11, 99),
			SamplerS:    workload.NewZipfPerm(100000, 0.9, 12, 99),
			SPerR:       4,
			SampleEvery: 1,
			Seed:        7,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	bistream := mk(false)
	fastjoin := mk(true)
	t.Logf("BiStream: thr=%.0f lat=%.3fs LI=%.1f", bistream.MeanThroughput, bistream.MeanLatencySec, bistream.SteadyLI)
	t.Logf("FastJoin: thr=%.0f lat=%.3fs LI=%.1f migrations=%d", fastjoin.MeanThroughput, fastjoin.MeanLatencySec, fastjoin.SteadyLI, fastjoin.Migrations)
	if fastjoin.MeanThroughput <= bistream.MeanThroughput {
		t.Errorf("FastJoin throughput %.0f <= BiStream %.0f",
			fastjoin.MeanThroughput, bistream.MeanThroughput)
	}
	if fastjoin.MeanLatencySec >= bistream.MeanLatencySec {
		t.Errorf("FastJoin latency %.4f >= BiStream %.4f",
			fastjoin.MeanLatencySec, bistream.MeanLatencySec)
	}
	if fastjoin.SteadyLI >= bistream.SteadyLI {
		t.Errorf("FastJoin LI %.2f >= BiStream %.2f", fastjoin.SteadyLI, bistream.SteadyLI)
	}
}

func TestWindowBoundsState(t *testing.T) {
	run := func(window float64) int64 {
		cfg := baseline(StrategyHash, false, 2.2)
		cfg.WindowSpan = window
		cfg.SamplerR = workload.NewUniform(100, 11)
		cfg.SamplerS = workload.NewUniform(100, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Results
	}
	full := run(0)
	windowed := run(1)
	// A window strictly bounds |R_k| and therefore total matches.
	if windowed >= full {
		t.Errorf("windowed results %d >= full-history %d", windowed, full)
	}
}

func TestContRandSpreadsHotKey(t *testing.T) {
	mk := func(strategy Strategy) *Result {
		cfg := baseline(strategy, false, 2.2)
		cfg.SamplerR = workload.NewZipfShuffled(5000, 1.5, 11)
		cfg.SamplerS = workload.NewZipfShuffled(5000, 1.5, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	hash := mk(StrategyHash)
	contrand := mk(StrategyContRand)
	// ContRand's subgroup spreading should reduce the steady imbalance
	// versus plain hash under heavy skew.
	if contrand.SteadyLI >= hash.SteadyLI {
		t.Errorf("ContRand LI %.2f >= hash LI %.2f", contrand.SteadyLI, hash.SteadyLI)
	}
}

func TestBroadcastStrategyRuns(t *testing.T) {
	cfg := baseline(StrategyRandom, false, 2.2)
	cfg.Duration = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Results == 0 {
		t.Error("broadcast produced no results")
	}
}

func TestSelectorSwap(t *testing.T) {
	cfg := baseline(StrategyHash, true, 1.8)
	cfg.Duration = 5
	cfg.SamplerR = workload.NewZipfShuffled(2000, 1.2, 11)
	cfg.SamplerS = workload.NewZipfShuffled(2000, 1.2, 12)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Migrations == 0 {
		t.Skip("no migrations triggered; selector comparison moot")
	}
	if res.MigratedTuples == 0 {
		t.Error("migrations moved no tuples")
	}
}

// TestDriftingHotspotAdaptation is the scenario the paper's introduction
// motivates: workloads shift over time, so no static assignment stays
// balanced. FastJoin re-migrates as the hot set moves; the BiStream
// baseline degrades each time the hotspot lands on an already-loaded
// instance.
func TestDriftingHotspotAdaptation(t *testing.T) {
	mk := func(migration bool) *Result {
		cfg := baseline(StrategyHash, migration, 2.2)
		cfg.Duration = 16
		cfg.CooldownSec = 0.5
		// The hot set rotates roughly every ~2 virtual seconds of arrivals.
		period := int64(cfg.ArrivalRate) * 2 / int64(cfg.SPerR+1)
		cfg.SamplerR = workload.NewDriftingZipf(5000, 1.3, period, 997, 11, 5)
		cfg.SamplerS = workload.NewDriftingZipf(5000, 1.3, period*int64(cfg.SPerR), 997, 12, 5)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	bistream := mk(false)
	fastjoin := mk(true)
	t.Logf("drift BiStream: thr=%.0f LI=%.1f", bistream.MeanThroughput, bistream.SteadyLI)
	t.Logf("drift FastJoin: thr=%.0f LI=%.1f migrations=%d", fastjoin.MeanThroughput, fastjoin.SteadyLI, fastjoin.Migrations)
	if fastjoin.Migrations < 4 {
		t.Errorf("FastJoin should keep migrating as the hotspot drifts: %d", fastjoin.Migrations)
	}
	if fastjoin.SteadyLI >= bistream.SteadyLI {
		t.Errorf("FastJoin LI %.2f >= BiStream %.2f under drift", fastjoin.SteadyLI, bistream.SteadyLI)
	}
}

func TestChaosPresets(t *testing.T) {
	for _, name := range []string{"", "none", "droponly", "delayonly", "duponly", "mixed", "abortstorm"} {
		if _, err := ChaosPreset(name); err != nil {
			t.Errorf("preset %q: %v", name, err)
		}
	}
	if _, err := ChaosPreset("no-such-preset"); err == nil {
		t.Error("unknown preset did not error")
	}
	cfg := baseline(StrategyHash, false, 2.2)
	cfg.Chaos.MigFailProb = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range chaos probability did not error")
	}
}

func TestChaosAbortEmulation(t *testing.T) {
	run := func(failProb float64) *Result {
		cfg := baseline(StrategyHash, true, 1.5)
		cfg.Chaos = Chaos{MigFailProb: failProb}
		// Fresh samplers per run: they carry rng state.
		cfg.SamplerR = workload.NewZipfShuffled(2000, 1.2, 11)
		cfg.SamplerS = workload.NewZipfShuffled(2000, 1.2, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}

	clean := run(0)
	if clean.Migrations == 0 {
		t.Fatal("workload too tame: no migrations without chaos")
	}
	if clean.MigrationAborts != 0 {
		t.Fatalf("aborts without chaos: %d", clean.MigrationAborts)
	}

	storm := run(1)
	if storm.Migrations != 0 {
		t.Errorf("migrations completed under MigFailProb=1: %d", storm.Migrations)
	}
	if storm.MigrationAborts == 0 {
		t.Error("no aborts under MigFailProb=1")
	}
	// Rolled-back migrations leave the imbalance untreated.
	if storm.SteadyLI <= clean.SteadyLI {
		t.Errorf("abort storm LI %.2f <= clean LI %.2f; rollback had data effects?",
			storm.SteadyLI, clean.SteadyLI)
	}

	// Chaos draws are seeded: identical configs replay exactly.
	a, b := run(0.5), run(0.5)
	if a.Results != b.Results || a.MigrationAborts != b.MigrationAborts || a.Migrations != b.Migrations {
		t.Errorf("chaos run not deterministic: %+v vs %+v", a, b)
	}
}

func TestChaosStallsSlowLatency(t *testing.T) {
	run := func(c Chaos) *Result {
		cfg := baseline(StrategyHash, false, 2.2)
		cfg.Chaos = c
		cfg.SamplerR = workload.NewZipfShuffled(2000, 0, 11)
		cfg.SamplerS = workload.NewZipfShuffled(2000, 0, 12)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	clean := run(Chaos{})
	stalled := run(Chaos{StallProb: 0.5, StallSec: 0.2})
	t.Logf("mean latency: clean %.4fs stalled %.4fs", clean.MeanLatencySec, stalled.MeanLatencySec)
	if stalled.MeanLatencySec <= clean.MeanLatencySec {
		t.Errorf("stalls did not raise latency: %.5f <= %.5f",
			stalled.MeanLatencySec, clean.MeanLatencySec)
	}
}
