// Package sketch provides the approximate heavy-hitter detector behind
// FastJoin's hot-key splitting: a SpaceSaving summary (Metwally et al.,
// "Efficient computation of frequent and top-k elements in data streams")
// over recent key frequencies, decayed in observation-count epochs so the
// detector tracks the *current* hot set without consulting a wall clock —
// decision paths stay deterministic for a given tuple sequence, which is
// what lets the chaos differential suite replay split decisions by seed.
package sketch

import "fastjoin/internal/stream"

// entry is one tracked counter: Count overestimates the key's true
// frequency by at most Err (the value of the minimum counter when the key
// took over its slot).
type entry struct {
	key   stream.Key
	count int64
	err   int64
}

// SpaceSaving tracks the top keys of a stream with a fixed budget of
// capacity counters. For any key k with true frequency f(k) over N
// observations:
//
//	Count(k) >= f(k)                   (never underestimates)
//	Count(k) - Err(k) <= f(k)          (guaranteed lower bound)
//	Count(k) - f(k) <= Err(k) <= N/capacity
//
// and every key with f(k) > N/capacity is tracked. Observe is
// allocation-free once the counter table is full, so the sketch can sit on
// the dispatcher's routing hot path.
//
// A SpaceSaving belongs to one dispatcher task; it is not safe for
// concurrent use.
type SpaceSaving struct {
	capacity int
	idx      map[stream.Key]int
	entries  []entry
	total    int64
}

// New returns a sketch with the given counter capacity (minimum 1).
func New(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		idx:      make(map[stream.Key]int, capacity),
		entries:  make([]entry, 0, capacity),
	}
}

// Observe counts one occurrence of the key.
func (s *SpaceSaving) Observe(k stream.Key) {
	s.total++
	if i, ok := s.idx[k]; ok {
		s.entries[i].count++
		return
	}
	if len(s.entries) < s.capacity {
		s.idx[k] = len(s.entries)
		s.entries = append(s.entries, entry{key: k, count: 1})
		return
	}
	// Replace the minimum counter: the newcomer inherits its count as the
	// error bound (it may have occurred up to that many times unseen).
	mi := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count < s.entries[mi].count {
			mi = i
		}
	}
	e := &s.entries[mi]
	delete(s.idx, e.key)
	s.idx[k] = mi
	e.err = e.count
	e.count++
	e.key = k
}

// Halve is the epoch decay: every counter (and its error bound) halves,
// counters that reach zero are evicted, and the observation total halves
// with them. Calling it every fixed number of observations turns the
// sketch into an exponentially-weighted view of recent traffic — a key
// that stops arriving decays out within a few epochs, which is what drives
// un-splitting, while a sustained heavy hitter keeps its relative share.
func (s *SpaceSaving) Halve() {
	s.total /= 2
	keep := s.entries[:0]
	for i := range s.entries {
		e := s.entries[i]
		e.count /= 2
		e.err /= 2
		if e.count == 0 {
			delete(s.idx, e.key)
			continue
		}
		s.idx[e.key] = len(keep)
		keep = append(keep, e)
	}
	s.entries = keep
}

// Estimate returns the key's count overestimate and error bound, or
// ok=false when the key is not tracked (its true decayed frequency is then
// at most the sketch's minimum counter, itself at most Total()/capacity).
func (s *SpaceSaving) Estimate(k stream.Key) (count, err int64, ok bool) {
	i, ok := s.idx[k]
	if !ok {
		return 0, 0, false
	}
	return s.entries[i].count, s.entries[i].err, true
}

// Total returns the decayed observation count the estimates are relative
// to.
func (s *SpaceSaving) Total() int64 { return s.total }

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Capacity returns the counter budget.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// ForEach visits every tracked key with its count overestimate and error
// bound, in table order. The callback must not call back into the sketch.
func (s *SpaceSaving) ForEach(f func(k stream.Key, count, err int64)) {
	for i := range s.entries {
		f(s.entries[i].key, s.entries[i].count, s.entries[i].err)
	}
}
