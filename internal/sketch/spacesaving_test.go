package sketch

import (
	"math/rand"
	"sort"
	"testing"

	"fastjoin/internal/stream"
	"fastjoin/internal/workload"
)

// exactCounts replays a trace into a map for ground truth.
func exactCounts(trace []stream.Key) map[stream.Key]int64 {
	m := make(map[stream.Key]int64)
	for _, k := range trace {
		m[k]++
	}
	return m
}

// zipfTrace samples n keys from a seeded zipf(theta) over the key universe.
func zipfTrace(n, keys int, theta float64, seed int64) []stream.Key {
	z := workload.NewZipf(keys, theta, seed)
	out := make([]stream.Key, n)
	for i := range out {
		out[i] = z.Sample()
	}
	return out
}

// TestSpaceSavingErrorBound is the SpaceSaving guarantee as a property
// over random traces: for every tracked key, the count never
// underestimates, overestimates by at most the recorded error bound, and
// the error bound itself stays within ε·N for ε = 1/capacity. Keys hotter
// than ε·N must be tracked.
func TestSpaceSavingErrorBound(t *testing.T) {
	for _, tc := range []struct {
		name     string
		theta    float64
		keys     int
		capacity int
	}{
		{"uniform", 0, 1000, 32},
		{"zipf0.5", 0.5, 1000, 32},
		{"zipf1.0", 1.0, 1000, 64},
		{"zipf1.5", 1.5, 500, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				n := 50_000
				trace := zipfTrace(n, tc.keys, tc.theta, seed)
				s := New(tc.capacity)
				for _, k := range trace {
					s.Observe(k)
				}
				truth := exactCounts(trace)
				epsN := int64(n) / int64(tc.capacity)
				if s.Total() != int64(n) {
					t.Fatalf("Total = %d, want %d", s.Total(), n)
				}
				s.ForEach(func(k stream.Key, count, err int64) {
					f := truth[k]
					if count < f {
						t.Errorf("seed %d key %d: count %d underestimates true %d", seed, k, count, f)
					}
					if count-err > f {
						t.Errorf("seed %d key %d: guaranteed count %d exceeds true %d", seed, k, count-err, f)
					}
					if count-f > epsN {
						t.Errorf("seed %d key %d: overestimate %d exceeds ε·N = %d", seed, k, count-f, epsN)
					}
					if err > epsN {
						t.Errorf("seed %d key %d: error bound %d exceeds ε·N = %d", seed, k, err, epsN)
					}
				})
				for k, f := range truth {
					if f <= epsN {
						continue
					}
					if _, _, ok := s.Estimate(k); !ok {
						t.Errorf("seed %d: key %d with true count %d > ε·N = %d not tracked", seed, k, f, epsN)
					}
				}
			}
		})
	}
}

// TestSpaceSavingDecayMonotonic: halving never increases any estimate or
// the total, repeated halving drains every counter, and the relative
// ordering of tracked keys is preserved.
func TestSpaceSavingDecayMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New(24)
	for i := 0; i < 20_000; i++ {
		s.Observe(stream.Key(rng.Intn(200)))
	}
	for round := 0; round < 64; round++ {
		type snap struct{ count, err int64 }
		before := make(map[stream.Key]snap)
		s.ForEach(func(k stream.Key, count, err int64) {
			before[k] = snap{count, err}
		})
		beforeTotal := s.Total()
		s.Halve()
		if s.Total() > beforeTotal/2 {
			t.Fatalf("round %d: total %d after halve, was %d", round, s.Total(), beforeTotal)
		}
		s.ForEach(func(k stream.Key, count, err int64) {
			b, ok := before[k]
			if !ok {
				t.Fatalf("round %d: key %d appeared out of nowhere after decay", round, k)
			}
			if count > b.count/2 || err > b.err/2 {
				t.Fatalf("round %d key %d: decay not monotone: count %d->%d err %d->%d",
					round, k, b.count, count, b.err, err)
			}
		})
	}
	if s.Len() != 0 || s.Total() != 0 {
		t.Errorf("64 halvings left %d tracked keys, total %d; decay must drain the sketch", s.Len(), s.Total())
	}
}

// TestSpaceSavingDecayTracksRecency: a key that dominates early traffic and
// then disappears must decay below a key that dominates late traffic, even
// though both have equal lifetime counts — the property the un-split
// decision relies on.
func TestSpaceSavingDecayTracksRecency(t *testing.T) {
	const epoch = 1000
	s := New(16)
	observeEpoch := func(hot stream.Key, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < epoch; i++ {
			if i%2 == 0 {
				s.Observe(hot)
			} else {
				s.Observe(stream.Key(100 + rng.Intn(400)))
			}
		}
		s.Halve()
	}
	for e := 0; e < 8; e++ {
		observeEpoch(1, int64(e)) // key 1 hot early
	}
	for e := 0; e < 8; e++ {
		observeEpoch(2, int64(100+e)) // key 2 hot late, key 1 silent
	}
	c1, _, ok1 := s.Estimate(1)
	c2, _, ok2 := s.Estimate(2)
	if !ok2 {
		t.Fatal("currently-hot key 2 not tracked")
	}
	if ok1 && c1 >= c2 {
		t.Errorf("stale hot key 1 (count %d) not decayed below current hot key 2 (count %d)", c1, c2)
	}
}

// TestSpaceSavingGoldenTopK compares the sketch's top-k against exact
// counts on zipf traces at θ ∈ {0.5, 1.0, 1.5}: the guaranteed heavy
// hitters (count − err above the per-θ share) must be exactly the truly
// heavy keys, and the sketch's top-k ranking must recall the exact top-k.
func TestSpaceSavingGoldenTopK(t *testing.T) {
	const (
		n    = 200_000
		seed = 7
	)
	for _, tc := range []struct {
		theta    float64
		keys     int
		capacity int
		k        int
		// minRecall is the fraction of the exact top-k that must appear in
		// the sketch's top-k. θ=0.5 is weak skew — the head is so flat that
		// neighbouring ranks differ by less than the sketch's ε·N
		// resolution — so it gets a smaller key universe, a bigger table,
		// and a looser bar; θ≥1 must nail the head outright.
		minRecall float64
	}{
		{0.5, 1_000, 256, 8, 0.5},
		{1.0, 10_000, 64, 8, 1.0},
		{1.5, 10_000, 64, 8, 1.0},
	} {
		trace := zipfTrace(n, tc.keys, tc.theta, seed)
		s := New(tc.capacity)
		for _, k := range trace {
			s.Observe(k)
		}
		truth := exactCounts(trace)

		type kc struct {
			key stream.Key
			c   int64
		}
		exact := make([]kc, 0, len(truth))
		for k, c := range truth {
			exact = append(exact, kc{k, c})
		}
		sort.Slice(exact, func(i, j int) bool {
			if exact[i].c != exact[j].c {
				return exact[i].c > exact[j].c
			}
			return exact[i].key < exact[j].key
		})
		var approx []kc
		s.ForEach(func(k stream.Key, count, _ int64) {
			approx = append(approx, kc{k, count})
		})
		sort.Slice(approx, func(i, j int) bool {
			if approx[i].c != approx[j].c {
				return approx[i].c > approx[j].c
			}
			return approx[i].key < approx[j].key
		})

		topApprox := make(map[stream.Key]bool, tc.k)
		for i := 0; i < tc.k && i < len(approx); i++ {
			topApprox[approx[i].key] = true
		}
		hits := 0
		for i := 0; i < tc.k && i < len(exact); i++ {
			if topApprox[exact[i].key] {
				hits++
			}
		}
		if recall := float64(hits) / float64(tc.k); recall < tc.minRecall {
			t.Errorf("θ=%.1f: sketch top-%d recalled %d/%d exact heavy hitters, need ≥ %.0f%%",
				tc.theta, tc.k, hits, tc.k, tc.minRecall*100)
		}

		// Guaranteed heavy hitters are sound: any key whose guaranteed count
		// clears a share threshold really does clear it minus ε.
		threshold := int64(float64(n) * 0.02)
		epsN := int64(n / tc.capacity)
		s.ForEach(func(k stream.Key, count, err int64) {
			if count-err >= threshold && truth[k] < threshold-epsN {
				t.Errorf("θ=%.1f key %d: guaranteed %d but true count %d far below threshold %d",
					tc.theta, k, count-err, truth[k], threshold)
			}
		})
	}
}

// TestSpaceSavingObserveAllocFree pins the hot-path contract: once the
// counter table is full, Observe allocates nothing.
func TestSpaceSavingObserveAllocFree(t *testing.T) {
	s := New(32)
	rng := rand.New(rand.NewSource(9))
	keys := make([]stream.Key, 4096)
	for i := range keys {
		keys[i] = stream.Key(rng.Intn(500))
	}
	for _, k := range keys {
		s.Observe(k) // warm up: table fills, map reaches steady size
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		s.Observe(keys[i%len(keys)])
		i++
	})
	if allocs > 0 {
		t.Errorf("Observe allocates %.1f per op at steady state; must be 0", allocs)
	}
}

func TestSpaceSavingTinyCapacity(t *testing.T) {
	s := New(0) // clamped to 1
	for i := 0; i < 100; i++ {
		s.Observe(stream.Key(i % 3))
	}
	if s.Capacity() != 1 || s.Len() != 1 {
		t.Fatalf("capacity/len = %d/%d, want 1/1", s.Capacity(), s.Len())
	}
	if c, _, ok := s.Estimate(stream.Key(99 % 3)); !ok || c < 33 {
		t.Errorf("single counter lost the stream: count %d ok %v", c, ok)
	}
}
