// Package stream defines the tuple model shared by every layer of the
// FastJoin system: the two logical input streams R and S, the tuples that
// flow on them, and the joined pairs that the system emits.
//
// The model follows the notation of the FastJoin paper (Table I): two
// unbounded streams R and S are joined on key equality; the join-biclique
// instances on the R side store tuples of R and probe them with tuples of S,
// and symmetrically for the S side.
package stream

import (
	"fmt"
	"time"
)

// Side identifies which logical input stream a tuple belongs to.
type Side uint8

const (
	// R is the first joining stream (e.g. passenger orders).
	R Side = iota
	// S is the second joining stream (e.g. taxi tracks).
	S
)

// String returns "R" or "S".
func (s Side) String() string {
	switch s {
	case R:
		return "R"
	case S:
		return "S"
	default:
		return fmt.Sprintf("Side(%d)", uint8(s))
	}
}

// Opposite returns the other stream: R.Opposite() == S and vice versa.
func (s Side) Opposite() Side {
	if s == R {
		return S
	}
	return R
}

// Valid reports whether the side is one of the two defined streams.
func (s Side) Valid() bool { return s == R || s == S }

// Key is the join attribute of a tuple. FastJoin performs equi-joins, so a
// 64-bit key is sufficient for all workloads in the paper (locations, ad ids,
// order ids); richer attributes travel in the Payload.
type Key = uint64

// Tuple is one element of an input stream.
//
// Seq is assigned by the producing spout and is unique per side; the pair
// (Side, Seq) identifies a tuple globally, which the test suite uses to check
// exactly-once join completeness. EventTime is the logical timestamp assigned
// by the pre-processing (shuffler) unit and drives window expiry.
type Tuple struct {
	Side      Side
	Key       Key
	Seq       uint64
	EventTime int64 // unix nanoseconds
	Payload   any
}

// ID returns a globally unique identifier for the tuple.
func (t Tuple) ID() TupleID { return TupleID{Side: t.Side, Seq: t.Seq} }

// String renders a compact human-readable form, for logs and test failures.
func (t Tuple) String() string {
	return fmt.Sprintf("%s#%d(key=%d)", t.Side, t.Seq, t.Key)
}

// TupleID identifies a tuple across the whole system.
type TupleID struct {
	Side Side
	Seq  uint64
}

// PairID identifies a joined (r, s) pair independently of which side's join
// instance produced it. It is the canonical form used to verify that every
// matching pair is emitted exactly once.
type PairID struct {
	RSeq uint64
	SSeq uint64
}

// JoinedPair is one join result: a tuple of R matched with a tuple of S on
// key equality (plus the optional user predicate). Instance records which
// join instance produced the pair and StoreSide which biclique group it
// belongs to; JoinedAt is the wall-clock completion time used by the latency
// metrics.
type JoinedPair struct {
	R         Tuple
	S         Tuple
	StoreSide Side
	Instance  int
	JoinedAt  int64 // unix nanoseconds
}

// ID returns the canonical pair identifier (R sequence, S sequence).
func (p JoinedPair) ID() PairID { return PairID{RSeq: p.R.Seq, SSeq: p.S.Seq} }

// Key returns the join key shared by both sides of the pair.
func (p JoinedPair) Key() Key { return p.R.Key }

// Predicate is an optional user refinement applied after key equality: a
// pair is emitted only if the predicate accepts it. A nil Predicate accepts
// every key-equal pair. Implementations must be pure and safe for concurrent
// use, since every join instance evaluates it.
type Predicate func(r, s Tuple) bool

// Now returns the current time in unix nanoseconds. Centralizing it keeps
// time handling consistent across joiners, monitors and metrics.
func Now() int64 { return time.Now().UnixNano() }
