package stream

import (
	"testing"
	"testing/quick"
)

func TestSideString(t *testing.T) {
	tests := []struct {
		side Side
		want string
	}{
		{R, "R"},
		{S, "S"},
		{Side(7), "Side(7)"},
	}
	for _, tt := range tests {
		if got := tt.side.String(); got != tt.want {
			t.Errorf("Side(%d).String() = %q, want %q", tt.side, got, tt.want)
		}
	}
}

func TestSideOpposite(t *testing.T) {
	if R.Opposite() != S {
		t.Errorf("R.Opposite() = %v, want S", R.Opposite())
	}
	if S.Opposite() != R {
		t.Errorf("S.Opposite() = %v, want R", S.Opposite())
	}
}

func TestSideOppositeInvolution(t *testing.T) {
	for _, s := range []Side{R, S} {
		if s.Opposite().Opposite() != s {
			t.Errorf("Opposite is not an involution for %v", s)
		}
	}
}

func TestSideValid(t *testing.T) {
	if !R.Valid() || !S.Valid() {
		t.Error("R and S must be valid sides")
	}
	if Side(2).Valid() {
		t.Error("Side(2) must not be valid")
	}
}

func TestTupleID(t *testing.T) {
	tup := Tuple{Side: S, Key: 42, Seq: 99}
	id := tup.ID()
	if id.Side != S || id.Seq != 99 {
		t.Errorf("ID() = %+v, want {S 99}", id)
	}
}

func TestTupleIDUniqueness(t *testing.T) {
	seen := make(map[TupleID]bool)
	for side := Side(0); side <= S; side++ {
		for seq := uint64(0); seq < 100; seq++ {
			id := Tuple{Side: side, Seq: seq}.ID()
			if seen[id] {
				t.Fatalf("duplicate TupleID %+v", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 200 {
		t.Fatalf("expected 200 unique ids, got %d", len(seen))
	}
}

func TestTupleString(t *testing.T) {
	tup := Tuple{Side: R, Key: 7, Seq: 3}
	if got, want := tup.String(), "R#3(key=7)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestJoinedPairID(t *testing.T) {
	p := JoinedPair{
		R: Tuple{Side: R, Key: 5, Seq: 11},
		S: Tuple{Side: S, Key: 5, Seq: 22},
	}
	if id := p.ID(); id.RSeq != 11 || id.SSeq != 22 {
		t.Errorf("pair ID = %+v, want {11 22}", id)
	}
	if p.Key() != 5 {
		t.Errorf("pair Key = %d, want 5", p.Key())
	}
}

func TestPairIDSymmetryProperty(t *testing.T) {
	// The pair identifier must not depend on which side's instance emitted
	// the pair: constructing the pair from the same two tuples always yields
	// the same PairID.
	f := func(rSeq, sSeq uint64, key uint64) bool {
		r := Tuple{Side: R, Key: key, Seq: rSeq}
		s := Tuple{Side: S, Key: key, Seq: sSeq}
		a := JoinedPair{R: r, S: s, StoreSide: R, Instance: 0}.ID()
		b := JoinedPair{R: r, S: s, StoreSide: S, Instance: 3}.ID()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNowMonotonicEnough(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Errorf("Now went backwards: %d then %d", a, b)
	}
	if a == 0 {
		t.Error("Now returned zero")
	}
}
