package transport

import "encoding/gob"

// Chunk batches several payload values of one logical stream into a
// single Message.Value, so the pipe encodes, frames, and (on the
// reliable layer) sequences, buffers, and acknowledges the whole group
// as ONE unit — amortizing the per-message gob and syscall overhead the
// same way the engine's batched data plane amortizes channel sends.
// Values preserve send order; element types must be registered with
// RegisterValue like any other payload.
type Chunk struct {
	Values []any
}

func init() { gob.Register(Chunk{}) }

// DefaultChunkSize is the value-count cap per Chunk used by helpers that
// chunk automatically (e.g. remote.StreamTuples). It is sized so a chunk
// of typical tuples stays far below MaxFramePayload.
const DefaultChunkSize = 64
