package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The reliable layer runs its own binary framing instead of bare gob so
// that sequence/ack numbers live in a fixed header the receiver can
// parse without decoding the payload, and so the wire format has a
// well-defined parser to fuzz (FuzzDecodeFrame).
//
// Layout, big endian:
//
//	uint32  payload length (≤ MaxFramePayload)
//	uint8   frame type
//	uint64  seq
//	uint64  ack
//	[]byte  payload
type Frame struct {
	Type    FrameType
	Seq     uint64
	Ack     uint64
	Payload []byte
}

// FrameType discriminates reliable-layer frames.
type FrameType uint8

const (
	// FrameHello opens (or re-opens) a session: Payload is the session
	// ID, Seq is the client's next expected inbound sequence number.
	FrameHello FrameType = iota + 1
	// FrameWelcome acknowledges a Hello: Seq is the server's next
	// expected inbound sequence number for the session.
	FrameWelcome
	// FrameData carries one message; Seq orders it, Ack piggybacks the
	// sender's next expected inbound sequence number.
	FrameData
	// FrameAck acknowledges delivery of everything below Ack.
	FrameAck
	// FrameBye announces a clean close, distinguishing it from a crash.
	FrameBye

	frameTypeEnd
)

// FrameHeaderLen is the fixed frame header size in bytes.
const FrameHeaderLen = 4 + 1 + 8 + 8

// MaxFramePayload bounds a frame payload (16 MiB), so a corrupt or
// hostile length prefix cannot drive an allocation.
const MaxFramePayload = 1 << 24

// Frame decoding errors.
var (
	ErrFrameShort = errors.New("transport: short frame")
	ErrFrameType  = errors.New("transport: invalid frame type")
	ErrFrameSize  = errors.New("transport: frame payload exceeds limit")
)

// AppendFrame appends the encoding of f to dst.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if f.Type == 0 || f.Type >= frameTypeEnd {
		return dst, fmt.Errorf("%w: %d", ErrFrameType, f.Type)
	}
	if len(f.Payload) > MaxFramePayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameSize, len(f.Payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, byte(f.Type))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint64(dst, f.Ack)
	return append(dst, f.Payload...), nil
}

// EncodeFrame returns the wire encoding of f.
func EncodeFrame(f Frame) ([]byte, error) {
	return AppendFrame(make([]byte, 0, FrameHeaderLen+len(f.Payload)), f)
}

// DecodeFrame parses one frame from the front of b, returning the frame
// and the number of bytes consumed. ErrFrameShort means b holds a valid
// prefix but not yet a whole frame.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < FrameHeaderLen {
		return Frame{}, 0, ErrFrameShort
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	t := FrameType(b[4])
	if t == 0 || t >= frameTypeEnd {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrFrameType, t)
	}
	total := FrameHeaderLen + int(n)
	if len(b) < total {
		return Frame{}, 0, ErrFrameShort
	}
	f := Frame{
		Type: t,
		Seq:  binary.BigEndian.Uint64(b[5:]),
		Ack:  binary.BigEndian.Uint64(b[13:]),
	}
	if n > 0 {
		f.Payload = append([]byte(nil), b[FrameHeaderLen:total]...)
	}
	return f, total, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads one whole frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	hdr := make([]byte, FrameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	buf := append(hdr, make([]byte, n)...)
	if _, err := io.ReadFull(r, buf[FrameHeaderLen:]); err != nil {
		return Frame{}, err
	}
	f, _, err := DecodeFrame(buf)
	return f, err
}
