package transport

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Seq: 7, Payload: []byte("session-1")},
		{Type: FrameWelcome, Seq: 42},
		{Type: FrameData, Seq: 1, Ack: 9, Payload: []byte{0, 1, 2, 255}},
		{Type: FrameAck, Ack: ^uint64(0)},
		{Type: FrameBye},
	}
	for _, f := range frames {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if n != len(b) {
			t.Errorf("consumed %d of %d bytes", n, len(b))
		}
		if got.Type != f.Type || got.Seq != f.Seq || got.Ack != f.Ack || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("round trip: got %+v, want %+v", got, f)
		}
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: FrameData, Seq: 3, Ack: 2, Payload: []byte("hello")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || out.Ack != in.Ack || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestDecodeFrameRejectsBadInput(t *testing.T) {
	if _, _, err := DecodeFrame(nil); !errors.Is(err, ErrFrameShort) {
		t.Errorf("nil input: %v, want ErrFrameShort", err)
	}
	// Oversized length prefix must be rejected before allocation.
	big := make([]byte, FrameHeaderLen)
	big[0], big[1], big[2], big[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(big); !errors.Is(err, ErrFrameSize) {
		t.Errorf("oversized length: %v, want ErrFrameSize", err)
	}
	// Unknown frame type.
	bad := make([]byte, FrameHeaderLen)
	bad[4] = 0xee
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameType) {
		t.Errorf("bad type: %v, want ErrFrameType", err)
	}
	// Header valid but payload truncated.
	tr, err := EncodeFrame(Frame{Type: FrameData, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(tr[:len(tr)-2]); !errors.Is(err, ErrFrameShort) {
		t.Errorf("truncated payload: %v, want ErrFrameShort", err)
	}
	if _, err := EncodeFrame(Frame{Type: 0}); !errors.Is(err, ErrFrameType) {
		t.Errorf("encode zero type: %v, want ErrFrameType", err)
	}
}

// FuzzDecodeFrame checks the frame parser never panics and that every
// accepted frame re-encodes to exactly the bytes it consumed.
func FuzzDecodeFrame(f *testing.F) {
	seeds := []Frame{
		{Type: FrameHello, Seq: 1, Payload: []byte("session-9")},
		{Type: FrameWelcome, Seq: 2},
		{Type: FrameData, Seq: 3, Ack: 4, Payload: []byte("payload")},
		{Type: FrameAck, Ack: 5},
		{Type: FrameBye},
	}
	for _, s := range seeds {
		b, err := EncodeFrame(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < FrameHeaderLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
		}
	})
}
