package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The reliable layer upgrades a TCP transport link to survive
// connection loss: each side numbers its outbound messages, buffers them
// until acknowledged, and on reconnect resends everything the peer has
// not seen. The client owns redial (with RetryPolicy backoff); the
// server parks a disconnected session and reattaches it when the same
// session ID dials back in — including after the listener itself was
// torn down and restarted. Receivers drop already-delivered sequence
// numbers, so a message is delivered exactly once even when a resend
// races an in-flight original. A Bye frame distinguishes clean shutdown
// (Recv returns io.EOF) from a crash (client reconnects, server parks).

// ReliableOptions tunes a reliable endpoint.
type ReliableOptions struct {
	// Net supplies the underlying socket timeouts. ReadTimeout is left
	// to the caller: on a reliable link an expired read deadline behaves
	// like a connection loss and triggers reconnect (a crude idle
	// detector).
	Net Options
	// Retry shapes the client's dial/redial backoff.
	Retry RetryPolicy
	// SessionID names the client's session for reattachment. Defaults to
	// a process-unique counter value.
	SessionID string
	// QueueSize is the receive buffer depth in messages (default 1024).
	QueueSize int
	// HandshakeTimeout bounds the Hello/Welcome exchange (default 5s).
	HandshakeTimeout time.Duration
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	return o
}

var sessionCounter atomic.Int64

// encodeMessage gob-encodes a message standalone (fresh encoder, so the
// bytes are self-contained and replayable across connections).
func encodeMessage(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMessage(b []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("transport: decode: %w", err)
	}
	return m, nil
}

// recvItem is one delivery to the application: a message or a terminal
// error.
type recvItem struct {
	m   Message
	err error
}

// endpoint is the session state shared by both ends of a reliable link:
// outbound sequence numbering + unacked buffer, inbound dedup cursor,
// and the delivery queue.
type endpoint struct {
	opts ReliableOptions

	// writeMu serializes frame writes to the current conn. Lock order:
	// writeMu before mu.
	writeMu sync.Mutex

	mu       sync.Mutex
	nc       net.Conn // current attachment; nil while disconnected
	nextSeq  uint64   // sequence number for the next outbound data frame
	unacked  []Frame  // outbound data frames the peer has not acked
	recvNext uint64   // next inbound sequence number expected

	recvQ     chan recvItem
	closed    chan struct{}
	closeOnce sync.Once
}

func newEndpoint(opts ReliableOptions) *endpoint {
	return &endpoint{
		opts:   opts,
		recvQ:  make(chan recvItem, opts.QueueSize),
		closed: make(chan struct{}),
	}
}

func (e *endpoint) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

// shutdown closes the endpoint; if bye is true a Bye frame is attempted
// first so the peer sees a clean close.
func (e *endpoint) shutdown(bye bool) {
	e.closeOnce.Do(func() {
		if bye {
			e.writeMu.Lock()
			e.mu.Lock()
			nc := e.nc
			e.mu.Unlock()
			if nc != nil {
				_ = e.writeOn(nc, Frame{Type: FrameBye})
			}
			e.writeMu.Unlock()
		}
		close(e.closed)
		e.mu.Lock()
		if e.nc != nil {
			_ = e.nc.Close()
		}
		e.mu.Unlock()
	})
}

// writeOn writes one frame to conn under the write timeout. Callers hold
// writeMu.
func (e *endpoint) writeOn(nc net.Conn, f Frame) error {
	if e.opts.Net.WriteTimeout > 0 {
		_ = nc.SetWriteDeadline(time.Now().Add(e.opts.Net.WriteTimeout))
	}
	return WriteFrame(nc, f)
}

// sendData numbers, buffers, and best-effort transmits one message. An
// error is returned only when the message will never be sent (encoding
// failure or closed endpoint); transmission failures leave the frame in
// the unacked buffer for resend after reattachment.
func (e *endpoint) sendData(m Message) error {
	payload, err := encodeMessage(m)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.isClosed() {
		return ErrClosed
	}
	e.mu.Lock()
	f := Frame{Type: FrameData, Seq: e.nextSeq, Ack: e.recvNext, Payload: payload}
	e.nextSeq++
	e.unacked = append(e.unacked, f)
	nc := e.nc
	e.mu.Unlock()
	if nc != nil {
		// A write error here is recovered by reattachment; the read pump
		// notices the dead conn and drives reconnect (client) or parks
		// (server).
		_ = e.writeOn(nc, f)
	}
	return nil
}

// ackTo discards buffered frames the peer has acknowledged (seq < ack).
func (e *endpoint) ackTo(ack uint64) {
	e.mu.Lock()
	i := 0
	for i < len(e.unacked) && e.unacked[i].Seq < ack {
		i++
	}
	if i > 0 {
		e.unacked = append([]Frame(nil), e.unacked[i:]...)
	}
	e.mu.Unlock()
}

// handleData processes one inbound data frame: exactly-once delivery via
// the recvNext cursor, then an ack. Returns false once the endpoint is
// closed.
func (e *endpoint) handleData(nc net.Conn, f Frame) bool {
	e.ackTo(f.Ack)
	e.mu.Lock()
	fresh := f.Seq == e.recvNext
	future := f.Seq > e.recvNext
	if fresh {
		e.recvNext++
	}
	ack := e.recvNext
	e.mu.Unlock()
	switch {
	case fresh:
		m, err := decodeMessage(f.Payload)
		select {
		case e.recvQ <- recvItem{m: m, err: err}:
		case <-e.closed:
			return false
		}
	case future:
		// Resend-from-ack over FIFO TCP cannot skip; a gap means a
		// protocol violation, so surface it rather than guess.
		select {
		case e.recvQ <- recvItem{err: fmt.Errorf("transport: sequence gap: got %d, expected %d", f.Seq, ack)}:
		case <-e.closed:
		}
		return false
	}
	// Ack fresh and duplicate frames alike: a duplicate means the peer
	// has not seen our ack yet.
	e.writeMu.Lock()
	_ = e.writeOn(nc, Frame{Type: FrameAck, Ack: ack})
	e.writeMu.Unlock()
	return true
}

// pump reads frames from nc until the connection dies or the peer says
// Bye. Returns nil on a clean Bye and the read error otherwise.
func (e *endpoint) pump(nc net.Conn) error {
	for {
		select {
		case <-e.closed:
			return ErrClosed
		default:
		}
		if e.opts.Net.ReadTimeout > 0 {
			_ = nc.SetReadDeadline(time.Now().Add(e.opts.Net.ReadTimeout))
		}
		f, err := ReadFrame(nc)
		if err != nil {
			return err
		}
		switch f.Type {
		case FrameData:
			if !e.handleData(nc, f) {
				return ErrClosed
			}
		case FrameAck:
			e.ackTo(f.Ack)
		case FrameBye:
			select {
			case e.recvQ <- recvItem{err: io.EOF}:
			case <-e.closed:
			}
			return nil
		}
	}
}

// attach publishes nc as the live connection, trims frames the peer
// acked (everything below peerNext), and resends the rest in order.
func (e *endpoint) attach(nc net.Conn, peerNext uint64) error {
	e.ackTo(peerNext)
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.Lock()
	if e.nc != nil && e.nc != nc {
		_ = e.nc.Close()
	}
	e.nc = nc
	pending := append([]Frame(nil), e.unacked...)
	e.mu.Unlock()
	for _, f := range pending {
		if err := e.writeOn(nc, f); err != nil {
			return err
		}
	}
	return nil
}

// Recv returns the next delivered message; io.EOF after a clean close.
func (e *endpoint) Recv() (Message, error) {
	select {
	case it := <-e.recvQ:
		return it.m, it.err
	case <-e.closed:
		// Drain deliveries that beat the close.
		select {
		case it := <-e.recvQ:
			return it.m, it.err
		default:
			return Message{}, io.EOF
		}
	}
}

// ------------------------------------------------------------- client

// ReliableConn is the client end of a reliable link. It implements Conn;
// Send never loses a message across connection failures, and Recv never
// yields a duplicate.
type ReliableConn struct {
	*endpoint
	addr      string
	sessionID string
}

// DialReliable connects a reliable client to a ReliableServer. The
// initial dial honours Retry.MaxAttempts; once established, reconnects
// retry until the conn is closed.
func DialReliable(addr string, opts ReliableOptions) (*ReliableConn, error) {
	opts = opts.withDefaults()
	if opts.SessionID == "" {
		opts.SessionID = fmt.Sprintf("session-%d", sessionCounter.Add(1))
	}
	c := &ReliableConn{
		endpoint:  newEndpoint(opts),
		addr:      addr,
		sessionID: opts.SessionID,
	}
	attempts := opts.Retry.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultDialAttempts
	}
	nc, err := c.connect(attempts)
	if err != nil {
		c.shutdown(false)
		return nil, err
	}
	go c.run(nc)
	return c, nil
}

// connect dials and handshakes with backoff; attempts <= 0 retries until
// the endpoint closes.
func (c *ReliableConn) connect(attempts int) (net.Conn, error) {
	var lastErr error
	for i := 0; attempts <= 0 || i < attempts; i++ {
		if c.isClosed() {
			return nil, ErrClosed
		}
		if i > 0 {
			t := time.NewTimer(c.opts.Retry.Backoff(i - 1))
			select {
			case <-c.closed:
				t.Stop()
				return nil, ErrClosed
			case <-t.C:
			}
		}
		nc, err := dialRaw(c.addr, c.opts.Net)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.handshake(nc); err != nil {
			lastErr = err
			_ = nc.Close()
			continue
		}
		return nc, nil
	}
	return nil, fmt.Errorf("transport: reliable dial %s: gave up after %d attempts: %w", c.addr, attempts, lastErr)
}

// handshake runs Hello/Welcome on a fresh conn, then attaches it
// (resending unacked frames).
func (c *ReliableConn) handshake(nc net.Conn) error {
	deadline := time.Now().Add(c.opts.HandshakeTimeout)
	_ = nc.SetDeadline(deadline)
	c.mu.Lock()
	mine := c.recvNext
	c.mu.Unlock()
	hello := Frame{Type: FrameHello, Seq: mine, Payload: []byte(c.sessionID)}
	if err := WriteFrame(nc, hello); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}
	f, err := ReadFrame(nc)
	if err != nil {
		return fmt.Errorf("transport: welcome: %w", err)
	}
	if f.Type != FrameWelcome {
		return fmt.Errorf("transport: handshake: unexpected frame type %d", f.Type)
	}
	_ = nc.SetDeadline(time.Time{})
	return c.attach(nc, f.Seq)
}

// run pumps the connection, reconnecting (with backoff, forever) on
// failure until the conn closes cleanly.
func (c *ReliableConn) run(nc net.Conn) {
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		err := c.pump(nc)
		if err == nil {
			// Clean Bye from the peer.
			c.shutdown(false)
			return
		}
		if c.isClosed() {
			return
		}
		_ = nc.Close()
		next, err := c.connect(0)
		if err != nil {
			c.shutdown(false)
			return
		}
		nc = next
	}
}

// Send queues m for exactly-once delivery to the peer.
func (c *ReliableConn) Send(m Message) error { return c.sendData(m) }

// Close announces a clean shutdown (Bye) and releases the conn.
func (c *ReliableConn) Close() error {
	c.shutdown(true)
	return nil
}

// SessionID returns the session identifier used for reattachment.
func (c *ReliableConn) SessionID() string { return c.sessionID }

// ------------------------------------------------------------- server

// ReliableServer owns the server half of reliable sessions. Session
// state lives here, not in the listener: Serve can be stopped (listener
// torn down, killing live connections) and started again on a new
// listener, and clients reattach to their sessions with nothing lost.
type ReliableServer struct {
	opts ReliableOptions

	mu       sync.Mutex
	sessions map[string]*serverSession

	acceptQ   chan *serverSession
	closed    chan struct{}
	closeOnce sync.Once
}

// serverSession is the server end of one reliable link.
type serverSession struct {
	*endpoint
	id string
}

// Send queues m for exactly-once delivery to the session's client.
func (s *serverSession) Send(m Message) error { return s.sendData(m) }

// Close announces a clean shutdown to the client.
func (s *serverSession) Close() error {
	s.shutdown(true)
	return nil
}

// NewReliableServer builds a server with no listener; call Serve.
func NewReliableServer(opts ReliableOptions) *ReliableServer {
	return &ReliableServer{
		opts:     opts.withDefaults(),
		sessions: make(map[string]*serverSession),
		acceptQ:  make(chan *serverSession, 64),
		closed:   make(chan struct{}),
	}
}

// Serve accepts connections from ln until the listener closes or the
// server shuts down. It may be called again with a fresh listener after
// a previous one died — sessions survive the gap.
func (s *ReliableServer) Serve(ln *Server) error {
	for {
		select {
		case <-s.closed:
			return ErrClosed
		default:
		}
		nc, err := ln.acceptRaw()
		if err != nil {
			return err
		}
		go s.attachConn(nc)
	}
}

// attachConn handshakes one inbound connection and binds it to its
// session.
func (s *ReliableServer) attachConn(nc net.Conn) {
	_ = nc.SetDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	f, err := ReadFrame(nc)
	if err != nil || f.Type != FrameHello {
		_ = nc.Close()
		return
	}
	id := string(f.Payload)
	clientNext := f.Seq

	fresh := &serverSession{endpoint: newEndpoint(s.opts), id: id}
	s.mu.Lock()
	var sess *serverSession
	known := false
	if !s.isClosed() {
		sess, known = s.sessions[id]
		if sess == nil {
			sess = fresh
			s.sessions[id] = sess
		}
	}
	s.mu.Unlock()
	if sess == nil { // server closed during the handshake
		_ = nc.Close()
		return
	}

	sess.mu.Lock()
	mine := sess.recvNext
	sess.mu.Unlock()
	if err := WriteFrame(nc, Frame{Type: FrameWelcome, Seq: mine}); err != nil {
		_ = nc.Close()
		return
	}
	_ = nc.SetDeadline(time.Time{})
	if err := sess.attach(nc, clientNext); err != nil {
		_ = nc.Close()
		return
	}
	if !known {
		select {
		case s.acceptQ <- sess:
		case <-s.closed:
			return
		}
	}
	// Pump until this attachment dies. A clean Bye retires the session;
	// anything else parks it for the next reattach.
	if err := sess.pump(nc); err == nil {
		sess.shutdown(false)
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
	}
}

func (s *ReliableServer) isClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// Accept blocks for the next new session (reattachments do not surface
// here).
func (s *ReliableServer) Accept() (Conn, error) {
	select {
	case sess := <-s.acceptQ:
		return sess, nil
	case <-s.closed:
		return nil, ErrClosed
	}
}

// Close shuts down the server and all sessions.
func (s *ReliableServer) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.shutdown(true)
		}
		s.sessions = make(map[string]*serverSession)
		s.mu.Unlock()
	})
	return nil
}
