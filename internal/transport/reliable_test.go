package transport

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"
)

func testRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 200,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      0.5,
		Rand:        rand.New(rand.NewSource(1)),
	}
}

func TestDialTimeoutRefusesHungPeer(t *testing.T) {
	// A listener that accepts and then never reads: without a write/read
	// deadline the old transport blocked forever on such a peer.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			_ = c // accept and hang; never read, never close
		}
	}()

	c, err := DialOpts(ln.Addr().String(), Options{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("Recv on hung peer: %v, want deadline error", err)
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("Recv error %v is not a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv blocked past its read deadline: the no-deadline hang is back")
	}
}

func TestDialRetryBacksOffAndConnects(t *testing.T) {
	// Reserve an address, close it, and only start listening after a
	// delay: the first dial attempts must fail and the retry loop pick
	// the server up once it appears.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(60 * time.Millisecond)
		srv, err := Listen(addr)
		if err != nil {
			return
		}
		conn, err := srv.Accept()
		if err != nil {
			srv.Close()
			return
		}
		_ = conn.Send(Message{Stream: "hi"})
		conn.Close()
		srv.Close()
	}()

	c, err := DialRetry(addr, Options{}, testRetry())
	if err != nil {
		t.Fatalf("DialRetry never connected: %v", err)
	}
	defer c.Close()
	m, err := c.Recv()
	if err != nil || m.Stream != "hi" {
		t.Fatalf("Recv after retry-dial: %+v, %v", m, err)
	}
}

func TestDialRetryGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = DialRetry(addr, Options{}, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry to a dead address returned nil")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Jitter: 0.5, Rand: rand.New(rand.NewSource(9))}
	q := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Jitter: 0.5, Rand: rand.New(rand.NewSource(9))}
	for i := 0; i < 12; i++ {
		a, b := p.Backoff(i), q.Backoff(i)
		if a != b {
			t.Fatalf("attempt %d: backoff differs across identical seeds: %v vs %v", i, a, b)
		}
		if a > 120*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds cap+jitter", i, a)
		}
	}
	nojit := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	if d := nojit.Backoff(30); d != 80*time.Millisecond {
		t.Errorf("uncapped attempt: %v, want MaxDelay", d)
	}
}

// startReliable serves srv on a fresh loopback listener and returns it.
func startReliable(t *testing.T, srv *ReliableServer, addr string) *Server {
	t.Helper()
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return ln
}

func TestReliableRoundTrip(t *testing.T) {
	srv := NewReliableServer(ReliableOptions{})
	defer srv.Close()
	ln := startReliable(t, srv, "127.0.0.1:0")
	defer ln.Close()

	c, err := DialReliable(ln.Addr(), ReliableOptions{Retry: testRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Message{Stream: "ping", Value: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := sc.Recv()
	if err != nil || m.Stream != "ping" {
		t.Fatalf("server recv: %+v, %v", m, err)
	}
	if err := sc.Send(Message{Stream: "pong", Value: 2}); err != nil {
		t.Fatal(err)
	}
	m, err = c.Recv()
	if err != nil || m.Stream != "pong" {
		t.Fatalf("client recv: %+v, %v", m, err)
	}
	// Clean close propagates as EOF.
	c.Close()
	if _, err := sc.Recv(); err != io.EOF {
		t.Fatalf("server recv after client close: %v, want io.EOF", err)
	}
}

func TestReliableSurvivesServerKillRestart(t *testing.T) {
	// The acceptance scenario: the server's listener dies mid-stream
	// (killing the TCP connection), the client keeps sending, the server
	// comes back on the same address, and the full message sequence
	// arrives exactly once, in order.
	srv := NewReliableServer(ReliableOptions{})
	defer srv.Close()
	ln := startReliable(t, srv, "127.0.0.1:0")
	addr := ln.Addr()

	c, err := DialReliable(addr, ReliableOptions{Retry: testRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}

	const total = 200
	recvd := make(chan int, total)
	go func() {
		for {
			m, err := sc.Recv()
			if err != nil {
				close(recvd)
				return
			}
			if v, ok := m.Value.(int); ok {
				recvd <- v
			}
		}
	}()

	for i := 0; i < total; i++ {
		if i == 50 {
			// Kill the server's listener; in-flight conns die with it.
			ln.Close()
		}
		if i == 120 {
			// Server restarts on the same address with its session state.
			ln = startReliable(t, srv, addr)
		}
		if err := c.Send(Message{Stream: "seq", Value: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	defer ln.Close()

	timeout := time.After(30 * time.Second)
	for want := 0; want < total; want++ {
		select {
		case got, ok := <-recvd:
			if !ok {
				t.Fatalf("server stream ended at %d of %d", want, total)
			}
			if got != want {
				t.Fatalf("out-of-order or duplicated delivery: got %d, want %d", got, want)
			}
		case <-timeout:
			t.Fatalf("only %d of %d messages arrived; unacked frames were lost", want, total)
		}
	}
}

func TestReliableServerSendBuffersWhileDetached(t *testing.T) {
	// The server direction: frames sent while the client is gone must be
	// delivered after it reattaches.
	srv := NewReliableServer(ReliableOptions{})
	defer srv.Close()
	ln := startReliable(t, srv, "127.0.0.1:0")
	addr := ln.Addr()

	c, err := DialReliable(addr, ReliableOptions{Retry: testRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}

	ln.Close()
	time.Sleep(20 * time.Millisecond) // let the connection die
	for i := 0; i < 10; i++ {
		if err := sc.Send(Message{Stream: "s", Value: i}); err != nil {
			t.Fatalf("detached send %d: %v", i, err)
		}
	}
	ln = startReliable(t, srv, addr)
	defer ln.Close()

	for want := 0; want < 10; want++ {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", want, err)
		}
		if m.Value.(int) != want {
			t.Fatalf("got %v, want %d", m.Value, want)
		}
	}
}
