package transport

import (
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy shapes capped exponential backoff with optional jitter.
// Delays depend only on the attempt number (and the injected Rand), so a
// retry schedule is deterministic for a given seed — required by the
// chaos replay story.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of tries (default
	// DefaultDialAttempts; negative or zero means the default where a
	// bound is required, unlimited where the caller loops itself).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter/2 of its value
	// (0..1). Applied only when Rand is set, keeping the schedule
	// seed-deterministic.
	Jitter float64
	// Rand supplies jitter randomness. The policy never seeds from the
	// clock.
	Rand *rand.Rand
}

// DefaultDialAttempts applies when RetryPolicy.MaxAttempts is zero.
const DefaultDialAttempts = 5

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Backoff returns the delay before retry number attempt (0-based).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt > 20 {
		attempt = 20 // 2^20 × base already exceeds any sane cap
	}
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && p.Rand != nil {
		span := float64(d) * p.Jitter
		d = time.Duration(float64(d) - span/2 + p.Rand.Float64()*span)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// DialRetry dials with capped exponential backoff. It gives up after
// MaxAttempts tries (default DefaultDialAttempts) and returns the last
// dial error.
func DialRetry(addr string, opts Options, policy RetryPolicy) (Conn, error) {
	attempts := policy.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultDialAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		c, err := DialOpts(addr, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i < attempts-1 {
			time.Sleep(policy.Backoff(i))
		}
	}
	return nil, fmt.Errorf("transport: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}
