// Package transport provides the message pipes a multi-process deployment
// of the engine would run on: an in-process reference implementation and a
// TCP implementation with gob encoding.
//
// The local engine (engine.LocalCluster) moves messages over Go channels;
// this package supplies the equivalent abstraction across process and host
// boundaries, so a topology can be split over workers the way the paper's
// Storm deployment spreads bolts over a cluster. The stream-join system
// itself is transport-agnostic: everything it sends (tuples, load reports,
// migration batches, routing updates) is a plain Go value registered for
// encoding with RegisterTypes.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message is the unit carried by a Conn. It mirrors the engine's message
// envelope (producer, stream, payload).
type Message struct {
	FromComp string
	FromTask int
	Stream   string
	Value    any
}

// Conn is a bidirectional, ordered, reliable message pipe. Send and Recv
// may be used concurrently with each other; two goroutines must not call
// Send (or Recv) at the same time.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes cleanly.
	Recv() (Message, error)
	// Close releases the pipe; pending Recv calls are unblocked.
	Close() error
}

// ErrClosed is returned by Send on a closed pipe.
var ErrClosed = errors.New("transport: connection closed")

// Options tunes network-level timeouts for TCP connections. The zero
// value keeps reads and writes unbounded (the historical behaviour) and
// applies DefaultDialTimeout to dials.
type Options struct {
	// DialTimeout bounds connection establishment (default
	// DefaultDialTimeout; negative disables).
	DialTimeout time.Duration
	// ReadTimeout, when positive, bounds each Recv: a peer that accepts
	// and then hangs surfaces as a deadline error instead of blocking
	// forever.
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds each Send.
	WriteTimeout time.Duration
}

// DefaultDialTimeout applies when Options.DialTimeout is zero.
const DefaultDialTimeout = 10 * time.Second

func (o Options) dialTimeout() time.Duration {
	switch {
	case o.DialTimeout < 0:
		return 0
	case o.DialTimeout == 0:
		return DefaultDialTimeout
	default:
		return o.DialTimeout
	}
}

// RegisterValue registers a payload type for gob encoding. Call once per
// concrete type that will travel as Message.Value over a TCP connection.
func RegisterValue(v any) { gob.Register(v) }

// ---------------------------------------------------------------- local

// localConn is one endpoint of an in-process pipe.
type localConn struct {
	send chan<- Message
	recv <-chan Message

	closed chan struct{}
	once   sync.Once
	peer   *localConn
}

// Pipe returns two connected in-process endpoints with the given buffer
// depth per direction.
func Pipe(buffer int) (Conn, Conn) {
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	a := &localConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &localConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *localConn) Send(m Message) error {
	// Check for closure first: in a select, a ready buffered send and a
	// closed signal are picked at random, which would let sends slip
	// through after Close.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *localConn) Recv() (Message, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		return Message{}, io.EOF
	case <-c.peer.closed:
		// Drain what the peer sent before it closed.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *localConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// ----------------------------------------------------------------- tcp

// tcpConn frames messages with gob over a net.Conn.
type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	opts Options

	sendMu sync.Mutex
	recvMu sync.Mutex
}

// newTCPConn wraps an established network connection.
func newTCPConn(conn net.Conn, opts Options) Conn {
	return &tcpConn{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		opts: opts,
	}
}

func (c *tcpConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.opts.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	if err := c.enc.Encode(&m); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.opts.ReadTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("transport: recv: %w", err)
	}
	return m, nil
}

// Close must not take sendMu/recvMu: it runs concurrently with a blocked
// Send/Recv precisely to unblock it, and net.Conn.Close is goroutine-safe.
//
//lint:allow lockguard net.Conn is internally synchronized; locking here would deadlock against a blocked Send/Recv
func (c *tcpConn) Close() error { return c.conn.Close() }

// Server accepts transport connections on a TCP listener.
type Server struct {
	ln   net.Listener
	opts Options
}

// Listen starts a transport server on addr (e.g. "127.0.0.1:0") with
// default options.
func Listen(addr string) (*Server, error) { return ListenOpts(addr, Options{}) }

// ListenOpts starts a transport server whose accepted connections use
// the given timeout options.
func ListenOpts(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Server{ln: ln, opts: opts}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accept blocks for the next inbound connection.
func (s *Server) Accept() (Conn, error) {
	conn, err := s.acceptRaw()
	if err != nil {
		return nil, err
	}
	return newTCPConn(conn, s.opts), nil
}

// acceptRaw accepts the next inbound connection without gob framing
// (used by the reliable layer, which runs its own frame codec).
func (s *Server) acceptRaw() (net.Conn, error) {
	conn, err := s.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return conn, nil
}

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }

// Dial connects to a transport server with default options.
func Dial(addr string) (Conn, error) { return DialOpts(addr, Options{}) }

// DialOpts connects to a transport server, bounding the dial by
// Options.DialTimeout and later reads/writes by the respective timeouts.
func DialOpts(addr string, opts Options) (Conn, error) {
	conn, err := dialRaw(addr, opts)
	if err != nil {
		return nil, err
	}
	return newTCPConn(conn, opts), nil
}

// dialRaw establishes the network connection without gob framing.
func dialRaw(addr string, opts Options) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return conn, nil
}
