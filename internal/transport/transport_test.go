package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"fastjoin/internal/stream"
)

// payload is a gob-encodable stand-in for the system's message values.
type payload struct {
	Tuple stream.Tuple
	Note  string
}

func init() {
	RegisterValue(payload{})
	RegisterValue(stream.Tuple{})
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	defer b.Close()
	want := Message{FromComp: "joinerR", FromTask: 3, Stream: "toR", Value: 42}
	if err := a.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.FromComp != want.FromComp || got.FromTask != 3 || got.Value != 42 {
		t.Errorf("got %+v", got)
	}
}

func TestPipeBothDirections(t *testing.T) {
	a, b := Pipe(1)
	defer a.Close()
	defer b.Close()
	if err := a.Send(Message{Value: "ping"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{Value: "pong"}); err != nil {
		t.Fatal(err)
	}
	m1, _ := b.Recv()
	m2, _ := a.Recv()
	if m1.Value != "ping" || m2.Value != "pong" {
		t.Errorf("cross talk: %v %v", m1.Value, m2.Value)
	}
}

func TestPipeOrderPreserved(t *testing.T) {
	a, b := Pipe(100)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := a.Send(Message{Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != i {
			t.Fatalf("out of order: got %v want %d", m.Value, i)
		}
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(1)
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("Recv after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not unblocked by peer close")
	}
	if err := a.Send(Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestPipeDrainAfterPeerClose(t *testing.T) {
	a, b := Pipe(4)
	defer b.Close()
	a.Send(Message{Value: 1})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Value != 1 {
		t.Errorf("should drain buffered message: %v %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("after drain want EOF, got %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	type result struct {
		conn Conn
		err  error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := srv.Accept()
		accepted <- result{c, err}
	}()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	res := <-accepted
	if res.err != nil {
		t.Fatalf("Accept: %v", res.err)
	}
	server := res.conn
	defer server.Close()

	want := Message{
		FromComp: "dispatcher",
		FromTask: 1,
		Stream:   "toS",
		Value: payload{
			Tuple: stream.Tuple{Side: stream.S, Key: 99, Seq: 7, EventTime: 123},
			Note:  "probe",
		},
	}
	if err := client.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	p, ok := got.Value.(payload)
	if !ok {
		t.Fatalf("payload type %T", got.Value)
	}
	if p.Tuple.Key != 99 || p.Tuple.Seq != 7 || p.Note != "probe" {
		t.Errorf("payload = %+v", p)
	}

	// And the reverse direction.
	if err := server.Send(Message{Value: payload{Note: "reply"}}); err != nil {
		t.Fatalf("server Send: %v", err)
	}
	back, err := client.Recv()
	if err != nil {
		t.Fatalf("client Recv: %v", err)
	}
	if back.Value.(payload).Note != "reply" {
		t.Errorf("reply = %+v", back)
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; i < 500; i++ {
			if err := conn.Send(Message{FromTask: i, Value: payload{Note: fmt.Sprint(i)}}); err != nil {
				return
			}
		}
	}()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 500; i++ {
		m, err := client.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.FromTask != i {
			t.Fatalf("out of order at %d: %+v", i, m)
		}
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					// Send is mutex-protected: safe from many goroutines.
					_ = conn.Send(Message{FromTask: g, Value: i})
				}
			}(g)
		}
		wg.Wait()
		conn.Close()
	}()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	count := 0
	for {
		_, err := client.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		count++
	}
	if count != 400 {
		t.Errorf("received %d, want 400", count)
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		conn.Close()
	}()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("Recv on closed peer = %v, want EOF", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestListenBadAddr(t *testing.T) {
	if _, err := Listen("300.300.300.300:0"); err == nil {
		t.Error("Listen on invalid address should fail")
	}
}
