package window

import (
	"testing"

	"fastjoin/internal/stream"
)

// Store micro-benchmarks: chunked arena vs map reference on the three hot
// operations. Run with
//
//	go test ./internal/window -bench 'BenchmarkStore' -benchmem
//
// Add and Advance are the paths the arena exists for (amortized zero-alloc
// append, O(expired) expiry); Probe shows the chunk walk against the slice
// scan.
func benchStores(b *testing.B, run func(b *testing.B, mk func() Store)) {
	b.Run("chunked", func(b *testing.B) {
		run(b, func() Store { return NewWindowed(1_000_000, 8) })
	})
	b.Run("map", func(b *testing.B) {
		run(b, func() Store { return NewRefWindowed(1_000_000, 8) })
	})
}

func BenchmarkStoreAdd(b *testing.B) {
	benchStores(b, func(b *testing.B, mk func() Store) {
		const keys = 1024
		w := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Add(stream.Tuple{Key: stream.Key(i % keys), Seq: uint64(i), EventTime: int64(i)})
			// Bound resident state so the benchmark measures steady-state adds,
			// not unbounded growth: expire in bulk every 64k tuples.
			if i%65536 == 65535 {
				w.Advance(int64(i) - 32768)
			}
		}
	})
}

func BenchmarkStoreProbe(b *testing.B) {
	benchStores(b, func(b *testing.B, mk func() Store) {
		const keys = 256
		w := mk()
		for i := 0; i < keys*64; i++ {
			w.Add(stream.Tuple{Key: stream.Key(i % keys), Seq: uint64(i), EventTime: int64(i)})
		}
		var sink uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.ForEachMatch(stream.Key(i%keys), func(tu stream.Tuple) { sink += tu.Seq })
		}
		_ = sink
	})
}

func BenchmarkStoreAdvance(b *testing.B) {
	benchStores(b, func(b *testing.B, mk func() Store) {
		// Steady state: each iteration adds a fixed batch with fresh event
		// times and expires an equally old one, so Advance always has real
		// work plus a large resident population it must NOT scan.
		const keys = 2048
		const batch = 64
		w := mk()
		var seq uint64
		now := int64(0)
		fill := func(at int64) {
			for j := 0; j < batch; j++ {
				seq++
				w.Add(stream.Tuple{Key: stream.Key(seq % keys), Seq: seq, EventTime: at})
			}
		}
		for i := 0; i < 1024; i++ {
			now += 10
			fill(now)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += 10
			fill(now)
			w.Advance(now - 1024*10)
		}
	})
}
