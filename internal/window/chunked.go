package window

import (
	"fastjoin/internal/stream"
	"fastjoin/internal/xhash"
)

// The chunked arena store. Layout invariants (see DESIGN.md "Store memory
// layout"):
//
//   - Every stored key owns a chain of chunks, oldest first. Tuples are
//     appended at tail.end and expired from head.start, so each chunk holds
//     a contiguous FIFO slice of the key's deque.
//   - Chunk tuple buffers are carved from store-owned slabs, one slab chain
//     per size class. Released chunks go to a per-class freelist, never back
//     to the Go allocator: slab memory lives as long as the store. Add is
//     therefore amortized zero-alloc once the working set's slabs exist.
//   - Size classes {4, 16, 64} grow per chain: a key's first chunk is small
//     (the common case is a handful of tuples per key under a zipf tail) and
//     each overflow chunk steps up one class, so hot keys converge to
//     64-tuple chunks without sparse keys paying 64-tuple buffers.
//   - The index is open addressing with linear probing over entry slots,
//     occupancy marked by head != nil (every resident key holds >= 1 tuple).
//     Deletion backward-shifts the probe chain, so there are no tombstones
//     and lookups stop at the first empty slot.
//   - expiry is a lazy min-heap of (head event time, key). Every non-empty
//     key has at least one heap entry whose at field equals some current or
//     former head event time; the entry with the true head time is always
//     present because Add-to-empty and every Advance pop push a fresh one.
//     Stale entries (from pops that removed nothing) are discarded lazily.
type chunkStore struct {
	span int64 // window span in nanoseconds; <= 0 means unbounded
	sub  subVector

	slots []entry // open-addressing index, len is a power of two
	mask  uint64
	nKeys int
	total int

	free [classCount]*chunk // per-class freelists of released chunks

	hdrSlab []chunk // current header slab; headers are never freed
	hdrNext int

	tupSlab [classCount][]stream.Tuple // current tuple slab per class
	tupNext [classCount]int

	expiry  []expiryEntry // min-heap on at
	visited int

	// Emptiness watches (WatchKey/TakeDrained). Both live on the control
	// plane: watched is nil until the first WatchKey, and the hot expiry
	// path pays only a len check while no watches are armed.
	watched map[stream.Key]struct{}
	drained []stream.Key
}

type entry struct {
	key   stream.Key
	head  *chunk // nil marks a free slot
	tail  *chunk
	count int32
}

type chunk struct {
	next  *chunk
	buf   []stream.Tuple // full-capacity slab slice; live range is [start:end)
	start uint16
	end   uint16
	class uint8
}

type expiryEntry struct {
	at  int64
	key stream.Key
}

// Size classes for chunk tuple buffers. A key's chain starts at the small
// class and steps up one class per overflow chunk.
const (
	classSmall = iota
	classMid
	classLarge
	classCount
)

var classCap = [classCount]int{4, 16, 64}

// Slab sizing, in tuples (headers in chunks). The first slab of each kind
// stays small so a near-empty store reserves little; each subsequent slab
// doubles up to the max, keeping slab allocations O(log n + n/max).
var (
	slabMin = [classCount]int{64, 128, 256}
	slabMax = [classCount]int{1024, 2048, 4096}
)

const (
	hdrSlabMin = 32
	hdrSlabMax = 4096
)

func (s *chunkStore) Windowed() bool { return s.span > 0 }

func (s *chunkStore) Span() int64 {
	if s.span <= 0 {
		return 0
	}
	return s.span
}

//lint:hotpath
func (s *chunkStore) Add(t stream.Tuple) {
	e := s.insert(t.Key)
	if e.head == nil {
		c := s.newChunk(classSmall)
		e.head, e.tail = c, c
		if s.span > 0 {
			s.pushExpiry(t.EventTime, t.Key)
		}
	} else if int(e.tail.end) == len(e.tail.buf) {
		cls := int(e.tail.class)
		if cls < classLarge {
			cls++
		}
		c := s.newChunk(cls)
		e.tail.next = c
		e.tail = c
	}
	c := e.tail
	c.buf[c.end] = t
	c.end++
	e.count++
	s.total++
	if s.span > 0 {
		s.sub.bump(t.EventTime)
	}
}

//lint:hotpath
func (s *chunkStore) AddBulk(tuples []stream.Tuple) {
	for _, t := range tuples {
		s.Add(t)
	}
}

func (s *chunkStore) Len() int { return s.total }

func (s *chunkStore) KeyCount(key stream.Key) int {
	if e := s.lookup(key); e != nil {
		return int(e.count)
	}
	return 0
}

func (s *chunkStore) Keys() int { return s.nKeys }

func (s *chunkStore) ForEachKey(fn func(key stream.Key, count int)) {
	for i := range s.slots {
		if e := &s.slots[i]; e.head != nil {
			fn(e.key, int(e.count))
		}
	}
}

//lint:hotpath
func (s *chunkStore) ForEachMatch(key stream.Key, fn func(t stream.Tuple)) {
	e := s.lookup(key)
	if e == nil {
		return
	}
	for c := e.head; c != nil; c = c.next {
		for i := c.start; i < c.end; i++ {
			fn(c.buf[i])
		}
	}
}

func (s *chunkStore) Matches(key stream.Key) []stream.Tuple {
	e := s.lookup(key)
	if e == nil || e.count == 0 {
		return nil
	}
	out := make([]stream.Tuple, 0, e.count)
	for c := e.head; c != nil; c = c.next {
		out = append(out, c.buf[c.start:c.end]...)
	}
	return out
}

func (s *chunkStore) RemoveKey(key stream.Key) []stream.Tuple {
	i, ok := s.lookupIdx(key)
	if !ok {
		return nil
	}
	e := &s.slots[i]
	// Copy the tuples out of the arena BEFORE recycling: the chunks go back
	// on the freelist and their buffers will be overwritten by future Adds,
	// so the migration hand-off must not retain views into them.
	out := make([]stream.Tuple, 0, e.count)
	c := e.head
	for c != nil {
		out = append(out, c.buf[c.start:c.end]...)
		next := c.next
		s.release(c)
		c = next
	}
	s.total -= len(out)
	s.delAt(i)
	s.fireWatch(key)
	return out
}

//lint:hotpath
func (s *chunkStore) Advance(now int64) int {
	if s.span <= 0 {
		return 0
	}
	cutoff := now - s.span
	removed := 0
	for len(s.expiry) > 0 && s.expiry[0].at < cutoff {
		he := s.popExpiry()
		i, ok := s.lookupIdx(he.key)
		if !ok {
			continue // stale: key was removed (migration) after the push
		}
		e := &s.slots[i]
		s.visited++
		n := s.expireHead(e, cutoff)
		if n == 0 {
			// Stale entry from an earlier head; the entry carrying the true
			// head time is still queued, so nothing to re-push.
			continue
		}
		removed += n
		s.total -= n
		if e.head == nil {
			s.delAt(i)
			s.fireWatch(he.key)
		} else {
			s.pushExpiry(e.head.buf[e.head.start].EventTime, he.key)
		}
	}
	s.sub.pop(cutoff)
	return removed
}

// expireHead pops the key's expired prefix, recycling drained chunks. On
// return either e.head is nil (key fully expired) or the head tuple's event
// time is >= cutoff.
//
//lint:hotpath
func (s *chunkStore) expireHead(e *entry, cutoff int64) int {
	n := 0
	for e.head != nil {
		c := e.head
		if c.start == c.end {
			e.head = c.next
			s.release(c)
			continue
		}
		if c.buf[c.start].EventTime >= cutoff {
			break
		}
		c.buf[c.start] = stream.Tuple{} // drop the payload reference for the GC
		c.start++
		n++
		e.count--
	}
	if e.head == nil {
		e.tail = nil
	}
	return n
}

func (s *chunkStore) SubWindows() []int { return s.sub.snapshot() }

func (s *chunkStore) PerKeyCounts() map[stream.Key]int {
	out := make(map[stream.Key]int, s.nKeys)
	for i := range s.slots {
		if e := &s.slots[i]; e.head != nil {
			out[e.key] = int(e.count)
		}
	}
	return out
}

func (s *chunkStore) AppendKeyCounts(dst []KeyCount) []KeyCount {
	for i := range s.slots {
		if e := &s.slots[i]; e.head != nil {
			dst = append(dst, KeyCount{Key: e.key, Count: int(e.count)})
		}
	}
	return dst
}

func (s *chunkStore) AdvanceVisited() int { return s.visited }

func (s *chunkStore) WatchKey(key stream.Key) bool {
	if s.lookup(key) == nil {
		return true
	}
	if s.watched == nil {
		s.watched = make(map[stream.Key]struct{})
	}
	s.watched[key] = struct{}{}
	return false
}

func (s *chunkStore) UnwatchKey(key stream.Key) {
	delete(s.watched, key)
}

func (s *chunkStore) TakeDrained(dst []stream.Key) []stream.Key {
	dst = append(dst, s.drained...)
	s.drained = s.drained[:0]
	return dst
}

// fireWatch queues key for TakeDrained if a watch is armed for it. Called
// from the two sites that drop a key's last tuple (Advance's full expiry
// and RemoveKey); the leading len check keeps the cost of the unwatched
// common case to one branch, so the hot expiry loop stays unaffected.
func (s *chunkStore) fireWatch(key stream.Key) {
	if len(s.watched) == 0 {
		return
	}
	if _, ok := s.watched[key]; ok {
		delete(s.watched, key)
		s.drained = append(s.drained, key)
	}
}

// --- index ---

//lint:hotpath
func (s *chunkStore) lookup(key stream.Key) *entry {
	if s.slots == nil {
		return nil
	}
	i := xhash.Uint64(uint64(key)) & s.mask
	for {
		e := &s.slots[i]
		if e.head == nil {
			return nil
		}
		if e.key == key {
			return e
		}
		i = (i + 1) & s.mask
	}
}

// lookupIdx returns the slot index of key's entry. Deleting callers need the
// index, not the pointer: delAt identifies the slot positionally, which stays
// unambiguous even after the entry's chain has been emptied.
func (s *chunkStore) lookupIdx(key stream.Key) (uint64, bool) {
	if s.slots == nil {
		return 0, false
	}
	i := xhash.Uint64(uint64(key)) & s.mask
	for {
		e := &s.slots[i]
		if e.head == nil {
			return 0, false
		}
		if e.key == key {
			return i, true
		}
		i = (i + 1) & s.mask
	}
}

// insert returns the entry for key, creating an empty one (head == nil) if
// absent. The caller MUST give a new entry its first chunk before any other
// index operation runs: head == nil marks a free slot.
//
//lint:hotpath
func (s *chunkStore) insert(key stream.Key) *entry {
	if s.slots == nil || (s.nKeys+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	i := xhash.Uint64(uint64(key)) & s.mask
	for {
		e := &s.slots[i]
		if e.head == nil {
			e.key = key
			e.count = 0
			s.nKeys++
			return e
		}
		if e.key == key {
			return e
		}
		i = (i + 1) & s.mask
	}
}

func (s *chunkStore) grow() {
	old := s.slots
	n := 2 * len(old)
	if n == 0 {
		n = 16
	}
	s.slots = make([]entry, n)
	s.mask = uint64(n - 1)
	for i := range old {
		if old[i].head == nil {
			continue
		}
		j := xhash.Uint64(uint64(old[i].key)) & s.mask
		for s.slots[j].head != nil {
			j = (j + 1) & s.mask
		}
		s.slots[j] = old[i]
	}
}

// delAt removes the entry in slot i (found via lookupIdx, possibly with its
// chain already emptied by the caller).
func (s *chunkStore) delAt(i uint64) {
	s.nKeys--
	// Backward-shift the rest of the probe chain into the vacancy so lookups
	// can keep stopping at the first empty slot (no tombstones).
	j := i
	for {
		j = (j + 1) & s.mask
		e := &s.slots[j]
		if e.head == nil {
			break
		}
		k := xhash.Uint64(uint64(e.key)) & s.mask
		// Move e back iff the vacancy at i lies on e's probe path: its ideal
		// slot k must not sit in the cyclic interval (i, j].
		if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
			s.slots[i] = *e
			i = j
		}
	}
	s.slots[i] = entry{}
}

// --- arena ---

func (s *chunkStore) newChunk(class int) *chunk {
	if c := s.free[class]; c != nil {
		s.free[class] = c.next
		c.next = nil
		return c
	}
	if s.hdrNext == len(s.hdrSlab) {
		n := hdrSlabMin
		if len(s.hdrSlab) > 0 {
			n = len(s.hdrSlab) * 2
			if n > hdrSlabMax {
				n = hdrSlabMax
			}
		}
		s.hdrSlab = make([]chunk, n)
		s.hdrNext = 0
	}
	c := &s.hdrSlab[s.hdrNext]
	s.hdrNext++

	capT := classCap[class]
	if s.tupNext[class]+capT > len(s.tupSlab[class]) {
		n := slabMin[class]
		if len(s.tupSlab[class]) > 0 {
			n = len(s.tupSlab[class]) * 2
			if n > slabMax[class] {
				n = slabMax[class]
			}
		}
		s.tupSlab[class] = make([]stream.Tuple, n)
		s.tupNext[class] = 0
	}
	lo := s.tupNext[class]
	c.buf = s.tupSlab[class][lo : lo+capT : lo+capT]
	s.tupNext[class] += capT
	c.class = uint8(class)
	return c
}

// release returns a chunk to its class freelist. Freelists are uncapped on
// purpose: the buffers are slab-carved and cannot be handed back to the Go
// allocator individually, so capping would only leak them.
func (s *chunkStore) release(c *chunk) {
	clear(c.buf[:c.end])
	c.start, c.end = 0, 0
	c.next = s.free[c.class]
	s.free[c.class] = c
}

// --- expiry heap ---

func (s *chunkStore) pushExpiry(at int64, key stream.Key) {
	s.expiry = append(s.expiry, expiryEntry{at: at, key: key})
	i := len(s.expiry) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.expiry[p].at <= s.expiry[i].at {
			break
		}
		s.expiry[p], s.expiry[i] = s.expiry[i], s.expiry[p]
		i = p
	}
}

func (s *chunkStore) popExpiry() expiryEntry {
	h := s.expiry
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.expiry = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h[r].at < h[l].at {
			m = r
		}
		if h[i].at <= h[m].at {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
