package window

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fastjoin/internal/stream"
)

// assertStoresEqual compares every observable of the two stores over the
// given key universe: totals, per-key counts, exact match sets in probe
// order, and the sub-window vector.
func assertStoresEqual(t *testing.T, chunked, ref Store, keyspace int) {
	t.Helper()
	if chunked.Len() != ref.Len() {
		t.Fatalf("Len: chunked=%d ref=%d", chunked.Len(), ref.Len())
	}
	if chunked.Keys() != ref.Keys() {
		t.Fatalf("Keys: chunked=%d ref=%d", chunked.Keys(), ref.Keys())
	}
	for k := 0; k < keyspace; k++ {
		key := stream.Key(k)
		if c, r := chunked.KeyCount(key), ref.KeyCount(key); c != r {
			t.Fatalf("KeyCount(%d): chunked=%d ref=%d", k, c, r)
		}
		cm, rm := chunked.Matches(key), ref.Matches(key)
		if len(cm) != len(rm) {
			t.Fatalf("Matches(%d): chunked=%d tuples, ref=%d", k, len(cm), len(rm))
		}
		for i := range cm {
			if cm[i] != rm[i] {
				t.Fatalf("Matches(%d)[%d]: chunked=%+v ref=%+v", k, i, cm[i], rm[i])
			}
		}
		// ForEachMatch must agree with Matches (the probe path itself).
		i := 0
		chunked.ForEachMatch(key, func(tu stream.Tuple) {
			if i >= len(cm) || tu != cm[i] {
				t.Fatalf("ForEachMatch(%d) diverges from Matches at %d", k, i)
			}
			i++
		})
	}
	cs, rs := chunked.SubWindows(), ref.SubWindows()
	if len(cs) != len(rs) {
		t.Fatalf("SubWindows: chunked=%v ref=%v", cs, rs)
	}
	for i := range cs {
		if cs[i] != rs[i] {
			t.Fatalf("SubWindows: chunked=%v ref=%v", cs, rs)
		}
	}
	// Snapshot APIs agree with each other.
	ckc := chunked.PerKeyCounts()
	rkc := ref.PerKeyCounts()
	if len(ckc) != len(rkc) {
		t.Fatalf("PerKeyCounts: chunked=%d keys, ref=%d", len(ckc), len(rkc))
	}
	for k, c := range ckc {
		if rkc[k] != c {
			t.Fatalf("PerKeyCounts[%d]: chunked=%d ref=%d", k, c, rkc[k])
		}
	}
	app := chunked.AppendKeyCounts(nil)
	sort.Slice(app, func(i, j int) bool { return app[i].Key < app[j].Key })
	if len(app) != len(ckc) {
		t.Fatalf("AppendKeyCounts len=%d, PerKeyCounts len=%d", len(app), len(ckc))
	}
	for _, kc := range app {
		if ckc[kc.Key] != kc.Count {
			t.Fatalf("AppendKeyCounts[%d]=%d, PerKeyCounts=%d", kc.Key, kc.Count, ckc[kc.Key])
		}
	}
}

// runDifferential drives one seeded random op sequence against a chunked
// store and the map reference, asserting observable equivalence after every
// op. ops mixes Add, AddBulk, Advance, RemoveKey and RemoveKey→AddBulk
// hand-offs (the migration shape).
func runDifferential(t *testing.T, seed int64, windowed bool, keyspace, ops int) {
	t.Helper()
	var chunked, ref Store
	if windowed {
		chunked = NewWindowed(500, 5)
		ref = NewRefWindowed(500, 5)
	} else {
		chunked = New()
		ref = NewRef()
	}
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	seq := uint64(0)
	mk := func(k int) stream.Tuple {
		seq++
		// Occasional out-of-order event times: expiry must stay exact when
		// a key's deque is not sorted by event time.
		et := now - int64(rng.Intn(50))
		return stream.Tuple{Side: stream.R, Key: stream.Key(k), Seq: seq, EventTime: et}
	}
	for op := 0; op < ops; op++ {
		switch rng.Intn(12) {
		case 0: // migration extract: identical tuple sets must come out
			k := stream.Key(rng.Intn(keyspace))
			cm, rm := chunked.RemoveKey(k), ref.RemoveKey(k)
			if len(cm) != len(rm) {
				t.Fatalf("op %d: RemoveKey(%d): chunked=%d ref=%d", op, k, len(cm), len(rm))
			}
			for i := range cm {
				if cm[i] != rm[i] {
					t.Fatalf("op %d: RemoveKey(%d)[%d] diverges", op, k, i)
				}
			}
		case 1: // migration hand-off: extract from one key, install bulk
			k := stream.Key(rng.Intn(keyspace))
			moved := chunked.RemoveKey(k)
			refMoved := ref.RemoveKey(k)
			chunked.AddBulk(moved)
			ref.AddBulk(refMoved)
		case 2, 3: // expiry
			now += int64(rng.Intn(300))
			cr, rr := chunked.Advance(now), ref.Advance(now)
			if cr != rr {
				t.Fatalf("op %d: Advance(%d) removed chunked=%d ref=%d", op, now, cr, rr)
			}
		case 4: // bulk insert (migration install of a fresh batch)
			k := rng.Intn(keyspace)
			n := rng.Intn(8)
			batch := make([]stream.Tuple, 0, n)
			for i := 0; i < n; i++ {
				batch = append(batch, mk(k))
			}
			chunked.AddBulk(batch)
			ref.AddBulk(batch)
		default: // plain add
			now += int64(rng.Intn(20))
			tu := mk(rng.Intn(keyspace))
			chunked.Add(tu)
			ref.Add(tu)
		}
		assertStoresEqual(t, chunked, ref, keyspace)
	}
}

// TestDifferentialRandomOps is the store-level differential suite: seeded
// random Add/AddBulk/Advance/RemoveKey sequences against both layouts,
// windowed and unbounded, small and large key universes (small forces deep
// per-key chains through every chunk size class; large exercises index
// growth and backward-shift deletion).
func TestDifferentialRandomOps(t *testing.T) {
	for _, tc := range []struct {
		windowed bool
		keyspace int
		ops      int
	}{
		{windowed: false, keyspace: 4, ops: 400},
		{windowed: false, keyspace: 64, ops: 400},
		{windowed: true, keyspace: 4, ops: 400},
		{windowed: true, keyspace: 64, ops: 400},
	} {
		for seed := int64(1); seed <= 8; seed++ {
			tc, seed := tc, seed
			name := fmt.Sprintf("windowed=%v/keys=%d/seed=%d", tc.windowed, tc.keyspace, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runDifferential(t, seed, tc.windowed, tc.keyspace, tc.ops)
			})
		}
	}
}

// TestDifferentialMigrationInterleaving models the two-instance migration
// dance: keys move between a source and a target store (extract on one,
// install on the other, possibly bounced back by an abort) interleaved with
// new arrivals and expiry on both sides, each side shadowed by a reference
// store.
func TestDifferentialMigrationInterleaving(t *testing.T) {
	const keyspace = 16
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			srcC, srcR := NewWindowed(400, 4), NewRefWindowed(400, 4)
			dstC, dstR := NewWindowed(400, 4), NewRefWindowed(400, 4)
			rng := rand.New(rand.NewSource(seed))
			now := int64(0)
			seq := uint64(0)
			for op := 0; op < 300; op++ {
				switch rng.Intn(8) {
				case 0: // migrate a key src -> dst
					k := stream.Key(rng.Intn(keyspace))
					dstC.AddBulk(srcC.RemoveKey(k))
					dstR.AddBulk(srcR.RemoveKey(k))
				case 1: // abort rollback: bounce a key dst -> src
					k := stream.Key(rng.Intn(keyspace))
					srcC.AddBulk(dstC.RemoveKey(k))
					srcR.AddBulk(dstR.RemoveKey(k))
				case 2: // both sides advance on their tick
					now += int64(rng.Intn(200))
					if a, b := srcC.Advance(now), srcR.Advance(now); a != b {
						t.Fatalf("op %d: src Advance %d != %d", op, a, b)
					}
					if a, b := dstC.Advance(now), dstR.Advance(now); a != b {
						t.Fatalf("op %d: dst Advance %d != %d", op, a, b)
					}
				default: // arrival at whichever side currently owns the key
					now += int64(rng.Intn(10))
					seq++
					tu := stream.Tuple{Key: stream.Key(rng.Intn(keyspace)), Seq: seq, EventTime: now}
					if srcC.KeyCount(tu.Key) > 0 || dstC.KeyCount(tu.Key) == 0 {
						srcC.Add(tu)
						srcR.Add(tu)
					} else {
						dstC.Add(tu)
						dstR.Add(tu)
					}
				}
				assertStoresEqual(t, srcC, srcR, keyspace)
				assertStoresEqual(t, dstC, dstR, keyspace)
			}
		})
	}
}

// TestDifferentialKeyZero pins the index edge case: key 0 is a valid key
// whose entry must survive insert/expire/delete cycles even though an empty
// index slot also carries a zero key field.
func TestDifferentialKeyZero(t *testing.T) {
	chunked, ref := NewWindowed(100, 2), NewRefWindowed(100, 2)
	for i := 0; i < 5; i++ {
		tu := stream.Tuple{Key: 0, Seq: uint64(i), EventTime: int64(i * 10)}
		chunked.Add(tu)
		ref.Add(tu)
	}
	if a, b := chunked.Advance(1000), ref.Advance(1000); a != b || a != 5 {
		t.Fatalf("Advance removed chunked=%d ref=%d, want 5", a, b)
	}
	assertStoresEqual(t, chunked, ref, 4)
	tu := stream.Tuple{Key: 0, Seq: 9, EventTime: 2000}
	chunked.Add(tu)
	ref.Add(tu)
	if chunked.KeyCount(0) != 1 {
		t.Fatalf("key 0 lost after expiry cycle: count=%d", chunked.KeyCount(0))
	}
	assertStoresEqual(t, chunked, ref, 4)
}
