package window

import (
	"testing"

	"fastjoin/internal/stream"
)

// storeImpls enumerates the windowed constructors so regression tests run
// against both layouts.
var storeImpls = []struct {
	name string
	mk   func(span int64, subCount int) Store
}{
	{"chunked", NewWindowed},
	{"ref", NewRefWindowed},
}

// TestAdvanceEarlyExit is the regression test for satellite 1: when nothing
// can expire, Advance must not walk resident keys. The old implementation
// scanned every key on every tick; AdvanceVisited exposes the walk so the
// test can pin the O(expired) behaviour.
func TestAdvanceEarlyExit(t *testing.T) {
	for _, impl := range storeImpls {
		t.Run(impl.name, func(t *testing.T) {
			w := impl.mk(1000, 4)
			for k := 0; k < 500; k++ {
				w.Add(stream.Tuple{Key: stream.Key(k), Seq: uint64(k), EventTime: 5000})
			}
			// First advance may pay a bounded amount of bookkeeping (e.g. a
			// heap peek); nothing is expirable at cutoff 4000.
			if n := w.Advance(5000); n != 0 {
				t.Fatalf("Advance removed %d tuples, want 0", n)
			}
			base := w.AdvanceVisited()
			// Repeated no-op advances must not walk resident keys at all.
			for i := 0; i < 10; i++ {
				if n := w.Advance(5000 + int64(i)); n != 0 {
					t.Fatalf("Advance removed %d tuples, want 0", n)
				}
			}
			if got := w.AdvanceVisited(); got != base {
				t.Fatalf("%s: 10 no-op Advance calls visited %d keys (cumulative %d -> %d); early-exit regressed",
					impl.name, got-base, base, got)
			}
			// A productive advance visits only what it expires.
			before := w.AdvanceVisited()
			if n := w.Advance(7000); n != 500 {
				t.Fatalf("Advance removed %d tuples, want 500", n)
			}
			if got := w.AdvanceVisited() - before; got == 0 || got > 500 {
				t.Fatalf("productive Advance visited %d keys, want 1..500", got)
			}
		})
	}
}

// TestAppendKeyCounts covers satellite 2: the allocation-free counts
// snapshot must agree with PerKeyCounts and reuse the caller's buffer.
func TestAppendKeyCounts(t *testing.T) {
	for _, impl := range storeImpls {
		t.Run(impl.name, func(t *testing.T) {
			w := impl.mk(1000, 4)
			for k := 0; k < 40; k++ {
				for j := 0; j <= k%5; j++ {
					w.Add(stream.Tuple{Key: stream.Key(k), Seq: uint64(k*10 + j), EventTime: 100})
				}
			}
			buf := make([]KeyCount, 0, 64)
			got := w.AppendKeyCounts(buf[:0])
			want := w.PerKeyCounts()
			if len(got) != len(want) {
				t.Fatalf("AppendKeyCounts returned %d keys, PerKeyCounts %d", len(got), len(want))
			}
			seen := make(map[stream.Key]bool, len(got))
			for _, kc := range got {
				if seen[kc.Key] {
					t.Fatalf("duplicate key %d in AppendKeyCounts", kc.Key)
				}
				seen[kc.Key] = true
				if want[kc.Key] != kc.Count {
					t.Fatalf("AppendKeyCounts[%d]=%d, PerKeyCounts=%d", kc.Key, kc.Count, want[kc.Key])
				}
			}
			// Reuse: a second call into the same backing array must not grow it.
			again := w.AppendKeyCounts(got[:0])
			if &again[0] != &got[0] {
				t.Fatalf("AppendKeyCounts reallocated despite sufficient capacity")
			}
			// Appends after existing elements, preserving the prefix.
			prefixed := w.AppendKeyCounts(got[:1])
			if len(prefixed) != len(want)+1 || prefixed[0] != got[0] {
				t.Fatalf("AppendKeyCounts clobbered the existing prefix")
			}
		})
	}
}

// TestRefStoreParity runs the reference layout through the core semantics
// the main suite pins for the chunked store, so NewRef stays a trustworthy
// differential baseline.
func TestRefStoreParity(t *testing.T) {
	w := NewRefWindowed(100, 2)
	w.Add(stream.Tuple{Key: 1, Seq: 1, EventTime: 10})
	w.Add(stream.Tuple{Key: 1, Seq: 2, EventTime: 60})
	w.Add(stream.Tuple{Key: 2, Seq: 3, EventTime: 60})
	if w.Len() != 3 || w.Keys() != 2 {
		t.Fatalf("Len=%d Keys=%d, want 3/2", w.Len(), w.Keys())
	}
	// Cutoff 60: strictly-older tuples expire; the tuple at exactly 60 stays.
	if n := w.Advance(160); n != 1 {
		t.Fatalf("Advance removed %d, want 1 (exact-boundary tuple must survive)", n)
	}
	if got := w.Matches(1); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("Matches(1) = %+v, want the Seq=2 survivor", got)
	}
	moved := w.RemoveKey(1)
	if len(moved) != 1 || w.Keys() != 1 {
		t.Fatalf("RemoveKey moved %d tuples, Keys=%d", len(moved), w.Keys())
	}
	w.AddBulk(moved)
	if w.Keys() != 2 || w.KeyCount(1) != 1 {
		t.Fatalf("AddBulk round trip lost key 1")
	}
}
