package window

import (
	"fastjoin/internal/stream"
)

// refStore is the original map[Key][]Tuple store, kept as the reference
// model the chunked arena store is differentially tested against, and as the
// A/B baseline for the bench `store` experiment. Its semantics are the
// oracle: the chunked store must produce identical match sets, counts, and
// expiry behaviour.
type refStore struct {
	span int64 // window span in nanoseconds; <= 0 means unbounded
	sub  subVector

	perKey map[stream.Key][]stream.Tuple
	total  int

	// minHead is a conservative lower bound on the oldest head event time
	// across all keys, valid while minHeadOK. Advance early-exits when the
	// cutoff cannot reach it — exactly the runs where a full scan would
	// remove nothing — and recomputes it exactly after every full scan.
	// Add lowers it when a key gains a new head; RemoveKey leaves it (still
	// a valid lower bound, merely loose).
	minHead   int64
	minHeadOK bool

	visited int

	// Emptiness watches (WatchKey/TakeDrained), mirroring chunkStore's.
	watched map[stream.Key]struct{}
	drained []stream.Key
}

func (s *refStore) Windowed() bool { return s.span > 0 }

func (s *refStore) Span() int64 {
	if s.span <= 0 {
		return 0
	}
	return s.span
}

func (s *refStore) Add(t stream.Tuple) {
	prev := s.perKey[t.Key]
	if len(prev) == 0 && (!s.minHeadOK || t.EventTime < s.minHead) {
		// t becomes this key's head; fold it into the bound. (minHeadOK
		// false means "no heads yet", so the first head defines the bound.)
		s.minHead = t.EventTime
	}
	s.minHeadOK = true
	s.perKey[t.Key] = append(prev, t)
	s.total++
	if s.span > 0 {
		s.sub.bump(t.EventTime)
	}
}

func (s *refStore) AddBulk(tuples []stream.Tuple) {
	for _, t := range tuples {
		s.Add(t)
	}
}

func (s *refStore) Len() int { return s.total }

func (s *refStore) KeyCount(key stream.Key) int { return len(s.perKey[key]) }

func (s *refStore) Keys() int { return len(s.perKey) }

func (s *refStore) ForEachKey(fn func(key stream.Key, count int)) {
	for k, tuples := range s.perKey {
		fn(k, len(tuples))
	}
}

func (s *refStore) ForEachMatch(key stream.Key, fn func(t stream.Tuple)) {
	for _, t := range s.perKey[key] {
		fn(t)
	}
}

func (s *refStore) Matches(key stream.Key) []stream.Tuple {
	src := s.perKey[key]
	if len(src) == 0 {
		return nil
	}
	out := make([]stream.Tuple, len(src))
	copy(out, src)
	return out
}

func (s *refStore) RemoveKey(key stream.Key) []stream.Tuple {
	tuples, ok := s.perKey[key]
	if !ok {
		return nil
	}
	delete(s.perKey, key)
	s.total -= len(tuples)
	s.fireWatch(key)
	return tuples
}

func (s *refStore) Advance(now int64) int {
	if s.span <= 0 {
		return 0
	}
	cutoff := now - s.span
	if s.minHeadOK && s.minHead >= cutoff {
		// Every head is at or past the cutoff, so the scan below would pop
		// nothing from any key: skip it entirely.
		s.sub.pop(cutoff)
		return 0
	}
	removed := 0
	min := int64(0)
	minOK := false
	for key, tuples := range s.perKey {
		s.visited++
		i := 0
		for i < len(tuples) && tuples[i].EventTime < cutoff {
			i++
		}
		if i > 0 {
			removed += i
			if i == len(tuples) {
				delete(s.perKey, key)
				s.fireWatch(key)
				continue
			}
			s.perKey[key] = tuples[i:]
			tuples = tuples[i:]
		}
		if !minOK || tuples[0].EventTime < min {
			min = tuples[0].EventTime
			minOK = true
		}
	}
	s.total -= removed
	s.minHead, s.minHeadOK = min, minOK

	s.sub.pop(cutoff)
	return removed
}

func (s *refStore) SubWindows() []int { return s.sub.snapshot() }

func (s *refStore) PerKeyCounts() map[stream.Key]int {
	out := make(map[stream.Key]int, len(s.perKey))
	for k, tuples := range s.perKey {
		out[k] = len(tuples)
	}
	return out
}

func (s *refStore) AppendKeyCounts(dst []KeyCount) []KeyCount {
	for k, tuples := range s.perKey {
		dst = append(dst, KeyCount{Key: k, Count: len(tuples)})
	}
	return dst
}

func (s *refStore) AdvanceVisited() int { return s.visited }

func (s *refStore) WatchKey(key stream.Key) bool {
	if len(s.perKey[key]) == 0 {
		return true
	}
	if s.watched == nil {
		s.watched = make(map[stream.Key]struct{})
	}
	s.watched[key] = struct{}{}
	return false
}

func (s *refStore) UnwatchKey(key stream.Key) {
	delete(s.watched, key)
}

func (s *refStore) TakeDrained(dst []stream.Key) []stream.Key {
	dst = append(dst, s.drained...)
	s.drained = s.drained[:0]
	return dst
}

// fireWatch queues key for TakeDrained if a watch is armed for it; see
// chunkStore.fireWatch.
func (s *refStore) fireWatch(key stream.Key) {
	if len(s.watched) == 0 {
		return
	}
	if _, ok := s.watched[key]; ok {
		delete(s.watched, key)
		s.drained = append(s.drained, key)
	}
}
