package window

import (
	"slices"
	"testing"

	"fastjoin/internal/stream"
)

// watchImpls runs a subtest against both store layouts: the emptiness
// watch is part of the Store contract, so the chunked store and the
// reference baseline must agree on every behavior.
func watchImpls(t *testing.T, f func(t *testing.T, mk func() Store)) {
	t.Run("chunked", func(t *testing.T) { f(t, func() Store { return NewWindowed(100, 4) }) })
	t.Run("ref", func(t *testing.T) { f(t, func() Store { return NewRefWindowed(100, 4) }) })
}

func takeAll(s Store) []stream.Key {
	got := s.TakeDrained(nil)
	slices.Sort(got)
	return got
}

func TestWatchKeyAbsentImmediate(t *testing.T) {
	watchImpls(t, func(t *testing.T, mk func() Store) {
		s := mk()
		if !s.WatchKey(7) {
			t.Fatal("WatchKey on an absent key must report already-drained")
		}
		// Nothing was armed: a later appearance and expiry of the key must
		// not produce a notification.
		s.Add(tup(7, 0, 10))
		s.Advance(1000)
		if got := takeAll(s); len(got) != 0 {
			t.Fatalf("no watch was armed, but TakeDrained = %v", got)
		}
	})
}

func TestWatchKeyFiresOnExpiry(t *testing.T) {
	watchImpls(t, func(t *testing.T, mk func() Store) {
		s := mk()
		s.Add(tup(7, 0, 10))
		s.Add(tup(7, 1, 20))
		s.Add(tup(9, 2, 500))
		if s.WatchKey(7) {
			t.Fatal("WatchKey on a present key must arm, not report drained")
		}
		// First tuple expires, one remains: no notification yet.
		s.Advance(119)
		if got := takeAll(s); len(got) != 0 {
			t.Fatalf("key still has a tuple, but TakeDrained = %v", got)
		}
		// Last tuple of key 7 expires; key 9 remains and is unwatched.
		s.Advance(200)
		if got := takeAll(s); !slices.Equal(got, []stream.Key{7}) {
			t.Fatalf("TakeDrained = %v, want [7]", got)
		}
		// The queue cleared and the watch disarmed: re-adding and expiring
		// again fires nothing.
		if got := takeAll(s); len(got) != 0 {
			t.Fatalf("second TakeDrained = %v, want empty", got)
		}
		s.Add(tup(7, 3, 300))
		s.Advance(1000)
		if got := takeAll(s); len(got) != 0 {
			t.Fatalf("watch should be one-shot, but TakeDrained = %v", got)
		}
	})
}

func TestWatchKeyFiresOnRemoveKey(t *testing.T) {
	watchImpls(t, func(t *testing.T, mk func() Store) {
		s := mk()
		s.Add(tup(3, 0, 10))
		s.WatchKey(3)
		s.RemoveKey(3)
		if got := takeAll(s); !slices.Equal(got, []stream.Key{3}) {
			t.Fatalf("TakeDrained after RemoveKey = %v, want [3]", got)
		}
	})
}

func TestUnwatchKeyCancels(t *testing.T) {
	watchImpls(t, func(t *testing.T, mk func() Store) {
		s := mk()
		s.Add(tup(5, 0, 10))
		s.WatchKey(5)
		s.UnwatchKey(5)
		s.Advance(1000)
		if got := takeAll(s); len(got) != 0 {
			t.Fatalf("TakeDrained after UnwatchKey = %v, want empty", got)
		}
		// Unwatching an absent or never-watched key is a no-op.
		s.UnwatchKey(5)
		s.UnwatchKey(42)
	})
}

func TestTakeDrainedAppends(t *testing.T) {
	watchImpls(t, func(t *testing.T, mk func() Store) {
		s := mk()
		s.Add(tup(1, 0, 10))
		s.Add(tup(2, 1, 10))
		s.WatchKey(1)
		s.WatchKey(2)
		s.Advance(1000)
		got := s.TakeDrained([]stream.Key{99})
		slices.Sort(got)
		if !slices.Equal(got, []stream.Key{1, 2, 99}) {
			t.Fatalf("TakeDrained must append to dst: got %v", got)
		}
	})
}
