// Package window implements the tuple store of a join instance, including
// the window-based join semantics of the paper's §III-E: tuples of the
// storing stream are kept in per-key FIFO deques, and a fixed-size vector of
// sub-window counters records |R| per sub-window so that expiring the oldest
// sub-window pops the head of the vector.
//
// Two implementations back the Store interface:
//
//   - the chunked arena store (New/NewWindowed, the default): per-key deques
//     are linked chains of fixed-size chunks carved from store-owned slabs
//     and recycled through per-class freelists, indexed by an open-addressing
//     uint64 table, with an event-time min-heap making Advance O(expired).
//     See DESIGN.md "Store memory layout".
//   - the map-based reference store (NewRef/NewRefWindowed): the original
//     map[Key][]Tuple layout, kept as the differential-testing oracle and as
//     the A/B baseline for the bench `store` experiment.
//
// A Store belongs to exactly one join-instance goroutine and is therefore
// not safe for concurrent use; the owning joiner serializes all access.
package window

import (
	"fastjoin/internal/stream"
)

// KeyCount is one key's stored-tuple count, as appended by AppendKeyCounts.
type KeyCount struct {
	Key   stream.Key
	Count int
}

// Store holds the stored tuples of one join instance for one stream.
//
// With span <= 0 the store is unbounded (full-history join, the default mode
// of the join-biclique model). With span > 0 the store keeps only tuples
// whose event time is within the last span nanoseconds, tracked in subCount
// sub-windows as the paper describes.
type Store interface {
	// Windowed reports whether the store expires tuples.
	Windowed() bool
	// Span returns the window span in nanoseconds (0 when unbounded).
	Span() int64
	// Add stores one tuple.
	Add(t stream.Tuple)
	// AddBulk stores a batch of tuples for one key, as the target of a key
	// migration does when receiving the moved tuples.
	AddBulk(tuples []stream.Tuple)
	// Len returns the total number of stored tuples (the paper's |R_i|).
	Len() int
	// KeyCount returns the number of stored tuples with the given key (|R_ik|).
	KeyCount(key stream.Key) int
	// Keys returns the number of distinct keys currently stored (K in Table I).
	Keys() int
	// ForEachKey calls fn for every stored key with its tuple count.
	// Iteration order is unspecified. fn must not mutate the store.
	ForEachKey(fn func(key stream.Key, count int))
	// ForEachMatch calls fn for every stored tuple with the given key, in
	// insertion order. This is the probe path of the join. fn must not
	// mutate the store.
	ForEachMatch(key stream.Key, fn func(t stream.Tuple))
	// Matches returns a copy of the stored tuples with the given key.
	Matches(key stream.Key) []stream.Tuple
	// RemoveKey removes and returns all tuples with the given key, as the
	// source of a key migration does when extracting the tuples to move
	// (Algorithm 2, lines 3-8). The returned slice is freshly allocated and
	// owned by the caller — in the chunked store the backing chunks are
	// recycled immediately, so tuples MUST be copied out of the arena here.
	// The sub-window vector is left untouched — the removed tuples simply
	// no longer exist when their sub-window expires — so the vector remains
	// an upper bound on residency, matching the paper's per-instance
	// bookkeeping.
	RemoveKey(key stream.Key) []stream.Tuple
	// Advance expires every stored tuple whose event time is older than
	// now - span, popping complete sub-windows off the head of the
	// sub-window vector. It returns the number of tuples removed. Advance
	// is a no-op for unbounded stores.
	Advance(now int64) int
	// SubWindows returns a copy of the sub-window vector (oldest first).
	// Tests and the monitor use it; an unbounded store returns nil.
	SubWindows() []int
	// PerKeyCounts returns a snapshot map of key -> stored-tuple count.
	// It allocates; the hot monitor/migration path uses AppendKeyCounts.
	PerKeyCounts() map[stream.Key]int
	// AppendKeyCounts appends every stored key with its tuple count to dst
	// and returns the extended slice, allocating only when dst lacks
	// capacity. Callers reuse the returned slice across ticks.
	AppendKeyCounts(dst []KeyCount) []KeyCount
	// AdvanceVisited returns the cumulative number of keys Advance has
	// examined over the store's lifetime. Regression tests use it to pin
	// the O(expired) early-exit behaviour.
	AdvanceVisited() int
	// WatchKey arms an emptiness watch on key: when the store later drops
	// the key's last stored tuple (window expiry via Advance, or an
	// explicit RemoveKey), the key is queued for TakeDrained. If the key
	// is ALREADY absent, WatchKey returns true and arms nothing — the
	// caller observes emptiness synchronously and must not wait for a
	// queue entry. Re-arming an armed watch is idempotent. The split
	// drain protocol is the intended consumer: a joiner watches each
	// residual salted key and reports SplitDrained when the share
	// expires.
	WatchKey(key stream.Key) bool
	// UnwatchKey disarms a watch armed by WatchKey (no-op when absent).
	// A key already queued for TakeDrained stays queued; consumers that
	// unwatch must tolerate a late drain notification.
	UnwatchKey(key stream.Key)
	// TakeDrained appends every watched key whose last tuple has been
	// dropped since the previous call to dst, clears the internal queue,
	// and returns the extended slice. Each drained key fires once (its
	// watch disarms when it queues). Order is unspecified — it differs
	// between implementations, so consumers needing determinism must
	// sort.
	TakeDrained(dst []stream.Key) []stream.Key
}

// New returns an unbounded (full-history) chunked arena store.
func New() Store {
	return &chunkStore{}
}

// NewWindowed returns a chunked arena store with the given window span,
// divided into subCount sub-windows. span must be positive and subCount >= 1.
func NewWindowed(span int64, subCount int) Store {
	s := &chunkStore{span: span}
	s.sub.init(span, subCount)
	return s
}

// NewRef returns an unbounded (full-history) map-based reference store.
func NewRef() Store {
	return &refStore{perKey: make(map[stream.Key][]stream.Tuple)}
}

// NewRefWindowed returns a map-based reference store with the given window
// span, divided into subCount sub-windows.
func NewRefWindowed(span int64, subCount int) Store {
	s := &refStore{span: span, perKey: make(map[stream.Key][]stream.Tuple)}
	s.sub.init(span, subCount)
	return s
}

// subVector is the paper's fixed-size sub-window counter vector, shared by
// both store implementations: subs[i] counts the tuples admitted during
// sub-window i. The head (oldest) is subs[0]; subStart is the event-time at
// which subs[len(subs)-1] began.
type subVector struct {
	subSpan  int64 // span of one sub-window
	subCount int
	subs     []int
	subStart int64
}

func (v *subVector) init(span int64, subCount int) {
	if span <= 0 {
		panic("window: span must be positive") //lint:allow panicpath constructor contract; biclique.Config.Validate supplies valid spans
	}
	if subCount < 1 {
		panic("window: subCount must be >= 1") //lint:allow panicpath constructor contract; biclique.Config.Validate supplies valid sub-window counts
	}
	v.subSpan = span / int64(subCount)
	v.subCount = subCount
}

// bump advances the sub-window vector to cover eventTime and increments
// the current (newest) sub-window counter. The advance is arithmetic — one
// division, not one append per elapsed subSpan — and the vector is capped
// at subCount live sub-windows (the paper's fixed-size vector): a single
// tuple after a large event-time gap, or a far-future outlier, must not
// grow subs by millions of entries and stall the joiner.
func (v *subVector) bump(eventTime int64) {
	if len(v.subs) == 0 {
		v.subs = append(v.subs, 0)
		v.subStart = eventTime
	}
	if eventTime >= v.subStart+v.subSpan {
		steps := (eventTime - v.subStart) / v.subSpan
		v.subStart += steps * v.subSpan
		if steps >= int64(v.subCount) {
			// The gap swallows every live sub-window: restart the vector at
			// the new position instead of materializing the empty middle.
			v.subs = append(v.subs[:0], 0)
		} else {
			for i := int64(0); i < steps; i++ {
				v.subs = append(v.subs, 0)
			}
			if excess := len(v.subs) - v.subCount; excess > 0 {
				// Anything pushed past subCount has expired by definition of
				// the window; drop it from the head. (Advance reclaims the
				// tuples themselves on its own wall-clock schedule.)
				v.subs = v.subs[excess:]
			}
		}
	}
	v.subs[len(v.subs)-1]++
}

// pop drops expired sub-windows off the head of the vector.
func (v *subVector) pop(cutoff int64) {
	for len(v.subs) > 0 {
		headEnd := v.subStart - int64(len(v.subs)-1)*v.subSpan + v.subSpan
		if headEnd >= cutoff {
			break
		}
		v.subs = v.subs[1:]
	}
}

// snapshot returns a copy of the vector (oldest first), nil when empty.
func (v *subVector) snapshot() []int {
	if len(v.subs) == 0 {
		return nil
	}
	out := make([]int, len(v.subs))
	copy(out, v.subs)
	return out
}
