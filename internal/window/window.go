// Package window implements the tuple store of a join instance, including
// the window-based join semantics of the paper's §III-E: tuples of the
// storing stream are kept in per-key FIFO deques, and a fixed-size vector of
// sub-window counters records |R| per sub-window so that expiring the oldest
// sub-window pops the head of the vector.
//
// A Store belongs to exactly one join-instance goroutine and is therefore
// not safe for concurrent use; the owning joiner serializes all access.
package window

import (
	"fastjoin/internal/stream"
)

// Store holds the stored tuples of one join instance for one stream.
//
// With span <= 0 the store is unbounded (full-history join, the default mode
// of the join-biclique model). With span > 0 the store keeps only tuples
// whose event time is within the last span nanoseconds, tracked in subCount
// sub-windows as the paper describes.
type Store struct {
	span     int64 // window span in nanoseconds; <= 0 means unbounded
	subSpan  int64 // span of one sub-window
	subCount int

	perKey map[stream.Key][]stream.Tuple
	total  int

	// subs is the paper's fixed-size vector: subs[i] counts the tuples
	// admitted during sub-window i. The head (oldest) is subs[0];
	// subStart is the event-time at which subs[len(subs)-1] began.
	subs     []int
	subStart int64
}

// New returns an unbounded (full-history) store.
func New() *Store {
	return &Store{perKey: make(map[stream.Key][]stream.Tuple)}
}

// NewWindowed returns a store with the given window span, divided into
// subCount sub-windows. span must be positive and subCount >= 1.
func NewWindowed(span int64, subCount int) *Store {
	if span <= 0 {
		panic("window: span must be positive") //lint:allow panicpath constructor contract; biclique.Config.Validate supplies valid spans
	}
	if subCount < 1 {
		panic("window: subCount must be >= 1") //lint:allow panicpath constructor contract; biclique.Config.Validate supplies valid sub-window counts
	}
	return &Store{
		span:     span,
		subSpan:  span / int64(subCount),
		subCount: subCount,
		perKey:   make(map[stream.Key][]stream.Tuple),
	}
}

// Windowed reports whether the store expires tuples.
func (s *Store) Windowed() bool { return s.span > 0 }

// Span returns the window span in nanoseconds (0 when unbounded).
func (s *Store) Span() int64 {
	if s.span <= 0 {
		return 0
	}
	return s.span
}

// Add stores one tuple.
func (s *Store) Add(t stream.Tuple) {
	s.perKey[t.Key] = append(s.perKey[t.Key], t)
	s.total++
	if s.span > 0 {
		s.bumpSub(t.EventTime)
	}
}

// bumpSub advances the sub-window vector to cover eventTime and increments
// the current (newest) sub-window counter. The advance is arithmetic — one
// division, not one append per elapsed subSpan — and the vector is capped
// at subCount live sub-windows (the paper's fixed-size vector): a single
// tuple after a large event-time gap, or a far-future outlier, must not
// grow subs by millions of entries and stall the joiner.
func (s *Store) bumpSub(eventTime int64) {
	if len(s.subs) == 0 {
		s.subs = append(s.subs, 0)
		s.subStart = eventTime
	}
	if eventTime >= s.subStart+s.subSpan {
		steps := (eventTime - s.subStart) / s.subSpan
		s.subStart += steps * s.subSpan
		if steps >= int64(s.subCount) {
			// The gap swallows every live sub-window: restart the vector at
			// the new position instead of materializing the empty middle.
			s.subs = append(s.subs[:0], 0)
		} else {
			for i := int64(0); i < steps; i++ {
				s.subs = append(s.subs, 0)
			}
			if excess := len(s.subs) - s.subCount; excess > 0 {
				// Anything pushed past subCount has expired by definition of
				// the window; drop it from the head. (Advance reclaims the
				// tuples themselves on its own wall-clock schedule.)
				s.subs = s.subs[excess:]
			}
		}
	}
	s.subs[len(s.subs)-1]++
}

// AddBulk stores a batch of tuples for one key, as the target of a key
// migration does when receiving the moved tuples.
func (s *Store) AddBulk(tuples []stream.Tuple) {
	for _, t := range tuples {
		s.Add(t)
	}
}

// Len returns the total number of stored tuples (the paper's |R_i|).
func (s *Store) Len() int { return s.total }

// KeyCount returns the number of stored tuples with the given key (|R_ik|).
func (s *Store) KeyCount(key stream.Key) int { return len(s.perKey[key]) }

// Keys returns the number of distinct keys currently stored (K in Table I).
func (s *Store) Keys() int { return len(s.perKey) }

// ForEachKey calls fn for every stored key with its tuple count. Iteration
// order is unspecified. fn must not mutate the store.
func (s *Store) ForEachKey(fn func(key stream.Key, count int)) {
	for k, tuples := range s.perKey {
		fn(k, len(tuples))
	}
}

// ForEachMatch calls fn for every stored tuple with the given key, in
// insertion order. This is the probe path of the join. fn must not mutate
// the store.
func (s *Store) ForEachMatch(key stream.Key, fn func(t stream.Tuple)) {
	for _, t := range s.perKey[key] {
		fn(t)
	}
}

// Matches returns a copy of the stored tuples with the given key.
func (s *Store) Matches(key stream.Key) []stream.Tuple {
	src := s.perKey[key]
	if len(src) == 0 {
		return nil
	}
	out := make([]stream.Tuple, len(src))
	copy(out, src)
	return out
}

// RemoveKey removes and returns all tuples with the given key, as the
// source of a key migration does when extracting the tuples to move
// (Algorithm 2, lines 3-8). The sub-window vector is left untouched — the
// removed tuples simply no longer exist when their sub-window expires —
// so the vector remains an upper bound on residency, matching the paper's
// per-instance bookkeeping ("we just need to decrease the value which
// stores |R| when the expired tuples are removed").
func (s *Store) RemoveKey(key stream.Key) []stream.Tuple {
	tuples, ok := s.perKey[key]
	if !ok {
		return nil
	}
	delete(s.perKey, key)
	s.total -= len(tuples)
	return tuples
}

// Advance expires every stored tuple whose event time is older than
// now - span, popping complete sub-windows off the head of the sub-window
// vector. It returns the number of tuples removed. Advance is a no-op for
// unbounded stores.
func (s *Store) Advance(now int64) int {
	if s.span <= 0 {
		return 0
	}
	cutoff := now - s.span
	removed := 0
	for key, tuples := range s.perKey {
		i := 0
		for i < len(tuples) && tuples[i].EventTime < cutoff {
			i++
		}
		if i == 0 {
			continue
		}
		removed += i
		if i == len(tuples) {
			delete(s.perKey, key)
		} else {
			s.perKey[key] = tuples[i:]
		}
	}
	s.total -= removed

	// Pop expired sub-windows off the head of the vector.
	for len(s.subs) > 0 {
		headEnd := s.subStart - int64(len(s.subs)-1)*s.subSpan + s.subSpan
		if headEnd >= cutoff {
			break
		}
		s.subs = s.subs[1:]
	}
	return removed
}

// SubWindows returns a copy of the sub-window vector (oldest first). Tests
// and the monitor use it; an unbounded store returns nil.
func (s *Store) SubWindows() []int {
	if len(s.subs) == 0 {
		return nil
	}
	out := make([]int, len(s.subs))
	copy(out, s.subs)
	return out
}

// PerKeyCounts returns a snapshot map of key -> stored-tuple count, used by
// the migration source to run the key selection algorithm.
func (s *Store) PerKeyCounts() map[stream.Key]int {
	out := make(map[stream.Key]int, len(s.perKey))
	for k, tuples := range s.perKey {
		out[k] = len(tuples)
	}
	return out
}
