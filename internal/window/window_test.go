package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastjoin/internal/stream"
)

func tup(key stream.Key, seq uint64, et int64) stream.Tuple {
	return stream.Tuple{Side: stream.R, Key: key, Seq: seq, EventTime: et}
}

func TestNewWindowedValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("span<=0 should panic")
			}
		}()
		NewWindowed(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("subCount<1 should panic")
			}
		}()
		NewWindowed(100, 0)
	}()
}

func TestUnboundedAddAndCounts(t *testing.T) {
	s := New()
	if s.Windowed() {
		t.Error("New() store should be unbounded")
	}
	if s.Span() != 0 {
		t.Errorf("Span = %d, want 0", s.Span())
	}
	s.Add(tup(1, 0, 10))
	s.Add(tup(1, 1, 20))
	s.Add(tup(2, 2, 30))
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.KeyCount(1) != 2 || s.KeyCount(2) != 1 || s.KeyCount(3) != 0 {
		t.Error("KeyCount wrong")
	}
	if s.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", s.Keys())
	}
}

func TestAdvanceNoopUnbounded(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 10))
	if removed := s.Advance(1 << 60); removed != 0 {
		t.Errorf("unbounded Advance removed %d, want 0", removed)
	}
	if s.Len() != 1 {
		t.Error("unbounded store must never expire")
	}
}

func TestForEachMatchOrder(t *testing.T) {
	s := New()
	for i := uint64(0); i < 5; i++ {
		s.Add(tup(7, i, int64(i)))
	}
	var seqs []uint64
	s.ForEachMatch(7, func(t stream.Tuple) { seqs = append(seqs, t.Seq) })
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("probe order broken: %v", seqs)
		}
	}
	s.ForEachMatch(99, func(stream.Tuple) { t.Error("no matches expected for key 99") })
}

func TestMatchesIsCopy(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 10))
	m := s.Matches(1)
	m[0].Seq = 99
	if s.Matches(1)[0].Seq != 0 {
		t.Error("Matches must return a copy")
	}
	if s.Matches(42) != nil {
		t.Error("Matches for absent key should be nil")
	}
}

func TestRemoveKey(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 10))
	s.Add(tup(1, 1, 20))
	s.Add(tup(2, 2, 30))
	moved := s.RemoveKey(1)
	if len(moved) != 2 {
		t.Fatalf("removed %d tuples, want 2", len(moved))
	}
	if s.Len() != 1 || s.KeyCount(1) != 0 {
		t.Errorf("after removal Len=%d KeyCount(1)=%d", s.Len(), s.KeyCount(1))
	}
	if s.RemoveKey(42) != nil {
		t.Error("removing absent key should return nil")
	}
}

func TestRemoveAddBulkRoundTrip(t *testing.T) {
	src := New()
	dst := New()
	for i := uint64(0); i < 10; i++ {
		src.Add(tup(5, i, int64(i)))
	}
	dst.AddBulk(src.RemoveKey(5))
	if dst.KeyCount(5) != 10 || src.KeyCount(5) != 0 {
		t.Errorf("migration round trip: src=%d dst=%d", src.KeyCount(5), dst.KeyCount(5))
	}
	// Probe order preserved at the target.
	var seqs []uint64
	dst.ForEachMatch(5, func(t stream.Tuple) { seqs = append(seqs, t.Seq) })
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("order broken after migration: %v", seqs)
		}
	}
}

func TestWindowedExpiry(t *testing.T) {
	s := NewWindowed(100, 4)
	if !s.Windowed() || s.Span() != 100 {
		t.Fatal("store should be windowed with span 100")
	}
	s.Add(tup(1, 0, 0))
	s.Add(tup(1, 1, 50))
	s.Add(tup(2, 2, 90))
	// now=120: cutoff=20 -> tuple at et=0 expires.
	if removed := s.Advance(120); removed != 1 {
		t.Errorf("removed %d, want 1", removed)
	}
	if s.Len() != 2 || s.KeyCount(1) != 1 {
		t.Errorf("Len=%d KeyCount(1)=%d", s.Len(), s.KeyCount(1))
	}
	// now=250: everything expires.
	if removed := s.Advance(250); removed != 2 {
		t.Errorf("removed %d, want 2", removed)
	}
	if s.Len() != 0 || s.Keys() != 0 {
		t.Errorf("store should be empty, Len=%d Keys=%d", s.Len(), s.Keys())
	}
}

func TestWindowedExpiryExactBoundary(t *testing.T) {
	s := NewWindowed(100, 1)
	s.Add(tup(1, 0, 100))
	// cutoff = 200-100 = 100; tuple at exactly the cutoff survives
	// (strictly-older semantics).
	if removed := s.Advance(200); removed != 0 {
		t.Errorf("tuple at cutoff expired, removed=%d", removed)
	}
	if removed := s.Advance(201); removed != 1 {
		t.Errorf("tuple past cutoff not expired, removed=%d", removed)
	}
}

func TestSubWindowVector(t *testing.T) {
	s := NewWindowed(100, 4) // subSpan = 25
	s.Add(tup(1, 0, 0))      // sub 0
	s.Add(tup(1, 1, 10))     // sub 0
	s.Add(tup(2, 2, 30))     // sub 1
	s.Add(tup(3, 3, 80))     // sub 3
	subs := s.SubWindows()
	want := []int{2, 1, 0, 1}
	if len(subs) != len(want) {
		t.Fatalf("subs = %v, want %v", subs, want)
	}
	for i := range want {
		if subs[i] != want[i] {
			t.Fatalf("subs = %v, want %v", subs, want)
		}
	}
	// Sum of the vector tracks admissions.
	sum := 0
	for _, c := range subs {
		sum += c
	}
	if sum != s.Len() {
		t.Errorf("sub-window sum %d != Len %d", sum, s.Len())
	}
}

func TestSubWindowHeadPopsOnAdvance(t *testing.T) {
	s := NewWindowed(100, 4) // subSpan 25
	s.Add(tup(1, 0, 0))
	s.Add(tup(2, 1, 130))
	before := len(s.SubWindows())
	s.Advance(260) // cutoff 160: first sub-windows fully expired
	after := len(s.SubWindows())
	if after >= before {
		t.Errorf("sub-window head not popped: before=%d after=%d", before, after)
	}
}

func TestSubWindowsNilForUnbounded(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 10))
	if s.SubWindows() != nil {
		t.Error("unbounded store should have nil sub-window vector")
	}
}

func TestPerKeyCountsSnapshot(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 0))
	s.Add(tup(1, 1, 0))
	s.Add(tup(2, 2, 0))
	counts := s.PerKeyCounts()
	if counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	counts[1] = 99
	if s.KeyCount(1) != 2 {
		t.Error("PerKeyCounts must be a snapshot")
	}
}

func TestForEachKey(t *testing.T) {
	s := New()
	s.Add(tup(1, 0, 0))
	s.Add(tup(2, 1, 0))
	s.Add(tup(2, 2, 0))
	got := make(map[stream.Key]int)
	s.ForEachKey(func(k stream.Key, c int) { got[k] = c })
	if len(got) != 2 || got[1] != 1 || got[2] != 2 {
		t.Errorf("ForEachKey = %v", got)
	}
}

// Property: Len always equals the sum of per-key counts, across random
// sequences of adds, removals and advances.
func TestLenConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewWindowed(1000, 5)
		now := int64(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0:
				s.RemoveKey(stream.Key(rng.Intn(10)))
			case 1:
				now += int64(rng.Intn(500))
				s.Advance(now)
			default:
				now += int64(rng.Intn(10))
				s.Add(tup(stream.Key(rng.Intn(10)), uint64(op), now))
			}
			sum := 0
			s.ForEachKey(func(_ stream.Key, c int) { sum += c })
			if sum != s.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: after Advance(now), no stored tuple is older than now - span.
func TestNoExpiredResidentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewWindowed(100, 4)
		now := int64(0)
		for op := 0; op < 200; op++ {
			now += int64(rng.Intn(20))
			s.Add(tup(stream.Key(rng.Intn(5)), uint64(op), now))
			if rng.Intn(4) == 0 {
				s.Advance(now)
				cutoff := now - 100
				ok := true
				for k := stream.Key(0); k < 5; k++ {
					s.ForEachMatch(k, func(t stream.Tuple) {
						if t.EventTime < cutoff {
							ok = false
						}
					})
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Regression: bumpSub used to append one sub-window per elapsed subSpan,
// so a single tuple after a large event-time gap (or one far-future
// outlier) grew the vector by one entry per span — millions for a
// realistic gap — and stalled the joiner. The advance must be arithmetic
// and the vector capped at subCount, the paper's fixed-size vector.
func TestBumpSubBoundedAfterTimeGap(t *testing.T) {
	s := NewWindowed(800, 8) // subSpan = 100
	s.Add(tup(1, 0, 0))
	// One tuple a million sub-spans later: the old loop materialized
	// every empty sub-window in between.
	s.Add(tup(1, 1, 100_000_000))
	subs := s.SubWindows()
	if len(subs) > 8 {
		t.Fatalf("subs grew to %d entries after a time gap, want <= 8", len(subs))
	}
	if subs[len(subs)-1] != 1 {
		t.Errorf("newest sub-window = %d, want 1", subs[len(subs)-1])
	}
	// Counting continues normally at the new position.
	s.Add(tup(1, 2, 100_000_050))
	subs = s.SubWindows()
	if subs[len(subs)-1] != 2 {
		t.Errorf("newest sub-window after follow-up = %d, want 2", subs[len(subs)-1])
	}
}

// Regression: even moderate per-tuple gaps must never grow the vector
// beyond subCount live sub-windows between Advance calls.
func TestBumpSubCapsAtSubCount(t *testing.T) {
	s := NewWindowed(800, 8)
	for i := 0; i < 100; i++ {
		s.Add(tup(1, uint64(i), int64(i)*300)) // 3 sub-spans per step
	}
	if got := len(s.SubWindows()); got > 8 {
		t.Fatalf("subs = %d entries, want <= 8", got)
	}
	// Expiry still works against the trimmed vector.
	s.Advance(100*300 + 800)
	if s.Len() != 0 {
		t.Errorf("Len = %d after advancing past every tuple, want 0", s.Len())
	}
}
