package workload

import "fastjoin/internal/stream"

// The ad-analytics workload mirrors the Photon use case the paper cites:
// joining a search-query stream with an advertisement-click stream. Both
// streams are keyed by advertisement id; popular ads dominate both queries
// and clicks, and clicks are a thinned echo of queries (not every query
// leads to a click), which the generator models with a lower click rate and
// a slightly steeper click skew (popular ads attract superlinear clicks).

// AdClicksConfig parameterizes the Photon-style workload.
type AdClicksConfig struct {
	// Ads is the number of distinct advertisement ids (the key universe).
	Ads int
	// QueryTheta and ClickTheta are the zipf exponents of the two streams.
	QueryTheta, ClickTheta float64
	// QueriesPerClick is the stream-rate ratio R:S (queries far outnumber
	// clicks; a typical click-through rate is a few percent).
	QueriesPerClick int
	// Seed drives all randomness.
	Seed int64
}

// DefaultAdClicksConfig returns the laptop-scale default configuration.
func DefaultAdClicksConfig() AdClicksConfig {
	return AdClicksConfig{
		Ads:             20000,
		QueryTheta:      1.0,
		ClickTheta:      1.2,
		QueriesPerClick: 20,
		Seed:            1,
	}
}

// QueryPayload is the payload of a search-query tuple.
type QueryPayload struct {
	QueryID uint64
	UserID  uint64
}

// ClickPayload is the payload of an ad-click tuple.
type ClickPayload struct {
	ClickID uint64
	UserID  uint64
}

// AdClicks is the generated workload. Queries are side R (stored, probed by
// clicks) and clicks are side S. Note the rate asymmetry is inverted versus
// ride-hailing: here R is the dense stream.
type AdClicks struct {
	Queries *Source
	Clicks  *Source
	// QueriesPerClick is the configured interleave ratio.
	QueriesPerClick int
}

// NewAdClicks builds the Photon-style workload.
func NewAdClicks(cfg AdClicksConfig) *AdClicks {
	if cfg.Ads <= 0 {
		panic("workload: AdClicks requires Ads > 0") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if cfg.QueriesPerClick < 1 {
		panic("workload: QueriesPerClick must be >= 1") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	permSeed := cfg.Seed ^ 0x3c6ef372
	queries := NewZipfPerm(cfg.Ads, cfg.QueryTheta, cfg.Seed+10, permSeed)
	clicks := NewZipfPerm(cfg.Ads, cfg.ClickTheta, cfg.Seed+11, permSeed)
	return &AdClicks{
		Queries: NewSource(stream.R, queries, func(key stream.Key, seq uint64) any {
			return QueryPayload{QueryID: seq, UserID: seq % 100003}
		}),
		Clicks: NewSource(stream.S, clicks, func(key stream.Key, seq uint64) any {
			return ClickPayload{ClickID: seq, UserID: seq % 100003}
		}),
		QueriesPerClick: cfg.QueriesPerClick,
	}
}

// Interleave produces a merged sequence of n tuples at the configured
// query:click ratio.
func (a *AdClicks) Interleave(n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		for i := 0; i < a.QueriesPerClick && len(out) < n; i++ {
			out = append(out, a.Queries.Next())
		}
		if len(out) < n {
			out = append(out, a.Clicks.Next())
		}
	}
	return out
}
