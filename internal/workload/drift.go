package workload

import (
	"fastjoin/internal/stream"
)

// DriftingZipf is a zipf sampler whose hot set moves over time: after every
// Period samples the rank→key permutation rotates by Step keys, so the keys
// that were hot go cold and new ones heat up. This models the paper's core
// motivation — "workloads on different processing nodes vary dynamically
// and are hard to predict" — and is the scenario where dynamic migration
// beats any static assignment (including one tuned offline on a prefix).
//
// Two DriftingZipf samplers built with the same permSeed, period and step
// drift in lockstep when sampled at the same rate (same samples-per-window
// count), so both streams of a join workload share each epoch's hot keys.
type DriftingZipf struct {
	z      *Zipf
	n      int
	period int64
	step   int
	count  int64
	offset int
}

// NewDriftingZipf returns a drifting sampler over n keys with exponent
// theta; the hot set shifts by step keys every period samples.
func NewDriftingZipf(n int, theta float64, period int64, step int, sampleSeed, permSeed int64) *DriftingZipf {
	if period <= 0 {
		panic("workload: DriftingZipf period must be positive") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if step <= 0 {
		panic("workload: DriftingZipf step must be positive") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	return &DriftingZipf{
		z:      NewZipfPerm(n, theta, sampleSeed, permSeed),
		n:      n,
		period: period,
		step:   step,
	}
}

// Sample draws one key from the current epoch's distribution.
func (d *DriftingZipf) Sample() stream.Key {
	if d.count > 0 && d.count%d.period == 0 {
		d.offset = (d.offset + d.step) % d.n
	}
	d.count++
	base := d.z.Sample()
	return stream.Key((int(base) + d.offset) % d.n)
}

// Cardinality returns the size of the key universe.
func (d *DriftingZipf) Cardinality() int { return d.n }

// Epoch returns how many drift shifts have occurred so far.
func (d *DriftingZipf) Epoch() int64 { return d.count / d.period }
