package workload

import (
	"testing"

	"fastjoin/internal/stream"
)

func hottestKey(sample func() stream.Key, n int) stream.Key {
	counts := make(map[stream.Key]int)
	for i := 0; i < n; i++ {
		counts[sample()]++
	}
	var best stream.Key
	bestC := -1
	for k, c := range counts {
		if c > bestC {
			best, bestC = k, c
		}
	}
	return best
}

func TestDriftingZipfValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewDriftingZipf(10, 1, 0, 1, 1, 2) },
		func() { NewDriftingZipf(10, 1, 100, 0, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDriftingZipfHotSetMoves(t *testing.T) {
	const n, period = 1000, 20000
	d := NewDriftingZipf(n, 1.8, period, 137, 1, 2)
	// Hottest key within the first epoch.
	first := hottestKey(d.Sample, period-1000)
	// Skip into a later epoch.
	for d.Epoch() < 3 {
		d.Sample()
	}
	third := hottestKey(d.Sample, period-1000)
	if first == third {
		t.Errorf("hot key did not move across epochs: %d", first)
	}
	// The shift is exactly the configured step (mod n), twice applied... at
	// minimum the distance is a multiple of the step.
	diff := (int(third) - int(first)%n + n) % n
	if diff%137 != 0 {
		t.Errorf("hot key moved by %d, not a multiple of the step", diff)
	}
}

func TestDriftingZipfKeysInRange(t *testing.T) {
	d := NewDriftingZipf(50, 1.0, 10, 7, 3, 4)
	for i := 0; i < 5000; i++ {
		if k := d.Sample(); k >= 50 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if d.Cardinality() != 50 {
		t.Errorf("Cardinality = %d", d.Cardinality())
	}
}

func TestDriftingZipfLockstep(t *testing.T) {
	// Two samplers sharing permSeed/period/step agree on each epoch's hot
	// key when sampled at the same rate.
	a := NewDriftingZipf(500, 2.0, 10000, 91, 1, 77)
	b := NewDriftingZipf(500, 2.0, 10000, 91, 2, 77)
	hotA := hottestKey(a.Sample, 9000)
	hotB := hottestKey(b.Sample, 9000)
	if hotA != hotB {
		t.Errorf("lockstep broken in epoch 0: %d vs %d", hotA, hotB)
	}
}

func TestDriftingZipfEpochCounter(t *testing.T) {
	d := NewDriftingZipf(10, 1, 100, 1, 1, 2)
	if d.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", d.Epoch())
	}
	for i := 0; i < 250; i++ {
		d.Sample()
	}
	if d.Epoch() != 2 {
		t.Errorf("epoch after 250 samples = %d, want 2", d.Epoch())
	}
}
