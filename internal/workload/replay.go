package workload

import (
	"context"
	"time"

	"fastjoin/internal/stream"
)

// Replayer paces tuple emission at a target rate, standing in for the
// KafkaSpout rate control described in the paper's implementation section.
// Pacing is done in small batches (one batch per pacing tick) so rates up to
// millions of tuples per second are achievable without a per-tuple timer.
type Replayer struct {
	next func() stream.Tuple
	rate float64 // tuples per second; <= 0 means unlimited
	tick time.Duration
}

// NewReplayer wraps a tuple generator function with rate control.
// tuplesPerSec <= 0 disables pacing.
func NewReplayer(next func() stream.Tuple, tuplesPerSec float64) *Replayer {
	if next == nil {
		panic("workload: NewReplayer requires a generator") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	return &Replayer{next: next, rate: tuplesPerSec, tick: 5 * time.Millisecond}
}

// NewPairReplayer builds a Replayer over the interleaved merge of a Pair.
func NewPairReplayer(p Pair, tuplesPerSec float64) *Replayer {
	if p.SPerR < 1 {
		panic("workload: Pair.SPerR must be >= 1") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	i := 0
	next := func() stream.Tuple {
		var t stream.Tuple
		if i%(p.SPerR+1) == 0 {
			t = p.R.Next()
		} else {
			t = p.S.Next()
		}
		i++
		return t
	}
	return &Replayer{next: next, rate: tuplesPerSec, tick: 5 * time.Millisecond}
}

// Run emits up to n tuples (n <= 0 means until ctx is done) through emit.
// It stops early when ctx is cancelled or emit returns false, and returns
// the number of tuples emitted.
func (r *Replayer) Run(ctx context.Context, n int, emit func(stream.Tuple) bool) int {
	emitted := 0
	perTick := 1 << 62
	var ticker *time.Ticker
	if r.rate > 0 {
		perTick = int(r.rate * r.tick.Seconds())
		if perTick < 1 {
			perTick = 1
		}
		ticker = time.NewTicker(r.tick)
		defer ticker.Stop()
	}
	for {
		// Emit one pacing batch.
		for i := 0; i < perTick; i++ {
			if n > 0 && emitted >= n {
				return emitted
			}
			select {
			case <-ctx.Done():
				return emitted
			default:
			}
			if !emit(r.next()) {
				return emitted
			}
			emitted++
		}
		if ticker == nil {
			// Unlimited rate: loop again immediately; ctx and n are
			// checked at the top of the batch loop.
			continue
		}
		select {
		case <-ctx.Done():
			return emitted
		case <-ticker.C:
		}
	}
}
