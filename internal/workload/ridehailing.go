package workload

import "fastjoin/internal/stream"

// The ride-hailing workload stands in for the DiDi GAIA dataset the paper
// evaluates on (Chengdu, November 2016): a passenger-order stream R and a
// taxi-track stream S joined on location. Locations are cells of a spatial
// grid; both streams share one popularity law over cells (hot downtown
// blocks are hot for both orders and taxis) calibrated to the skew the paper
// reports in Fig. 1 — about 20% of locations hold 80% of the orders and
// about 24% of locations hold 80% of the tracks.

// Chengdu bounding box used to synthesize GPS coordinates for payloads.
const (
	chengduLatMin = 30.55
	chengduLatMax = 30.78
	chengduLngMin = 103.93
	chengduLngMax = 104.21
)

// RideHailingConfig parameterizes the synthetic DiDi-style workload.
// The zero value is not usable; call DefaultRideHailingConfig.
type RideHailingConfig struct {
	// GridWidth and GridHeight give the number of location cells; the join
	// key of both streams is the cell id.
	GridWidth, GridHeight int
	// OrderTheta and TrackTheta are the zipf exponents of the two streams.
	// Set to < 0 to auto-calibrate to the paper's reported skew (20%/80%
	// for orders, 24%/80% for tracks).
	OrderTheta, TrackTheta float64
	// TracksPerOrder is the stream-rate ratio S:R. The DiDi dataset has
	// ~3e9 track records against 7e6 orders; the default uses a smaller
	// ratio so that both streams exercise storage and probing.
	TracksPerOrder int
	// Fleet is the number of distinct taxi ids synthesized in payloads.
	Fleet int
	// Seed drives all randomness. Two configs with the same Seed share
	// the cell-popularity permutation (which cells are hot).
	Seed int64
	// Variant decorrelates the sampling of multiple generator instances
	// that share a Seed (and therefore hot cells) — used to run several
	// parallel ingestion tasks over one logical workload.
	Variant int
}

// DefaultRideHailingConfig returns the laptop-scale default configuration.
func DefaultRideHailingConfig() RideHailingConfig {
	return RideHailingConfig{
		GridWidth:      100,
		GridHeight:     100,
		OrderTheta:     -1, // auto-calibrate
		TrackTheta:     -1, // auto-calibrate
		TracksPerOrder: 4,
		Fleet:          5000,
		Seed:           1,
	}
}

// OrderPayload is the payload of a passenger-order tuple.
type OrderPayload struct {
	OrderID uint64
	Lat     float64
	Lng     float64
}

// TrackPayload is the payload of a taxi-track tuple.
type TrackPayload struct {
	TaxiID uint64
	Lat    float64
	Lng    float64
}

// RideHailing is the generated workload: the order source (side R), the
// track source (side S) and the calibrated skew parameters.
type RideHailing struct {
	Pair
	Cells      int
	OrderTheta float64
	TrackTheta float64
}

// NewRideHailing builds the synthetic DiDi-style workload.
func NewRideHailing(cfg RideHailingConfig) *RideHailing {
	if cfg.GridWidth <= 0 || cfg.GridHeight <= 0 {
		panic("workload: ride-hailing grid dimensions must be positive") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if cfg.TracksPerOrder < 1 {
		panic("workload: TracksPerOrder must be >= 1") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if cfg.Fleet < 1 {
		panic("workload: Fleet must be >= 1") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	cells := cfg.GridWidth * cfg.GridHeight
	orderTheta := cfg.OrderTheta
	if orderTheta < 0 {
		orderTheta = CalibrateTheta(cells, 0.20, 0.80)
	}
	trackTheta := cfg.TrackTheta
	if trackTheta < 0 {
		trackTheta = CalibrateTheta(cells, 0.24, 0.80)
	}
	// Both streams share the popularity permutation (permSeed) so the same
	// cells are hot in both, but sample independently. The Variant shifts
	// only the sampling seeds, never the permutation.
	permSeed := cfg.Seed ^ 0x6a09e667
	sampleSeed := cfg.Seed + int64(cfg.Variant)*7919
	orders := NewZipfPerm(cells, orderTheta, sampleSeed+1, permSeed)
	tracks := NewZipfPerm(cells, trackTheta, sampleSeed+2, permSeed)

	grid := gridGeo{w: cfg.GridWidth, h: cfg.GridHeight}
	rh := &RideHailing{
		Cells:      cells,
		OrderTheta: orderTheta,
		TrackTheta: trackTheta,
	}
	rh.Pair = Pair{
		R: NewSource(stream.R, orders, func(key stream.Key, seq uint64) any {
			lat, lng := grid.center(key)
			return OrderPayload{OrderID: seq, Lat: lat, Lng: lng}
		}),
		S: NewSource(stream.S, tracks, func(key stream.Key, seq uint64) any {
			lat, lng := grid.center(key)
			return TrackPayload{TaxiID: seq % uint64(cfg.Fleet), Lat: lat, Lng: lng}
		}),
		SPerR: cfg.TracksPerOrder,
	}
	return rh
}

// gridGeo maps cell ids onto the Chengdu bounding box.
type gridGeo struct{ w, h int }

// center returns the coordinates of a cell's center point.
func (g gridGeo) center(cell stream.Key) (lat, lng float64) {
	x := int(cell) % g.w
	y := (int(cell) / g.w) % g.h
	lat = chengduLatMin + (chengduLatMax-chengduLatMin)*(float64(y)+0.5)/float64(g.h)
	lng = chengduLngMin + (chengduLngMax-chengduLngMin)*(float64(x)+0.5)/float64(g.w)
	return lat, lng
}
