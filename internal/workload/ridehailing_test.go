package workload

import (
	"context"
	"testing"
	"time"

	"fastjoin/internal/stream"
)

func TestRideHailingConfigValidation(t *testing.T) {
	cases := []func(*RideHailingConfig){
		func(c *RideHailingConfig) { c.GridWidth = 0 },
		func(c *RideHailingConfig) { c.GridHeight = -1 },
		func(c *RideHailingConfig) { c.TracksPerOrder = 0 },
		func(c *RideHailingConfig) { c.Fleet = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultRideHailingConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewRideHailing(cfg)
		}()
	}
}

func TestRideHailingSidesAndPayloads(t *testing.T) {
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 20, 20
	rh := NewRideHailing(cfg)
	order := rh.R.Next()
	if order.Side != stream.R {
		t.Errorf("order side = %v, want R", order.Side)
	}
	op, ok := order.Payload.(OrderPayload)
	if !ok {
		t.Fatalf("order payload type %T", order.Payload)
	}
	if op.Lat < chengduLatMin || op.Lat > chengduLatMax {
		t.Errorf("order lat %f outside Chengdu box", op.Lat)
	}
	if op.Lng < chengduLngMin || op.Lng > chengduLngMax {
		t.Errorf("order lng %f outside Chengdu box", op.Lng)
	}

	track := rh.S.Next()
	if track.Side != stream.S {
		t.Errorf("track side = %v, want S", track.Side)
	}
	tp, ok := track.Payload.(TrackPayload)
	if !ok {
		t.Fatalf("track payload type %T", track.Payload)
	}
	if tp.TaxiID >= uint64(cfg.Fleet) {
		t.Errorf("taxi id %d exceeds fleet %d", tp.TaxiID, cfg.Fleet)
	}
}

func TestRideHailingKeysWithinGrid(t *testing.T) {
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 10, 10
	rh := NewRideHailing(cfg)
	if rh.Cells != 100 {
		t.Fatalf("Cells = %d, want 100", rh.Cells)
	}
	for i := 0; i < 1000; i++ {
		if k := rh.R.Next().Key; k >= 100 {
			t.Fatalf("order key %d out of grid", k)
		}
		if k := rh.S.Next().Key; k >= 100 {
			t.Fatalf("track key %d out of grid", k)
		}
	}
}

func TestRideHailingSharedHotCells(t *testing.T) {
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 30, 30
	rh := NewRideHailing(cfg)
	hottest := func(src *Source) stream.Key {
		counts := make(map[stream.Key]int)
		for i := 0; i < 30000; i++ {
			counts[src.Next().Key]++
		}
		var best stream.Key
		bestC := -1
		for k, c := range counts {
			if c > bestC {
				best, bestC = k, c
			}
		}
		return best
	}
	if hottest(rh.R) != hottest(rh.S) {
		t.Error("orders and tracks must share the hottest cell")
	}
}

func TestRideHailingCalibratedThetas(t *testing.T) {
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 40, 40
	rh := NewRideHailing(cfg)
	if rh.OrderTheta <= 0 || rh.TrackTheta <= 0 {
		t.Errorf("thetas not calibrated: %f %f", rh.OrderTheta, rh.TrackTheta)
	}
	// Orders (20% -> 80%) are more skewed than tracks (24% -> 80%).
	if rh.OrderTheta <= rh.TrackTheta {
		t.Errorf("order theta %f should exceed track theta %f", rh.OrderTheta, rh.TrackTheta)
	}
}

func TestRideHailingExplicitThetas(t *testing.T) {
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 10, 10
	cfg.OrderTheta, cfg.TrackTheta = 0.5, 0.7
	rh := NewRideHailing(cfg)
	if rh.OrderTheta != 0.5 || rh.TrackTheta != 0.7 {
		t.Errorf("explicit thetas not honored: %f %f", rh.OrderTheta, rh.TrackTheta)
	}
}

func TestGridGeoCenters(t *testing.T) {
	g := gridGeo{w: 10, h: 10}
	lat0, lng0 := g.center(0)
	lat99, lng99 := g.center(99)
	if lat0 >= lat99 {
		t.Errorf("cell 0 lat %f should be south of cell 99 lat %f", lat0, lat99)
	}
	if lng0 >= lng99 {
		t.Errorf("cell 0 lng %f should be west of cell 99 lng %f", lng0, lng99)
	}
}

func TestAdClicksValidation(t *testing.T) {
	cfg := DefaultAdClicksConfig()
	cfg.Ads = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ads=0 should panic")
			}
		}()
		NewAdClicks(cfg)
	}()
	cfg = DefaultAdClicksConfig()
	cfg.QueriesPerClick = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("QueriesPerClick=0 should panic")
			}
		}()
		NewAdClicks(cfg)
	}()
}

func TestAdClicksSidesAndRatio(t *testing.T) {
	cfg := DefaultAdClicksConfig()
	cfg.Ads = 100
	cfg.QueriesPerClick = 4
	ac := NewAdClicks(cfg)
	tuples := ac.Interleave(50)
	var q, c int
	for _, tup := range tuples {
		switch tup.Side {
		case stream.R:
			q++
			if _, ok := tup.Payload.(QueryPayload); !ok {
				t.Fatalf("query payload type %T", tup.Payload)
			}
		case stream.S:
			c++
			if _, ok := tup.Payload.(ClickPayload); !ok {
				t.Fatalf("click payload type %T", tup.Payload)
			}
		}
	}
	if q != 40 || c != 10 {
		t.Errorf("queries=%d clicks=%d, want 40/10", q, c)
	}
}

func TestAdClicksSharedHotAd(t *testing.T) {
	cfg := DefaultAdClicksConfig()
	cfg.Ads = 500
	ac := NewAdClicks(cfg)
	hottest := func(src *Source) stream.Key {
		counts := make(map[stream.Key]int)
		for i := 0; i < 30000; i++ {
			counts[src.Next().Key]++
		}
		var best stream.Key
		bestC := -1
		for k, cnt := range counts {
			if cnt > bestC {
				best, bestC = k, cnt
			}
		}
		return best
	}
	if hottest(ac.Queries) != hottest(ac.Clicks) {
		t.Error("queries and clicks must share the hottest ad")
	}
}

func TestReplayerCountLimit(t *testing.T) {
	src := NewSource(stream.R, NewUniform(10, 1), nil)
	r := NewReplayer(src.Next, 0)
	var got []stream.Tuple
	n := r.Run(context.Background(), 25, func(t stream.Tuple) bool {
		got = append(got, t)
		return true
	})
	if n != 25 || len(got) != 25 {
		t.Errorf("emitted %d/%d, want 25", n, len(got))
	}
}

func TestReplayerEmitStops(t *testing.T) {
	src := NewSource(stream.R, NewUniform(10, 1), nil)
	r := NewReplayer(src.Next, 0)
	count := 0
	n := r.Run(context.Background(), 1000, func(stream.Tuple) bool {
		count++
		return count < 5
	})
	if n != 4 {
		t.Errorf("emitted %d, want 4 (emit returned false on 5th)", n)
	}
}

func TestReplayerContextCancel(t *testing.T) {
	src := NewSource(stream.R, NewUniform(10, 1), nil)
	r := NewReplayer(src.Next, 100) // slow rate so cancellation lands mid-run
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan int)
	go func() { done <- r.Run(ctx, 0, func(stream.Tuple) bool { return true }) }()
	select {
	case n := <-done:
		if n <= 0 {
			t.Errorf("emitted %d, want > 0", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("replayer did not stop on context cancellation")
	}
}

func TestReplayerApproximateRate(t *testing.T) {
	src := NewSource(stream.R, NewUniform(10, 1), nil)
	r := NewReplayer(src.Next, 2000)
	start := time.Now()
	r.Run(context.Background(), 200, func(stream.Tuple) bool { return true })
	elapsed := time.Since(start)
	// 200 tuples at 2000/s should take ~100ms; allow generous slack.
	if elapsed < 50*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Errorf("200 tuples at 2000/s took %v, want ~100ms", elapsed)
	}
}

func TestReplayerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil generator should panic")
		}
	}()
	NewReplayer(nil, 0)
}

func TestPairReplayerRatio(t *testing.T) {
	p := Pair{
		R:     NewSource(stream.R, NewUniform(5, 1), nil),
		S:     NewSource(stream.S, NewUniform(5, 2), nil),
		SPerR: 2,
	}
	r := NewPairReplayer(p, 0)
	var rc, sc int
	r.Run(context.Background(), 30, func(t stream.Tuple) bool {
		if t.Side == stream.R {
			rc++
		} else {
			sc++
		}
		return true
	})
	if rc != 10 || sc != 20 {
		t.Errorf("R=%d S=%d, want 10/20", rc, sc)
	}
}

func TestPairReplayerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SPerR=0 should panic")
		}
	}()
	NewPairReplayer(Pair{}, 0)
}
