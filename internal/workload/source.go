package workload

import (
	"math/rand"

	"fastjoin/internal/stream"
)

// Uniform samples keys uniformly from [0, n). It is Zipf with theta 0 but
// cheaper: O(1) per sample with no precomputed tables.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform returns a uniform sampler over n keys.
func NewUniform(n int, seed int64) *Uniform {
	if n <= 0 {
		panic("workload: Uniform requires n > 0") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Sample draws one key.
func (u *Uniform) Sample() stream.Key { return stream.Key(u.rng.Intn(u.n)) }

// Cardinality returns the number of distinct keys.
func (u *Uniform) Cardinality() int { return u.n }

// PayloadFunc builds the payload of the next tuple given its key and
// sequence number. A nil PayloadFunc produces nil payloads.
type PayloadFunc func(key stream.Key, seq uint64) any

// Source produces the tuples of one input stream: keys come from a Sampler,
// sequence numbers increase from 0, and event time is stamped at generation.
// A Source is not safe for concurrent use; each spout task owns one.
type Source struct {
	side     stream.Side
	sampler  Sampler
	payload  PayloadFunc
	seq      uint64
	stride   uint64
	produced uint64
	clock    func() int64
}

// NewSource returns a tuple source for the given side.
func NewSource(side stream.Side, sampler Sampler, payload PayloadFunc) *Source {
	if !side.Valid() {
		panic("workload: invalid side") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if sampler == nil {
		panic("workload: nil sampler") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	return &Source{side: side, sampler: sampler, payload: payload, stride: 1, clock: stream.Now}
}

// WithSeqStride makes the source emit sequence numbers offset, offset+stride,
// offset+2*stride, ... so several parallel sources of the same side can
// produce disjoint sequence spaces (source i of P uses offset i, stride P).
// It returns the source for chaining.
func (s *Source) WithSeqStride(offset, stride uint64) *Source {
	if stride == 0 {
		panic("workload: stride must be positive") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	s.seq = offset
	s.stride = stride
	return s
}

// WithClock overrides the event-time clock (tests use a fake clock).
// It returns the source for chaining.
func (s *Source) WithClock(clock func() int64) *Source {
	s.clock = clock
	return s
}

// Side returns which stream this source feeds.
func (s *Source) Side() stream.Side { return s.side }

// Next produces the next tuple.
func (s *Source) Next() stream.Tuple {
	key := s.sampler.Sample()
	t := stream.Tuple{
		Side:      s.side,
		Key:       key,
		Seq:       s.seq,
		EventTime: s.clock(),
	}
	if s.payload != nil {
		t.Payload = s.payload(key, s.seq)
	}
	s.seq += s.stride
	s.produced++
	return t
}

// Produced returns how many tuples the source has emitted so far.
func (s *Source) Produced() uint64 { return s.produced }

// Take drains n tuples into a slice; a convenience for tests and examples.
func (s *Source) Take(n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Pair bundles the two sources of a two-stream workload along with the
// interleaving ratio used when replaying them as a single merged stream.
type Pair struct {
	R *Source
	S *Source
	// SPerR is how many S tuples are emitted per R tuple when interleaving
	// (the DiDi track stream is far denser than the order stream).
	SPerR int
}

// Interleave produces a merged sequence of n tuples alternating between the
// two sources at the configured ratio (one R tuple, then SPerR S tuples).
func (p Pair) Interleave(n int) []stream.Tuple {
	if p.SPerR < 1 {
		panic("workload: Pair.SPerR must be >= 1") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		out = append(out, p.R.Next())
		for i := 0; i < p.SPerR && len(out) < n; i++ {
			out = append(out, p.S.Next())
		}
	}
	return out
}
