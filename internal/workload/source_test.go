package workload

import (
	"testing"

	"fastjoin/internal/stream"
)

func TestUniformValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewUniform(0) should panic")
		}
	}()
	NewUniform(0, 1)
}

func TestUniformRangeAndBalance(t *testing.T) {
	const n, samples = 10, 100000
	u := NewUniform(n, 1)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		k := u.Sample()
		if k >= n {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	for i, c := range counts {
		if c < samples/n*8/10 || c > samples/n*12/10 {
			t.Errorf("key %d count %d far from uniform %d", i, c, samples/n)
		}
	}
	if u.Cardinality() != n {
		t.Errorf("Cardinality = %d, want %d", u.Cardinality(), n)
	}
}

func TestSourceSequencing(t *testing.T) {
	src := NewSource(stream.R, NewUniform(10, 1), nil)
	for i := uint64(0); i < 5; i++ {
		tup := src.Next()
		if tup.Seq != i {
			t.Errorf("seq = %d, want %d", tup.Seq, i)
		}
		if tup.Side != stream.R {
			t.Errorf("side = %v, want R", tup.Side)
		}
		if tup.EventTime == 0 {
			t.Error("event time not stamped")
		}
	}
	if src.Produced() != 5 {
		t.Errorf("Produced = %d, want 5", src.Produced())
	}
}

func TestSourcePayload(t *testing.T) {
	src := NewSource(stream.S, NewUniform(10, 1), func(key stream.Key, seq uint64) any {
		return seq * 2
	})
	tup := src.Next()
	if tup.Payload != any(uint64(0)) {
		t.Errorf("payload = %v, want 0", tup.Payload)
	}
	tup = src.Next()
	if tup.Payload != any(uint64(2)) {
		t.Errorf("payload = %v, want 2", tup.Payload)
	}
}

func TestSourceWithClock(t *testing.T) {
	fake := int64(12345)
	src := NewSource(stream.R, NewUniform(3, 1), nil).WithClock(func() int64 { return fake })
	if got := src.Next().EventTime; got != 12345 {
		t.Errorf("event time = %d, want 12345", got)
	}
}

func TestSourceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid side should panic")
		}
	}()
	NewSource(stream.Side(9), NewUniform(3, 1), nil)
}

func TestSourceNilSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sampler should panic")
		}
	}()
	NewSource(stream.R, nil, nil)
}

func TestSourceTake(t *testing.T) {
	src := NewSource(stream.R, NewUniform(5, 1), nil)
	tuples := src.Take(10)
	if len(tuples) != 10 {
		t.Fatalf("len = %d, want 10", len(tuples))
	}
	for i, tup := range tuples {
		if tup.Seq != uint64(i) {
			t.Errorf("tuple %d seq = %d", i, tup.Seq)
		}
	}
}

func TestPairInterleaveRatio(t *testing.T) {
	p := Pair{
		R:     NewSource(stream.R, NewUniform(5, 1), nil),
		S:     NewSource(stream.S, NewUniform(5, 2), nil),
		SPerR: 3,
	}
	tuples := p.Interleave(40)
	if len(tuples) != 40 {
		t.Fatalf("len = %d, want 40", len(tuples))
	}
	var r, s int
	for _, tup := range tuples {
		if tup.Side == stream.R {
			r++
		} else {
			s++
		}
	}
	if r != 10 || s != 30 {
		t.Errorf("r=%d s=%d, want 10/30", r, s)
	}
}

func TestPairInterleaveValidation(t *testing.T) {
	p := Pair{
		R: NewSource(stream.R, NewUniform(5, 1), nil),
		S: NewSource(stream.S, NewUniform(5, 2), nil),
	}
	defer func() {
		if recover() == nil {
			t.Error("SPerR=0 should panic")
		}
	}()
	p.Interleave(10)
}
