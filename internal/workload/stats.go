package workload

import (
	"fmt"
	"sort"

	"fastjoin/internal/stream"
)

// Distribution accumulates empirical key frequencies. The fastjoin-gen tool
// uses it to print the skew statistics of Fig. 1(a)/(b): what fraction of
// keys (locations) carries what fraction of tuples (orders/tracks).
type Distribution struct {
	counts map[stream.Key]int64
	total  int64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[stream.Key]int64)}
}

// Observe records one occurrence of key.
func (d *Distribution) Observe(key stream.Key) {
	d.counts[key]++
	d.total++
}

// ObserveTuples records the keys of all tuples.
func (d *Distribution) ObserveTuples(tuples []stream.Tuple) {
	for _, t := range tuples {
		d.Observe(t.Key)
	}
}

// Total returns the number of observations.
func (d *Distribution) Total() int64 { return d.total }

// DistinctKeys returns the number of distinct keys observed.
func (d *Distribution) DistinctKeys() int { return len(d.counts) }

// MeanTuplesPerKey returns c = |tuples| / |keys| (the paper's scaling-gain
// parameter from Eq. 13; the DiDi order stream has c ≈ 14).
func (d *Distribution) MeanTuplesPerKey() float64 {
	if len(d.counts) == 0 {
		return 0
	}
	return float64(d.total) / float64(len(d.counts))
}

// sortedCounts returns the per-key counts in descending order.
func (d *Distribution) sortedCounts() []int64 {
	out := make([]int64, 0, len(d.counts))
	for _, c := range d.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// TopShare returns the fraction of observations carried by the hottest
// fraction p of distinct keys (0 < p <= 1).
func (d *Distribution) TopShare(p float64) float64 {
	if p <= 0 || p > 1 {
		panic("workload: TopShare p must be in (0, 1]") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if d.total == 0 {
		return 0
	}
	counts := d.sortedCounts()
	k := int(float64(len(counts)) * p)
	if k < 1 {
		k = 1
	}
	var sum int64
	for _, c := range counts[:k] {
		sum += c
	}
	return float64(sum) / float64(d.total)
}

// KeysForMass returns the smallest fraction of distinct keys whose combined
// observations reach mass fraction m. Fig. 1(a) states ~20% of locations
// hold 80% of passenger orders: KeysForMass(0.8) ≈ 0.20.
func (d *Distribution) KeysForMass(m float64) float64 {
	if m <= 0 || m > 1 {
		panic("workload: KeysForMass m must be in (0, 1]") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if d.total == 0 {
		return 0
	}
	counts := d.sortedCounts()
	target := int64(m * float64(d.total))
	var sum int64
	for i, c := range counts {
		sum += c
		if sum >= target {
			return float64(i+1) / float64(len(counts))
		}
	}
	return 1
}

// CDFPoint is one point of the key-frequency CDF: the hottest KeyFrac of
// keys holds MassFrac of the observations.
type CDFPoint struct {
	KeyFrac  float64 `json:"key_frac"`
	MassFrac float64 `json:"mass_frac"`
}

// CDF returns n evenly spaced points of the frequency CDF, hottest first.
func (d *Distribution) CDF(n int) []CDFPoint {
	if n < 2 {
		panic("workload: CDF requires n >= 2") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	counts := d.sortedCounts()
	if len(counts) == 0 || d.total == 0 {
		return nil
	}
	// Prefix sums over the sorted counts.
	prefix := make([]int64, len(counts)+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
	}
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		k := int(frac * float64(len(counts)))
		out[i] = CDFPoint{
			KeyFrac:  float64(k) / float64(len(counts)),
			MassFrac: float64(prefix[k]) / float64(d.total),
		}
	}
	return out
}

// String summarizes the distribution in the terms the paper uses.
func (d *Distribution) String() string {
	return fmt.Sprintf(
		"keys=%d tuples=%d c=%.1f top20%%=%.1f%% keysFor80%%=%.1f%%",
		d.DistinctKeys(), d.Total(), d.MeanTuplesPerKey(),
		d.TopShare(0.2)*100, d.KeysForMass(0.8)*100,
	)
}
