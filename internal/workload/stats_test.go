package workload

import (
	"math"
	"strings"
	"testing"

	"fastjoin/internal/stream"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution()
	if d.Total() != 0 || d.DistinctKeys() != 0 || d.MeanTuplesPerKey() != 0 {
		t.Error("empty distribution should report zeros")
	}
	for i := 0; i < 10; i++ {
		d.Observe(1)
	}
	d.Observe(2)
	if d.Total() != 11 || d.DistinctKeys() != 2 {
		t.Errorf("total=%d distinct=%d, want 11/2", d.Total(), d.DistinctKeys())
	}
	if got := d.MeanTuplesPerKey(); got != 5.5 {
		t.Errorf("c = %f, want 5.5", got)
	}
}

func TestDistributionObserveTuples(t *testing.T) {
	d := NewDistribution()
	d.ObserveTuples([]stream.Tuple{{Key: 1}, {Key: 1}, {Key: 2}})
	if d.Total() != 3 || d.DistinctKeys() != 2 {
		t.Errorf("total=%d distinct=%d", d.Total(), d.DistinctKeys())
	}
}

func TestTopShare(t *testing.T) {
	d := NewDistribution()
	// 10 keys: key 0 has 91 observations, keys 1..9 have 1 each.
	for i := 0; i < 91; i++ {
		d.Observe(0)
	}
	for k := stream.Key(1); k < 10; k++ {
		d.Observe(k)
	}
	if got := d.TopShare(0.1); got != 0.91 {
		t.Errorf("TopShare(0.1) = %f, want 0.91", got)
	}
	if got := d.TopShare(1.0); got != 1.0 {
		t.Errorf("TopShare(1.0) = %f, want 1", got)
	}
}

func TestKeysForMass(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 80; i++ {
		d.Observe(0)
	}
	for i := 0; i < 20; i++ {
		d.Observe(stream.Key(1 + i%4))
	}
	// Key 0 alone covers 80% of mass -> 1 of 5 keys = 0.2.
	if got := d.KeysForMass(0.8); got != 0.2 {
		t.Errorf("KeysForMass(0.8) = %f, want 0.2", got)
	}
	if got := d.KeysForMass(1.0); got != 1.0 {
		t.Errorf("KeysForMass(1.0) = %f, want 1", got)
	}
}

func TestTopShareKeysForMassDuality(t *testing.T) {
	// TopShare(KeysForMass(m)) >= m for any observed distribution.
	z := NewZipf(500, 1.2, 9)
	d := NewDistribution()
	for i := 0; i < 50000; i++ {
		d.Observe(z.Sample())
	}
	for _, m := range []float64{0.5, 0.8, 0.95} {
		kf := d.KeysForMass(m)
		if got := d.TopShare(kf); got < m-1e-9 {
			t.Errorf("TopShare(KeysForMass(%f)=%f) = %f < %f", m, kf, got, m)
		}
	}
}

func TestStatsValidation(t *testing.T) {
	d := NewDistribution()
	d.Observe(1)
	for _, f := range []func(){
		func() { d.TopShare(0) },
		func() { d.TopShare(1.5) },
		func() { d.KeysForMass(0) },
		func() { d.KeysForMass(2) },
		func() { d.CDF(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid argument")
				}
			}()
			f()
		}()
	}
}

func TestCDFShape(t *testing.T) {
	z := NewZipf(200, 1.0, 4)
	d := NewDistribution()
	for i := 0; i < 20000; i++ {
		d.Observe(z.Sample())
	}
	cdf := d.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("len = %d, want 11", len(cdf))
	}
	if cdf[0].MassFrac != 0 {
		t.Errorf("CDF must start at 0, got %f", cdf[0].MassFrac)
	}
	if math.Abs(cdf[10].MassFrac-1) > 1e-9 {
		t.Errorf("CDF must end at 1, got %f", cdf[10].MassFrac)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].MassFrac < cdf[i-1].MassFrac {
			t.Errorf("CDF not monotone at %d", i)
		}
		// Concavity of a sorted-descending CDF: each marginal contribution
		// shrinks, so mass grows at least as fast as keys early on.
		if cdf[i].MassFrac < cdf[i].KeyFrac-1e-9 {
			t.Errorf("CDF below diagonal at %d: key=%f mass=%f", i, cdf[i].KeyFrac, cdf[i].MassFrac)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	d := NewDistribution()
	if got := d.CDF(5); got != nil {
		t.Errorf("empty CDF = %v, want nil", got)
	}
}

func TestDistributionString(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 100; i++ {
		d.Observe(stream.Key(i % 10))
	}
	s := d.String()
	for _, want := range []string{"keys=10", "tuples=100", "c=10.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestRideHailingSkewMatchesPaper(t *testing.T) {
	// Fig. 1(a): ~20% of locations hold ~80% of orders.
	// Fig. 1(b): ~24% of locations hold ~80% of tracks.
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 50, 50
	rh := NewRideHailing(cfg)

	check := func(name string, src *Source, wantKeyFrac float64) {
		t.Helper()
		d := NewDistribution()
		for i := 0; i < 200000; i++ {
			d.Observe(src.Next().Key)
		}
		got := d.KeysForMass(0.8)
		if math.Abs(got-wantKeyFrac) > 0.05 {
			t.Errorf("%s: keys for 80%% mass = %f, want ~%f", name, got, wantKeyFrac)
		}
	}
	check("orders", rh.R, 0.20)
	check("tracks", rh.S, 0.24)
}
