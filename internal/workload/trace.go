package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fastjoin/internal/stream"
)

// Trace I/O: persist and replay tuple streams as CSV, so users who do have
// access to real datasets (e.g. the DiDi GAIA records the paper uses) can
// convert them once and feed them to the system, and so experiments can be
// archived and replayed bit-for-bit.
//
// Format, one tuple per row:
//
//	side,key,seq,event_time_ns
//
// where side is "R" or "S". Payloads are not persisted (the join operates
// on keys; payloads are application-specific).

// traceHeader is the expected first row.
var traceHeader = []string{"side", "key", "seq", "event_time_ns"}

// WriteTrace writes tuples as CSV, including the header row.
func WriteTrace(w io.Writer, tuples []stream.Tuple) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	row := make([]string, 4)
	for _, t := range tuples {
		if !t.Side.Valid() {
			return fmt.Errorf("workload: tuple %v has invalid side", t)
		}
		row[0] = t.Side.String()
		row[1] = strconv.FormatUint(t.Key, 10)
		row[2] = strconv.FormatUint(t.Seq, 10)
		row[3] = strconv.FormatInt(t.EventTime, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceReader streams tuples from a CSV trace.
type TraceReader struct {
	cr   *csv.Reader
	line int
}

// NewTraceReader wraps a CSV trace, validating the header row.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace header: %w", err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("workload: trace header %v, want %v", header, traceHeader)
		}
	}
	return &TraceReader{cr: cr, line: 1}, nil
}

// Next returns the next tuple; io.EOF signals the end of the trace.
func (tr *TraceReader) Next() (stream.Tuple, error) {
	row, err := tr.cr.Read()
	if err != nil {
		if err == io.EOF {
			return stream.Tuple{}, io.EOF
		}
		return stream.Tuple{}, fmt.Errorf("workload: read trace: %w", err)
	}
	tr.line++
	var t stream.Tuple
	switch row[0] {
	case "R":
		t.Side = stream.R
	case "S":
		t.Side = stream.S
	default:
		return stream.Tuple{}, fmt.Errorf("workload: trace line %d: bad side %q", tr.line, row[0])
	}
	if t.Key, err = strconv.ParseUint(row[1], 10, 64); err != nil {
		return stream.Tuple{}, fmt.Errorf("workload: trace line %d: bad key: %w", tr.line, err)
	}
	if t.Seq, err = strconv.ParseUint(row[2], 10, 64); err != nil {
		return stream.Tuple{}, fmt.Errorf("workload: trace line %d: bad seq: %w", tr.line, err)
	}
	if t.EventTime, err = strconv.ParseInt(row[3], 10, 64); err != nil {
		return stream.Tuple{}, fmt.Errorf("workload: trace line %d: bad event time: %w", tr.line, err)
	}
	return t, nil
}

// ReadTrace loads a whole trace into memory.
func ReadTrace(r io.Reader) ([]stream.Tuple, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	var out []stream.Tuple
	for {
		t, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// TraceSource adapts a TraceReader to a pull-based tuple source; malformed
// rows end the stream (the error is reported through errOut if non-nil).
func TraceSource(tr *TraceReader, errOut func(error)) func() (stream.Tuple, bool) {
	done := false
	return func() (stream.Tuple, bool) {
		if done {
			return stream.Tuple{}, false
		}
		t, err := tr.Next()
		if err != nil {
			done = true
			if err != io.EOF && errOut != nil {
				errOut(err)
			}
			return stream.Tuple{}, false
		}
		return t, true
	}
}
