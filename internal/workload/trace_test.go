package workload

import (
	"io"
	"strings"
	"testing"

	"fastjoin/internal/stream"
)

func sampleTuples() []stream.Tuple {
	return []stream.Tuple{
		{Side: stream.R, Key: 1, Seq: 0, EventTime: 100},
		{Side: stream.S, Key: 2, Seq: 0, EventTime: 150},
		{Side: stream.R, Key: 1, Seq: 1, EventTime: 200},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteTrace(&sb, sampleTuples()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	want := sampleTuples()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tuple %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceHeaderValidation(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("a,b,c,d\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := NewTraceReader(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTraceBadRows(t *testing.T) {
	cases := []string{
		"side,key,seq,event_time_ns\nX,1,2,3\n",  // bad side
		"side,key,seq,event_time_ns\nR,x,2,3\n",  // bad key
		"side,key,seq,event_time_ns\nR,1,y,3\n",  // bad seq
		"side,key,seq,event_time_ns\nR,1,2,zz\n", // bad time
	}
	for i, in := range cases {
		tr, err := NewTraceReader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("case %d header: %v", i, err)
		}
		if _, err := tr.Next(); err == nil || err == io.EOF {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
}

func TestWriteTraceRejectsInvalidSide(t *testing.T) {
	var sb strings.Builder
	err := WriteTrace(&sb, []stream.Tuple{{Side: stream.Side(9)}})
	if err == nil {
		t.Error("invalid side written")
	}
}

func TestTraceSource(t *testing.T) {
	var sb strings.Builder
	if err := WriteTrace(&sb, sampleTuples()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	tr, err := NewTraceReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("NewTraceReader: %v", err)
	}
	src := TraceSource(tr, nil)
	count := 0
	for {
		_, ok := src()
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("source yielded %d tuples, want 3", count)
	}
	// Exhausted source stays exhausted.
	if _, ok := src(); ok {
		t.Error("source revived after EOF")
	}
}

func TestTraceSourceReportsErrors(t *testing.T) {
	tr, err := NewTraceReader(strings.NewReader("side,key,seq,event_time_ns\nR,1,2,3\nX,1,2,3\n"))
	if err != nil {
		t.Fatalf("NewTraceReader: %v", err)
	}
	var reported error
	src := TraceSource(tr, func(e error) { reported = e })
	if _, ok := src(); !ok {
		t.Fatal("first (valid) row rejected")
	}
	if _, ok := src(); ok {
		t.Fatal("bad row accepted")
	}
	if reported == nil {
		t.Error("error not reported")
	}
}

func TestTraceRoundTripGenerated(t *testing.T) {
	// Round-trip a generated ride-hailing prefix.
	cfg := DefaultRideHailingConfig()
	cfg.GridWidth, cfg.GridHeight = 10, 10
	rh := NewRideHailing(cfg)
	tuples := rh.Pair.Interleave(500)
	// Strip payloads: traces persist the join-relevant fields only.
	for i := range tuples {
		tuples[i].Payload = nil
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, tuples); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	for i := range tuples {
		if got[i] != tuples[i] {
			t.Fatalf("tuple %d mismatch: %+v vs %+v", i, got[i], tuples[i])
		}
	}
}
