// Package workload generates the input streams used by the FastJoin
// evaluation: seeded Zipf/uniform key samplers, a synthetic ride-hailing
// workload standing in for the proprietary DiDi GAIA dataset, a Photon-style
// ad-analytics workload, distribution statistics (Fig. 1a/1b) and
// rate-controlled replay.
//
// All generators are deterministic given a seed, so experiments and tests
// are reproducible.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"fastjoin/internal/stream"
)

// Sampler draws join keys from some distribution.
type Sampler interface {
	// Sample returns the next key.
	Sample() stream.Key
	// Cardinality returns the size of the key universe.
	Cardinality() int
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. theta == 0 degenerates to the uniform distribution;
// theta values of 1.0 and 2.0 reproduce the paper's synthetic skew groups.
//
// Unlike math/rand.Zipf, this implementation accepts any theta >= 0
// (the paper needs exactly 0, 1.0 and 2.0, and rand.Zipf requires s > 1).
// Sampling is inverse-CDF with binary search: O(log n) per sample after an
// O(n) precomputation.
type Zipf struct {
	rng   *rand.Rand
	cum   []float64 // cumulative unnormalized weights
	total float64
	perm  []stream.Key // optional rank -> key permutation
}

// NewZipf returns a sampler over n keys with exponent theta, seeded with
// seed. Ranks map to keys identically (rank r yields key r).
func NewZipf(n int, theta float64, seed int64) *Zipf {
	return newZipf(n, theta, seed, nil)
}

// NewZipfShuffled is like NewZipf but applies a seeded random permutation of
// ranks to keys, so the hottest keys are scattered over the key space the
// way real identifiers (locations, ad ids) are.
func NewZipfShuffled(n int, theta float64, seed int64) *Zipf {
	return NewZipfPerm(n, theta, seed, seed^0x5bf03635)
}

// NewZipfPerm is like NewZipfShuffled but separates the sampling seed from
// the permutation seed. Two streams built with the same permSeed agree on
// which keys are hot — essential for join workloads where the same locations
// are popular in both streams — while still sampling independently.
func NewZipfPerm(n int, theta float64, sampleSeed, permSeed int64) *Zipf {
	perm := make([]stream.Key, n)
	prng := rand.New(rand.NewSource(permSeed))
	for i := range perm {
		perm[i] = stream.Key(i)
	}
	prng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return newZipf(n, theta, sampleSeed, perm)
}

func newZipf(n int, theta float64, seed int64, perm []stream.Key) *Zipf {
	if n <= 0 {
		panic("workload: Zipf requires n > 0") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	if theta < 0 {
		panic("workload: Zipf requires theta >= 0") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	return &Zipf{
		rng:   rand.New(rand.NewSource(seed)),
		cum:   cum,
		total: total,
		perm:  perm,
	}
}

// Sample draws one key.
func (z *Zipf) Sample() stream.Key {
	u := z.rng.Float64() * z.total
	rank := sort.SearchFloat64s(z.cum, u)
	if rank >= len(z.cum) {
		rank = len(z.cum) - 1
	}
	if z.perm != nil {
		return z.perm[rank]
	}
	return stream.Key(rank)
}

// Cardinality returns the number of distinct keys.
func (z *Zipf) Cardinality() int { return len(z.cum) }

// Prob returns the exact probability of drawing rank r (before any
// permutation). Tests use it to validate empirical frequencies.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cum) {
		return 0
	}
	lo := 0.0
	if rank > 0 {
		lo = z.cum[rank-1]
	}
	return (z.cum[rank] - lo) / z.total
}

// TopShare returns the fraction of total probability mass carried by the
// hottest fraction p of ranks (0 < p <= 1).
func (z *Zipf) TopShare(p float64) float64 {
	if p <= 0 || p > 1 {
		panic("workload: TopShare p must be in (0, 1]") //lint:allow panicpath generator constructor contract; asserted by tests
	}
	k := int(math.Ceil(p * float64(len(z.cum))))
	if k < 1 {
		k = 1
	}
	if k > len(z.cum) {
		k = len(z.cum)
	}
	return z.cum[k-1] / z.total
}

// CalibrateTheta finds a zipf exponent such that the hottest keyFrac of keys
// carries approximately massFrac of the probability mass. This calibrates
// the synthetic ride-hailing workload to the skew the paper reports for the
// DiDi dataset (Fig. 1a: ~20% of locations hold ~80% of orders; Fig. 1b:
// ~24% hold ~80% of tracks). Binary search over theta in [0, 4].
func CalibrateTheta(n int, keyFrac, massFrac float64) float64 {
	if n <= 1 {
		return 0
	}
	lo, hi := 0.0, 4.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		z := newZipf(n, mid, 1, nil)
		if z.TopShare(keyFrac) < massFrac {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
