package workload

import (
	"math"
	"testing"

	"fastjoin/internal/stream"
)

func TestZipfValidation(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{
		{0, 1}, {-1, 1}, {10, -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %f) should panic", tc.n, tc.theta)
				}
			}()
			NewZipf(tc.n, tc.theta, 1)
		}()
	}
}

func TestZipfDeterministicBySeed(t *testing.T) {
	a := NewZipf(1000, 1.0, 42)
	b := NewZipf(1000, 1.0, 42)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed must give same samples")
		}
	}
}

func TestZipfSamplesInRange(t *testing.T) {
	z := NewZipf(50, 2.0, 7)
	for i := 0; i < 10000; i++ {
		if k := z.Sample(); k >= 50 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(100, 1.5, 1)
	var sum float64
	for i := 0; i < 100; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfProbMonotone(t *testing.T) {
	z := NewZipf(100, 1.0, 1)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Prob(%d)=%g > Prob(%d)=%g", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	z := NewZipf(10, 0, 1)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Errorf("Prob(%d) = %f, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfEmpiricalMatchesTheory(t *testing.T) {
	const n, samples = 20, 200000
	z := NewZipf(n, 1.0, 3)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.Sample()]++
	}
	for rank := 0; rank < 5; rank++ {
		want := z.Prob(rank)
		got := float64(counts[rank]) / samples
		if math.Abs(got-want) > want*0.1 {
			t.Errorf("rank %d: empirical %f vs theoretical %f", rank, got, want)
		}
	}
}

func TestZipfHigherThetaMoreSkew(t *testing.T) {
	z1 := NewZipf(1000, 1.0, 1)
	z2 := NewZipf(1000, 2.0, 1)
	if z2.TopShare(0.01) <= z1.TopShare(0.01) {
		t.Errorf("theta=2 top share %f should exceed theta=1 top share %f",
			z2.TopShare(0.01), z1.TopShare(0.01))
	}
}

func TestZipfTopShareBounds(t *testing.T) {
	z := NewZipf(100, 1.0, 1)
	if got := z.TopShare(1.0); math.Abs(got-1) > 1e-9 {
		t.Errorf("TopShare(1) = %f, want 1", got)
	}
	if got := z.TopShare(0.001); got <= 0 {
		t.Errorf("TopShare(tiny) = %f, want > 0", got)
	}
	for _, p := range []float64{0, -1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopShare(%f) should panic", p)
				}
			}()
			z.TopShare(p)
		}()
	}
}

func TestZipfShuffledPreservesDistributionShape(t *testing.T) {
	const n, samples = 100, 100000
	z := NewZipfShuffled(n, 1.5, 5)
	counts := make(map[stream.Key]int)
	for i := 0; i < samples; i++ {
		counts[z.Sample()]++
	}
	// The max frequency must match the theoretical hottest-rank mass even
	// though the identity of the hot key is permuted.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	want := z.Prob(0)
	got := float64(max) / samples
	if math.Abs(got-want) > want*0.1 {
		t.Errorf("hottest key frequency %f, want ~%f", got, want)
	}
}

func TestZipfPermSharedHotKeys(t *testing.T) {
	// Two samplers with the same permSeed must agree on which key is
	// hottest.
	a := NewZipfPerm(1000, 1.5, 1, 99)
	b := NewZipfPerm(1000, 2.0, 2, 99)
	hot := func(z *Zipf) stream.Key {
		counts := make(map[stream.Key]int)
		for i := 0; i < 50000; i++ {
			counts[z.Sample()]++
		}
		var best stream.Key
		bestC := -1
		for k, c := range counts {
			if c > bestC {
				best, bestC = k, c
			}
		}
		return best
	}
	if hot(a) != hot(b) {
		t.Error("same permSeed should share the hottest key")
	}
}

func TestCalibrateTheta(t *testing.T) {
	theta := CalibrateTheta(10000, 0.20, 0.80)
	z := NewZipf(10000, theta, 1)
	got := z.TopShare(0.20)
	if math.Abs(got-0.80) > 0.02 {
		t.Errorf("calibrated top-20%% share = %f, want ~0.80 (theta=%f)", got, theta)
	}
}

func TestCalibrateThetaDegenerate(t *testing.T) {
	if got := CalibrateTheta(1, 0.2, 0.8); got != 0 {
		t.Errorf("CalibrateTheta(1, ...) = %f, want 0", got)
	}
}

func TestZipfCardinality(t *testing.T) {
	if got := NewZipf(77, 1, 1).Cardinality(); got != 77 {
		t.Errorf("Cardinality = %d, want 77", got)
	}
}
