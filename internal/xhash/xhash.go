// Package xhash provides the key hashing used by the dispatcher to map join
// keys onto join instances, plus small helpers for seeded, reproducible
// hashing of strings and byte slices.
//
// The dispatcher in a join-biclique system must map the same key to the same
// instance on every task and every node, so the hash must be deterministic
// and independent of process state. We use a 64-bit FNV-1a core with an
// optional seed mix (splitmix64 finalizer) so tests can derandomize
// placements and benchmarks can vary them.
package xhash

import "math/bits"

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Uint64 hashes a 64-bit key with a splitmix64-style finalizer. It is a
// bijection, so distinct keys never collide at this stage; collisions only
// appear when reducing modulo the partition count.
func Uint64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seeded hashes a 64-bit key mixed with a seed. Different seeds give
// independent-looking placements of the same key universe.
func Seeded(x, seed uint64) uint64 {
	return Uint64(x ^ bits.RotateLeft64(Uint64(seed), 31))
}

// Bytes hashes a byte slice with FNV-1a.
func Bytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// String hashes a string with FNV-1a without allocating.
func String(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Partition maps a key to one of n partitions (n > 0). It hashes first, so
// consecutive keys spread across partitions rather than striping.
func Partition(key uint64, n int) int {
	if n <= 0 {
		panic("xhash: Partition requires n > 0") //lint:allow panicpath partition-count contract; asserted by tests
	}
	return int(Uint64(key) % uint64(n))
}

// SeededPartition maps a key to one of n partitions under a placement seed.
func SeededPartition(key, seed uint64, n int) int {
	if n <= 0 {
		panic("xhash: SeededPartition requires n > 0") //lint:allow panicpath partition-count contract; asserted by tests
	}
	return int(Seeded(key, seed) % uint64(n))
}
