package xhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint64Deterministic(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, math.MaxUint64} {
		if Uint64(x) != Uint64(x) {
			t.Errorf("Uint64(%d) not deterministic", x)
		}
	}
}

func TestUint64Injective(t *testing.T) {
	// splitmix64 finalizer is a bijection; sample-check no collisions.
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 100000; x++ {
		h := Uint64(x)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Uint64(%d) == Uint64(%d) == %d", x, prev, h)
		}
		seen[h] = x
	}
}

func TestUint64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 1000
	totalFlipped := 0
	for x := uint64(0); x < trials; x++ {
		a := Uint64(x)
		b := Uint64(x ^ 1)
		diff := a ^ b
		for diff != 0 {
			totalFlipped++
			diff &= diff - 1
		}
	}
	avg := float64(totalFlipped) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %f bits flipped, want ~32", avg)
	}
}

func TestSeededVariesWithSeed(t *testing.T) {
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if Seeded(x, 1) == Seeded(x, 2) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/1000 keys hash identically under different seeds", same)
	}
}

func TestBytesKnownValues(t *testing.T) {
	// FNV-1a 64 reference values.
	tests := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, tt := range tests {
		if got := Bytes([]byte(tt.in)); got != tt.want {
			t.Errorf("Bytes(%q) = %#x, want %#x", tt.in, got, tt.want)
		}
	}
}

func TestStringMatchesBytes(t *testing.T) {
	f := func(s string) bool { return String(s) == Bytes([]byte(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionInRange(t *testing.T) {
	f := func(key uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := Partition(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalanced(t *testing.T) {
	const n, keys = 16, 160000
	counts := make([]int, n)
	for k := uint64(0); k < keys; k++ {
		counts[Partition(k, n)]++
	}
	want := float64(keys) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("partition %d has %d keys, want ~%.0f (±5%%)", i, c, want)
		}
	}
}

func TestSeededPartitionInRange(t *testing.T) {
	f := func(key, seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := SeededPartition(key, seed, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partition(_, 0) should panic")
		}
	}()
	Partition(1, 0)
}

func TestSeededPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SeededPartition(_, _, 0) should panic")
		}
	}()
	SeededPartition(1, 1, 0)
}
