package fastjoin

import (
	"strconv"

	"fastjoin/internal/obs"
	"fastjoin/internal/stream"
)

// Re-exported trace types: System.Trace returns the control-plane tracer's
// events without callers needing the internal package.
type (
	// TraceEvent is one control-plane trace event (a migration protocol
	// step).
	TraceEvent = obs.Event
	// TraceKind is the event taxonomy.
	TraceKind = obs.Kind
	// TraceSpanID identifies one migration attempt (side, source, epoch).
	TraceSpanID = obs.SpanID
	// TraceSpan is the event sequence of one migration attempt.
	TraceSpan = obs.Span
)

// The trace event kinds, re-exported from the observability plane. See
// DESIGN.md "Observability" for the span lifecycle they encode.
const (
	TraceTrigger      = obs.KindTrigger
	TraceSelect       = obs.KindSelect
	TraceNoop         = obs.KindNoop
	TraceFence        = obs.KindFence
	TraceRouteApplied = obs.KindRouteApplied
	TraceMarker       = obs.KindMarker
	TraceInstall      = obs.KindInstall
	TraceFlush        = obs.KindFlush
	TraceReplay       = obs.KindReplay
	TraceCommit       = obs.KindCommit
	TraceAbort        = obs.KindAbort
	TraceRevertMarker = obs.KindRevertMarker
	TraceReturn       = obs.KindReturn
	TraceRollback     = obs.KindRollback
	TraceDone         = obs.KindDone
	// Split-lifecycle kinds: one span per split key lifetime at its owning
	// dispatcher task (pending → activate → residual → drained* → retire,
	// or abandon when the key cools before every owner acks).
	TraceSplitPending  = obs.KindSplitPending
	TraceSplitActivate = obs.KindSplitActivate
	TraceSplitResidual = obs.KindSplitResidual
	TraceSplitDrained  = obs.KindSplitDrained
	TraceSplitAbandon  = obs.KindSplitAbandon
	TraceSplitRetire   = obs.KindSplitRetire
)

// Trace returns a snapshot of the control-plane trace ring, oldest first:
// every migration protocol step (trigger, selection, fence, markers,
// flush, commit — or abort, return, rollback) the system has recorded.
// The tracer is always on; it records nothing on the data plane.
func (s *System) Trace() []TraceEvent { return s.trace.Snapshot() }

// TraceSpans groups trace events into per-migration spans, ordered by
// first appearance. Span.Err validates a span against the protocol's
// lifecycle.
func TraceSpans(events []TraceEvent) []TraceSpan { return obs.Spans(events) }

// ObserveAddr returns the bound address of the observability endpoint
// (useful when Options.Observe.Addr used port 0), or "" when the endpoint
// is disabled.
func (s *System) ObserveAddr() string {
	if s.obsrv == nil {
		return ""
	}
	return s.obsrv.Addr()
}

// obsSource adapts a System to the obs server's scrape contract without
// widening the System API. Every method runs on the scrape path only.
type obsSource System

func (o *obsSource) system() *System { return (*System)(o) }

func (o *obsSource) ObsStats() any { return o.system().Stats() }

func (o *obsSource) ObsTrace() []obs.Event { return o.system().Trace() }

// ObsFamilies builds the /metrics families from the system's live
// counters and gauges. Families and samples are assembled per scrape;
// nothing here is on the data path.
func (o *obsSource) ObsFamilies() []obs.Family {
	s := o.system()
	m := s.sys.Metrics()
	st := s.Stats()

	fams := []obs.Family{
		{
			Name: "fastjoin_info", Help: "System kind; the value is always 1.",
			Type:    obs.TypeGauge,
			Samples: []obs.Sample{{Labels: obs.L("system", s.kind.String()), Value: 1}},
		},
		{
			Name: "fastjoin_results_total", Help: "Joined pairs emitted.",
			Type:    obs.TypeCounter,
			Samples: []obs.Sample{{Value: float64(st.Results)}},
		},
		{
			Name: "fastjoin_ingested_total", Help: "Input tuples admitted by the spouts.",
			Type:    obs.TypeCounter,
			Samples: []obs.Sample{{Value: float64(s.Ingested())}},
		},
		{
			Name: "fastjoin_latency_us", Help: "Per-probe processing latency in microseconds (dispatcher send to join completion).",
			Type: obs.TypeSummary,
			Samples: []obs.Sample{
				{Labels: obs.L("quantile", "0.95"), Value: st.LatencyP95Us},
				{Labels: obs.L("quantile", "0.99"), Value: st.LatencyP99Us},
				{Suffix: "_sum", Value: st.LatencyMeanUs * float64(st.LatencySamples)},
				{Suffix: "_count", Value: float64(st.LatencySamples)},
			},
		},
		{
			Name: "fastjoin_stored_tuples", Help: "Stored tuples per biclique side.",
			Type: obs.TypeGauge,
			Samples: []obs.Sample{
				{Labels: obs.L("side", "R"), Value: float64(st.StoredR)},
				{Labels: obs.L("side", "S"), Value: float64(st.StoredS)},
			},
		},
	}

	// Per-instance load model (Eq. 1) and the degree of load imbalance:
	// the quantities the monitor's trigger condition reads.
	load := obs.Family{Name: "fastjoin_instance_load", Help: "Per-instance load L_i = |R_i|*phi_si.", Type: obs.TypeGauge}
	stored := obs.Family{Name: "fastjoin_instance_stored", Help: "Per-instance stored tuples |R_i|.", Type: obs.TypeGauge}
	probe := obs.Family{Name: "fastjoin_instance_probe_pressure", Help: "Per-instance probe arrivals phi_si in the last report interval.", Type: obs.TypeGauge}
	li := obs.Family{Name: "fastjoin_load_imbalance", Help: "Degree of load imbalance LI per side (monitor's latest observation).", Type: obs.TypeGauge}
	splitRep := obs.Family{Name: "fastjoin_split_keys_reported", Help: "Actively split keys per join instance, from the latest load report.", Type: obs.TypeGauge}
	for _, side := range []stream.Side{stream.R, stream.S} {
		sideLbl := side.String()
		for _, l := range m.InstanceLoads(side) {
			lbls := obs.L("side", sideLbl, "instance", strconv.Itoa(l.Instance))
			load.Samples = append(load.Samples, obs.Sample{Labels: lbls, Value: float64(l.Load())})
			stored.Samples = append(stored.Samples, obs.Sample{Labels: lbls, Value: float64(l.Stored)})
			probe.Samples = append(probe.Samples, obs.Sample{Labels: lbls, Value: float64(l.Probe)})
		}
		for inst, n := range m.SplitReported(side) {
			splitRep.Samples = append(splitRep.Samples, obs.Sample{
				Labels: obs.L("side", sideLbl, "instance", strconv.Itoa(inst)), Value: float64(n)})
		}
		li.Samples = append(li.Samples, obs.Sample{Labels: obs.L("side", sideLbl), Value: m.LastLI(side)})
	}
	fams = append(fams, load, stored, probe, li, splitRep)

	// Engine queue congestion, per task: the instantaneous backlog and the
	// deepest backlog observed since start.
	depth := obs.Family{Name: "fastjoin_engine_queue_depth", Help: "Current data-queue backlog per engine task.", Type: obs.TypeGauge}
	hw := obs.Family{Name: "fastjoin_engine_queue_high_water", Help: "Deepest data-queue backlog observed per engine task since start.", Type: obs.TypeGauge}
	cluster := s.sys.Cluster()
	for _, comp := range cluster.Components() {
		for _, ts := range cluster.Stats(comp) {
			lbls := obs.L("component", comp, "task", strconv.Itoa(ts.Task))
			depth.Samples = append(depth.Samples, obs.Sample{Labels: lbls, Value: float64(ts.QueueLen)})
			hw.Samples = append(hw.Samples, obs.Sample{Labels: lbls, Value: float64(ts.QueueHighWater)})
		}
	}
	obs.SortSamples(&depth)
	obs.SortSamples(&hw)
	fams = append(fams, depth, hw)

	fams = append(fams,
		obs.Family{Name: "fastjoin_migrations_total", Help: "Completed key migrations.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.Migrations)}}},
		obs.Family{Name: "fastjoin_migration_aborts_total", Help: "Migration attempts that timed out the marker handshake and rolled back.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.MigrationAborts)}}},
		obs.Family{Name: "fastjoin_migrated_keys_total", Help: "Keys moved by completed migrations.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.MigratedKeys)}}},
		obs.Family{Name: "fastjoin_migrated_tuples_total", Help: "Stored tuples moved by completed migrations.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.MigratedTuples)}}},
		obs.Family{Name: "fastjoin_replayed_tuples_total", Help: "Tuples re-processed from migration buffers.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.ReplayedTuples)}}},
		obs.Family{Name: "fastjoin_migrations_in_flight", Help: "Migration handshakes or rollbacks not yet finished.",
			Type: obs.TypeGauge, Samples: []obs.Sample{{Value: float64(s.MigrationsInFlight())}}},
		obs.Family{Name: "fastjoin_split_keys", Help: "Currently split hot keys (stores salted across instances).",
			Type: obs.TypeGauge, Samples: []obs.Sample{{Value: float64(st.SplitKeys)}}},
		obs.Family{Name: "fastjoin_keys_split_total", Help: "Hot-key split activations (including residual re-activations).",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.KeysSplit)}}},
		obs.Family{Name: "fastjoin_keys_unsplit_total", Help: "Split keys cooled down to residual routing.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.KeysUnsplit)}}},
		obs.Family{Name: "fastjoin_split_frozen_keys_total", Help: "Keys dropped from routing updates because their split routing is frozen.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(m.SplitFrozenKeys.Value())}}},
		obs.Family{Name: "fastjoin_split_residual_keys", Help: "Cooled split keys whose salted shares have not yet drained everywhere.",
			Type: obs.TypeGauge, Samples: []obs.Sample{{Value: float64(st.ResidualKeys)}}},
		obs.Family{Name: "fastjoin_keys_retired_total", Help: "Split keys fully drained and returned to single-owner routing.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.KeysRetired)}}},
		obs.Family{Name: "fastjoin_trace_events_total", Help: "Control-plane trace events emitted.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(s.trace.Emitted())}}},
		obs.Family{Name: "fastjoin_trace_events_evicted_total", Help: "Trace events evicted by the bounded ring.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(s.trace.Evicted())}}},
		obs.Family{Name: "fastjoin_heap_alloc_bytes", Help: "Live heap at scrape time.",
			Type: obs.TypeGauge, Samples: []obs.Sample{{Value: float64(st.HeapAllocBytes)}}},
		obs.Family{Name: "fastjoin_alloc_bytes_total", Help: "Bytes allocated since the system started.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.AllocBytes)}}},
		obs.Family{Name: "fastjoin_gc_cycles_total", Help: "GC cycles completed since the system started.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.GCCycles)}}},
		obs.Family{Name: "fastjoin_gc_pause_us_total", Help: "Total stop-the-world pause in microseconds since the system started.",
			Type: obs.TypeCounter, Samples: []obs.Sample{{Value: st.GCPauseTotalUs}}},
	)

	if s.chaos != nil {
		cc := s.chaos.Counts()
		fams = append(fams, obs.Family{
			Name: "fastjoin_chaos_faults_total", Help: "Faults injected by the chaos profile, by kind.",
			Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: obs.L("fault", "dropped"), Value: float64(cc.Dropped)},
				{Labels: obs.L("fault", "duplicated"), Value: float64(cc.Duplicated)},
				{Labels: obs.L("fault", "delayed"), Value: float64(cc.Delayed)},
				{Labels: obs.L("fault", "stalled"), Value: float64(cc.Stalled)},
				{Labels: obs.L("fault", "resets"), Value: float64(cc.Resets)},
			},
		})
	}
	return fams
}
