package fastjoin

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fastjoin/internal/obs"
)

func startObserved(t testing.TB, n int) *System {
	t.Helper()
	sys, err := New(Options{
		Kind:    KindFastJoin,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(n, 8)},
		Observe: ObserveOptions{Addr: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, string(body)
}

// TestObserveEndpoint boots a real system with an ephemeral observability
// endpoint and scrapes it end to end: /metrics must be valid Prometheus
// text exposition carrying the per-instance and migration families,
// /stats.json and /trace.json must decode.
func TestObserveEndpoint(t *testing.T) {
	sys := startObserved(t, 2000)
	if err := sys.WaitComplete(time.Minute); err != nil {
		t.Fatal(err)
	}
	addr := sys.ObserveAddr()
	if addr == "" {
		t.Fatal("ObserveAddr empty with Observe.Addr set")
	}
	base := "http://" + addr

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, family := range []string{
		"fastjoin_results_total",
		"fastjoin_ingested_total",
		"fastjoin_instance_load",
		"fastjoin_load_imbalance",
		"fastjoin_engine_queue_depth",
		"fastjoin_engine_queue_high_water",
		"fastjoin_migrations_total",
		"fastjoin_migration_aborts_total",
		"fastjoin_trace_events_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// Per-instance samples are labeled by side and instance.
	if !strings.Contains(body, `fastjoin_instance_load{side="R",instance="0"}`) {
		t.Errorf("/metrics missing per-instance load sample:\n%s", body)
	}

	resp, body = get(t, base+"/stats.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats.json status %d", resp.StatusCode)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats.json does not decode: %v", err)
	}
	if _, ok := stats["results"]; !ok {
		t.Errorf("/stats.json missing results: %v", stats)
	}

	resp, body = get(t, base+"/trace.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace.json status %d", resp.StatusCode)
	}
	var trace []map[string]any
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace.json does not decode: %v", err)
	}

	if resp, _ := get(t, base+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof status %d", resp.StatusCode)
	}

	// The exposition itself must satisfy the validator the unit tests pin.
	src := (*obsSource)(sys)
	if err := obs.Validate(src.ObsFamilies()); err != nil {
		t.Errorf("live families invalid: %v", err)
	}
}

// TestObserveAddrInUse checks that New surfaces an endpoint bind failure
// instead of leaking a half-started system.
func TestObserveAddrInUse(t *testing.T) {
	sys := startObserved(t, 100)
	_, err := New(Options{
		Kind:    KindFastJoin,
		Joiners: 2,
		Sources: []TupleSource{finiteSource(100, 8)},
		Observe: ObserveOptions{Addr: sys.ObserveAddr()},
	})
	if err == nil {
		t.Fatal("New bound the same observability address twice")
	}
	if !strings.Contains(err.Error(), "observability endpoint") {
		t.Errorf("error does not name the endpoint: %v", err)
	}
}

// BenchmarkObsScrape measures a full /metrics render against a live
// system — the cost a Prometheus scrape interval pays.
func BenchmarkObsScrape(b *testing.B) {
	sys := startObserved(b, 5000)
	if err := sys.WaitComplete(time.Minute); err != nil {
		b.Fatal(err)
	}
	src := (*obsSource)(sys)
	var sink strings.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := obs.WriteProm(&sink, src.ObsFamilies()); err != nil {
			b.Fatal(err)
		}
	}
}
